// Design explorer: the paper's Sec. 3.1 methodology as a tool. For a
// chosen technology node, sweep the gate length with co-optimized
// doping, print the energy/delay factor landscape, and report the
// energy-optimal sub-V_th device — then show how it behaves across
// temperature (S_S scales with vT, so hot silicon needs more margin).
//
// Usage: design_explorer [node]        (node: 90nm|65nm|45nm|32nm)

#include <cstdio>
#include <string>

#include "compact/mosfet.h"
#include "io/table.h"
#include "physics/units.h"
#include "scaling/subvth_strategy.h"

using namespace subscale;
namespace u = subscale::units;

int main(int argc, char** argv) {
  const std::string node_name = argc > 1 ? argv[1] : "65nm";
  const auto& node = scaling::node_by_name(node_name);
  std::printf("exploring the %s node (Tox=%.2fnm, min Lpoly=%.0fnm, "
              "Ioff target 100 pA/um)\n\n",
              node.name.c_str(), node.tox_nm, node.lpoly_nm);

  // Gate-length landscape with co-optimized doping.
  io::TextTable t({"Lpoly [nm]", "Nsub [e18]", "Nhalo [e18]", "SS [mV/dec]",
                   "CL*SS^2 (norm)", "CL*SS (norm)"});
  double e0 = 0.0, d0 = 0.0;
  for (double lpoly = node.lpoly_nm; lpoly <= 2.6 * node.lpoly_nm;
       lpoly += 0.2 * node.lpoly_nm) {
    const auto spec = scaling::optimize_subvth_doping(node, lpoly);
    const compact::CompactMosfet fet(spec);
    const double e = scaling::energy_factor(spec);
    const double d = scaling::delay_factor(spec);
    if (e0 == 0.0) {
      e0 = e;
      d0 = d;
    }
    t.add_row({io::fmt(lpoly, 3),
               io::fmt(u::to_per_cm3(spec.levels.nsub) / 1e18, 3),
               io::fmt(u::to_per_cm3(spec.levels.nsub + spec.levels.np_halo) /
                           1e18,
                       3),
               io::fmt(fet.subthreshold_swing() * 1e3, 4),
               io::fmt(e / e0, 3), io::fmt(d / d0, 3)});
  }
  std::printf("%s\n", t.render(2).c_str());

  // The optimal device.
  const auto best = scaling::design_subvth_device(node);
  std::printf("energy-optimal device: Lpoly = %.1f nm, SS = %.1f mV/dec, "
              "Nsub = %.2fe18, Nhalo = %.2fe18\n\n",
              best.lpoly_opt_nm, best.device.ss_mv_dec,
              best.device.nsub_cm3 / 1e18, best.device.nhalo_net_cm3 / 1e18);

  // Temperature behaviour of the chosen device (S_S ~ 2.3 vT m).
  io::TextTable tt({"T [K]", "SS [mV/dec]", "Ioff [pA/um]"});
  for (double temp : {250.0, 300.0, 350.0, 400.0}) {
    compact::DeviceSpec spec = best.device.spec;
    spec.temperature = temp;
    const compact::CompactMosfet fet(spec);
    tt.add_row({io::fmt(temp, 3), io::fmt(fet.subthreshold_swing() * 1e3, 4),
                io::fmt(u::to_pA_per_um(fet.ioff() / spec.width), 4)});
  }
  std::printf("temperature sensitivity of the optimal device:\n%s",
              tt.render(2).c_str());
  return 0;
}
