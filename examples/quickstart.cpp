// Quickstart: build the paper's 45nm super-V_th device, inspect its
// subthreshold characteristics, and evaluate an inverter built on it —
// the five-minute tour of the library's public API.

#include <cstdio>

#include "circuits/delay.h"
#include "circuits/inverter.h"
#include "circuits/vmin.h"
#include "circuits/vtc.h"
#include "compact/mosfet.h"
#include "physics/units.h"
#include "scaling/supervth_strategy.h"

using namespace subscale;
namespace u = subscale::units;

int main() {
  // 1. Design a device: run the paper's Fig. 1(c) flow at the 45nm node.
  const auto& node = scaling::node_by_name("45nm");
  const auto designed = scaling::design_supervth_device(node);
  std::printf("designed %s NFET: Lpoly=%.0fnm Tox=%.2fnm\n",
              node.name.c_str(), node.lpoly_nm, node.tox_nm);
  std::printf("  Nsub  = %.2fe18 cm^-3\n", designed.nsub_cm3 / 1e18);
  std::printf("  Nhalo = %.2fe18 cm^-3 (net peak)\n",
              designed.nhalo_net_cm3 / 1e18);

  // 2. Inspect the compact model.
  const compact::CompactMosfet fet(designed.spec);
  std::printf("device characteristics:\n");
  std::printf("  S_S      = %.1f mV/dec\n", fet.subthreshold_swing() * 1e3);
  std::printf("  V_th,sat = %.0f mV (constant-current extraction)\n",
              u::to_mV(fet.vth_sat_extracted()));
  std::printf("  I_off    = %.0f pA/um at V_dd = %.1f V\n",
              u::to_pA_per_um(fet.ioff() / designed.spec.width),
              designed.spec.vdd);
  std::printf("  I_on     = %.1f uA/um\n",
              u::to_uA_per_um(fet.ion() / designed.spec.width));

  // 3. Build a balanced inverter and operate it in subthreshold.
  const auto inv = circuits::make_inverter(designed.spec).at_vdd(0.25);
  const auto nm = circuits::noise_margins(inv);
  const auto tp = circuits::fo1_delay(inv);
  std::printf("inverter at V_dd = 250 mV:\n");
  std::printf("  SNM = %.1f mV (peak gain %.1f)\n", nm.snm * 1e3,
              nm.peak_gain);
  std::printf("  FO1 delay = %.1f ns\n", u::to_ns(tp.tp));

  // 4. Find the minimum-energy point of a 30-inverter chain.
  const auto vmin = circuits::find_vmin(inv);
  std::printf("30-inverter chain, activity 0.1:\n");
  std::printf("  V_min = %.0f mV, E/cycle = %.2f fJ (dyn %.2f + leak %.2f)\n",
              vmin.vmin * 1e3, u::to_fJ(vmin.at_vmin.e_total),
              u::to_fJ(vmin.at_vmin.e_dynamic),
              u::to_fJ(vmin.at_vmin.e_leakage));
  return 0;
}
