// Subthreshold SRAM margins: the paper motivates its SNM analysis with
// sub-200mV SRAM (Sec. 2.3.2, ref [16]). This example builds 6T cells
// on both scaling strategies' devices at every node and reports hold and
// read static noise margins across supply voltages — showing how the
// proposed sub-V_th devices keep SRAM viable deeper into scaling.

#include <cstdio>

#include "circuits/sram6t.h"
#include "core/scaling_study.h"
#include "io/table.h"

using namespace subscale;

int main() {
  const core::ScalingStudy study;

  std::printf("6T SRAM static noise margins in subthreshold (cell ratio 1.5)\n\n");

  for (const double vdd : {0.25, 0.30, 0.40}) {
    io::TextTable t({"node", "hold SNM super [mV]", "read SNM super [mV]",
                     "hold SNM sub [mV]", "read SNM sub [mV]"});
    for (std::size_t i = 0; i < study.node_count(); ++i) {
      auto super_cell =
          circuits::make_sram_cell(study.super_devices()[i].spec);
      auto sub_cell =
          circuits::make_sram_cell(study.sub_devices()[i].device.spec);
      super_cell.vdd = vdd;
      sub_cell.vdd = vdd;
      t.add_row({study.node(i).name,
                 io::fmt(circuits::sram_hold_snm(super_cell) * 1e3, 4),
                 io::fmt(circuits::sram_read_snm(super_cell) * 1e3, 4),
                 io::fmt(circuits::sram_hold_snm(sub_cell) * 1e3, 4),
                 io::fmt(circuits::sram_read_snm(sub_cell) * 1e3, 4)});
    }
    std::printf("V_dd = %.0f mV\n%s\n", vdd * 1e3, t.render(2).c_str());
  }

  std::printf(
      "reading guide: read SNM is the binding constraint (access transistor\n"
      "fights the pull-down); the sub-V_th strategy's flat S_S keeps both\n"
      "margins from collapsing at the 32nm node.\n");
  return 0;
}
