// The "MEDICI path": run the from-scratch 2-D drift–diffusion solver on
// the paper's 90nm NFET, dump the Id–Vg characteristic at two drain
// biases, and extract S_S / V_th / DIBL exactly the way the paper
// post-processed its device simulations. Writes tcad_idvg.csv alongside,
// plus tcad_idvg_convergence.json with the per-solve residual
// trajectories the Gummel loop recorded (one column set per solve —
// plot psi_update against iteration to see the decay).
//
// Usage: tcad_idvg [lpoly_nm]   (default 65)

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "compact/device_spec.h"
#include "exec/run_context.h"
#include "io/csv.h"
#include "io/table.h"
#include "io/trace_export.h"
#include "io/writer.h"
#include "obs/convergence.h"
#include "physics/units.h"
#include "tcad/device_sim.h"
#include "tcad/extract.h"

using namespace subscale;
namespace u = subscale::units;

int main(int argc, char** argv) {
  const double lpoly_nm = argc > 1 ? std::atof(argv[1]) : 65.0;
  auto spec = compact::make_spec_from_table(doping::Polarity::kNfet, 65, 2.10,
                                            1.52e18, 3.63e18, 1.2, 1.0);
  spec.geometry.lpoly = u::nm(lpoly_nm);

  std::printf("2-D drift-diffusion simulation of the 90nm-node NFET "
              "(Lpoly = %.0f nm)\n",
              lpoly_nm);
  // Opt into convergence recording: the recorder rides in the device's
  // RunContext, and the solver commits one trajectory per Gummel solve
  // (including intermediate continuation bias points).
  obs::ConvergenceRecorder recorder(512);
  exec::RunContext ctx;
  ctx.convergence = &recorder;
  tcad::TcadDevice dev(spec, {}, {}, ctx);
  std::printf("mesh: %zu x %zu = %zu nodes\n\n", dev.structure().mesh().nx(),
              dev.structure().mesh().ny(),
              dev.structure().mesh().node_count());

  const tcad::SweepResult sweep_lin = dev.id_vg(0.05, 0.0, 0.45, 12);
  const tcad::SweepResult sweep_sat = dev.id_vg(0.25, 0.0, 0.45, 12);

  io::TextTable t({"Vg [V]", "Id @ Vd=50mV [A/um]", "Id @ Vd=250mV [A/um]"});
  io::Series s_lin("id_vd50mV"), s_sat("id_vd250mV");
  for (std::size_t k = 0; k < sweep_lin.size(); ++k) {
    t.add_row({io::fmt(sweep_lin[k].vg, 3),
               io::fmt_sci(sweep_lin[k].id * 1e-6, 3),
               io::fmt_sci(sweep_sat[k].id * 1e-6, 3)});
    s_lin.add(sweep_lin[k].vg, sweep_lin[k].id * 1e-6);
    s_sat.add(sweep_sat[k].vg, sweep_sat[k].id * 1e-6);
  }
  std::printf("%s\n", t.render(2).c_str());

  const auto ex = tcad::extract_from_sweep(sweep_sat);
  const double dibl =
      tcad::extract_dibl(sweep_lin.points, 0.05, sweep_sat.points, 0.25);
  std::printf("extraction (Vd = 250 mV sweep):\n");
  std::printf("  S_S   = %.1f mV/dec (r^2 = %.5f)\n", ex.ss * 1e3, ex.ss_r2);
  std::printf("  V_th  = %.0f mV (constant-current)\n", ex.vth_cc * 1e3);
  std::printf("  I_off = %.1f pA/um\n", u::to_pA_per_um(ex.ioff));
  std::printf("  DIBL  = %.0f mV/V\n", dibl * 1e3);

  io::write_csv_file("tcad_idvg.csv", {s_lin, s_sat});
  std::printf("\nwrote tcad_idvg.csv\n");

  const auto solves = recorder.snapshot();
  std::size_t iterations = 0;
  std::size_t converged = 0;
  for (const auto& s : solves) {
    iterations += s.samples.size();
    converged += s.converged ? 1u : 0u;
  }
  std::printf("convergence recorder: %zu solves kept (%llu offered, "
              "%llu dropped), %zu/%zu converged, %zu outer iterations\n",
              solves.size(),
              static_cast<unsigned long long>(recorder.total_solves()),
              static_cast<unsigned long long>(recorder.dropped_solves()),
              converged, solves.size(), iterations);

  io::JsonWriter jw;
  io::write_convergence_document(jw, solves);
  std::ofstream("tcad_idvg_convergence.json") << jw.str() << '\n';
  std::printf("wrote tcad_idvg_convergence.json\n");
  return 0;
}
