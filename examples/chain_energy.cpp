// Minimum-energy-point analysis of a logic path: sweep the supply of a
// 30-inverter chain on the 32nm devices of both scaling strategies,
// print the full E(V_dd) curves with their dynamic/leakage split, and
// compare against a 5-stage ring oscillator's frequency at each supply —
// the workload behind the paper's Figs. 6 and 12.

#include <cstdio>

#include "circuits/ring_oscillator.h"
#include "circuits/vmin.h"
#include "core/scaling_study.h"
#include "io/table.h"
#include "physics/units.h"

using namespace subscale;
namespace u = subscale::units;

int main() {
  const core::ScalingStudy study;
  const std::size_t node = 3;  // 32nm

  for (const bool use_sub : {false, true}) {
    const auto inv = use_sub ? study.sub_inverter(node, 0.3)
                             : study.super_inverter(node, 0.3);
    std::printf("=== 32nm %s-V_th device, 30-inverter chain, a = 0.1 ===\n",
                use_sub ? "sub" : "super");
    io::TextTable t({"Vdd [mV]", "tp [ns]", "f_clk [MHz]", "E_dyn [fJ]",
                     "E_leak [fJ]", "E_total [fJ]"});
    for (double vdd = 0.14; vdd <= 0.46; vdd += 0.04) {
      const auto r = circuits::chain_energy(inv, vdd);
      t.add_row({io::fmt(vdd * 1e3, 3), io::fmt(u::to_ns(r.stage_delay), 3),
                 io::fmt(1e-6 / r.cycle_time, 3),
                 io::fmt(u::to_fJ(r.e_dynamic), 3),
                 io::fmt(u::to_fJ(r.e_leakage), 3),
                 io::fmt(u::to_fJ(r.e_total), 3)});
    }
    std::printf("%s", t.render(2).c_str());
    const auto vm = circuits::find_vmin(inv);
    std::printf("V_min = %.0f mV, E_min = %.3f fJ/cycle\n", vm.vmin * 1e3,
                u::to_fJ(vm.at_vmin.e_total));

    // Independent check: a real simulated ring oscillator at V_min.
    const auto ring =
        circuits::simulate_ring(inv.at_vdd(vm.vmin), {.stages = 5});
    std::printf("5-stage ring at V_min: f = %.2f MHz (stage delay %.1f ns)\n\n",
                ring.frequency * 1e-6, u::to_ns(ring.stage_delay));
  }
  return 0;
}
