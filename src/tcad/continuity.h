#pragma once

/// \file continuity.h
/// Steady-state carrier continuity with Scharfetter–Gummel fluxes:
/// div J_n = +q R, div J_p = -q R, with SRH recombination (denominator
/// lagged so each solve is a single banded linear system).

#include <cstddef>
#include <memory>
#include <vector>

#include "physics/mobility.h"
#include "tcad/device_structure.h"
#include "tcad/solver_status.h"

namespace subscale::obs {
class SpanProfiler;
}  // namespace subscale::obs

namespace subscale::linalg {
class BandedMatrix;
}  // namespace subscale::linalg

namespace subscale::tcad {

struct ContinuityOptions {
  double tau_srh = 1e-7;       ///< SRH lifetime [s] (both carriers)
  bool velocity_saturation = true;  ///< Caughey–Thomas edge mobility
  /// Assemble in Slotboom variables (n = ni e^{psi/vt} u, p = ni
  /// e^{-psi/vt} v) instead of raw densities. The SG flux becomes
  /// symmetric in u/v and the assembly is exact at equilibrium (u = v
  /// = 1 identically), which makes this a genuinely independent
  /// discretization of the same physics — the equivalence tier runs it
  /// against the raw-density path as a differential check of the SG
  /// assembly. It is NOT an accuracy upgrade: the solver's ~1e-6
  /// subthreshold current noise comes from the contact-flux
  /// evaluation (a 1e9 gross/net cancellation) and is unchanged by the
  /// variable choice, while at high bias the e^{psi/vt} weights span
  /// the full psi range and degrade the linear systems' conditioning
  /// enough to stall tight-tolerance ramps above ~1V. Off by default:
  /// the raw-density path reproduces the seed solver bitwise.
  bool slotboom = false;
};

struct ContinuityResult {
  SolveStatus status = SolveStatus::kConverged;
  std::size_t non_finite_nodes = 0;  ///< NaN/Inf densities from the solve
  double max_density = 0.0;          ///< max over silicon nodes [1/m^3]
};

/// Reusable assembly state for solve_continuity, bound to one device.
/// Edge geometry (distance, area, silicon-edge flags) and the
/// zero-field Masetti mobilities depend only on the mesh, material map
/// and doping — never on the Gummel iterate — so one workspace computes
/// them once and amortizes them over the hundreds of continuity solves
/// an I-V ramp performs on that device. The band-matrix and rhs buffers
/// are recycled between calls (zero + refill is bitwise-identical to
/// fresh construction, and every row is rewritten each assembly).
/// Passing a workspace changes no arithmetic: results are
/// bitwise-identical to the workspace-free path.
class SgWorkspace {
 public:
  SgWorkspace();
  ~SgWorkspace();
  SgWorkspace(SgWorkspace&&) noexcept;
  SgWorkspace& operator=(SgWorkspace&&) noexcept;

 private:
  friend ContinuityResult solve_continuity(
      const DeviceStructure&, physics::Carrier, const std::vector<double>&,
      const std::vector<double>&, std::vector<double>&,
      const ContinuityOptions&, obs::SpanProfiler*, SgWorkspace*);

  struct Edge {
    std::size_t nb = 0;    ///< neighbour node index
    double dist = 0.0;     ///< node spacing [m]
    double area = 0.0;     ///< flux cross-section [m]
    double mu_n0 = 0.0;    ///< zero-field Masetti mobility, electrons
    double mu_p0 = 0.0;    ///< zero-field Masetti mobility, holes
    bool active = false;   ///< edge exists and both ends are silicon
  };

  void bind(const DeviceStructure& dev);

  const DeviceStructure* dev_ = nullptr;  ///< device the cache describes
  std::vector<Edge> edges_;               ///< 4 slots (W,E,S,N) per node
  std::unique_ptr<linalg::BandedMatrix> a_;
  std::vector<double> rhs_;
  std::vector<double> w_;  ///< Slotboom weights scratch
};

/// Solve the electron (or hole) continuity equation for the density
/// field, given the electrostatic potential. The opposite carrier's
/// density enters the (lagged) SRH term. Results are clamped positive.
/// A non-finite linear-solve output (degenerate potential, singular
/// pivot) is reported via the result instead of being propagated as
/// garbage currents; the offending nodes are reset to the density floor.
/// A non-null `profiler` records the "linalg.banded_lu.solve" span of
/// the single banded solve. A non-null `workspace` reuses cached
/// geometry/mobility tables and assembly buffers across calls (see
/// SgWorkspace); it is rebound automatically if `dev` changes.
ContinuityResult solve_continuity(const DeviceStructure& dev,
                                  physics::Carrier carrier,
                                  const std::vector<double>& psi,
                                  const std::vector<double>& other_density,
                                  std::vector<double>& density,
                                  const ContinuityOptions& options = {},
                                  obs::SpanProfiler* profiler = nullptr,
                                  SgWorkspace* workspace = nullptr);

/// Scharfetter–Gummel edge current (per metre of device width) flowing
/// from node a to node b for the given carrier [A/m]. Used both by the
/// assembly and by terminal-current integration.
double edge_current(const DeviceStructure& dev, physics::Carrier carrier,
                    const std::vector<double>& psi,
                    const std::vector<double>& density, std::size_t node_a,
                    std::size_t node_b, double dist, double area,
                    const ContinuityOptions& options = {});

/// Edge mobility used by both routines [m^2/Vs].
double edge_mobility(const DeviceStructure& dev, physics::Carrier carrier,
                     const std::vector<double>& psi, std::size_t node_a,
                     std::size_t node_b, double dist,
                     const ContinuityOptions& options);

}  // namespace subscale::tcad
