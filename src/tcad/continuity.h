#pragma once

/// \file continuity.h
/// Steady-state carrier continuity with Scharfetter–Gummel fluxes:
/// div J_n = +q R, div J_p = -q R, with SRH recombination (denominator
/// lagged so each solve is a single banded linear system).

#include <vector>

#include "physics/mobility.h"
#include "tcad/device_structure.h"
#include "tcad/solver_status.h"

namespace subscale::obs {
class SpanProfiler;
}  // namespace subscale::obs

namespace subscale::tcad {

struct ContinuityOptions {
  double tau_srh = 1e-7;       ///< SRH lifetime [s] (both carriers)
  bool velocity_saturation = true;  ///< Caughey–Thomas edge mobility
};

struct ContinuityResult {
  SolveStatus status = SolveStatus::kConverged;
  std::size_t non_finite_nodes = 0;  ///< NaN/Inf densities from the solve
  double max_density = 0.0;          ///< max over silicon nodes [1/m^3]
};

/// Solve the electron (or hole) continuity equation for the density
/// field, given the electrostatic potential. The opposite carrier's
/// density enters the (lagged) SRH term. Results are clamped positive.
/// A non-finite linear-solve output (degenerate potential, singular
/// pivot) is reported via the result instead of being propagated as
/// garbage currents; the offending nodes are reset to the density floor.
/// A non-null `profiler` records the "linalg.banded_lu.solve" span of
/// the single banded solve.
ContinuityResult solve_continuity(const DeviceStructure& dev,
                                  physics::Carrier carrier,
                                  const std::vector<double>& psi,
                                  const std::vector<double>& other_density,
                                  std::vector<double>& density,
                                  const ContinuityOptions& options = {},
                                  obs::SpanProfiler* profiler = nullptr);

/// Scharfetter–Gummel edge current (per metre of device width) flowing
/// from node a to node b for the given carrier [A/m]. Used both by the
/// assembly and by terminal-current integration.
double edge_current(const DeviceStructure& dev, physics::Carrier carrier,
                    const std::vector<double>& psi,
                    const std::vector<double>& density, std::size_t node_a,
                    std::size_t node_b, double dist, double area,
                    const ContinuityOptions& options = {});

/// Edge mobility used by both routines [m^2/Vs].
double edge_mobility(const DeviceStructure& dev, physics::Carrier carrier,
                     const std::vector<double>& psi, std::size_t node_a,
                     std::size_t node_b, double dist,
                     const ContinuityOptions& options);

}  // namespace subscale::tcad
