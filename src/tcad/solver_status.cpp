#include "tcad/solver_status.h"

#include <cstdio>

namespace subscale::tcad {

const char* to_string(SolveStage stage) {
  switch (stage) {
    case SolveStage::kNone:
      return "none";
    case SolveStage::kPoisson:
      return "Poisson";
    case SolveStage::kContinuity:
      return "continuity";
    case SolveStage::kGummel:
      return "Gummel";
    case SolveStage::kNewton:
      return "Newton";
  }
  return "unknown";
}

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kConverged:
      return "converged";
    case SolveStatus::kStalled:
      return "stalled";
    case SolveStatus::kDiverged:
      return "diverged";
    case SolveStatus::kNonFinite:
      return "non-finite";
  }
  return "unknown";
}

std::string SolverReport::summary() const {
  std::string biases;
  for (const auto& [name, v] : (converged ? target : failed_biases)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %s=%.4gV", name.c_str(), v);
    biases += buf;
  }
  char buf[256];
  if (converged) {
    std::snprintf(buf, sizeof(buf),
                  "converged at%s (%zu continuation steps, %zu retries, "
                  "%zu Gummel iterations)",
                  biases.empty() ? " equilibrium" : biases.c_str(),
                  continuation_steps, retries, total_gummel_iterations);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%s %s at%s (%zu retries, final step %.4gV, damping "
                  "%.3g, residual %.3g V)",
                  to_string(failed_stage), to_string(status),
                  biases.empty() ? " equilibrium" : biases.c_str(), retries,
                  final_bias_step, final_damping, final_residual);
  }
  return buf;
}

SolverError::SolverError(SolverReport report)
    : std::runtime_error("DriftDiffusionSolver: " + report.summary()),
      report_(std::move(report)) {}

}  // namespace subscale::tcad
