#pragma once

/// \file extract.h
/// Device-parameter extraction from simulated I_d-V_g sweeps — the same
/// post-processing the paper applied to its MEDICI output: inverse
/// subthreshold slope (regression over the exponential region),
/// constant-current threshold voltage, on/off currents and DIBL.

#include <vector>

#include "tcad/device_sim.h"

namespace subscale::tcad {

struct SweepExtraction {
  double ss = 0.0;      ///< inverse subthreshold slope [V/dec]
  double vth_cc = 0.0;  ///< constant-current threshold [V]
  double ioff = 0.0;    ///< current at the lowest vg of the sweep [A/m]
  double ion = 0.0;     ///< current at the highest vg of the sweep [A/m]
  double ss_r2 = 0.0;   ///< regression quality of the S_S fit
};

struct ExtractOptions {
  /// Subthreshold window for the S_S regression, as decades of current
  /// above the sweep's minimum current.
  double window_lo_decades = 0.5;
  double window_hi_decades = 3.5;
  /// Constant-current criterion [A/m] for V_th (MEDICI-style extraction
  /// uses a fixed current density; 1e-1 A/m = 0.1 uA/um).
  double vth_current = 1e-1;
};

/// Extract parameters from an ascending-vg sweep with positive currents.
/// Throws std::invalid_argument on unusable sweeps (too short, wrong
/// ordering, non-positive currents).
SweepExtraction extract_from_sweep(const std::vector<IdVgPoint>& sweep,
                                   const ExtractOptions& options = {});

/// Convenience overload for the value-type sweep API: extracts from the
/// converged points of a SweepResult.
inline SweepExtraction extract_from_sweep(const SweepResult& sweep,
                                          const ExtractOptions& options = {}) {
  return extract_from_sweep(sweep.points, options);
}

/// DIBL coefficient from two sweeps at low and high drain bias [V/V]:
/// (V_th,lin - V_th,sat)/(vd_hi - vd_lo) using the constant-current V_th.
double extract_dibl(const std::vector<IdVgPoint>& sweep_lo, double vd_lo,
                    const std::vector<IdVgPoint>& sweep_hi, double vd_hi,
                    const ExtractOptions& options = {});

}  // namespace subscale::tcad
