#pragma once

/// \file newton_dd.h
/// Coupled Newton drift–diffusion solver: one Newton iteration updates
/// {psi, n, p} simultaneously from the block-banded Jacobian of the
/// SAME discrete system whose fixed point the Gummel iteration finds —
/// box-method Poisson with the actual carrier densities, Scharfetter–
/// Gummel continuity fluxes, and SRH recombination with the *current*
/// densities in the denominator (the Gummel solver lags that
/// denominator, but lagged equals current at the fixed point, so the
/// two solvers converge to the same solution). That shared fixed point
/// is what the differential-equivalence tier (tests/
/// test_solver_equivalence.cpp) pins at 1e-9.
///
/// Near a good initial guess Newton converges quadratically where
/// Gummel's decoupled sweep plods linearly — the win on the hard
/// high-bias points where bias continuation otherwise does step-halving
/// retries. Robustness comes from a backtracking line search on a
/// row-normalized residual RMS (weights frozen at the current iterate,
/// with absolute don't-care floors per row class); a solve that still
/// diverges reports it and the caller (DriftDiffusionSolver) falls
/// back to Gummel, counted in tcad.newton.fallbacks.
///
/// The Jacobian freezes edge mobility at the current potential
/// (quasi-Newton: the Caughey–Thomas field dependence contributes no
/// derivative terms), but the RESIDUAL is exact, so the converged
/// solution is exact. With velocity_saturation off the Jacobian itself
/// is exact, which the finite-difference Jacobian test exploits.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "tcad/continuity.h"
#include "tcad/device_structure.h"
#include "tcad/solver_status.h"

namespace subscale::obs {
class SpanProfiler;
}  // namespace subscale::obs

namespace subscale::tcad {

struct NewtonDdOptions {
  std::size_t max_iterations = 30;
  double update_tolerance = 1e-7;  ///< on max |delta psi| per step [V]
  double divergence_threshold = 50.0;  ///< max |psi| before giving up [V]
  std::size_t max_line_search = 10;    ///< backtracking halvings per step
};

struct NewtonDdResult {
  SolveStatus status = SolveStatus::kStalled;
  std::size_t iterations = 0;  ///< Newton steps taken
  double residual = 0.0;       ///< final max |delta psi| [V]
};

/// One coupled Newton solve at a fixed bias point, updating psi/n/p in
/// place. On any non-converged status the state vectors are NOT
/// restored — the caller owns snapshotting (DriftDiffusionSolver
/// already snapshots around every point solve).
NewtonDdResult solve_newton_dd(const DeviceStructure& dev,
                               const std::map<std::string, double>& biases,
                               std::vector<double>& psi,
                               std::vector<double>& n,
                               std::vector<double>& p,
                               const NewtonDdOptions& options,
                               const ContinuityOptions& continuity,
                               obs::SpanProfiler* profiler = nullptr);

/// Assemble the raw residual F(psi, n, p) of the coupled system (3
/// entries per node, ordered [psi, n, p] node-major) and, per row, the
/// sum of absolute magnitudes of its assembled terms plus an absolute
/// don't-care floor (thermal-voltage scale for Poisson rows,
/// intrinsic-density transport scale for carrier rows) — the
/// normalization the line-search merit divides by. Exposed so the
/// finite-difference Jacobian test can probe the exact function the
/// solver differentiates. Dirichlet rows (contact psi, ohmic/oxide
/// carriers) carry the imposed-value mismatch.
void newton_dd_residual(const DeviceStructure& dev,
                        const std::map<std::string, double>& biases,
                        const std::vector<double>& psi,
                        const std::vector<double>& n,
                        const std::vector<double>& p,
                        const ContinuityOptions& continuity,
                        std::vector<double>& residual,
                        std::vector<double>& row_magnitude);

/// J(psi, n, p) * dx for the assembled Jacobian, with `dx` and the
/// result in PHYSICAL units ([V, m^-3, m^-3] per node) — the internal
/// units-of-ni column scaling is applied and removed inside. Test hook
/// for the finite-difference Jacobian check: with velocity_saturation
/// off the assembled Jacobian is exact, so (F(x+h) - F(x-h)) / 2 must
/// match J*h to discretization accuracy.
void newton_dd_jacobian_product(const DeviceStructure& dev,
                                const std::map<std::string, double>& biases,
                                const std::vector<double>& psi,
                                const std::vector<double>& n,
                                const std::vector<double>& p,
                                const ContinuityOptions& continuity,
                                const std::vector<double>& dx,
                                std::vector<double>& out);

}  // namespace subscale::tcad
