#pragma once

/// \file solver_status.h
/// Structured solver diagnostics for the TCAD stack. A drift-diffusion
/// solve is a nest of stages (nonlinear Poisson inside a Gummel outer
/// loop inside a bias-continuation ramp); when one of them gives up we
/// want to know *which* stage failed, at *which* bias point, after how
/// many iterations and at what residual — not a bare runtime_error
/// string. SolverReport records all of that; SolverError carries it
/// through the throwing (strict-mode) paths. Production sweeps consume
/// reports, skip the bad point, and keep going.

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace subscale::tcad {

/// The stage of the drift-diffusion solve that produced an outcome.
enum class SolveStage {
  kNone,        ///< no failure recorded
  kPoisson,     ///< nonlinear Poisson (inner Newton)
  kContinuity,  ///< electron/hole continuity linear solve
  kGummel,      ///< the outer decoupled iteration
  kNewton,      ///< the coupled Newton drift–diffusion solve
};

/// How a stage finished.
enum class SolveStatus {
  kConverged,  ///< met its tolerance
  kStalled,    ///< ran out of iterations while still finite
  kDiverged,   ///< update/state grew past the divergence threshold
  kNonFinite,  ///< NaN/Inf detected in the state
};

const char* to_string(SolveStage stage);
const char* to_string(SolveStatus status);

/// One rejected attempt at one continuation bias point (kept so the
/// retry/backoff history is reconstructible from the report alone).
struct AttemptRecord {
  std::map<std::string, double> biases;  ///< the bias point attempted
  SolveStage stage = SolveStage::kNone;  ///< stage that failed
  SolveStatus status = SolveStatus::kConverged;
  std::size_t gummel_iterations = 0;  ///< outer iterations spent
  std::size_t stage_iterations = 0;   ///< inner iterations of the stage
  double residual = 0.0;              ///< final max |dpsi| [V]
  double bias_step = 0.0;             ///< continuation step in effect [V]
  double damping = 1.0;               ///< under-relaxation in effect
};

/// Full diagnostics of one solve (equilibrium or a continuation ramp).
struct SolverReport {
  bool converged = true;
  SolveStage failed_stage = SolveStage::kNone;
  SolveStatus status = SolveStatus::kConverged;
  std::map<std::string, double> target;        ///< requested biases [V]
  std::map<std::string, double> failed_biases; ///< point that gave up
  std::size_t continuation_steps = 0;  ///< accepted bias steps
  std::size_t retries = 0;             ///< rejected attempts
  std::size_t total_gummel_iterations = 0;
  double final_residual = 0.0;   ///< max |dpsi| of the last attempt [V]
  double final_bias_step = 0.0;  ///< continuation step when finishing [V]
  double final_damping = 1.0;    ///< under-relaxation when finishing
  /// True when a seeded single-shot solve (mesh-continuation prolonged
  /// guess) converged directly, skipping the continuation ramp.
  bool seed_used = false;
  std::vector<AttemptRecord> failures;  ///< every rejected attempt

  /// One-line human-readable digest, e.g.
  /// "Poisson stalled at gate=0.20V drain=0.25V (3 retries, ...)".
  std::string summary() const;
};

/// Strict-mode failure: still an std::runtime_error (so existing
/// catch sites keep working) but carrying the structured report.
class SolverError : public std::runtime_error {
 public:
  explicit SolverError(SolverReport report);
  const SolverReport& report() const { return report_; }

 private:
  SolverReport report_;
};

}  // namespace subscale::tcad
