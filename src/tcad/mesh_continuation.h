#pragma once

/// \file mesh_continuation.h
/// Coarse-to-fine mesh continuation for cold drift–diffusion solves.
/// The expensive part of a cold solve is the bias-continuation ramp on
/// the FINE mesh: a dozen-plus continuation points, each a full Gummel
/// (or Newton) solve against an O(nx^2 * n) banded factorization. A
/// mesh 4x coarser in each direction factors ~256x cheaper, so ramping
/// on a cascade of coarse replicas and prolonging the result down as a
/// fine-mesh initial guess converts the fine ramp into (ideally) one
/// seeded single-shot solve.
///
/// Correctness is never delegated to the coarse levels: the prolonged
/// state is only ever an INITIAL GUESS for the fine solver, which still
/// converges against its own tolerances (the equivalence tier pins
/// this). Any coarse-level failure is counted
/// (tcad.meshcont.fallbacks) and reported by returning false; the
/// caller then runs the ordinary cold path.
///
/// Prolongation operators (exposed for the property tests):
///   * prolong_bilinear     — tensor-product linear interpolation with
///     edge clamping. Weights are convex, so the prolonged field is
///     bounded by the coarse field's min/max and per-axis monotonicity
///     is preserved (no overshoot into unphysical guesses).
///   * prolong_log_density  — the same interpolation in log space
///     (densities span ~20 decades; linear-space blending would be
///     dominated by the larger endpoint). Inputs are floored first, so
///     zeros (oxide nodes) stay at the floor instead of -inf.

#include <cstddef>
#include <memory>
#include <vector>

#include "compact/device_spec.h"
#include "exec/run_context.h"
#include "mesh/mesh2d.h"
#include "tcad/device_structure.h"
#include "tcad/gummel.h"

namespace subscale::tcad {

/// Interpolate a coarse-mesh nodal field onto a fine mesh. Fine nodes
/// outside the coarse hull clamp to the nearest coarse line (grading
/// can leave sub-spacing extent mismatches at the domain edges).
std::vector<double> prolong_bilinear(const mesh::TensorMesh2d& coarse,
                                     const mesh::TensorMesh2d& fine,
                                     const std::vector<double>& field);

/// prolong_bilinear applied to log(max(density, floor)), exponentiated
/// back. The result is a geometric blend, bounded by the (floored)
/// coarse min/max like the linear version.
std::vector<double> prolong_log_density(const mesh::TensorMesh2d& coarse,
                                        const mesh::TensorMesh2d& fine,
                                        const std::vector<double>& density,
                                        double floor);

/// The coarse-level cascade for one device. Owned by TcadDevice when
/// GummelOptions::mesh_continuation_levels > 0; level k runs on a mesh
/// with surface/junction spacings scaled by 2^k. Solves go coarsest
/// first, each seeding the next-finer level, and the finest coarse
/// solution is prolonged onto the fine mesh as the guess handed back.
class MeshContinuation {
 public:
  /// Builds the coarse device replicas and their solvers. The coarse
  /// solvers run plain Gummel (they are cheap; robustness beats
  /// cleverness there) with the caller's tolerances. A coarse_only
  /// fault in `options` is re-armed inside every coarse solver (flag
  /// cleared); any other fault stays with the fine solver only.
  MeshContinuation(const compact::DeviceSpec& spec,
                   const MeshOptions& fine_mesh, const GummelOptions& options,
                   const exec::RunContext& ctx);

  /// Solve the equilibrium cascade (once; subsequent calls reuse it)
  /// and prolong onto `fine`. False = some coarse level failed
  /// (counted); out-params untouched.
  bool equilibrium_guess(const DeviceStructure& fine,
                         std::vector<double>& psi, std::vector<double>& n,
                         std::vector<double>& p);

  /// Ramp the cascade to the target bias (solver-frame volts) and
  /// prolong the finest coarse solution onto `fine`. Coarse levels keep
  /// their state between calls, so a sweep pays incremental ramps only.
  bool bias_guess(double vg, double vd, double vs, double vb,
                  const DeviceStructure& fine, std::vector<double>& psi,
                  std::vector<double>& n, std::vector<double>& p);

  std::size_t level_count() const { return levels_.size(); }
  /// Coarsest-first mesh node counts (test observability).
  std::vector<std::size_t> level_node_counts() const;

 private:
  struct Level {
    std::unique_ptr<DeviceStructure> dev;
    std::unique_ptr<DriftDiffusionSolver> solver;
  };

  bool ensure_equilibrium();
  void prolong_state(std::size_t from_level, const DeviceStructure& to,
                     std::vector<double>& psi, std::vector<double>& n,
                     std::vector<double>& p);

  std::vector<Level> levels_;  ///< coarsest first
  bool equilibrium_attempted_ = false;
  bool equilibrium_ok_ = false;
  obs::Counter* levels_counter_ = nullptr;
  obs::Counter* prolongations_counter_ = nullptr;
  obs::Counter* fallbacks_counter_ = nullptr;
  obs::SpanProfiler* prof_ = nullptr;
};

}  // namespace subscale::tcad
