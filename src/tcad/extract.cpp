#include "tcad/extract.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace subscale::tcad {

namespace {

/// V_g at which the sweep crosses `current` (log-linear interpolation).
double crossing_voltage(const std::vector<IdVgPoint>& sweep, double current) {
  for (std::size_t k = 0; k + 1 < sweep.size(); ++k) {
    if (sweep[k].id <= current && sweep[k + 1].id >= current) {
      const double l0 = std::log(sweep[k].id);
      const double l1 = std::log(sweep[k + 1].id);
      const double t = (std::log(current) - l0) / (l1 - l0);
      return sweep[k].vg + t * (sweep[k + 1].vg - sweep[k].vg);
    }
  }
  throw std::invalid_argument(
      "crossing_voltage: sweep never crosses the criterion current");
}

}  // namespace

SweepExtraction extract_from_sweep(const std::vector<IdVgPoint>& sweep,
                                   const ExtractOptions& options) {
  if (sweep.size() < 5) {
    throw std::invalid_argument("extract_from_sweep: sweep too short");
  }
  for (std::size_t k = 0; k < sweep.size(); ++k) {
    if (sweep[k].id <= 0.0) {
      throw std::invalid_argument("extract_from_sweep: non-positive current");
    }
    if (k > 0 && sweep[k].vg <= sweep[k - 1].vg) {
      throw std::invalid_argument("extract_from_sweep: vg must ascend");
    }
  }

  SweepExtraction out;
  out.ioff = sweep.front().id;
  out.ion = sweep.back().id;

  // S_S: regression of vg against log10(id) inside the decade window.
  const double log_min = std::log10(out.ioff);
  const double lo = log_min + options.window_lo_decades;
  const double hi = log_min + options.window_hi_decades;
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  std::size_t count = 0;
  for (const IdVgPoint& p : sweep) {
    const double lid = std::log10(p.id);
    if (lid < lo || lid > hi) continue;
    sx += lid;
    sy += p.vg;
    sxx += lid * lid;
    sxy += lid * p.vg;
    syy += p.vg * p.vg;
    ++count;
  }
  if (count < 3) {
    throw std::invalid_argument(
        "extract_from_sweep: too few points in the subthreshold window");
  }
  const double nn = static_cast<double>(count);
  const double denom = nn * sxx - sx * sx;
  if (denom <= 0.0) {
    throw std::invalid_argument("extract_from_sweep: degenerate regression");
  }
  out.ss = (nn * sxy - sx * sy) / denom;  // dVg per decade
  const double r_num = nn * sxy - sx * sy;
  const double r_den =
      std::sqrt(denom) * std::sqrt(std::max(nn * syy - sy * sy, 1e-300));
  out.ss_r2 = (r_num / r_den) * (r_num / r_den);

  out.vth_cc = crossing_voltage(sweep, options.vth_current);
  return out;
}

double extract_dibl(const std::vector<IdVgPoint>& sweep_lo, double vd_lo,
                    const std::vector<IdVgPoint>& sweep_hi, double vd_hi,
                    const ExtractOptions& options) {
  if (vd_hi <= vd_lo) {
    throw std::invalid_argument("extract_dibl: vd_hi must exceed vd_lo");
  }
  const double vth_lo = extract_from_sweep(sweep_lo, options).vth_cc;
  const double vth_hi = extract_from_sweep(sweep_hi, options).vth_cc;
  return (vth_lo - vth_hi) / (vd_hi - vd_lo);
}

}  // namespace subscale::tcad
