#include "tcad/mesh_continuation.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/names.h"
#include "obs/profiler.h"

namespace subscale::tcad {

namespace {

/// Per-fine-tick interpolation stencil along one axis: the prolonged
/// value is (1 - w) * coarse[i0] + w * coarse[i0 + 1], with w in [0, 1]
/// (edge ticks clamp, so the combination is always convex).
struct Bracket {
  std::size_t i0 = 0;
  double w = 0.0;
};

std::vector<Bracket> brackets_1d(const mesh::Grid1d& coarse,
                                 const mesh::Grid1d& fine) {
  const std::size_t nc = coarse.size();
  std::vector<Bracket> out(fine.size());
  for (std::size_t i = 0; i < fine.size(); ++i) {
    const double xf = fine[i];
    if (nc < 2 || xf <= coarse[0]) {
      out[i] = {0, 0.0};
      continue;
    }
    if (xf >= coarse[nc - 1]) {
      out[i] = {nc - 2, 1.0};
      continue;
    }
    std::size_t lo = 0;
    std::size_t hi = nc - 1;
    while (hi - lo > 1) {
      const std::size_t mid = (lo + hi) / 2;
      (coarse[mid] <= xf ? lo : hi) = mid;
    }
    const double span = coarse[lo + 1] - coarse[lo];
    out[i] = {lo, span > 0.0 ? (xf - coarse[lo]) / span : 0.0};
  }
  return out;
}

std::vector<double> prolong_with(const mesh::TensorMesh2d& coarse,
                                 const mesh::TensorMesh2d& fine,
                                 const std::vector<double>& field) {
  const std::vector<Bracket> bx = brackets_1d(coarse.x_grid(), fine.x_grid());
  const std::vector<Bracket> by = brackets_1d(coarse.y_grid(), fine.y_grid());
  std::vector<double> out(fine.node_count());
  for (std::size_t j = 0; j < fine.ny(); ++j) {
    const Bracket& yb = by[j];
    for (std::size_t i = 0; i < fine.nx(); ++i) {
      const Bracket& xb = bx[i];
      const double f00 = field[coarse.index(xb.i0, yb.i0)];
      const double f10 = field[coarse.index(xb.i0 + 1, yb.i0)];
      const double f01 = field[coarse.index(xb.i0, yb.i0 + 1)];
      const double f11 = field[coarse.index(xb.i0 + 1, yb.i0 + 1)];
      const double lo = f00 + xb.w * (f10 - f00);
      const double hi = f01 + xb.w * (f11 - f01);
      out[fine.index(i, j)] = lo + yb.w * (hi - lo);
    }
  }
  return out;
}

}  // namespace

std::vector<double> prolong_bilinear(const mesh::TensorMesh2d& coarse,
                                     const mesh::TensorMesh2d& fine,
                                     const std::vector<double>& field) {
  return prolong_with(coarse, fine, field);
}

std::vector<double> prolong_log_density(const mesh::TensorMesh2d& coarse,
                                        const mesh::TensorMesh2d& fine,
                                        const std::vector<double>& density,
                                        double floor) {
  std::vector<double> logd(density.size());
  for (std::size_t i = 0; i < density.size(); ++i) {
    logd[i] = std::log(std::max(density[i], floor));
  }
  std::vector<double> out = prolong_with(coarse, fine, logd);
  for (double& v : out) v = std::exp(v);
  return out;
}

MeshContinuation::MeshContinuation(const compact::DeviceSpec& spec,
                                   const MeshOptions& fine_mesh,
                                   const GummelOptions& options,
                                   const exec::RunContext& ctx) {
  if (obs::MetricsRegistry* sink = ctx.sink(); sink != nullptr) {
    namespace names = obs::names;
    levels_counter_ = &sink->counter(names::kMeshContLevels);
    prolongations_counter_ = &sink->counter(names::kMeshContProlongations);
    fallbacks_counter_ = &sink->counter(names::kMeshContFallbacks);
  }
  prof_ = ctx.span_sink();

  GummelOptions coarse = options;
  coarse.mesh_continuation_levels = 0;
  // Coarse solves exist only to manufacture guesses — plain Gummel is
  // robust and, at 1/16th the nodes, already nearly free.
  coarse.strategy = SolverStrategy::kGummel;
  // A guess does not need the fine deck's convergence depth: the fine
  // solve re-converges to ITS OWN fixed point under ITS OWN tolerances
  // regardless of seed quality (the equivalence tier pins that), so the
  // ladder stops at seed accuracy (~1e-5 V) and strides the bias ramp
  // twice as fast. With an outer contraction of ~0.9 near the stiff
  // full-vdd corner this is most of the coarse-cascade wall time.
  coarse.psi_tolerance = std::max(options.psi_tolerance, 1e-5);
  coarse.poisson.update_tolerance =
      std::max(options.poisson.update_tolerance, 1e-7);
  if (coarse.density_tolerance > 0.0) {
    coarse.density_tolerance = std::max(coarse.density_tolerance, 1e-4);
  }
  coarse.bias_step = std::max(options.bias_step, 2.0 * options.bias_step);
  if (options.fault.coarse_only) {
    coarse.fault.coarse_only = false;  // arm it down here instead
  } else {
    coarse.fault = FaultInjection{};  // fine-solver faults stay fine-only
  }
  exec::RunContext coarse_ctx = ctx;
  coarse_ctx.convergence = nullptr;  // trajectories describe fine solves

  const std::size_t n_levels = options.mesh_continuation_levels;
  for (std::size_t lvl = n_levels; lvl >= 1; --lvl) {
    const double scale = static_cast<double>(std::size_t{1} << lvl);
    MeshOptions mo = fine_mesh;
    mo.surface_spacing *= scale;
    mo.junction_spacing *= scale;
    // Graded meshes put ~log(span/h0)/log(ratio) ticks in each region,
    // so scaling the seed spacings alone barely coarsens them — the
    // grading ratio must stretch too or every "coarse" level costs
    // nearly as much as the fine mesh per iteration.
    mo.grading_ratio = 1.0 + (mo.grading_ratio - 1.0) * scale;
    mo.oxide_layers = std::max<std::size_t>(
        1, mo.oxide_layers / static_cast<std::size_t>(scale));
    Level level;
    level.dev = std::make_unique<DeviceStructure>(
        make_device_structure(spec, mo));
    level.solver = std::make_unique<DriftDiffusionSolver>(*level.dev, coarse,
                                                          coarse_ctx);
    levels_.push_back(std::move(level));
  }
}

std::vector<std::size_t> MeshContinuation::level_node_counts() const {
  std::vector<std::size_t> out;
  out.reserve(levels_.size());
  for (const Level& level : levels_) {
    out.push_back(level.dev->mesh().node_count());
  }
  return out;
}

void MeshContinuation::prolong_state(std::size_t from_level,
                                     const DeviceStructure& to,
                                     std::vector<double>& psi,
                                     std::vector<double>& n,
                                     std::vector<double>& p) {
  const obs::ScopedSpan span(prof_, obs::names::spans::kMeshContProlong);
  const DriftDiffusionSolver& solver = *levels_[from_level].solver;
  const mesh::TensorMesh2d& cm = levels_[from_level].dev->mesh();
  const double floor = 1e-20 * to.ni();
  psi = prolong_bilinear(cm, to.mesh(), solver.psi());
  n = prolong_log_density(cm, to.mesh(), solver.electron_density(), floor);
  p = prolong_log_density(cm, to.mesh(), solver.hole_density(), floor);
  // Carriers live in silicon only; interpolation across the material
  // boundary may have smeared the oxide floor into these entries.
  for (std::size_t idx = 0; idx < to.mesh().node_count(); ++idx) {
    if (!to.is_silicon(idx)) {
      n[idx] = 0.0;
      p[idx] = 0.0;
    }
  }
  if (prolongations_counter_ != nullptr) prolongations_counter_->add(1);
}

bool MeshContinuation::ensure_equilibrium() {
  if (equilibrium_attempted_) return equilibrium_ok_;
  equilibrium_attempted_ = true;
  const obs::ScopedSpan span(prof_, obs::names::spans::kMeshContCoarse);
  try {
    for (std::size_t k = 0; k < levels_.size(); ++k) {
      if (levels_counter_ != nullptr) levels_counter_->add(1);
      if (k == 0) {
        levels_[k].solver->solve_equilibrium();
      } else {
        std::vector<double> psi;
        std::vector<double> n;
        std::vector<double> p;
        prolong_state(k - 1, *levels_[k].dev, psi, n, p);
        levels_[k].solver->solve_equilibrium_with_guess(psi, n, p);
      }
    }
    equilibrium_ok_ = true;
  } catch (const SolverError&) {
    if (fallbacks_counter_ != nullptr) fallbacks_counter_->add(1);
    equilibrium_ok_ = false;
  }
  return equilibrium_ok_;
}

bool MeshContinuation::equilibrium_guess(const DeviceStructure& fine,
                                         std::vector<double>& psi,
                                         std::vector<double>& n,
                                         std::vector<double>& p) {
  if (levels_.empty() || !ensure_equilibrium()) return false;
  prolong_state(levels_.size() - 1, fine, psi, n, p);
  return true;
}

bool MeshContinuation::bias_guess(double vg, double vd, double vs, double vb,
                                  const DeviceStructure& fine,
                                  std::vector<double>& psi,
                                  std::vector<double>& n,
                                  std::vector<double>& p) {
  if (levels_.empty() || !ensure_equilibrium()) return false;
  const obs::ScopedSpan span(prof_, obs::names::spans::kMeshContCoarse);
  try {
    for (std::size_t k = 0; k < levels_.size(); ++k) {
      if (levels_counter_ != nullptr) levels_counter_->add(1);
      const SolverReport* report = nullptr;
      if (k == 0) {
        report = &levels_[k].solver->try_solve_bias(vg, vd, vs, vb);
      } else {
        std::vector<double> gp;
        std::vector<double> gn;
        std::vector<double> gpp;
        prolong_state(k - 1, *levels_[k].dev, gp, gn, gpp);
        report = &levels_[k].solver->try_solve_bias_seeded(vg, vd, vs, vb,
                                                           gp, gn, gpp);
      }
      if (!report->converged) {
        if (fallbacks_counter_ != nullptr) fallbacks_counter_->add(1);
        return false;
      }
    }
  } catch (const SolverError&) {
    if (fallbacks_counter_ != nullptr) fallbacks_counter_->add(1);
    return false;
  }
  prolong_state(levels_.size() - 1, fine, psi, n, p);
  return true;
}

}  // namespace subscale::tcad
