#include "tcad/poisson.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "linalg/banded.h"
#include "obs/names.h"
#include "obs/profiler.h"
#include "physics/constants.h"

namespace subscale::tcad {

namespace {

constexpr double kMaxExponent = 200.0;

double clamped_exp(double x) {
  return std::exp(std::clamp(x, -kMaxExponent, kMaxExponent));
}

}  // namespace

double boltzmann_n(double psi, double phi_n, double ni, double vt) {
  return ni * clamped_exp((psi - phi_n) / vt);
}

double boltzmann_p(double psi, double phi_p, double ni, double vt) {
  return ni * clamped_exp((phi_p - psi) / vt);
}

PoissonResult solve_poisson(const DeviceStructure& dev,
                            const std::map<std::string, double>& biases,
                            const std::vector<double>& phi_n,
                            const std::vector<double>& phi_p,
                            std::vector<double>& psi,
                            const PoissonOptions& options,
                            obs::SpanProfiler* profiler) {
  const auto& m = dev.mesh();
  const std::size_t n_nodes = m.node_count();
  if (psi.size() != n_nodes || phi_n.size() != n_nodes ||
      phi_p.size() != n_nodes) {
    throw std::invalid_argument("solve_poisson: state size mismatch");
  }
  const double ni = dev.ni();
  const double vt = dev.vt();
  const std::size_t nx = m.nx();

  // Pre-resolve Dirichlet values.
  std::vector<char> dirichlet(n_nodes, 0);
  std::vector<double> psi_fixed(n_nodes, 0.0);
  for (std::size_t idx = 0; idx < n_nodes; ++idx) {
    const std::string& c = m.contact_of(idx);
    if (c.empty()) continue;
    const auto it = biases.find(c);
    if (it == biases.end()) {
      throw std::invalid_argument("solve_poisson: missing bias for contact " +
                                  c);
    }
    dirichlet[idx] = 1;
    psi_fixed[idx] = dev.contact_potential(idx, it->second);
    psi[idx] = psi_fixed[idx];
  }

  const auto eps_of_edge = [&](std::size_t a, std::size_t b) {
    const bool ox = !dev.is_silicon(a) || !dev.is_silicon(b);
    return ox ? physics::kEpsSiO2 : physics::kEpsSi;
  };

  // The edge conductances eps*area/dist and the charge prefactor q*box
  // depend only on the mesh and material map, not on psi — compute them
  // once instead of once per Newton iteration. Values are formed by the
  // exact expressions the in-loop assembly used (left-to-right products
  // unchanged), so the assembled system is bitwise-identical.
  struct NodeStencil {
    std::array<std::size_t, 4> nb{};  // west, east, south, north
    std::array<double, 4> k{};        // edge conductances (0 = no edge)
    std::array<char, 4> has{};
    double qbox = 0.0;  // q * box_area, 0 for non-silicon nodes
    double doping = 0.0;
  };
  std::vector<NodeStencil> stencil(n_nodes);
  for (std::size_t j = 0; j < m.ny(); ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t idx = m.index(i, j);
      NodeStencil& s = stencil[idx];
      const auto set_edge = [&](std::size_t slot, std::size_t nb,
                                double dist, double area) {
        s.nb[slot] = nb;
        s.k[slot] = eps_of_edge(idx, nb) * area / dist;
        s.has[slot] = 1;
      };
      if (i > 0) {
        set_edge(0, m.index(i - 1, j), m.x(i) - m.x(i - 1),
                 m.dy_minus(j) + m.dy_plus(j));
      }
      if (i + 1 < nx) {
        set_edge(1, m.index(i + 1, j), m.x(i + 1) - m.x(i),
                 m.dy_minus(j) + m.dy_plus(j));
      }
      if (j > 0) {
        set_edge(2, m.index(i, j - 1), m.y(j) - m.y(j - 1),
                 m.dx_minus(i) + m.dx_plus(i));
      }
      if (j + 1 < m.ny()) {
        set_edge(3, m.index(i, j + 1), m.y(j + 1) - m.y(j),
                 m.dx_minus(i) + m.dx_plus(i));
      }
      if (dev.is_silicon(idx)) {
        s.qbox = physics::kQ * m.box_area(i, j);
        s.doping = dev.net_doping()[idx];
      }
    }
  }

  // Assembly workspace hoisted out of the Newton loop: zero + refill is
  // bitwise-identical to fresh construction and avoids reallocating the
  // band storage (the largest transient allocation in the solver) every
  // iteration.
  linalg::BandedMatrix jac(n_nodes, nx, nx);
  std::vector<double> rhs(n_nodes, 0.0);

  PoissonResult result;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    jac.set_zero();

    for (std::size_t idx = 0; idx < n_nodes; ++idx) {
      if (dirichlet[idx]) {
        jac.at(idx, idx) = 1.0;
        rhs[idx] = 0.0;  // already imposed
        continue;
      }
      const NodeStencil& s = stencil[idx];
      double f = 0.0;
      double diag = 0.0;
      for (std::size_t e = 0; e < 4; ++e) {
        if (!s.has[e]) continue;
        const double k = s.k[e];
        f += k * (psi[s.nb[e]] - psi[idx]);
        diag -= k;
        jac.at(idx, s.nb[e]) = k;
      }
      if (s.qbox != 0.0) {
        const double nn = boltzmann_n(psi[idx], phi_n[idx], ni, vt);
        const double pp = boltzmann_p(psi[idx], phi_p[idx], ni, vt);
        f += s.qbox * (pp - nn + s.doping);
        diag -= s.qbox * (nn + pp) / vt;
      }
      jac.at(idx, idx) = diag;
      rhs[idx] = -f;
    }

    const std::vector<double> delta = [&] {
      const obs::ScopedSpan lu_span(profiler,
                                    obs::names::spans::kBandedLuSolve);
      return linalg::BandedLu(jac).solve(rhs);
    }();
    double max_update = 0.0;
    double max_psi = 0.0;
    for (std::size_t idx = 0; idx < n_nodes; ++idx) {
      if (dirichlet[idx]) continue;
      const double d = std::clamp(delta[idx], -options.damping_clamp,
                                  options.damping_clamp);
      psi[idx] += d;
      max_update = std::max(max_update, std::abs(d));
      max_psi = std::max(max_psi, std::abs(psi[idx]));
    }
    result.iterations = it + 1;
    result.max_update = max_update;
    // Guards: a NaN from the factorization (singular pivot) or a
    // runaway potential means further iteration only manufactures
    // garbage — stop now and let the caller restore a good state.
    if (!std::isfinite(max_update) || !std::isfinite(max_psi)) {
      result.status = SolveStatus::kNonFinite;
      return result;
    }
    if (max_psi > options.divergence_threshold) {
      result.status = SolveStatus::kDiverged;
      return result;
    }
    if (max_update < options.update_tolerance) {
      result.converged = true;
      result.status = SolveStatus::kConverged;
      return result;
    }
  }
  return result;
}

}  // namespace subscale::tcad
