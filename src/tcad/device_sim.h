#pragma once

/// \file device_sim.h
/// High-level TCAD device view: build the structure from a DeviceSpec,
/// run bias sweeps, report terminal currents. This is the library's
/// stand-in for the paper's MEDICI runs.
///
/// Polarity handling: callers pass source-referenced MAGNITUDES (like
/// the compact model); for a PFET the solver internally negates the
/// applied voltages and the returned current.
///
/// Robustness: a sweep does not abort on one hard bias point. By
/// default a point whose continuation/retry budget is exhausted is
/// recorded in the SweepReport (with the full SolverReport naming the
/// failing stage) and the sweep continues from the last-good state;
/// strict mode restores throw-on-first-failure semantics.

#include <vector>

#include "tcad/gummel.h"

namespace subscale::tcad {

struct IdVgPoint {
  double vg = 0.0;  ///< gate-source magnitude [V]
  double id = 0.0;  ///< drain current magnitude [A per metre of width]
};

struct SweepOptions {
  /// Throw SolverError on the first unrecoverable point instead of
  /// skipping it and recording the failure in the sweep report.
  bool strict = false;
};

/// One bias point a sweep had to give up on.
struct FailedPoint {
  double vg = 0.0;
  double vd = 0.0;
  SolverReport report;  ///< why (stage, status, retries, residual)
};

struct SweepReport {
  std::size_t attempted = 0;  ///< points the sweep tried
  std::vector<FailedPoint> failures;
  bool all_converged() const { return failures.empty(); }
};

class TcadDevice {
 public:
  explicit TcadDevice(const compact::DeviceSpec& spec,
                      const MeshOptions& mesh_options = {},
                      const GummelOptions& gummel_options = {});

  const DeviceStructure& structure() const { return dev_; }
  const DriftDiffusionSolver& solver() const { return solver_; }

  /// Drain current magnitude at the given source-referenced biases
  /// [A per metre of width]. Uses continuation from the last solve.
  /// Throws SolverError if the point is unrecoverable.
  double id_at(double vg, double vd);

  /// Gate sweep at fixed drain bias (ascending vg is fastest because each
  /// point continues from the previous one). Unrecoverable points are
  /// omitted from the returned curve and recorded in last_sweep_report()
  /// unless `options.strict` is set.
  std::vector<IdVgPoint> id_vg(double vd, double vg_start, double vg_stop,
                               std::size_t points,
                               const SweepOptions& options = {});

  /// Diagnostics of the most recent id_vg() call.
  const SweepReport& last_sweep_report() const { return sweep_report_; }

 private:
  DeviceStructure dev_;
  DriftDiffusionSolver solver_;
  double sign_ = 1.0;
  SweepReport sweep_report_;
};

}  // namespace subscale::tcad
