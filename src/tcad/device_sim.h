#pragma once

/// \file device_sim.h
/// High-level TCAD device view: build the structure from a DeviceSpec,
/// run bias sweeps, report terminal currents. This is the library's
/// stand-in for the paper's MEDICI runs.
///
/// Polarity handling: callers pass source-referenced MAGNITUDES (like
/// the compact model); for a PFET the solver internally negates the
/// applied voltages and the returned current.
///
/// Robustness: a sweep does not abort on one hard bias point. By
/// default a point whose continuation/retry budget is exhausted is
/// recorded in the SweepResult's report (with the full SolverReport
/// naming the failing stage) and the sweep continues from the
/// last-good state; strict mode (RunContext::strict) restores
/// throw-on-first-failure semantics.
///
/// Telemetry: the RunContext passed at construction supplies the
/// metrics sink and trace ring for the device's solver and for the
/// sweep loop itself (per-point counters, timings, and kSweepPoint
/// trace events). An id_vg overload accepts a per-sweep context to
/// override strictness for one call.
///
/// Caching: the context's solve cache (RunContext::cache_sink()) is
/// resolved once at construction, like the metrics sink. When present:
///   * the equilibrium solution is restored from / published to the
///     cache (bitwise-exact — the equilibrium solve is deterministic
///     for a given structure, so a restore equals a fresh solve);
///   * id_vg consults a sweep record keyed on (device, mesh, solver
///     options, bias grid); a hit replays the stored result
///     bitwise-identically without touching the solver state;
///   * on a sweep miss, the nearest cached bias state of the SAME
///     device (if any, and if CacheOptions::warm_start) seeds the
///     continuation ramp — a within-tolerance accelerator, not a
///     bitwise replay — and a fully converged sweep is published
///     together with its final solver state for future warm starts.
/// Cache use is disabled entirely while GummelOptions::fault is armed:
/// replaying cached results would mask the recovery paths faults exist
/// to exercise.

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/hash.h"
#include "exec/run_context.h"
#include "tcad/gummel.h"
#include "tcad/mesh_continuation.h"

namespace subscale::tcad {

struct IdVgPoint {
  double vg = 0.0;  ///< gate-source magnitude [V]
  double id = 0.0;  ///< drain current magnitude [A per metre of width]
};

/// One bias point a sweep had to give up on.
struct FailedPoint {
  double vg = 0.0;
  double vd = 0.0;
  SolverReport report;  ///< why (stage, status, retries, residual)
};

struct SweepReport {
  std::size_t attempted = 0;  ///< points the sweep tried
  std::vector<FailedPoint> failures;
  bool all_converged() const { return failures.empty(); }
};

/// Wall time and solver effort of one attempted sweep point (converged
/// or not). Timings are wall-clock diagnostics, not part of any
/// determinism contract; the iteration/retry counts are exact.
struct SweepPointRecord {
  double vg = 0.0;       ///< gate bias magnitude [V]
  double wall_ms = 0.0;  ///< wall time spent on this point
  std::size_t gummel_iterations = 0;  ///< outer iterations, all ramps
  std::size_t retries = 0;            ///< rejected continuation attempts
  bool converged = false;
};

/// Everything one id_vg() call produced, as a value: the curve, the
/// failure report, and per-point effort records. Replaces the old
/// (return vector, mutate last_sweep_report()) split so results can be
/// moved across threads without aliasing device state.
struct SweepResult {
  std::vector<IdVgPoint> points;  ///< converged points only
  SweepReport report;
  std::vector<SweepPointRecord> timings;  ///< one per attempted point

  bool all_converged() const { return report.all_converged(); }
  std::size_t size() const { return points.size(); }
  const IdVgPoint& operator[](std::size_t i) const { return points[i]; }
};

class TcadDevice {
 public:
  /// Builds the structure, installs the context's telemetry sink into
  /// the solver, and solves equilibrium. `ctx` is retained as the
  /// device's default context for every subsequent solve/sweep.
  explicit TcadDevice(const compact::DeviceSpec& spec,
                      const MeshOptions& mesh_options = {},
                      const GummelOptions& gummel_options = {},
                      const exec::RunContext& ctx = {});

  const DeviceStructure& structure() const { return dev_; }
  const DriftDiffusionSolver& solver() const { return solver_; }

  /// Drain current magnitude at the given source-referenced biases
  /// [A per metre of width]. Uses continuation from the last solve.
  /// Throws SolverError if the point is unrecoverable.
  double id_at(double vg, double vd);

  /// Gate sweep at fixed drain bias (ascending vg is fastest because
  /// each point continues from the previous one). Unrecoverable points
  /// are omitted from the returned curve and recorded in the result's
  /// report — unless the device's RunContext is strict, in which case
  /// the first one throws SolverError.
  SweepResult id_vg(double vd, double vg_start, double vg_stop,
                    std::size_t points);

  /// Same sweep under an explicit per-call context (strictness and
  /// sweep-level telemetry only; the solver keeps the sink it was
  /// constructed with).
  SweepResult id_vg(double vd, double vg_start, double vg_stop,
                    std::size_t points, const exec::RunContext& ctx);

  /// The cache this device resolved at construction (null = caching
  /// off) and its content key — test observability.
  cache::SolveCache* solve_cache() const { return cache_; }
  const cache::HashKey& device_key() const { return device_key_; }

  /// The mesh-continuation cascade (null when
  /// GummelOptions::mesh_continuation_levels == 0 or coarse replica
  /// construction failed) — test observability.
  const MeshContinuation* mesh_continuation() const {
    return meshcont_.get();
  }

 private:
  /// Restore solver state from the cache record at `key`; false on
  /// miss or on a record that fails validation.
  bool restore_cached_state(const cache::HashKey& key);
  /// Publish the solver's current converged state and register its bias
  /// point in the per-device warm-start index.
  void publish_state();
  /// Seed the solver from the nearest cached bias state to the given
  /// target (solver-frame volts), if one is strictly nearer than the
  /// state the solver already holds.
  void warm_start_toward(double vg, double vd);
  /// Equilibrium with mesh-continuation seeding when configured; plain
  /// solve_equilibrium otherwise.
  void cold_equilibrium();
  /// One bias point (solver-frame volts): routes through the
  /// mesh-continuation seeded path when the bias gap is large enough to
  /// need a multi-step fine ramp, else plain try_solve_bias.
  const SolverReport& solve_point(double svg, double svd);

  DeviceStructure dev_;
  exec::RunContext run_;
  GummelOptions gummel_options_;
  DriftDiffusionSolver solver_;
  std::unique_ptr<MeshContinuation> meshcont_;
  double sign_ = 1.0;
  cache::SolveCache* cache_ = nullptr;
  cache::HashKey device_key_{};
  std::uint64_t strategy_stamp_ = 0;
};

}  // namespace subscale::tcad
