#pragma once

/// \file device_sim.h
/// High-level TCAD device view: build the structure from a DeviceSpec,
/// run bias sweeps, report terminal currents. This is the library's
/// stand-in for the paper's MEDICI runs.
///
/// Polarity handling: callers pass source-referenced MAGNITUDES (like
/// the compact model); for a PFET the solver internally negates the
/// applied voltages and the returned current.
///
/// Robustness: a sweep does not abort on one hard bias point. By
/// default a point whose continuation/retry budget is exhausted is
/// recorded in the SweepResult's report (with the full SolverReport
/// naming the failing stage) and the sweep continues from the
/// last-good state; strict mode (RunContext::strict) restores
/// throw-on-first-failure semantics.
///
/// Telemetry: the RunContext passed at construction supplies the
/// metrics sink and trace ring for the device's solver and for the
/// sweep loop itself (per-point counters, timings, and kSweepPoint
/// trace events). An id_vg overload accepts a per-sweep context to
/// override strictness for one call.

#include <vector>

#include "exec/run_context.h"
#include "tcad/gummel.h"

namespace subscale::tcad {

struct IdVgPoint {
  double vg = 0.0;  ///< gate-source magnitude [V]
  double id = 0.0;  ///< drain current magnitude [A per metre of width]
};

/// One bias point a sweep had to give up on.
struct FailedPoint {
  double vg = 0.0;
  double vd = 0.0;
  SolverReport report;  ///< why (stage, status, retries, residual)
};

struct SweepReport {
  std::size_t attempted = 0;  ///< points the sweep tried
  std::vector<FailedPoint> failures;
  bool all_converged() const { return failures.empty(); }
};

/// Wall time and solver effort of one attempted sweep point (converged
/// or not). Timings are wall-clock diagnostics, not part of any
/// determinism contract; the iteration/retry counts are exact.
struct SweepPointRecord {
  double vg = 0.0;       ///< gate bias magnitude [V]
  double wall_ms = 0.0;  ///< wall time spent on this point
  std::size_t gummel_iterations = 0;  ///< outer iterations, all ramps
  std::size_t retries = 0;            ///< rejected continuation attempts
  bool converged = false;
};

/// Everything one id_vg() call produced, as a value: the curve, the
/// failure report, and per-point effort records. Replaces the old
/// (return vector, mutate last_sweep_report()) split so results can be
/// moved across threads without aliasing device state.
struct SweepResult {
  std::vector<IdVgPoint> points;  ///< converged points only
  SweepReport report;
  std::vector<SweepPointRecord> timings;  ///< one per attempted point

  bool all_converged() const { return report.all_converged(); }
  std::size_t size() const { return points.size(); }
  const IdVgPoint& operator[](std::size_t i) const { return points[i]; }
};

class TcadDevice {
 public:
  /// Builds the structure, installs the context's telemetry sink into
  /// the solver, and solves equilibrium. `ctx` is retained as the
  /// device's default context for every subsequent solve/sweep.
  explicit TcadDevice(const compact::DeviceSpec& spec,
                      const MeshOptions& mesh_options = {},
                      const GummelOptions& gummel_options = {},
                      const exec::RunContext& ctx = {});

  const DeviceStructure& structure() const { return dev_; }
  const DriftDiffusionSolver& solver() const { return solver_; }

  /// Drain current magnitude at the given source-referenced biases
  /// [A per metre of width]. Uses continuation from the last solve.
  /// Throws SolverError if the point is unrecoverable.
  double id_at(double vg, double vd);

  /// Gate sweep at fixed drain bias (ascending vg is fastest because
  /// each point continues from the previous one). Unrecoverable points
  /// are omitted from the returned curve and recorded in the result's
  /// report — unless the device's RunContext is strict, in which case
  /// the first one throws SolverError.
  SweepResult id_vg(double vd, double vg_start, double vg_stop,
                    std::size_t points);

  /// Same sweep under an explicit per-call context (strictness and
  /// sweep-level telemetry only; the solver keeps the sink it was
  /// constructed with).
  SweepResult id_vg(double vd, double vg_start, double vg_stop,
                    std::size_t points, const exec::RunContext& ctx);

 private:
  DeviceStructure dev_;
  exec::RunContext run_;
  DriftDiffusionSolver solver_;
  double sign_ = 1.0;
};

}  // namespace subscale::tcad
