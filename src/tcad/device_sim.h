#pragma once

/// \file device_sim.h
/// High-level TCAD device view: build the structure from a DeviceSpec,
/// run bias sweeps, report terminal currents. This is the library's
/// stand-in for the paper's MEDICI runs.
///
/// Polarity handling: callers pass source-referenced MAGNITUDES (like
/// the compact model); for a PFET the solver internally negates the
/// applied voltages and the returned current.

#include <vector>

#include "tcad/gummel.h"

namespace subscale::tcad {

struct IdVgPoint {
  double vg = 0.0;  ///< gate-source magnitude [V]
  double id = 0.0;  ///< drain current magnitude [A per metre of width]
};

class TcadDevice {
 public:
  explicit TcadDevice(const compact::DeviceSpec& spec,
                      const MeshOptions& mesh_options = {},
                      const GummelOptions& gummel_options = {});

  const DeviceStructure& structure() const { return dev_; }
  const DriftDiffusionSolver& solver() const { return solver_; }

  /// Drain current magnitude at the given source-referenced biases
  /// [A per metre of width]. Uses continuation from the last solve.
  double id_at(double vg, double vd);

  /// Gate sweep at fixed drain bias (ascending vg is fastest because each
  /// point continues from the previous one).
  std::vector<IdVgPoint> id_vg(double vd, double vg_start, double vg_stop,
                               std::size_t points);

 private:
  DeviceStructure dev_;
  DriftDiffusionSolver solver_;
  double sign_ = 1.0;
};

}  // namespace subscale::tcad
