#include "tcad/gummel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "physics/fermi.h"

namespace subscale::tcad {

DriftDiffusionSolver::DriftDiffusionSolver(const DeviceStructure& dev,
                                           const GummelOptions& options)
    : dev_(dev), options_(options) {
  const std::size_t n_nodes = dev_.mesh().node_count();
  psi_.assign(n_nodes, 0.0);
  n_.assign(n_nodes, 0.0);
  p_.assign(n_nodes, 0.0);
}

void DriftDiffusionSolver::solve_equilibrium() {
  const std::size_t n_nodes = dev_.mesh().node_count();
  const double ni = dev_.ni();
  const double vt = dev_.vt();

  // Charge-neutral initial guess; carriers at their neutral values.
  for (std::size_t idx = 0; idx < n_nodes; ++idx) {
    if (dev_.is_silicon(idx)) {
      psi_[idx] = physics::neutral_potential(dev_.net_doping()[idx], ni, vt);
      n_[idx] = boltzmann_n(psi_[idx], 0.0, ni, vt);
      p_[idx] = boltzmann_p(psi_[idx], 0.0, ni, vt);
    } else {
      psi_[idx] = 0.0;
    }
  }
  biases_ = {{"gate", 0.0}, {"drain", 0.0}, {"source", 0.0}, {"bulk", 0.0}};
  gummel_at(biases_);
  solved_ = true;
}

void DriftDiffusionSolver::solve_bias(double vg, double vd, double vs,
                                      double vb) {
  if (!solved_) solve_equilibrium();
  const std::map<std::string, double> target = {
      {"gate", vg}, {"drain", vd}, {"source", vs}, {"bulk", vb}};
  // Continuation: ramp every contact toward its target in bounded steps.
  while (true) {
    double max_gap = 0.0;
    for (const auto& [name, v] : target) {
      max_gap = std::max(max_gap, std::abs(v - biases_[name]));
    }
    if (max_gap == 0.0) break;
    const double frac = std::min(1.0, options_.bias_step / max_gap);
    std::map<std::string, double> step = biases_;
    for (const auto& [name, v] : target) {
      step[name] = biases_[name] + frac * (v - biases_[name]);
    }
    gummel_at(step);
    biases_ = step;
  }
}

void DriftDiffusionSolver::gummel_at(
    const std::map<std::string, double>& biases) {
  const std::size_t n_nodes = dev_.mesh().node_count();
  const double ni = dev_.ni();
  const double vt = dev_.vt();

  std::vector<double> phi_n(n_nodes, 0.0);
  std::vector<double> phi_p(n_nodes, 0.0);
  std::vector<double> psi_prev(n_nodes, 0.0);

  for (std::size_t it = 0; it < options_.max_iterations; ++it) {
    // Quasi-Fermi levels from the current carrier fields.
    for (std::size_t idx = 0; idx < n_nodes; ++idx) {
      if (!dev_.is_silicon(idx)) {
        phi_n[idx] = 0.0;
        phi_p[idx] = 0.0;
        continue;
      }
      const double nn = std::max(n_[idx], 1e-20 * ni);
      const double pp = std::max(p_[idx], 1e-20 * ni);
      phi_n[idx] = psi_[idx] - vt * std::log(nn / ni);
      phi_p[idx] = psi_[idx] + vt * std::log(pp / ni);
    }

    psi_prev = psi_;
    const PoissonResult pres =
        solve_poisson(dev_, biases, phi_n, phi_p, psi_, options_.poisson);
    if (!pres.converged) {
      throw std::runtime_error("DriftDiffusionSolver: Poisson stalled");
    }

    solve_continuity(dev_, physics::Carrier::kElectron, psi_, p_, n_,
                     options_.continuity);
    solve_continuity(dev_, physics::Carrier::kHole, psi_, n_, p_,
                     options_.continuity);

    double dpsi = 0.0;
    for (std::size_t idx = 0; idx < n_nodes; ++idx) {
      dpsi = std::max(dpsi, std::abs(psi_[idx] - psi_prev[idx]));
    }
    last_iterations_ = it + 1;
    if (dpsi < options_.psi_tolerance) return;
  }
  throw std::runtime_error("DriftDiffusionSolver: Gummel did not converge");
}

double DriftDiffusionSolver::terminal_current(
    const std::string& contact) const {
  const auto& m = dev_.mesh();
  const std::size_t nx = m.nx();
  double current = 0.0;

  for (const std::size_t idx : m.contact_nodes(contact)) {
    if (!dev_.is_silicon(idx)) continue;  // gate: no conduction current
    const std::size_t i = m.i_of(idx);
    const std::size_t j = m.j_of(idx);
    const auto accumulate = [&](std::size_t nb, double dist, double area) {
      if (!dev_.silicon_edge(idx, nb)) return;
      if (m.contact_of(nb) == contact) return;  // internal to the contact
      current += edge_current(dev_, physics::Carrier::kElectron, psi_, n_,
                              idx, nb, dist, area, options_.continuity);
      current += edge_current(dev_, physics::Carrier::kHole, psi_, p_, idx,
                              nb, dist, area, options_.continuity);
    };
    if (i > 0) {
      accumulate(m.index(i - 1, j), m.x(i) - m.x(i - 1),
                 m.dy_minus(j) + m.dy_plus(j));
    }
    if (i + 1 < nx) {
      accumulate(m.index(i + 1, j), m.x(i + 1) - m.x(i),
                 m.dy_minus(j) + m.dy_plus(j));
    }
    if (j > 0) {
      accumulate(m.index(i, j - 1), m.y(j) - m.y(j - 1),
                 m.dx_minus(i) + m.dx_plus(i));
    }
    if (j + 1 < m.ny()) {
      accumulate(m.index(i, j + 1), m.y(j + 1) - m.y(j),
                 m.dx_minus(i) + m.dx_plus(i));
    }
  }
  return current;
}

}  // namespace subscale::tcad
