#include "tcad/gummel.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/names.h"
#include "physics/fermi.h"

namespace subscale::tcad {

const char* to_string(SolverStrategy strategy) {
  switch (strategy) {
    case SolverStrategy::kGummel: return "gummel";
    case SolverStrategy::kNewton: return "newton";
    case SolverStrategy::kHybrid: return "hybrid";
  }
  return "unknown";
}

void GummelOptions::validate() const {
  const auto fail = [](const char* msg) {
    throw std::invalid_argument(std::string("GummelOptions: ") + msg);
  };
  if (max_iterations == 0) fail("max_iterations must be positive");
  if (!(psi_tolerance > 0.0)) fail("psi_tolerance must be > 0");
  if (!(bias_step > 0.0)) {
    fail("bias_step must be > 0 (a zero or negative continuation step "
         "would ramp forever without reaching the target bias)");
  }
  if (!(min_bias_step > 0.0)) fail("min_bias_step must be > 0");
  if (min_bias_step > bias_step) {
    fail("min_bias_step must not exceed bias_step");
  }
  if (!(damping > 0.0) || damping > 1.0) fail("damping must be in (0, 1]");
  if (!(retry_damping > 0.0) || retry_damping >= 1.0) {
    fail("retry_damping must be in (0, 1)");
  }
  if (!(min_damping > 0.0) || min_damping > damping) {
    fail("min_damping must be in (0, damping]");
  }
  if (!(divergence_threshold > 0.0)) {
    fail("divergence_threshold must be > 0");
  }
  if (max_continuation_steps == 0) {
    fail("max_continuation_steps must be positive");
  }
  if (poisson.max_iterations == 0) {
    fail("poisson.max_iterations must be positive");
  }
  if (!(poisson.update_tolerance > 0.0)) {
    fail("poisson.update_tolerance must be > 0");
  }
  if (!(poisson.damping_clamp > 0.0)) {
    fail("poisson.damping_clamp must be > 0");
  }
  if (!(poisson.divergence_threshold > 0.0)) {
    fail("poisson.divergence_threshold must be > 0");
  }
  if (!(continuity.tau_srh > 0.0)) fail("continuity.tau_srh must be > 0");
  if (newton.max_iterations == 0) {
    fail("newton.max_iterations must be positive");
  }
  if (!(newton.update_tolerance > 0.0)) {
    fail("newton.update_tolerance must be > 0");
  }
  if (!(newton.divergence_threshold > 0.0)) {
    fail("newton.divergence_threshold must be > 0");
  }
  if (density_tolerance < 0.0) {
    fail("density_tolerance must be >= 0 (0 disables the density stop)");
  }
  if (mesh_continuation_levels > 4) {
    fail("mesh_continuation_levels must be <= 4 (each level halves the "
         "mesh resolution; beyond 4 the coarse device no longer "
         "resembles the fine one)");
  }
  if (fault.stage != SolveStage::kNone) {
    if (fault.count < 0) fail("fault.count must be >= 0");
    if (fault.min_bias < 0.0) fail("fault.min_bias must be >= 0");
    if (!(fault.max_bias > fault.min_bias)) {
      fail("fault bias window is empty (max_bias <= min_bias)");
    }
  }
}

DriftDiffusionSolver::DriftDiffusionSolver(const DeviceStructure& dev,
                                           const GummelOptions& options,
                                           const exec::RunContext& ctx)
    : dev_(dev),
      options_(options),
      trace_(ctx.trace),
      prof_(ctx.span_sink()),
      recorder_(ctx.convergence) {
  options_.validate();
  ctx.validate();
  if (obs::MetricsRegistry* sink = ctx.sink(); sink != nullptr) {
    namespace names = obs::names;
    ins_.solves = &sink->counter(names::kGummelSolves);
    ins_.outer_iterations = &sink->counter(names::kGummelOuterIterations);
    ins_.continuation_steps =
        &sink->counter(names::kGummelContinuationSteps);
    ins_.retries = &sink->counter(names::kGummelRetries);
    ins_.step_halvings = &sink->counter(names::kGummelStepHalvings);
    ins_.damping_tightenings =
        &sink->counter(names::kGummelDampingTightenings);
    ins_.rollbacks = &sink->counter(names::kGummelRollbacks);
    ins_.faults_injected = &sink->counter(names::kGummelFaultsInjected);
    ins_.failed_solves = &sink->counter(names::kGummelFailedSolves);
    ins_.poisson_newton_iterations =
        &sink->counter(names::kPoissonNewtonIterations);
    ins_.continuity_solves = &sink->counter(names::kContinuitySolves);
    ins_.newton_solves = &sink->counter(names::kNewtonSolves);
    ins_.newton_iterations = &sink->counter(names::kNewtonIterations);
    ins_.newton_fallbacks = &sink->counter(names::kNewtonFallbacks);
    ins_.last_residual = &sink->gauge(names::kGummelLastResidual);
    ins_.iterations_per_solve = &sink->histogram(
        names::kGummelIterationsPerSolve, obs::buckets::kIterations);
  }
  // A coarse_only fault never arms in the solver holding it — mesh
  // continuation re-arms it (with the flag cleared) inside the coarse
  // level solvers it builds.
  fault_budget_ =
      options_.fault.stage == SolveStage::kNone || options_.fault.coarse_only
          ? 0
          : options_.fault.count;
  const std::size_t n_nodes = dev_.mesh().node_count();
  psi_.assign(n_nodes, 0.0);
  n_.assign(n_nodes, 0.0);
  p_.assign(n_nodes, 0.0);
}

bool DriftDiffusionSolver::fault_fires(
    SolveStage stage, std::size_t iteration,
    const std::map<std::string, double>& biases) {
  const FaultInjection& f = options_.fault;
  if (f.stage != stage || fault_budget_ <= 0) return false;
  if (iteration < f.at_iteration) return false;
  double v = 0.0;
  const auto it = biases.find(f.contact);
  if (it != biases.end()) v = std::abs(it->second);
  if (v < f.min_bias || v >= f.max_bias) return false;
  --fault_budget_;
  if (ins_.faults_injected != nullptr) ins_.faults_injected->add(1);
  trace(obs::TraceKind::kFaultInjected, to_string(stage),
        static_cast<double>(iteration));
  return true;
}

void DriftDiffusionSolver::solve_equilibrium() {
  const obs::ScopedSpan span(prof_,
                             obs::names::spans::kGummelEquilibrium);
  const std::size_t n_nodes = dev_.mesh().node_count();
  const double ni = dev_.ni();
  const double vt = dev_.vt();

  // Charge-neutral initial guess; carriers at their neutral values.
  const auto neutral_guess = [&] {
    for (std::size_t idx = 0; idx < n_nodes; ++idx) {
      if (dev_.is_silicon(idx)) {
        psi_[idx] = physics::neutral_potential(dev_.net_doping()[idx], ni, vt);
        n_[idx] = boltzmann_n(psi_[idx], 0.0, ni, vt);
        p_[idx] = boltzmann_p(psi_[idx], 0.0, ni, vt);
      } else {
        psi_[idx] = 0.0;
        n_[idx] = 0.0;
        p_[idx] = 0.0;
      }
    }
  };
  biases_ = {{"gate", 0.0}, {"drain", 0.0}, {"source", 0.0}, {"bulk", 0.0}};
  report_ = SolverReport{};
  report_.target = biases_;

  double damping = options_.damping;
  trace(obs::TraceKind::kStageEnter, "equilibrium");
  while (true) {
    neutral_guess();
    const GummelOutcome out = gummel_at(biases_, damping);
    report_.total_gummel_iterations += out.iterations;
    report_.final_residual = out.residual;
    report_.final_damping = damping;
    if (out.status == SolveStatus::kConverged) {
      solved_ = true;
      trace(obs::TraceKind::kStageExit, "equilibrium",
            static_cast<double>(out.iterations), out.residual);
      return;
    }
    ++report_.retries;
    if (ins_.retries != nullptr) ins_.retries->add(1);
    trace(obs::TraceKind::kRetry, "equilibrium",
          static_cast<double>(out.iterations), out.residual);
    report_.failures.push_back({biases_, out.stage, out.status,
                                out.iterations, out.stage_iterations,
                                out.residual, 0.0, damping});
    if (damping > options_.min_damping) {
      damping = std::max(options_.min_damping,
                         options_.retry_damping * damping);
      if (ins_.damping_tightenings != nullptr) {
        ins_.damping_tightenings->add(1);
      }
      trace(obs::TraceKind::kDampingTighten, "equilibrium", damping);
      continue;
    }
    report_.converged = false;
    report_.failed_stage = out.stage;
    report_.status = out.status;
    report_.failed_biases = biases_;
    if (ins_.failed_solves != nullptr) ins_.failed_solves->add(1);
    trace(obs::TraceKind::kPointFailed, "equilibrium");
    throw SolverError(report_);
  }
}

bool DriftDiffusionSolver::adopt_state(
    const std::map<std::string, double>& biases, std::vector<double> psi,
    std::vector<double> n, std::vector<double> p) {
  const std::size_t n_nodes = dev_.mesh().node_count();
  if (psi.size() != n_nodes || n.size() != n_nodes || p.size() != n_nodes) {
    return false;
  }
  for (const char* contact : {"gate", "drain", "source", "bulk"}) {
    if (biases.find(contact) == biases.end()) return false;
  }
  for (std::size_t idx = 0; idx < n_nodes; ++idx) {
    if (!std::isfinite(psi[idx]) || !std::isfinite(n[idx]) ||
        !std::isfinite(p[idx])) {
      return false;
    }
  }
  psi_ = std::move(psi);
  n_ = std::move(n);
  p_ = std::move(p);
  biases_ = biases;
  solved_ = true;
  last_iterations_ = 0;
  report_ = SolverReport{};
  report_.target = biases_;
  return true;
}

void DriftDiffusionSolver::solve_bias(double vg, double vd, double vs,
                                      double vb) {
  if (!try_solve_bias(vg, vd, vs, vb).converged) {
    throw SolverError(report_);
  }
}

const SolverReport& DriftDiffusionSolver::try_solve_bias(double vg,
                                                         double vd,
                                                         double vs,
                                                         double vb) {
  if (!solved_) solve_equilibrium();
  const obs::ScopedSpan span(prof_, obs::names::spans::kGummelBiasRamp);
  const std::map<std::string, double> target = {
      {"gate", vg}, {"drain", vd}, {"source", vs}, {"bulk", vb}};
  report_ = SolverReport{};
  report_.target = target;

  // Adaptive continuation: ramp every contact toward its target in
  // bounded steps. A step that fails is rolled back to the last-good
  // state and retried with a halved step, then with tightened
  // under-relaxation; when both knobs hit their floors we give up and
  // leave the solver at the last converged bias point.
  double step = options_.bias_step;
  double damping = options_.damping;
  trace(obs::TraceKind::kStageEnter, "bias_ramp");
  while (true) {
    double max_gap = 0.0;
    for (const auto& [name, v] : target) {
      max_gap = std::max(max_gap, std::abs(v - biases_[name]));
    }
    if (max_gap == 0.0) break;
    if (report_.continuation_steps >= options_.max_continuation_steps) {
      report_.converged = false;
      report_.failed_stage = SolveStage::kGummel;
      report_.status = SolveStatus::kStalled;
      report_.failed_biases = biases_;
      if (ins_.failed_solves != nullptr) ins_.failed_solves->add(1);
      trace(obs::TraceKind::kPointFailed, "bias_ramp",
            static_cast<double>(report_.continuation_steps));
      break;
    }
    const double frac = std::min(1.0, step / max_gap);
    std::map<std::string, double> trial = biases_;
    for (const auto& [name, v] : target) {
      trial[name] = biases_[name] + frac * (v - biases_[name]);
    }

    const std::vector<double> snap_psi = psi_;
    const std::vector<double> snap_n = n_;
    const std::vector<double> snap_p = p_;
    const GummelOutcome out = point_solve(trial, damping);
    report_.total_gummel_iterations += out.iterations;
    report_.final_residual = out.residual;
    if (out.status == SolveStatus::kConverged) {
      biases_ = trial;
      ++report_.continuation_steps;
      if (ins_.continuation_steps != nullptr) {
        ins_.continuation_steps->add(1);
      }
      // Recover the step length once the hard region is behind us.
      step = std::min(options_.bias_step, 2.0 * step);
      continue;
    }

    psi_ = snap_psi;
    n_ = snap_n;
    p_ = snap_p;
    ++report_.retries;
    if (ins_.rollbacks != nullptr) ins_.rollbacks->add(1);
    if (ins_.retries != nullptr) ins_.retries->add(1);
    trace(obs::TraceKind::kRollback, to_string(out.stage),
          static_cast<double>(out.iterations), out.residual);
    report_.failures.push_back({trial, out.stage, out.status, out.iterations,
                                out.stage_iterations, out.residual, step,
                                damping});
    if (step > options_.min_bias_step) {
      step = std::max(options_.min_bias_step, 0.5 * step);
      if (ins_.step_halvings != nullptr) ins_.step_halvings->add(1);
      trace(obs::TraceKind::kStepHalve, "bias_ramp", step);
    } else if (damping > options_.min_damping) {
      damping = std::max(options_.min_damping,
                         options_.retry_damping * damping);
      if (ins_.damping_tightenings != nullptr) {
        ins_.damping_tightenings->add(1);
      }
      trace(obs::TraceKind::kDampingTighten, "bias_ramp", damping);
    } else {
      report_.converged = false;
      report_.failed_stage = out.stage;
      report_.status = out.status;
      report_.failed_biases = trial;
      if (ins_.failed_solves != nullptr) ins_.failed_solves->add(1);
      trace(obs::TraceKind::kPointFailed, to_string(out.stage));
      break;
    }
  }
  report_.final_bias_step = step;
  report_.final_damping = damping;
  if (report_.converged) {
    trace(obs::TraceKind::kStageExit, "bias_ramp",
          static_cast<double>(report_.continuation_steps),
          static_cast<double>(report_.total_gummel_iterations));
  }
  return report_;
}

namespace {

bool guess_matches_mesh(std::size_t n_nodes, const std::vector<double>& psi,
                        const std::vector<double>& n,
                        const std::vector<double>& p) {
  if (psi.size() != n_nodes || n.size() != n_nodes || p.size() != n_nodes) {
    return false;
  }
  for (std::size_t idx = 0; idx < n_nodes; ++idx) {
    if (!std::isfinite(psi[idx]) || !std::isfinite(n[idx]) ||
        !std::isfinite(p[idx])) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool DriftDiffusionSolver::solve_equilibrium_with_guess(
    const std::vector<double>& psi, const std::vector<double>& n,
    const std::vector<double>& p) {
  if (guess_matches_mesh(dev_.mesh().node_count(), psi, n, p)) {
    const obs::ScopedSpan span(prof_,
                               obs::names::spans::kGummelEquilibrium);
    biases_ = {{"gate", 0.0}, {"drain", 0.0}, {"source", 0.0},
               {"bulk", 0.0}};
    report_ = SolverReport{};
    report_.target = biases_;
    psi_ = psi;
    n_ = n;
    p_ = p;
    // Equilibrium stays a Gummel solve under every strategy (it is the
    // anchor state all strategies share); the guess only shortens it.
    const GummelOutcome out = gummel_at(biases_, options_.damping);
    report_.total_gummel_iterations = out.iterations;
    report_.final_residual = out.residual;
    report_.final_damping = options_.damping;
    if (out.status == SolveStatus::kConverged) {
      solved_ = true;
      report_.seed_used = true;
      trace(obs::TraceKind::kStageExit, "equilibrium_seed",
            static_cast<double>(out.iterations), out.residual);
      return true;
    }
    trace(obs::TraceKind::kRetry, "equilibrium_seed",
          static_cast<double>(out.iterations), out.residual);
  }
  // The cold ladder rebuilds its own neutral guess, so a failed or
  // malformed seed costs nothing but the attempt.
  solve_equilibrium();
  return false;
}

const SolverReport& DriftDiffusionSolver::try_solve_bias_seeded(
    double vg, double vd, double vs, double vb,
    const std::vector<double>& psi, const std::vector<double>& n,
    const std::vector<double>& p) {
  if (!solved_) solve_equilibrium();
  if (guess_matches_mesh(dev_.mesh().node_count(), psi, n, p)) {
    const obs::ScopedSpan span(prof_, obs::names::spans::kGummelBiasRamp);
    const std::map<std::string, double> target = {
        {"gate", vg}, {"drain", vd}, {"source", vs}, {"bulk", vb}};
    const std::vector<double> snap_psi = std::move(psi_);
    const std::vector<double> snap_n = std::move(n_);
    const std::vector<double> snap_p = std::move(p_);
    const std::map<std::string, double> snap_biases = biases_;
    psi_ = psi;
    n_ = n;
    p_ = p;
    report_ = SolverReport{};
    report_.target = target;
    trace(obs::TraceKind::kStageEnter, "bias_seed");
    const GummelOutcome out = point_solve(target, options_.damping);
    report_.total_gummel_iterations = out.iterations;
    report_.final_residual = out.residual;
    report_.final_bias_step = options_.bias_step;
    report_.final_damping = options_.damping;
    if (out.status == SolveStatus::kConverged) {
      biases_ = target;
      report_.continuation_steps = 1;
      report_.seed_used = true;
      if (ins_.continuation_steps != nullptr) ins_.continuation_steps->add(1);
      trace(obs::TraceKind::kStageExit, "bias_seed",
            static_cast<double>(out.iterations), out.residual);
      return report_;
    }
    psi_ = snap_psi;
    n_ = snap_n;
    p_ = snap_p;
    biases_ = snap_biases;
    if (ins_.rollbacks != nullptr) ins_.rollbacks->add(1);
    trace(obs::TraceKind::kRollback, "bias_seed",
          static_cast<double>(out.iterations), out.residual);
  }
  return try_solve_bias(vg, vd, vs, vb);
}

DriftDiffusionSolver::GummelOutcome DriftDiffusionSolver::newton_at(
    const std::map<std::string, double>& biases) {
  if (fault_fires(SolveStage::kNewton, 0, biases)) {
    return {SolveStatus::kStalled, SolveStage::kNewton, 0, 0, 0.0};
  }
  NewtonDdOptions nopt = options_.newton;
  // The coupled solve must land at least as close as the Gummel outer
  // tolerance, or the polish pass below would do real work and the
  // "Newton did the heavy lifting" premise breaks.
  nopt.update_tolerance =
      std::min(nopt.update_tolerance, options_.psi_tolerance);
  nopt.divergence_threshold =
      std::min(nopt.divergence_threshold, options_.divergence_threshold);
  const NewtonDdResult res = solve_newton_dd(dev_, biases, psi_, n_, p_,
                                             nopt, options_.continuity,
                                             prof_);
  if (ins_.newton_solves != nullptr) {
    ins_.newton_solves->add(1);
    ins_.newton_iterations->add(res.iterations);
  }
  trace(res.status == SolveStatus::kConverged ? obs::TraceKind::kStageExit
                                              : obs::TraceKind::kRetry,
        "newton", static_cast<double>(res.iterations), res.residual);
  if (res.status != SolveStatus::kConverged) {
    return {res.status, SolveStage::kNewton, 0, res.iterations, res.residual};
  }
  // Certify the Newton state on the Gummel manifold: from this close a
  // start the polish converges in one or two cheap outer iterations,
  // and afterwards the state satisfies the exact same fixed-point
  // criterion every other strategy satisfies (the equivalence tier's
  // anchor). Full damping — we are inside the basin.
  GummelOutcome polish = gummel_at(biases, 1.0);
  if (polish.status == SolveStatus::kConverged) {
    polish.stage_iterations = res.iterations;
  }
  return polish;
}

DriftDiffusionSolver::GummelOutcome DriftDiffusionSolver::point_solve(
    const std::map<std::string, double>& biases, double damping) {
  switch (options_.strategy) {
    case SolverStrategy::kGummel:
      return gummel_at(biases, damping);
    case SolverStrategy::kNewton: {
      const std::vector<double> snap_psi = psi_;
      const std::vector<double> snap_n = n_;
      const std::vector<double> snap_p = p_;
      const GummelOutcome out = newton_at(biases);
      if (out.status == SolveStatus::kConverged) return out;
      psi_ = snap_psi;
      n_ = snap_n;
      p_ = snap_p;
      if (ins_.newton_fallbacks != nullptr) ins_.newton_fallbacks->add(1);
      trace(obs::TraceKind::kRetry, "newton_fallback");
      return gummel_at(biases, damping);
    }
    case SolverStrategy::kHybrid: {
      const std::vector<double> snap_psi = psi_;
      const std::vector<double> snap_n = n_;
      const std::vector<double> snap_p = p_;
      const GummelOutcome out = gummel_at(biases, damping);
      if (out.status == SolveStatus::kConverged) return out;
      // Newton rescue from the pre-attempt state; if it fails too, the
      // original Gummel outcome drives the ramp's retry ladder.
      psi_ = snap_psi;
      n_ = snap_n;
      p_ = snap_p;
      const GummelOutcome rescue = newton_at(biases);
      if (rescue.status == SolveStatus::kConverged) return rescue;
      psi_ = snap_psi;
      n_ = snap_n;
      p_ = snap_p;
      if (ins_.newton_fallbacks != nullptr) ins_.newton_fallbacks->add(1);
      trace(obs::TraceKind::kRetry, "newton_fallback");
      return out;
    }
  }
  return gummel_at(biases, damping);
}

DriftDiffusionSolver::GummelOutcome DriftDiffusionSolver::gummel_at(
    const std::map<std::string, double>& biases, double damping) {
  const obs::ScopedSpan span(prof_, obs::names::spans::kGummelSolve);
  obs::SolveTrajectory trajectory;
  obs::SolveTrajectory* traj_ptr = nullptr;
  if (recorder_ != nullptr) {
    const auto bias_of = [&biases](const char* contact) {
      const auto it = biases.find(contact);
      return it != biases.end() ? it->second : 0.0;
    };
    trajectory.vg = bias_of("gate");
    trajectory.vd = bias_of("drain");
    traj_ptr = &trajectory;
  }
  const GummelOutcome out = gummel_at_impl(biases, damping, traj_ptr);
  if (traj_ptr != nullptr) {
    trajectory.converged = out.status == SolveStatus::kConverged;
    recorder_->commit(std::move(trajectory));
  }
  if (ins_.solves != nullptr) {
    ins_.solves->add(1);
    ins_.outer_iterations->add(out.iterations);
    ins_.last_residual->set(out.residual);
    ins_.iterations_per_solve->record(static_cast<double>(out.iterations));
  }
  return out;
}

DriftDiffusionSolver::GummelOutcome DriftDiffusionSolver::gummel_at_impl(
    const std::map<std::string, double>& biases, double damping,
    obs::SolveTrajectory* trajectory) {
  const auto& m = dev_.mesh();
  const std::size_t n_nodes = m.node_count();
  const double ni = dev_.ni();
  const double vt = dev_.vt();

  std::vector<double> phi_n(n_nodes, 0.0);
  std::vector<double> phi_p(n_nodes, 0.0);
  std::vector<double> psi_prev(n_nodes, 0.0);
  const bool density_stop = options_.density_tolerance > 0.0;
  std::vector<double> n_prev, p_prev;

  double dpsi = 0.0;
  for (std::size_t it = 0; it < options_.max_iterations; ++it) {
    // Quasi-Fermi levels from the current carrier fields.
    for (std::size_t idx = 0; idx < n_nodes; ++idx) {
      if (!dev_.is_silicon(idx)) {
        phi_n[idx] = 0.0;
        phi_p[idx] = 0.0;
        continue;
      }
      const double nn = std::max(n_[idx], 1e-20 * ni);
      const double pp = std::max(p_[idx], 1e-20 * ni);
      phi_n[idx] = psi_[idx] - vt * std::log(nn / ni);
      phi_p[idx] = psi_[idx] + vt * std::log(pp / ni);
    }

    psi_prev = psi_;
    PoissonResult pres = [&] {
      const obs::ScopedSpan poisson_span(
          prof_, obs::names::spans::kGummelPoisson);
      return solve_poisson(dev_, biases, phi_n, phi_p, psi_,
                           options_.poisson, prof_);
    }();
    if (ins_.poisson_newton_iterations != nullptr) {
      ins_.poisson_newton_iterations->add(pres.iterations);
    }
    // The sample for this outer iteration; fields of stages never
    // reached stay NaN (rendered null by the JSON exporter).
    constexpr double kUnreached = std::numeric_limits<double>::quiet_NaN();
    obs::ConvergenceSample sample;
    sample.iteration = static_cast<std::uint32_t>(it + 1);
    sample.poisson_update = pres.max_update;
    sample.poisson_iterations = static_cast<std::uint32_t>(pres.iterations);
    sample.continuity_max_density = kUnreached;
    sample.psi_update = kUnreached;
    if (fault_fires(SolveStage::kPoisson, it, biases)) {
      pres.converged = false;
      pres.status = SolveStatus::kStalled;
    }
    if (!pres.converged) {
      if (trajectory != nullptr) trajectory->samples.push_back(sample);
      last_iterations_ = it + 1;
      return {pres.status, SolveStage::kPoisson, it + 1, pres.iterations,
              pres.max_update};
    }

    // Under-relax the potential update at free nodes (contacts stay at
    // their imposed Dirichlet values). damping = 1 reproduces the plain
    // Gummel step.
    if (damping < 1.0) {
      for (std::size_t idx = 0; idx < n_nodes; ++idx) {
        if (!m.contact_of(idx).empty()) continue;
        psi_[idx] = psi_prev[idx] + damping * (psi_[idx] - psi_prev[idx]);
      }
    }

    if (density_stop) {
      n_prev = n_;
      p_prev = p_;
    }
    const auto [rn, rp] = [&] {
      const obs::ScopedSpan continuity_span(
          prof_, obs::names::spans::kGummelContinuity);
      ContinuityResult electron =
          solve_continuity(dev_, physics::Carrier::kElectron, psi_, p_, n_,
                           options_.continuity, prof_, &sg_workspace_);
      const ContinuityResult hole =
          solve_continuity(dev_, physics::Carrier::kHole, psi_, n_, p_,
                           options_.continuity, prof_, &sg_workspace_);
      return std::make_pair(electron, hole);
    }();
    sample.continuity_max_density = std::max(rn.max_density, rp.max_density);
    if (ins_.continuity_solves != nullptr) ins_.continuity_solves->add(2);
    SolveStatus rn_status = rn.status;
    if (fault_fires(SolveStage::kContinuity, it, biases)) {
      rn_status = SolveStatus::kNonFinite;
    }
    if (rn_status != SolveStatus::kConverged ||
        rp.status != SolveStatus::kConverged) {
      if (trajectory != nullptr) trajectory->samples.push_back(sample);
      last_iterations_ = it + 1;
      const SolveStatus bad =
          rn_status != SolveStatus::kConverged ? rn_status : rp.status;
      return {bad, SolveStage::kContinuity, it + 1, 1, dpsi};
    }

    dpsi = 0.0;
    double max_psi = 0.0;
    for (std::size_t idx = 0; idx < n_nodes; ++idx) {
      dpsi = std::max(dpsi, std::abs(psi_[idx] - psi_prev[idx]));
      max_psi = std::max(max_psi, std::abs(psi_[idx]));
    }
    double dcarrier = 0.0;
    if (density_stop) {
      for (std::size_t idx = 0; idx < n_nodes; ++idx) {
        dcarrier = std::max(
            dcarrier, std::abs(n_[idx] - n_prev[idx]) / (n_prev[idx] + ni));
        dcarrier = std::max(
            dcarrier, std::abs(p_[idx] - p_prev[idx]) / (p_prev[idx] + ni));
      }
    }
    sample.psi_update = dpsi;
    if (trajectory != nullptr) trajectory->samples.push_back(sample);
    last_iterations_ = it + 1;
    if (!std::isfinite(dpsi) || !std::isfinite(max_psi)) {
      return {SolveStatus::kNonFinite, SolveStage::kGummel, it + 1, it + 1,
              dpsi};
    }
    if (max_psi > options_.divergence_threshold) {
      return {SolveStatus::kDiverged, SolveStage::kGummel, it + 1, it + 1,
              dpsi};
    }
    if (dpsi < options_.psi_tolerance &&
        (!density_stop || dcarrier < options_.density_tolerance)) {
      if (fault_fires(SolveStage::kGummel, it, biases)) {
        return {SolveStatus::kStalled, SolveStage::kGummel, it + 1, it + 1,
                dpsi};
      }
      return {SolveStatus::kConverged, SolveStage::kNone, it + 1, it + 1,
              dpsi};
    }
  }
  return {SolveStatus::kStalled, SolveStage::kGummel, options_.max_iterations,
          options_.max_iterations, dpsi};
}

double DriftDiffusionSolver::terminal_current(
    const std::string& contact) const {
  const auto& m = dev_.mesh();
  const std::size_t nx = m.nx();
  double current = 0.0;

  for (const std::size_t idx : m.contact_nodes(contact)) {
    if (!dev_.is_silicon(idx)) continue;  // gate: no conduction current
    const std::size_t i = m.i_of(idx);
    const std::size_t j = m.j_of(idx);
    const auto accumulate = [&](std::size_t nb, double dist, double area) {
      if (!dev_.silicon_edge(idx, nb)) return;
      if (m.contact_of(nb) == contact) return;  // internal to the contact
      current += edge_current(dev_, physics::Carrier::kElectron, psi_, n_,
                              idx, nb, dist, area, options_.continuity);
      current += edge_current(dev_, physics::Carrier::kHole, psi_, p_, idx,
                              nb, dist, area, options_.continuity);
    };
    if (i > 0) {
      accumulate(m.index(i - 1, j), m.x(i) - m.x(i - 1),
                 m.dy_minus(j) + m.dy_plus(j));
    }
    if (i + 1 < nx) {
      accumulate(m.index(i + 1, j), m.x(i + 1) - m.x(i),
                 m.dy_minus(j) + m.dy_plus(j));
    }
    if (j > 0) {
      accumulate(m.index(i, j - 1), m.y(j) - m.y(j - 1),
                 m.dx_minus(i) + m.dx_plus(i));
    }
    if (j + 1 < m.ny()) {
      accumulate(m.index(i, j + 1), m.y(j + 1) - m.y(j),
                 m.dx_minus(i) + m.dx_plus(i));
    }
  }
  return current;
}

}  // namespace subscale::tcad
