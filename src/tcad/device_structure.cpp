#include "tcad/device_structure.h"

#include <cmath>
#include <stdexcept>

#include "doping/mosfet_doping.h"
#include "mesh/grid1d.h"
#include "physics/constants.h"
#include "physics/fermi.h"
#include "physics/silicon.h"

namespace subscale::tcad {

namespace {

mesh::TensorMesh2d build_mesh(const compact::DeviceSpec& spec,
                              const MeshOptions& opt) {
  const auto& g = spec.geometry;
  const double le = g.leff();
  const double x_out = 0.5 * le + 2.0 * g.lov + g.lsd;
  const double merge_tol = 0.05e-9;

  // ---- x grid: fine at the metallurgical junctions ------------------
  mesh::Grid1d xg;
  xg.add_ticks(mesh::double_graded_ticks(-0.5 * le, 0.5 * le,
                                         opt.junction_spacing,
                                         opt.grading_ratio));
  xg.add_ticks(mesh::graded_ticks({.x0 = 0.5 * le,
                                   .x1 = x_out,
                                   .h0 = opt.junction_spacing,
                                   .ratio = opt.grading_ratio}));
  {
    // Mirror of the drain-side grading for the source side.
    const auto right = mesh::graded_ticks({.x0 = 0.5 * le,
                                           .x1 = x_out,
                                           .h0 = opt.junction_spacing,
                                           .ratio = opt.grading_ratio});
    for (double t : right) xg.add_point(-t);
  }
  xg.add_point(-0.5 * g.lpoly);
  xg.add_point(0.5 * g.lpoly);
  xg.finalize(merge_tol);

  // ---- y grid: oxide layer + graded silicon depth -------------------
  mesh::Grid1d yg;
  const double ox_h = g.tox / static_cast<double>(opt.oxide_layers);
  for (std::size_t k = 0; k <= opt.oxide_layers; ++k) {
    yg.add_point(-g.tox + ox_h * static_cast<double>(k));
  }
  yg.add_ticks(mesh::graded_ticks({.x0 = 0.0,
                                   .x1 = g.substrate_depth,
                                   .h0 = opt.surface_spacing,
                                   .ratio = opt.grading_ratio}));
  yg.add_point(g.xj);
  yg.add_point(g.halo_depth);
  yg.finalize(merge_tol);

  mesh::TensorMesh2d m(std::move(xg), std::move(yg));

  // Oxide occupies y < 0 (interface nodes at y = 0 belong to silicon).
  m.set_material_box(mesh::Material::kOxide, -x_out, x_out, -g.tox,
                     -0.25 * ox_h);

  // ---- contacts ------------------------------------------------------
  // Gate: oxide top face over the physical gate.
  m.add_contact_box("gate", -0.5 * g.lpoly, 0.5 * g.lpoly, -g.tox, -g.tox);
  // Source/drain: surface contacts over the diffusions, clear of the
  // gate edge by a couple of junction spacings.
  const double inner = 0.5 * le + g.lov + 2.0 * opt.junction_spacing;
  m.add_contact_box("source", -x_out, -inner, 0.0, 0.0);
  m.add_contact_box("drain", inner, x_out, 0.0, 0.0);
  // Bulk: the whole bottom face.
  m.add_contact_box("bulk", -x_out, x_out, g.substrate_depth,
                    g.substrate_depth);
  return m;
}

}  // namespace

DeviceStructure::DeviceStructure(const compact::DeviceSpec& spec,
                                 const MeshOptions& options)
    : spec_(spec), mesh_(build_mesh(spec, options)) {
  spec_.validate();
  ni_ = physics::intrinsic_density_legacy(spec_.temperature);
  vt_ = physics::thermal_voltage(spec_.temperature);

  auto base_profile =
      doping::make_mosfet_profile(spec_.polarity, spec_.geometry, spec_.levels);
  auto full_profile = std::make_shared<doping::Superposition>();
  full_profile->add(std::move(base_profile));
  if (options.well_multiplier > 0.0) {
    const auto body_species = spec_.polarity == doping::Polarity::kNfet
                                  ? doping::Species::kAcceptor
                                  : doping::Species::kDonor;
    full_profile->add(std::make_shared<doping::RetrogradeWell>(
        body_species, options.well_multiplier * spec_.levels.nsub,
        options.well_onset_factor * spec_.geometry.xj,
        options.well_straggle_factor * spec_.geometry.xj));
  }
  const std::shared_ptr<const doping::DopingProfile> profile = full_profile;
  const std::size_t n = mesh_.node_count();
  net_doping_.assign(n, 0.0);
  total_doping_.assign(n, 0.0);
  for (std::size_t j = 0; j < mesh_.ny(); ++j) {
    for (std::size_t i = 0; i < mesh_.nx(); ++i) {
      const std::size_t idx = mesh_.index(i, j);
      if (!is_silicon(idx)) continue;
      const double x = mesh_.x(i);
      const double y = mesh_.y(j);
      net_doping_[idx] = profile->net(x, y);
      total_doping_[idx] = profile->total(x, y);
    }
  }

  // Gate work function: degenerate poly of the source/drain species
  // (n+ poly for NFET, p+ for PFET).
  const double poly_doping = spec_.levels.nsd;
  const double offset =
      vt_ * std::asinh(poly_doping / (2.0 * ni_));
  gate_offset_ = (spec_.polarity == doping::Polarity::kNfet) ? offset : -offset;
}

double DeviceStructure::contact_potential(std::size_t node, double v) const {
  const std::string& name = mesh_.contact_of(node);
  if (name.empty()) {
    throw std::invalid_argument("contact_potential: not a contact node");
  }
  if (name == "gate") {
    return v + gate_offset_;
  }
  return v + physics::neutral_potential(net_doping_[node], ni_, vt_);
}

void DeviceStructure::ohmic_carriers(std::size_t node, double* n_out,
                                     double* p_out) const {
  // Compute the MAJORITY carrier from the quadratic (no cancellation),
  // then the minority via np = ni^2. The naive symmetric formula loses
  // the minority density to cancellation once |N| > ~1e8 * ni.
  const double nd = net_doping_[node];
  const double root = std::sqrt(nd * nd + 4.0 * ni_ * ni_);
  if (nd >= 0.0) {
    const double n = 0.5 * (nd + root);
    *n_out = n;
    *p_out = ni_ * ni_ / n;
  } else {
    const double p = 0.5 * (-nd + root);
    *p_out = p;
    *n_out = ni_ * ni_ / p;
  }
}

DeviceStructure make_device_structure(const compact::DeviceSpec& spec,
                                      const MeshOptions& options) {
  switch (spec.backend) {
    case compact::BackendKind::kBulkMosfet:
      return DeviceStructure(spec, options);
    case compact::BackendKind::kNanowireGaa:
      break;
  }
  throw std::invalid_argument(
      std::string("make_device_structure: no TCAD mesh for backend '") +
      compact::backend_kind_name(spec.backend) +
      "' (the planar 2-D cross-section only represents bulk MOSFETs; "
      "nanowire decks validate through the compact backend)");
}

}  // namespace subscale::tcad
