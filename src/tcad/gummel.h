#pragma once

/// \file gummel.h
/// The Gummel (decoupled) iteration for the drift–diffusion system:
/// nonlinear Poisson with frozen quasi-Fermi levels, then electron and
/// hole continuity with the new potential, repeated until the potential
/// stops moving. Bias is applied by continuation (ramped in steps) so the
/// solver is robust from equilibrium up to full drain/gate bias.

#include <map>
#include <string>
#include <vector>

#include "tcad/continuity.h"
#include "tcad/device_structure.h"
#include "tcad/poisson.h"

namespace subscale::tcad {

struct GummelOptions {
  std::size_t max_iterations = 60;
  double psi_tolerance = 1e-7;  ///< outer-loop max |dpsi| [V]
  double bias_step = 0.1;       ///< continuation step [V]
  PoissonOptions poisson;
  ContinuityOptions continuity;
};

/// Owns the solution state (psi, n, p) for one device and advances it
/// between bias points.
class DriftDiffusionSolver {
 public:
  explicit DriftDiffusionSolver(const DeviceStructure& dev,
                                const GummelOptions& options = {});

  /// Solve the zero-bias problem from a charge-neutral initial guess.
  /// Throws std::runtime_error on non-convergence.
  void solve_equilibrium();

  /// Ramp contacts from the previously solved bias point to the given
  /// biases (volts at gate/drain/source/bulk) and solve.
  void solve_bias(double vg, double vd, double vs = 0.0, double vb = 0.0);

  /// Terminal current of a contact [A per metre of width]; positive =
  /// conventional current flowing from the contact into the device.
  double terminal_current(const std::string& contact) const;

  const std::vector<double>& psi() const { return psi_; }
  const std::vector<double>& electron_density() const { return n_; }
  const std::vector<double>& hole_density() const { return p_; }
  const DeviceStructure& structure() const { return dev_; }
  std::size_t last_gummel_iterations() const { return last_iterations_; }

 private:
  void gummel_at(const std::map<std::string, double>& biases);

  const DeviceStructure& dev_;
  GummelOptions options_;
  std::vector<double> psi_;
  std::vector<double> n_;
  std::vector<double> p_;
  std::map<std::string, double> biases_;
  bool solved_ = false;
  std::size_t last_iterations_ = 0;
};

}  // namespace subscale::tcad
