#pragma once

/// \file gummel.h
/// The Gummel (decoupled) iteration for the drift–diffusion system:
/// nonlinear Poisson with frozen quasi-Fermi levels, then electron and
/// hole continuity with the new potential, repeated until the potential
/// stops moving. Bias is applied by *adaptive* continuation: contacts
/// are ramped in bounded steps, and a step that fails to converge is
/// rolled back to the last-good state and retried with a halved step
/// and tightened under-relaxation, down to configurable floors. Every
/// solve produces a SolverReport (see solver_status.h); only the strict
/// entry points throw.

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "exec/run_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tcad/continuity.h"
#include "tcad/device_structure.h"
#include "tcad/newton_dd.h"
#include "tcad/poisson.h"
#include "tcad/solver_status.h"

namespace subscale::tcad {

/// Deterministic fault injection for exercising the recovery paths in
/// tests and soak runs. While `count` failures remain, any Gummel solve
/// whose `contact` bias magnitude lies in [min_bias, max_bias) has the
/// chosen stage forced to fail at outer iteration `at_iteration`.
/// (SolveStage::kNewton forces the coupled Newton attempt to fail, so
/// the Gummel-fallback path is exercisable on demand too.)
struct FaultInjection {
  SolveStage stage = SolveStage::kNone;  ///< kNone disables injection
  std::size_t at_iteration = 0;  ///< outer iteration that fails
  long count = 0;                ///< failures to inject before healing
  std::string contact = "gate";  ///< contact whose bias gates the window
  double min_bias = 0.0;         ///< |bias| window lower edge [V]
  double max_bias = std::numeric_limits<double>::infinity();
  /// When true, the fault arms only inside the coarse-level solvers of
  /// mesh continuation, not the fine solver — the lever the
  /// coarse-failure-falls-back-cleanly tests pull. Any armed fault
  /// (coarse or fine) still disables the solve cache.
  bool coarse_only = false;
};

/// How each bias point is solved (the per-point nonlinear strategy; the
/// adaptive continuation ramp around it is shared by all three).
enum class SolverStrategy {
  kGummel,  ///< decoupled Gummel only — the seed behaviour
  kNewton,  ///< coupled Newton first; counted fallback to Gummel
  kHybrid,  ///< Gummel first; Newton rescue before the retry ladder
};

const char* to_string(SolverStrategy strategy);

struct GummelOptions {
  std::size_t max_iterations = 60;
  double psi_tolerance = 1e-7;  ///< outer-loop max |dpsi| [V]
  double bias_step = 0.1;       ///< initial continuation step [V]

  /// Cold-path accelerators (opt-in; defaults reproduce the seed
  /// solver). Every converged state is certified on the Gummel manifold
  /// (a Newton-converged point is polished by a Gummel pass), so
  /// strategy choice never changes the physics — the differential-
  /// equivalence test tier pins that at 1e-9.
  SolverStrategy strategy = SolverStrategy::kGummel;
  NewtonDdOptions newton;  ///< coupled-solver knobs (kNewton/kHybrid)
  /// Coarse-to-fine mesh continuation: 0 disables; level k solves on a
  /// mesh with spacings scaled by 2^k (coarsest first), prolonging each
  /// solution down as the next level's initial guess. Wired through
  /// TcadDevice (which owns mesh construction); the solver itself only
  /// provides the seeded entry points.
  std::size_t mesh_continuation_levels = 0;
  /// Additional outer-loop stop criterion on the max RELATIVE carrier
  /// density update, |dn| / (n + ni); 0 disables (seed behavior). The
  /// psi criterion alone is blind to the lagged-SRH density relaxation
  /// — channel densities are orders below the doping, so they stop
  /// feeding back into psi long before they stop moving. Use values
  /// >= ~1e-6: the per-iteration density update bottoms out at a
  /// ~1e-8..1e-7 noise floor (linear-solve noise through the SG
  /// exponentials), so tighter settings never fire and the solve runs
  /// to max_iterations and fails. The equivalence tier instead pins
  /// cross-strategy agreement on the state fields directly.
  double density_tolerance = 0.0;

  // Resilience policy. Defaults reproduce the seed solver exactly on
  // well-behaved problems (full damping, first attempt succeeds).
  double min_bias_step = 0.0125;  ///< continuation-step floor [V]
  double damping = 1.0;      ///< initial under-relaxation on psi updates
  double retry_damping = 0.6;  ///< damping multiplier per retry
  double min_damping = 0.2;    ///< under-relaxation floor
  double divergence_threshold = 50.0;  ///< max |psi| before divergence [V]
  std::size_t max_continuation_steps = 1000;  ///< hard ramp bound

  FaultInjection fault;  ///< test-only deterministic failure forcing
  PoissonOptions poisson;
  ContinuityOptions continuity;

  /// Throws std::invalid_argument (with the offending field named) on
  /// non-positive steps/tolerances, out-of-range damping factors, or an
  /// inverted fault window. Called by DriftDiffusionSolver's ctor.
  void validate() const;
};

/// Owns the solution state (psi, n, p) for one device and advances it
/// between bias points.
class DriftDiffusionSolver {
 public:
  /// Validates `options` and `ctx` (throws std::invalid_argument on bad
  /// fields). The context supplies the telemetry sink and event trace
  /// for every solve this instance runs; with the default context and
  /// no process-wide registry installed, instrumentation reduces to
  /// null-pointer tests.
  explicit DriftDiffusionSolver(const DeviceStructure& dev,
                                const GummelOptions& options = {},
                                const exec::RunContext& ctx = {});

  /// Solve the zero-bias problem from a charge-neutral initial guess.
  /// Throws SolverError (an std::runtime_error) on non-convergence —
  /// without equilibrium there is no state to continue from.
  void solve_equilibrium();

  /// Ramp contacts from the previously solved bias point to the given
  /// biases (volts at gate/drain/source/bulk) and solve. Strict: throws
  /// SolverError when the ramp gives up; the solver state is left at
  /// the last successfully converged bias point either way.
  void solve_bias(double vg, double vd, double vs = 0.0, double vb = 0.0);

  /// Non-throwing variant: returns the report (also retrievable later
  /// via last_report()). On failure the state is rolled back to the
  /// last-good bias point, so a sweep can skip the point and continue.
  const SolverReport& try_solve_bias(double vg, double vd, double vs = 0.0,
                                     double vb = 0.0);

  /// Like solve_equilibrium but starting from an externally supplied
  /// guess (a mesh-continuation prolongation). Returns true when the
  /// guess converged on the first attempt; on any failure the normal
  /// neutral-guess retry ladder takes over (so this never converges to
  /// a different answer than solve_equilibrium — only faster or not).
  /// Throws SolverError exactly when solve_equilibrium would.
  bool solve_equilibrium_with_guess(const std::vector<double>& psi,
                                    const std::vector<double>& n,
                                    const std::vector<double>& p);

  /// Like try_solve_bias but first attempts a single-shot solve AT the
  /// target from the supplied guess (a coarse-mesh solution prolonged
  /// onto this mesh), skipping the continuation ramp entirely. On
  /// failure — or a malformed guess — the state is restored and the
  /// normal ramp runs; report().seed_used records which path landed.
  const SolverReport& try_solve_bias_seeded(double vg, double vd, double vs,
                                            double vb,
                                            const std::vector<double>& psi,
                                            const std::vector<double>& n,
                                            const std::vector<double>& p);

  /// Terminal current of a contact [A per metre of width]; positive =
  /// conventional current flowing from the contact into the device.
  double terminal_current(const std::string& contact) const;

  const std::vector<double>& psi() const { return psi_; }
  const std::vector<double>& electron_density() const { return n_; }
  const std::vector<double>& hole_density() const { return p_; }
  /// Contact biases of the currently held solution [V].
  const std::map<std::string, double>& biases() const { return biases_; }
  const DeviceStructure& structure() const { return dev_; }
  std::size_t last_gummel_iterations() const { return last_iterations_; }

  /// Replace the solver state with an externally supplied solved
  /// solution (the solve-cache restore / warm-start path). Returns
  /// false — leaving the state untouched — when the vectors do not
  /// match the mesh or contain non-finite values; on success the solver
  /// behaves exactly as if it had just converged at `biases`
  /// (subsequent bias ramps continue from here). The iteration counters
  /// of the report are zero: no solver work was done.
  bool adopt_state(const std::map<std::string, double>& biases,
                   std::vector<double> psi, std::vector<double> n,
                   std::vector<double> p);

  /// Diagnostics of the most recent solve (equilibrium or bias ramp).
  const SolverReport& last_report() const { return report_; }

  /// Fault-injection failures not yet consumed (test observability).
  long pending_faults() const { return fault_budget_; }

 private:
  /// Outcome of one Gummel solve at one fixed bias point (no throw).
  struct GummelOutcome {
    SolveStatus status = SolveStatus::kConverged;
    SolveStage stage = SolveStage::kNone;  ///< failing stage, if any
    std::size_t iterations = 0;            ///< outer iterations spent
    std::size_t stage_iterations = 0;      ///< inner iters of the stage
    double residual = 0.0;                 ///< final max |dpsi| [V]
  };

  /// Publishing wrapper around gummel_at_impl: bumps the per-solve
  /// counters / histogram / residual gauge exactly once per outcome and,
  /// when a ConvergenceRecorder is wired, commits the solve's trajectory.
  GummelOutcome gummel_at(const std::map<std::string, double>& biases,
                          double damping);
  /// `trajectory` (nullable) collects one ConvergenceSample per outer
  /// iteration; the caller owns it and commits it whole.
  GummelOutcome gummel_at_impl(const std::map<std::string, double>& biases,
                               double damping,
                               obs::SolveTrajectory* trajectory);
  /// One coupled Newton attempt at a fixed bias point; on convergence a
  /// Gummel polish pass certifies the state on the Gummel manifold (the
  /// equivalence contract). Publishes the newton.* counters.
  GummelOutcome newton_at(const std::map<std::string, double>& biases);
  /// Strategy dispatcher for one bias point: kGummel calls gummel_at,
  /// kNewton tries Newton with a counted Gummel fallback, kHybrid tries
  /// Gummel and lets Newton rescue a failure before the retry ladder
  /// sees it. Always leaves the state converged-or-restored.
  GummelOutcome point_solve(const std::map<std::string, double>& biases,
                            double damping);
  bool fault_fires(SolveStage stage, std::size_t iteration,
                   const std::map<std::string, double>& biases);

  /// Registry instruments, resolved once at construction (all null when
  /// telemetry is off, so hot paths pay one branch per event).
  struct Instruments {
    obs::Counter* solves = nullptr;
    obs::Counter* outer_iterations = nullptr;
    obs::Counter* continuation_steps = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* step_halvings = nullptr;
    obs::Counter* damping_tightenings = nullptr;
    obs::Counter* rollbacks = nullptr;
    obs::Counter* faults_injected = nullptr;
    obs::Counter* failed_solves = nullptr;
    obs::Counter* poisson_newton_iterations = nullptr;
    obs::Counter* continuity_solves = nullptr;
    obs::Counter* newton_solves = nullptr;
    obs::Counter* newton_iterations = nullptr;
    obs::Counter* newton_fallbacks = nullptr;
    obs::Gauge* last_residual = nullptr;
    obs::Histogram* iterations_per_solve = nullptr;
  };

  void trace(obs::TraceKind kind, const char* what, double a = 0.0,
             double b = 0.0) {
    if (trace_ != nullptr) trace_->record(kind, what, a, b);
  }

  const DeviceStructure& dev_;
  GummelOptions options_;
  Instruments ins_;
  obs::TraceRing* trace_ = nullptr;
  obs::SpanProfiler* prof_ = nullptr;  ///< resolved once (span_sink())
  obs::ConvergenceRecorder* recorder_ = nullptr;  ///< opt-in, may be null
  std::vector<double> psi_;
  std::vector<double> n_;
  std::vector<double> p_;
  SgWorkspace sg_workspace_;  ///< amortized SG assembly tables/buffers
  std::map<std::string, double> biases_;
  bool solved_ = false;
  std::size_t last_iterations_ = 0;
  SolverReport report_;
  long fault_budget_ = 0;
};

}  // namespace subscale::tcad
