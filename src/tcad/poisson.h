#pragma once

/// \file poisson.h
/// Nonlinear Poisson solver on the device structure: box-method
/// discretization of div(eps grad psi) = -q (p - n + N) with Boltzmann
/// carriers evaluated from frozen quasi-Fermi potentials (the inner
/// problem of a Gummel iteration). Dirichlet at contacts, natural
/// Neumann elsewhere; solved with damped Newton and a banded direct
/// factorization (bandwidth = nx of the tensor mesh).

#include <map>
#include <string>
#include <vector>

#include "tcad/device_structure.h"
#include "tcad/solver_status.h"

namespace subscale::obs {
class SpanProfiler;
}  // namespace subscale::obs

namespace subscale::tcad {

struct PoissonOptions {
  std::size_t max_iterations = 120;
  double update_tolerance = 1e-9;  ///< on max |delta psi| [V]
  double damping_clamp = 0.5;      ///< max |delta psi| per Newton step [V]
  double divergence_threshold = 50.0;  ///< max |psi| before declaring
                                       ///< divergence [V]
};

struct PoissonResult {
  std::size_t iterations = 0;
  double max_update = 0.0;
  bool converged = false;
  /// kStalled on iteration exhaustion; kDiverged / kNonFinite when the
  /// guards fire (the potential is then unusable — callers must restore
  /// a known-good state rather than propagate it).
  SolveStatus status = SolveStatus::kStalled;
};

/// Solve for psi in place. `biases` maps contact name -> applied voltage.
/// phi_n/phi_p are per-node quasi-Fermi potentials (used in silicon).
/// A non-null `profiler` records one "linalg.banded_lu.solve" span per
/// Newton iteration (the direct-solver leaf of the TCAD span tree).
PoissonResult solve_poisson(const DeviceStructure& dev,
                            const std::map<std::string, double>& biases,
                            const std::vector<double>& phi_n,
                            const std::vector<double>& phi_p,
                            std::vector<double>& psi,
                            const PoissonOptions& options = {},
                            obs::SpanProfiler* profiler = nullptr);

/// Boltzmann carrier densities from the potential and quasi-Fermi level,
/// with overflow-safe exponent clamping. Exposed for the Gummel loop.
double boltzmann_n(double psi, double phi_n, double ni, double vt);
double boltzmann_p(double psi, double phi_p, double ni, double vt);

}  // namespace subscale::tcad
