#include "tcad/continuity.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/banded.h"
#include "obs/names.h"
#include "obs/profiler.h"
#include "physics/constants.h"
#include "physics/fermi.h"

namespace subscale::tcad {

double edge_mobility(const DeviceStructure& dev, physics::Carrier carrier,
                     const std::vector<double>& psi, std::size_t node_a,
                     std::size_t node_b, double dist,
                     const ContinuityOptions& options) {
  const double doping =
      0.5 * (dev.total_doping()[node_a] + dev.total_doping()[node_b]);
  double mu = physics::masetti_mobility(carrier, doping);
  if (options.velocity_saturation) {
    const double e_par = std::abs(psi[node_b] - psi[node_a]) / dist;
    mu = physics::caughey_thomas_mobility(carrier, mu, e_par,
                                          dev.spec().temperature);
  }
  return mu;
}

double edge_current(const DeviceStructure& dev, physics::Carrier carrier,
                    const std::vector<double>& psi,
                    const std::vector<double>& density, std::size_t node_a,
                    std::size_t node_b, double dist, double area,
                    const ContinuityOptions& options) {
  const double vt = dev.vt();
  const double mu = edge_mobility(dev, carrier, psi, node_a, node_b, dist,
                                  options);
  const double k = physics::kQ * mu * vt * area / dist;
  const double dpsi = (psi[node_b] - psi[node_a]) / vt;
  if (carrier == physics::Carrier::kElectron) {
    // J_n(a->b) = k [ n_b B(dpsi) - n_a B(-dpsi) ].
    return k * (density[node_b] * physics::bernoulli(dpsi) -
                density[node_a] * physics::bernoulli(-dpsi));
  }
  // J_p(a->b) = k [ p_a B(dpsi) - p_b B(-dpsi) ].
  return k * (density[node_a] * physics::bernoulli(dpsi) -
              density[node_b] * physics::bernoulli(-dpsi));
}

SgWorkspace::SgWorkspace() = default;
SgWorkspace::~SgWorkspace() = default;
SgWorkspace::SgWorkspace(SgWorkspace&&) noexcept = default;
SgWorkspace& SgWorkspace::operator=(SgWorkspace&&) noexcept = default;

void SgWorkspace::bind(const DeviceStructure& dev) {
  const auto& m = dev.mesh();
  const std::size_t n_nodes = m.node_count();
  const std::size_t nx = m.nx();
  edges_.assign(4 * n_nodes, Edge{});
  for (std::size_t j = 0; j < m.ny(); ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t idx = m.index(i, j);
      const auto set_edge = [&](std::size_t slot, std::size_t nb,
                                double dist, double area) {
        if (!dev.silicon_edge(idx, nb)) return;  // no flux into oxide
        Edge& e = edges_[4 * idx + slot];
        e.nb = nb;
        e.dist = dist;
        e.area = area;
        // Same averaged-doping Masetti evaluation edge_mobility performs;
        // the field-dependent Caughey–Thomas factor stays per-solve.
        const double doping =
            0.5 * (dev.total_doping()[idx] + dev.total_doping()[nb]);
        e.mu_n0 =
            physics::masetti_mobility(physics::Carrier::kElectron, doping);
        e.mu_p0 = physics::masetti_mobility(physics::Carrier::kHole, doping);
        e.active = true;
      };
      if (i > 0) {
        set_edge(0, m.index(i - 1, j), m.x(i) - m.x(i - 1),
                 m.dy_minus(j) + m.dy_plus(j));
      }
      if (i + 1 < nx) {
        set_edge(1, m.index(i + 1, j), m.x(i + 1) - m.x(i),
                 m.dy_minus(j) + m.dy_plus(j));
      }
      if (j > 0) {
        set_edge(2, m.index(i, j - 1), m.y(j) - m.y(j - 1),
                 m.dx_minus(i) + m.dx_plus(i));
      }
      if (j + 1 < m.ny()) {
        set_edge(3, m.index(i, j + 1), m.y(j + 1) - m.y(j),
                 m.dx_minus(i) + m.dx_plus(i));
      }
    }
  }
  a_ = std::make_unique<linalg::BandedMatrix>(n_nodes, nx, nx);
  rhs_.assign(n_nodes, 0.0);
  dev_ = &dev;
}

ContinuityResult solve_continuity(const DeviceStructure& dev,
                                  physics::Carrier carrier,
                                  const std::vector<double>& psi,
                                  const std::vector<double>& other_density,
                                  std::vector<double>& density,
                                  const ContinuityOptions& options,
                                  obs::SpanProfiler* profiler,
                                  SgWorkspace* workspace) {
  const auto& m = dev.mesh();
  const std::size_t n_nodes = m.node_count();
  if (psi.size() != n_nodes || density.size() != n_nodes ||
      other_density.size() != n_nodes) {
    throw std::invalid_argument("solve_continuity: state size mismatch");
  }
  const double ni = dev.ni();
  const double vt = dev.vt();
  const bool electrons = carrier == physics::Carrier::kElectron;
  const double temperature = dev.spec().temperature;

  SgWorkspace local;
  SgWorkspace& ws = workspace != nullptr ? *workspace : local;
  if (ws.dev_ != &dev) ws.bind(dev);

  // Slotboom weights: density = w * unknown. The exponent clamp keeps a
  // diverging intermediate potential from overflowing exp — the solve
  // then degrades instead of poisoning the state with infinities (and
  // |psi| beyond 300 vt trips the divergence ladder anyway).
  std::vector<double>& w = ws.w_;
  if (options.slotboom) {
    w.resize(n_nodes);
    for (std::size_t idx = 0; idx < n_nodes; ++idx) {
      const double s =
          std::clamp(psi[idx] / vt, -300.0, 300.0);
      w[idx] = ni * std::exp(electrons ? s : -s);
    }
  }
  const auto weight = [&](std::size_t idx) {
    return options.slotboom ? w[idx] : 1.0;
  };

  // Every row is rewritten below, so zeroed-and-refilled recycled
  // buffers assemble the identical system a fresh matrix would.
  linalg::BandedMatrix& a = *ws.a_;
  a.set_zero();
  std::vector<double>& rhs = ws.rhs_;

  for (std::size_t idx = 0; idx < n_nodes; ++idx) {
    // Oxide nodes carry no carriers; contact silicon nodes are ohmic.
    if (!dev.is_silicon(idx)) {
      a.at(idx, idx) = 1.0;
      rhs[idx] = 0.0;
      continue;
    }
    if (dev.is_contact(idx)) {
      double n_eq = 0.0, p_eq = 0.0;
      dev.ohmic_carriers(idx, &n_eq, &p_eq);
      a.at(idx, idx) = 1.0;
      rhs[idx] = (electrons ? n_eq : p_eq) / weight(idx);
      continue;
    }

    double diag = 0.0;
    // Slot order (W, E, S, N) preserves the seed assembly's per-row
    // accumulation order exactly.
    for (std::size_t slot = 0; slot < 4; ++slot) {
      const SgWorkspace::Edge& e = ws.edges_[4 * idx + slot];
      if (!e.active) continue;
      const std::size_t nb = e.nb;
      double mu = electrons ? e.mu_n0 : e.mu_p0;
      if (options.velocity_saturation) {
        const double e_par = std::abs(psi[nb] - psi[idx]) / e.dist;
        mu = physics::caughey_thomas_mobility(carrier, mu, e_par,
                                              temperature);
      }
      const double k = mu * vt * e.area / e.dist;
      const double dpsi = (psi[nb] - psi[idx]) / vt;
      if (electrons) {
        // sum_e k [ n_nb B(dpsi) - n_idx B(-dpsi) ] = box R
        a.add(idx, nb, k * physics::bernoulli(dpsi) * weight(nb));
        diag -= k * physics::bernoulli(-dpsi) * weight(idx);
      } else {
        // sum_e k [ p_idx B(dpsi) - p_nb B(-dpsi) ] + box R = 0
        a.add(idx, nb, -k * physics::bernoulli(-dpsi) * weight(nb));
        diag += k * physics::bernoulli(dpsi) * weight(idx);
      }
    }

    // SRH with lagged denominator: R = (nu * other - ni^2) / D.
    const double box = m.box_area(m.i_of(idx), m.j_of(idx));
    const double n_prev = electrons ? density[idx] : other_density[idx];
    const double p_prev = electrons ? other_density[idx] : density[idx];
    const double denom = options.tau_srh * (n_prev + ni) +
                         options.tau_srh * (p_prev + ni);
    const double other = other_density[idx];
    if (electrons) {
      // sum(...) - box (n p - ni^2)/D = 0
      diag -= box * other / denom * weight(idx);
      rhs[idx] = -box * ni * ni / denom;
    } else {
      // sum(...) + box (n p - ni^2)/D = 0
      diag += box * other / denom * weight(idx);
      rhs[idx] = box * ni * ni / denom;
    }
    a.at(idx, idx) = diag;
  }

  {
    const obs::ScopedSpan lu_span(profiler,
                                  obs::names::spans::kBandedLuSolve);
    density = linalg::BandedLu(a).solve(rhs);
  }
  if (options.slotboom) {
    for (std::size_t idx = 0; idx < n_nodes; ++idx) {
      density[idx] *= w[idx];
    }
  }
  // The linear solve can undershoot in sharply graded regions; clamp to a
  // tiny positive floor so logs and SRH terms stay defined. A NaN/Inf
  // (singular pivot from a degenerate potential) is counted and reset so
  // it cannot poison the Gummel state — the caller sees it in the result.
  ContinuityResult result;
  const double floor = 1e-20 * ni;
  for (std::size_t idx = 0; idx < n_nodes; ++idx) {
    if (!dev.is_silicon(idx)) {
      density[idx] = 0.0;
    } else if (!std::isfinite(density[idx])) {
      ++result.non_finite_nodes;
      density[idx] = floor;
    } else {
      density[idx] = std::max(density[idx], floor);
      result.max_density = std::max(result.max_density, density[idx]);
    }
  }
  if (result.non_finite_nodes > 0) result.status = SolveStatus::kNonFinite;
  return result;
}

}  // namespace subscale::tcad
