#pragma once

/// \file device_structure.h
/// Discretized MOSFET cross-section for the drift–diffusion solver: the
/// tensor mesh (oxide + silicon), per-node doping sampled from the
/// analytic profile, and the four contacts (source, drain, gate, bulk).
///
/// Coordinates follow doping::MosfetGeometry: x = 0 at the channel
/// centre, y = 0 at the Si/SiO2 interface, oxide at y in [-tox, 0),
/// silicon below. The gate contact sits on the oxide top face; source
/// and drain are surface contacts over the diffusions; bulk is the
/// bottom face.

#include <vector>

#include "compact/device_spec.h"
#include "mesh/mesh2d.h"

namespace subscale::tcad {

/// Mesh-resolution knobs (defaults give ~1000-node meshes that solve in
/// tens of milliseconds per bias point; refine for accuracy studies).
struct MeshOptions {
  double surface_spacing = 0.4e-9;  ///< vertical spacing at the interface
  double junction_spacing = 1.0e-9; ///< lateral spacing at the junctions
  double grading_ratio = 1.35;      ///< geometric growth away from them
  std::size_t oxide_layers = 3;     ///< vertical cells through the oxide

  /// Deep-profile completion: a retrograde well (extra channel-type
  /// doping switching on below the junctions) that suppresses
  /// sub-surface punch-through, as every real process does. It does not
  /// alter the surface channel, so the paper's four surface scaling
  /// parameters keep their meaning. Set the multiplier to 0 to simulate
  /// the bare 4-parameter profile.
  double well_multiplier = 10.0;    ///< extra acceptors = mult * N_sub
  double well_onset_factor = 0.9;   ///< onset depth = factor * x_j
  double well_straggle_factor = 0.5;  ///< straggle = factor * x_j
};

class DeviceStructure {
 public:
  DeviceStructure(const compact::DeviceSpec& spec,
                  const MeshOptions& options = {});

  const compact::DeviceSpec& spec() const { return spec_; }
  const mesh::TensorMesh2d& mesh() const { return mesh_; }

  /// Signed net doping N_d - N_a per node [m^-3]; zero in the oxide.
  const std::vector<double>& net_doping() const { return net_doping_; }
  /// Total |N_d| + |N_a| per node [m^-3] (mobility degradation input).
  const std::vector<double>& total_doping() const { return total_doping_; }

  bool is_silicon(std::size_t node) const {
    return mesh_.material_at(node) == mesh::Material::kSilicon;
  }
  /// True if the finite-volume edge between two adjacent nodes lies in
  /// silicon (both endpoints silicon) — carriers only flow there.
  bool silicon_edge(std::size_t a, std::size_t b) const {
    return is_silicon(a) && is_silicon(b);
  }

  /// Intrinsic density and thermal voltage at the spec's temperature.
  double ni() const { return ni_; }
  double vt() const { return vt_; }

  /// Dirichlet potential of a contact node at applied bias `v` [V]
  /// (includes the ohmic/neutral or gate work-function offset).
  double contact_potential(std::size_t node, double v) const;

  /// Equilibrium ohmic carrier densities at a contact node [m^-3].
  void ohmic_carriers(std::size_t node, double* n_out, double* p_out) const;

  /// True when the node belongs to any contact.
  bool is_contact(std::size_t node) const {
    return !mesh_.contact_of(node).empty();
  }

 private:
  compact::DeviceSpec spec_;
  mesh::TensorMesh2d mesh_;
  std::vector<double> net_doping_;
  std::vector<double> total_doping_;
  double ni_ = 0.0;
  double vt_ = 0.0;
  double gate_offset_ = 0.0;
};

/// Factory keyed by the spec's backend kind — the one construction path
/// the simulator stack uses. The 2-D planar mesh only represents bulk
/// MOSFETs; a nanowire/GAA spec throws std::invalid_argument naming the
/// backend (the nanowire backend is compact-model only: its cylindrical
/// electrostatics have no cross-section in this mesh).
DeviceStructure make_device_structure(const compact::DeviceSpec& spec,
                                      const MeshOptions& options = {});

}  // namespace subscale::tcad
