#include "tcad/device_sim.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "cache/bytes.h"
#include "cache/solve_cache.h"
#include "cache/tcad_keys.h"
#include "obs/names.h"
#include "obs/timer.h"

namespace subscale::tcad {

namespace {

/// One warm-start index entry: a solved bias point (solver frame).
struct BiasPoint {
  double vg = 0.0;
  double vd = 0.0;
  double vs = 0.0;
  double vb = 0.0;
};

// ---- payload codecs ---------------------------------------------------
// All doubles travel as raw bit patterns (cache::ByteWriter), so replay
// is bitwise-exact. Decoders return false on any structural mismatch;
// the caller treats that as a miss and recomputes.

std::vector<std::uint8_t> encode_sweep(const SweepResult& r) {
  cache::ByteWriter w;
  w.u64(r.points.size());
  for (const IdVgPoint& p : r.points) {
    w.f64(p.vg);
    w.f64(p.id);
  }
  w.u64(r.timings.size());
  for (const SweepPointRecord& t : r.timings) {
    w.f64(t.vg);
    w.f64(t.wall_ms);
    w.u64(t.gummel_iterations);
    w.u64(t.retries);
    w.u64(t.converged ? 1 : 0);
  }
  w.u64(r.report.attempted);
  return w.take();
}

bool decode_sweep(const std::vector<std::uint8_t>& bytes, SweepResult& out) {
  cache::ByteReader r(bytes);
  std::uint64_t n = 0;
  if (!r.u64(n) || n > bytes.size()) return false;
  out.points.resize(static_cast<std::size_t>(n));
  for (IdVgPoint& p : out.points) {
    if (!r.f64(p.vg) || !r.f64(p.id)) return false;
  }
  if (!r.u64(n) || n > bytes.size()) return false;
  out.timings.resize(static_cast<std::size_t>(n));
  for (SweepPointRecord& t : out.timings) {
    std::uint64_t iters = 0;
    std::uint64_t retries = 0;
    std::uint64_t converged = 0;
    if (!r.f64(t.vg) || !r.f64(t.wall_ms) || !r.u64(iters) ||
        !r.u64(retries) || !r.u64(converged)) {
      return false;
    }
    t.gummel_iterations = static_cast<std::size_t>(iters);
    t.retries = static_cast<std::size_t>(retries);
    t.converged = converged != 0;
  }
  std::uint64_t attempted = 0;
  if (!r.u64(attempted)) return false;
  out.report.attempted = static_cast<std::size_t>(attempted);
  return r.exhausted();
}

std::vector<std::uint8_t> encode_state(
    const std::map<std::string, double>& biases,
    const std::vector<double>& psi, const std::vector<double>& n,
    const std::vector<double>& p, std::uint64_t strategy_stamp) {
  cache::ByteWriter w;
  w.u64(biases.size());
  for (const auto& [name, v] : biases) {
    w.str(name);
    w.f64(v);
  }
  w.f64_vector(psi);
  w.f64_vector(n);
  w.f64_vector(p);
  // Provenance trailer: which solver configuration produced this state
  // (strategy | levels << 8). The key already discriminates configs;
  // the stamp makes a record auditable on its own, and its absence
  // makes any pre-stamp record fail decode_state's exhausted() check
  // (a clean miss, never a misread).
  w.u64(strategy_stamp);
  return w.take();
}

bool decode_state(const std::vector<std::uint8_t>& bytes,
                  std::map<std::string, double>& biases,
                  std::vector<double>& psi, std::vector<double>& n,
                  std::vector<double>& p, std::uint64_t& strategy_stamp) {
  cache::ByteReader r(bytes);
  std::uint64_t n_contacts = 0;
  if (!r.u64(n_contacts) || n_contacts > 16) return false;
  for (std::uint64_t i = 0; i < n_contacts; ++i) {
    std::string name;
    double v = 0.0;
    if (!r.str(name) || !r.f64(v)) return false;
    biases[name] = v;
  }
  if (!r.f64_vector(psi) || !r.f64_vector(n) || !r.f64_vector(p)) {
    return false;
  }
  if (!r.u64(strategy_stamp)) return false;
  return r.exhausted();
}

std::vector<std::uint8_t> encode_bias_index(
    const std::vector<BiasPoint>& points) {
  cache::ByteWriter w;
  w.u64(points.size());
  for (const BiasPoint& b : points) {
    w.f64(b.vg);
    w.f64(b.vd);
    w.f64(b.vs);
    w.f64(b.vb);
  }
  return w.take();
}

bool decode_bias_index(const std::vector<std::uint8_t>& bytes,
                       std::vector<BiasPoint>& out) {
  cache::ByteReader r(bytes);
  std::uint64_t n = 0;
  if (!r.u64(n) || n > bytes.size()) return false;
  out.resize(static_cast<std::size_t>(n));
  for (BiasPoint& b : out) {
    if (!r.f64(b.vg) || !r.f64(b.vd) || !r.f64(b.vs) || !r.f64(b.vb)) {
      return false;
    }
  }
  return r.exhausted();
}

double bias_of(const std::map<std::string, double>& biases,
               const char* contact) {
  const auto it = biases.find(contact);
  return it != biases.end() ? it->second : 0.0;
}

}  // namespace

TcadDevice::TcadDevice(const compact::DeviceSpec& spec,
                       const MeshOptions& mesh_options,
                       const GummelOptions& gummel_options,
                       const exec::RunContext& ctx)
    : dev_(make_device_structure(spec, mesh_options)),
      run_(ctx),
      gummel_options_(gummel_options),
      solver_(dev_, gummel_options, ctx) {
  run_.validate();
  sign_ = (spec.polarity == doping::Polarity::kNfet) ? 1.0 : -1.0;
  strategy_stamp_ = static_cast<std::uint64_t>(gummel_options.strategy) |
                    (static_cast<std::uint64_t>(
                         gummel_options.mesh_continuation_levels)
                     << 8);
  if (gummel_options.mesh_continuation_levels > 0) {
    try {
      meshcont_ = std::make_unique<MeshContinuation>(spec, mesh_options,
                                                     gummel_options, ctx);
    } catch (const std::exception&) {
      // A spec whose coarse replica cannot even be meshed just loses
      // the accelerator (counted), never the solve.
      if (obs::MetricsRegistry* sink = run_.sink(); sink != nullptr) {
        sink->counter(obs::names::kMeshContFallbacks).add(1);
      }
    }
  }
  // Fault injection exercises the recovery paths; replaying cached
  // results (or publishing fault-shaped ones) would defeat it.
  if (gummel_options.fault.stage == SolveStage::kNone) {
    cache_ = run_.cache_sink();
  }
  if (cache_ != nullptr) {
    device_key_ =
        cache::device_solve_key(spec, mesh_options, gummel_options);
    const cache::HashKey eq_key =
        cache::state_key(device_key_, 0.0, 0.0, 0.0, 0.0);
    if (restore_cached_state(eq_key)) return;
    cold_equilibrium();
    const obs::ScopedSpan span(run_.span_sink(),
                               obs::names::spans::kCachePublish);
    cache_->store(eq_key, cache::PayloadKind::kState,
                  encode_state(solver_.biases(), solver_.psi(),
                               solver_.electron_density(),
                               solver_.hole_density(), strategy_stamp_));
    return;
  }
  cold_equilibrium();
}

void TcadDevice::cold_equilibrium() {
  if (meshcont_ != nullptr) {
    std::vector<double> psi;
    std::vector<double> n;
    std::vector<double> p;
    if (meshcont_->equilibrium_guess(dev_, psi, n, p)) {
      if (!solver_.solve_equilibrium_with_guess(psi, n, p)) {
        // Converged anyway (via the neutral-guess ladder) — the seed
        // just didn't help; record that it fell back.
        if (obs::MetricsRegistry* sink = run_.sink(); sink != nullptr) {
          sink->counter(obs::names::kMeshContFallbacks).add(1);
        }
      }
      return;
    }
  }
  solver_.solve_equilibrium();
}

const SolverReport& TcadDevice::solve_point(double svg, double svd) {
  if (meshcont_ != nullptr) {
    const std::map<std::string, double>& cur = solver_.biases();
    const double gap = std::max(std::abs(svg - bias_of(cur, "gate")),
                                std::abs(svd - bias_of(cur, "drain")));
    // A gap the fine ramp covers in one or two steps is cheaper solved
    // directly than via the coarse cascade.
    if (gap > 2.0 * gummel_options_.bias_step) {
      std::vector<double> psi;
      std::vector<double> n;
      std::vector<double> p;
      if (meshcont_->bias_guess(svg, svd, 0.0, 0.0, dev_, psi, n, p)) {
        const SolverReport& report =
            solver_.try_solve_bias_seeded(svg, svd, 0.0, 0.0, psi, n, p);
        if (!report.seed_used) {
          if (obs::MetricsRegistry* sink = run_.sink(); sink != nullptr) {
            sink->counter(obs::names::kMeshContFallbacks).add(1);
          }
        }
        return report;
      }
    }
  }
  return solver_.try_solve_bias(svg, svd, 0.0, 0.0);
}

bool TcadDevice::restore_cached_state(const cache::HashKey& key) {
  const obs::ScopedSpan span(run_.span_sink(),
                             obs::names::spans::kCacheLookup);
  const std::shared_ptr<const cache::Payload> payload =
      cache_->lookup(key, cache::PayloadKind::kState);
  if (payload == nullptr) return false;
  std::map<std::string, double> biases;
  std::vector<double> psi;
  std::vector<double> n;
  std::vector<double> p;
  std::uint64_t stamp = 0;
  if (!decode_state(payload->bytes, biases, psi, n, p, stamp)) return false;
  return solver_.adopt_state(biases, std::move(psi), std::move(n),
                             std::move(p));
}

void TcadDevice::publish_state() {
  const std::map<std::string, double>& biases = solver_.biases();
  const BiasPoint at{bias_of(biases, "gate"), bias_of(biases, "drain"),
                     bias_of(biases, "source"), bias_of(biases, "bulk")};
  const obs::ScopedSpan span(run_.span_sink(),
                             obs::names::spans::kCachePublish);
  cache_->store(
      cache::state_key(device_key_, at.vg, at.vd, at.vs, at.vb),
      cache::PayloadKind::kState,
      encode_state(biases, solver_.psi(), solver_.electron_density(),
                   solver_.hole_density(), strategy_stamp_));

  // Register the point in the per-device warm-start index
  // (read-modify-write; concurrent writers last-win, which at worst
  // forgets a warm-start candidate — never corrupts, thanks to the
  // atomic-rename publish).
  const cache::HashKey index_key = cache::bias_index_key(device_key_);
  std::vector<BiasPoint> index;
  if (const auto existing =
          cache_->lookup(index_key, cache::PayloadKind::kBiasIndex);
      existing != nullptr) {
    decode_bias_index(existing->bytes, index);
  }
  for (const BiasPoint& b : index) {
    if (b.vg == at.vg && b.vd == at.vd && b.vs == at.vs && b.vb == at.vb) {
      return;  // already indexed
    }
  }
  index.push_back(at);
  cache_->store(index_key, cache::PayloadKind::kBiasIndex,
                encode_bias_index(index));
}

void TcadDevice::warm_start_toward(double vg, double vd) {
  const std::shared_ptr<const cache::Payload> payload = cache_->lookup(
      cache::bias_index_key(device_key_), cache::PayloadKind::kBiasIndex);
  if (payload == nullptr) return;
  std::vector<BiasPoint> index;
  if (!decode_bias_index(payload->bytes, index) || index.empty()) return;

  const auto d2_of = [&](double bvg, double bvd, double bvs, double bvb) {
    const double dg = bvg - vg;
    const double dd = bvd - vd;
    return dg * dg + dd * dd + bvs * bvs + bvb * bvb;
  };
  const BiasPoint* best = nullptr;
  double best_d2 = 0.0;
  for (const BiasPoint& b : index) {
    const double d2 = d2_of(b.vg, b.vd, b.vs, b.vb);
    if (best == nullptr || d2 < best_d2) {
      best = &b;
      best_d2 = d2;
    }
  }
  // Only adopt a state strictly nearer to the first sweep target than
  // where the solver already sits (normally: at equilibrium).
  const std::map<std::string, double>& cur = solver_.biases();
  const double cur_d2 =
      d2_of(bias_of(cur, "gate"), bias_of(cur, "drain"),
            bias_of(cur, "source"), bias_of(cur, "bulk"));
  if (best == nullptr || best_d2 >= cur_d2) return;
  if (restore_cached_state(cache::state_key(device_key_, best->vg, best->vd,
                                            best->vs, best->vb))) {
    cache_->note_warmstart();
  }
}

double TcadDevice::id_at(double vg, double vd) {
  const SolverReport& report = solve_point(sign_ * vg, sign_ * vd);
  if (!report.converged) throw SolverError(report);
  return sign_ * solver_.terminal_current("drain");
}

SweepResult TcadDevice::id_vg(double vd, double vg_start, double vg_stop,
                              std::size_t points) {
  return id_vg(vd, vg_start, vg_stop, points, run_);
}

SweepResult TcadDevice::id_vg(double vd, double vg_start, double vg_stop,
                              std::size_t points,
                              const exec::RunContext& ctx) {
  if (points < 2) {
    throw std::invalid_argument("id_vg: need at least 2 points");
  }
  ctx.validate();
  obs::MetricsRegistry* sink = ctx.sink();
  obs::SpanProfiler* prof = ctx.span_sink();

  cache::HashKey sweep_key{};
  if (cache_ != nullptr) {
    sweep_key =
        cache::sweep_key(device_key_, vd, vg_start, vg_stop, points);
    const obs::ScopedSpan span(prof, obs::names::spans::kCacheLookup);
    if (const auto payload =
            cache_->lookup(sweep_key, cache::PayloadKind::kSweep);
        payload != nullptr) {
      SweepResult cached;
      // A decodable record replays bitwise; an undecodable one (should
      // be unreachable behind the format version) falls through to a
      // fresh solve that re-publishes it.
      if (decode_sweep(payload->bytes, cached)) return cached;
    }
    if (cache_->warm_start_enabled()) {
      warm_start_toward(sign_ * vg_start, sign_ * vd);
    }
  }

  SweepResult result;
  result.points.reserve(points);
  result.timings.reserve(points);
  for (std::size_t k = 0; k < points; ++k) {
    const double vg = vg_start + (vg_stop - vg_start) *
                                     static_cast<double>(k) /
                                     static_cast<double>(points - 1);
    ++result.report.attempted;
    if (sink != nullptr) {
      sink->counter(obs::names::kSweepPointsAttempted).add(1);
    }
    const obs::ScopedSpan point_span(prof, obs::names::spans::kSweepPoint);
    obs::ScopedTimer timer(sink, obs::names::kSweepPointMs);
    const SolverReport& report = solve_point(sign_ * vg, sign_ * vd);
    const double wall_ms = timer.stop();
    result.timings.push_back({vg, wall_ms, report.total_gummel_iterations,
                              report.retries, report.converged});
    if (ctx.trace != nullptr) {
      ctx.trace->record(obs::TraceKind::kSweepPoint, "id_vg", vg, wall_ms);
    }
    if (report.converged) {
      if (sink != nullptr) {
        sink->counter(obs::names::kSweepPointsConverged).add(1);
      }
      result.points.push_back({vg, sign_ * solver_.terminal_current("drain")});
      continue;
    }
    if (sink != nullptr) {
      sink->counter(obs::names::kSweepPointsFailed).add(1);
    }
    if (ctx.strict) throw SolverError(report);
    // The solver rolled back to the last converged bias point, so the
    // next point continues its ramp from there; this one is skipped.
    result.report.failures.push_back({vg, vd, report});
  }

  // Publish only fully converged sweeps: a partial curve's shape depends
  // on which points failed, and failures deserve a fresh diagnosis on
  // every run, not a replay.
  if (cache_ != nullptr && result.report.failures.empty() &&
      !result.points.empty()) {
    {
      const obs::ScopedSpan span(prof, obs::names::spans::kCachePublish);
      cache_->store(sweep_key, cache::PayloadKind::kSweep,
                    encode_sweep(result));
    }
    publish_state();
  }
  return result;
}

}  // namespace subscale::tcad
