#include "tcad/device_sim.h"

#include <stdexcept>

namespace subscale::tcad {

TcadDevice::TcadDevice(const compact::DeviceSpec& spec,
                       const MeshOptions& mesh_options,
                       const GummelOptions& gummel_options)
    : dev_(spec, mesh_options), solver_(dev_, gummel_options) {
  sign_ = (spec.polarity == doping::Polarity::kNfet) ? 1.0 : -1.0;
  solver_.solve_equilibrium();
}

double TcadDevice::id_at(double vg, double vd) {
  solver_.solve_bias(sign_ * vg, sign_ * vd, 0.0, 0.0);
  return sign_ * solver_.terminal_current("drain");
}

std::vector<IdVgPoint> TcadDevice::id_vg(double vd, double vg_start,
                                         double vg_stop, std::size_t points,
                                         const SweepOptions& options) {
  if (points < 2) {
    throw std::invalid_argument("id_vg: need at least 2 points");
  }
  sweep_report_ = SweepReport{};
  std::vector<IdVgPoint> sweep;
  sweep.reserve(points);
  for (std::size_t k = 0; k < points; ++k) {
    const double vg = vg_start + (vg_stop - vg_start) *
                                     static_cast<double>(k) /
                                     static_cast<double>(points - 1);
    ++sweep_report_.attempted;
    const SolverReport& report =
        solver_.try_solve_bias(sign_ * vg, sign_ * vd, 0.0, 0.0);
    if (report.converged) {
      sweep.push_back({vg, sign_ * solver_.terminal_current("drain")});
      continue;
    }
    if (options.strict) throw SolverError(report);
    // The solver rolled back to the last converged bias point, so the
    // next point continues its ramp from there; this one is skipped.
    sweep_report_.failures.push_back({vg, vd, report});
  }
  return sweep;
}

}  // namespace subscale::tcad
