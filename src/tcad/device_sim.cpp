#include "tcad/device_sim.h"

#include <stdexcept>

#include "obs/names.h"
#include "obs/timer.h"

namespace subscale::tcad {

TcadDevice::TcadDevice(const compact::DeviceSpec& spec,
                       const MeshOptions& mesh_options,
                       const GummelOptions& gummel_options,
                       const exec::RunContext& ctx)
    : dev_(spec, mesh_options),
      run_(ctx),
      solver_(dev_, gummel_options, ctx) {
  run_.validate();
  sign_ = (spec.polarity == doping::Polarity::kNfet) ? 1.0 : -1.0;
  solver_.solve_equilibrium();
}

double TcadDevice::id_at(double vg, double vd) {
  solver_.solve_bias(sign_ * vg, sign_ * vd, 0.0, 0.0);
  return sign_ * solver_.terminal_current("drain");
}

SweepResult TcadDevice::id_vg(double vd, double vg_start, double vg_stop,
                              std::size_t points) {
  return id_vg(vd, vg_start, vg_stop, points, run_);
}

SweepResult TcadDevice::id_vg(double vd, double vg_start, double vg_stop,
                              std::size_t points,
                              const exec::RunContext& ctx) {
  if (points < 2) {
    throw std::invalid_argument("id_vg: need at least 2 points");
  }
  ctx.validate();
  obs::MetricsRegistry* sink = ctx.sink();
  obs::SpanProfiler* prof = ctx.span_sink();

  SweepResult result;
  result.points.reserve(points);
  result.timings.reserve(points);
  for (std::size_t k = 0; k < points; ++k) {
    const double vg = vg_start + (vg_stop - vg_start) *
                                     static_cast<double>(k) /
                                     static_cast<double>(points - 1);
    ++result.report.attempted;
    if (sink != nullptr) {
      sink->counter(obs::names::kSweepPointsAttempted).add(1);
    }
    const obs::ScopedSpan point_span(prof, obs::names::spans::kSweepPoint);
    obs::ScopedTimer timer(sink, obs::names::kSweepPointMs);
    const SolverReport& report =
        solver_.try_solve_bias(sign_ * vg, sign_ * vd, 0.0, 0.0);
    const double wall_ms = timer.stop();
    result.timings.push_back({vg, wall_ms, report.total_gummel_iterations,
                              report.retries, report.converged});
    if (ctx.trace != nullptr) {
      ctx.trace->record(obs::TraceKind::kSweepPoint, "id_vg", vg, wall_ms);
    }
    if (report.converged) {
      if (sink != nullptr) {
        sink->counter(obs::names::kSweepPointsConverged).add(1);
      }
      result.points.push_back({vg, sign_ * solver_.terminal_current("drain")});
      continue;
    }
    if (sink != nullptr) {
      sink->counter(obs::names::kSweepPointsFailed).add(1);
    }
    if (ctx.strict) throw SolverError(report);
    // The solver rolled back to the last converged bias point, so the
    // next point continues its ramp from there; this one is skipped.
    result.report.failures.push_back({vg, vd, report});
  }
  return result;
}

}  // namespace subscale::tcad
