#include "tcad/newton_dd.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/block_banded.h"
#include "obs/names.h"
#include "obs/profiler.h"
#include "physics/constants.h"
#include "physics/fermi.h"

namespace subscale::tcad {

namespace {

/// Per-node unknown ordering within a block: [psi, n, p]. Density
/// unknowns are solved in units of ni (columns scaled by ni), which
/// keeps the block Jacobian's columns within a few orders of each other
/// before the factorization's row equilibration takes over.
constexpr std::size_t kPsi = 0;
constexpr std::size_t kN = 1;
constexpr std::size_t kP = 2;

struct DirichletInfo {
  std::vector<char> psi_fixed_mask;
  std::vector<double> psi_fixed;
  std::vector<char> carrier_fixed_mask;  ///< oxide or ohmic contact
  std::vector<double> n_fixed;
  std::vector<double> p_fixed;
};

DirichletInfo resolve_dirichlet(const DeviceStructure& dev,
                                const std::map<std::string, double>& biases) {
  const auto& m = dev.mesh();
  const std::size_t n_nodes = m.node_count();
  DirichletInfo d;
  d.psi_fixed_mask.assign(n_nodes, 0);
  d.psi_fixed.assign(n_nodes, 0.0);
  d.carrier_fixed_mask.assign(n_nodes, 0);
  d.n_fixed.assign(n_nodes, 0.0);
  d.p_fixed.assign(n_nodes, 0.0);
  for (std::size_t idx = 0; idx < n_nodes; ++idx) {
    const std::string& c = m.contact_of(idx);
    if (!c.empty()) {
      const auto it = biases.find(c);
      if (it == biases.end()) {
        throw std::invalid_argument(
            "solve_newton_dd: missing bias for contact " + c);
      }
      d.psi_fixed_mask[idx] = 1;
      d.psi_fixed[idx] = dev.contact_potential(idx, it->second);
    }
    if (!dev.is_silicon(idx)) {
      d.carrier_fixed_mask[idx] = 1;  // no carriers in the oxide
    } else if (!c.empty()) {
      d.carrier_fixed_mask[idx] = 1;  // ohmic contact densities
      dev.ohmic_carriers(idx, &d.n_fixed[idx], &d.p_fixed[idx]);
    }
  }
  return d;
}

/// Assemble the residual (and per-row term-magnitude normalization) of
/// the coupled system; when `jac` is non-null, also the Jacobian with
/// density columns scaled by ni. One function so the solver's Jacobian,
/// the line-search merit, and the FD test all probe the same F.
void assemble(const DeviceStructure& dev, const DirichletInfo& d,
              const std::vector<double>& psi, const std::vector<double>& n,
              const std::vector<double>& p,
              const ContinuityOptions& continuity,
              std::vector<double>& residual, std::vector<double>& row_mag,
              linalg::BlockBandedMatrix* jac) {
  const auto& m = dev.mesh();
  const std::size_t n_nodes = m.node_count();
  const std::size_t nx = m.nx();
  const double ni = dev.ni();
  const double vt = dev.vt();
  const double tau = continuity.tau_srh;

  residual.assign(3 * n_nodes, 0.0);
  row_mag.assign(3 * n_nodes, 0.0);
  if (jac != nullptr) jac->set_zero();

  const auto eps_of_edge = [&](std::size_t a, std::size_t b) {
    const bool ox = !dev.is_silicon(a) || !dev.is_silicon(b);
    return ox ? physics::kEpsSiO2 : physics::kEpsSi;
  };
  const auto J = [&](std::size_t bi, std::size_t bj, std::size_t r,
                     std::size_t c, double v) {
    // Density columns carry the ni scaling (unknowns are n/ni, p/ni).
    jac->add(bi, bj, r, c, c == kPsi ? v : v * ni);
  };

  for (std::size_t j = 0; j < m.ny(); ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t idx = m.index(i, j);
      const std::size_t row = 3 * idx;

      // ---- psi row: box Poisson (or Dirichlet at contacts) ----------
      if (d.psi_fixed_mask[idx]) {
        residual[row + kPsi] = psi[idx] - d.psi_fixed[idx];
        row_mag[row + kPsi] = 1.0;
        if (jac != nullptr) J(idx, idx, kPsi, kPsi, 1.0);
      } else {
        double f = 0.0;
        double mag = 0.0;
        double diag = 0.0;
        double ksum = 0.0;
        const auto psi_edge = [&](std::size_t nb, double dist, double area) {
          const double k = eps_of_edge(idx, nb) * area / dist;
          const double term = k * (psi[nb] - psi[idx]);
          f += term;
          mag += std::abs(term);
          ksum += k;
          diag -= k;
          if (jac != nullptr) J(idx, nb, kPsi, kPsi, k);
        };
        if (i > 0) {
          psi_edge(m.index(i - 1, j), m.x(i) - m.x(i - 1),
                   m.dy_minus(j) + m.dy_plus(j));
        }
        if (i + 1 < nx) {
          psi_edge(m.index(i + 1, j), m.x(i + 1) - m.x(i),
                   m.dy_minus(j) + m.dy_plus(j));
        }
        if (j > 0) {
          psi_edge(m.index(i, j - 1), m.y(j) - m.y(j - 1),
                   m.dx_minus(i) + m.dx_plus(i));
        }
        if (j + 1 < m.ny()) {
          psi_edge(m.index(i, j + 1), m.y(j + 1) - m.y(j),
                   m.dx_minus(i) + m.dx_plus(i));
        }
        if (dev.is_silicon(idx)) {
          const double qbox = physics::kQ * m.box_area(i, j);
          f += qbox * (p[idx] - n[idx] + dev.net_doping()[idx]);
          mag += qbox * (p[idx] + n[idx] + std::abs(dev.net_doping()[idx]));
          if (jac != nullptr) {
            J(idx, idx, kPsi, kN, -qbox);
            J(idx, idx, kPsi, kP, qbox);
          }
        }
        if (jac != nullptr) J(idx, idx, kPsi, kPsi, diag);
        residual[row + kPsi] = f;
        // Absolute floor at the thermal-voltage scale: a Poisson row
        // whose edge terms all share a sign (a local extremum of psi)
        // would otherwise normalize a vanishing residual by itself and
        // report O(1) no matter how converged the row is.
        row_mag[row + kPsi] = mag + ksum * vt;
      }

      // ---- carrier rows --------------------------------------------
      if (d.carrier_fixed_mask[idx]) {
        residual[row + kN] = n[idx] - d.n_fixed[idx];
        residual[row + kP] = p[idx] - d.p_fixed[idx];
        row_mag[row + kN] = n[idx] + d.n_fixed[idx] + ni;
        row_mag[row + kP] = p[idx] + d.p_fixed[idx] + ni;
        if (jac != nullptr) {
          J(idx, idx, kN, kN, 1.0);
          J(idx, idx, kP, kP, 1.0);
        }
        continue;
      }

      double fn = 0.0, fp = 0.0, mag_n = 0.0, mag_p = 0.0;
      double diag_nn = 0.0, diag_pp = 0.0;
      double ksum_n = 0.0, ksum_p = 0.0;
      const auto carrier_edge = [&](std::size_t nb, double dist,
                                    double area) {
        if (!dev.silicon_edge(idx, nb)) return;
        const double dpsi = (psi[nb] - psi[idx]) / vt;
        const double bp = physics::bernoulli(dpsi);
        const double bm = physics::bernoulli(-dpsi);
        const double mu_n = edge_mobility(dev, physics::Carrier::kElectron,
                                          psi, idx, nb, dist, continuity);
        const double mu_p = edge_mobility(dev, physics::Carrier::kHole, psi,
                                          idx, nb, dist, continuity);
        const double kn = mu_n * vt * area / dist;
        const double kp = mu_p * vt * area / dist;
        // Electron flux: kn [ n_nb B(d) - n_idx B(-d) ].
        fn += kn * (n[nb] * bp - n[idx] * bm);
        mag_n += kn * (n[nb] * bp + n[idx] * bm);
        // Hole flux: kp [ p_idx B(d) - p_nb B(-d) ].
        fp += kp * (p[idx] * bp - p[nb] * bm);
        mag_p += kp * (p[idx] * bp + p[nb] * bm);
        ksum_n += kn * (bp + bm);
        ksum_p += kp * (bp + bm);
        diag_nn -= kn * bm;
        diag_pp += kp * bp;
        if (jac != nullptr) {
          const double bpd = physics::bernoulli_derivative(dpsi);
          const double bmd = physics::bernoulli_derivative(-dpsi);
          J(idx, nb, kN, kN, kn * bp);
          J(idx, nb, kP, kP, -kp * bm);
          // d(flux)/d(psi_nb) = +coupling; d/d(psi_idx) = -coupling
          // (the flux depends on psi only through psi_nb - psi_idx).
          const double cn = kn / vt * (n[nb] * bpd + n[idx] * bmd);
          const double cp = kp / vt * (p[idx] * bpd + p[nb] * bmd);
          J(idx, nb, kN, kPsi, cn);
          J(idx, idx, kN, kPsi, -cn);
          J(idx, nb, kP, kPsi, cp);
          J(idx, idx, kP, kPsi, -cp);
        }
      };
      if (i > 0) {
        carrier_edge(m.index(i - 1, j), m.x(i) - m.x(i - 1),
                     m.dy_minus(j) + m.dy_plus(j));
      }
      if (i + 1 < nx) {
        carrier_edge(m.index(i + 1, j), m.x(i + 1) - m.x(i),
                     m.dy_minus(j) + m.dy_plus(j));
      }
      if (j > 0) {
        carrier_edge(m.index(i, j - 1), m.y(j) - m.y(j - 1),
                     m.dx_minus(i) + m.dx_plus(i));
      }
      if (j + 1 < m.ny()) {
        carrier_edge(m.index(i, j + 1), m.y(j + 1) - m.y(j),
                     m.dx_minus(i) + m.dx_plus(i));
      }

      // SRH with the *current* densities in the denominator — Gummel
      // lags them, but at the fixed point lagged == current, so the
      // two solvers share their converged solution.
      const double box = m.box_area(i, j);
      const double denom = tau * (n[idx] + ni) + tau * (p[idx] + ni);
      const double r_srh = (n[idx] * p[idx] - ni * ni) / denom;
      const double drdn =
          p[idx] / denom - (n[idx] * p[idx] - ni * ni) * tau / (denom * denom);
      const double drdp =
          n[idx] / denom - (n[idx] * p[idx] - ni * ni) * tau / (denom * denom);
      fn -= box * r_srh;
      fp += box * r_srh;
      const double mag_srh = box * (n[idx] * p[idx] + ni * ni) / denom;
      mag_n += mag_srh;
      mag_p += mag_srh;
      residual[row + kN] = fn;
      residual[row + kP] = fp;
      // Absolute floor at the intrinsic-density transport scale (the SG
      // flux and SRH rate evaluated with every density at ni): minority
      // rows in heavily doped regions sit at the continuity solver's
      // density floor — their residual IS their magnitude, which would
      // otherwise pin the normalized merit at 1 however good the step.
      const double floor_c = box * ni / tau;
      row_mag[row + kN] = mag_n + ksum_n * ni + floor_c;
      row_mag[row + kP] = mag_p + ksum_p * ni + floor_c;
      if (jac != nullptr) {
        J(idx, idx, kN, kN, diag_nn - box * drdn);
        J(idx, idx, kN, kP, -box * drdp);
        J(idx, idx, kP, kN, box * drdn);
        J(idx, idx, kP, kP, diag_pp + box * drdp);
      }
    }
  }
}

/// Row-normalized residual RMS: sqrt(mean_i (F_i / w_i)^2). An RMS
/// instead of an inf-norm so one degenerate row (a minority density
/// held at the continuity floor whose equation cannot be satisfied by
/// any nearby state) contributes a bounded constant instead of pinning
/// the whole merit; the line search then still sees the progress every
/// other row makes. The weights are the row magnitudes of the CURRENT
/// iterate, frozen across the backtracking trials, so the line search
/// minimizes a fixed function of the step length.
double merit_of(const std::vector<double>& residual,
                const std::vector<double>& weights) {
  double sum = 0.0;
  for (std::size_t i = 0; i < residual.size(); ++i) {
    const double q = residual[i] / std::max(weights[i], 1e-300);
    sum += q * q;
  }
  return std::sqrt(sum / static_cast<double>(residual.size()));
}

}  // namespace

void newton_dd_residual(const DeviceStructure& dev,
                        const std::map<std::string, double>& biases,
                        const std::vector<double>& psi,
                        const std::vector<double>& n,
                        const std::vector<double>& p,
                        const ContinuityOptions& continuity,
                        std::vector<double>& residual,
                        std::vector<double>& row_magnitude) {
  const DirichletInfo d = resolve_dirichlet(dev, biases);
  assemble(dev, d, psi, n, p, continuity, residual, row_magnitude, nullptr);
}

void newton_dd_jacobian_product(const DeviceStructure& dev,
                                const std::map<std::string, double>& biases,
                                const std::vector<double>& psi,
                                const std::vector<double>& n,
                                const std::vector<double>& p,
                                const ContinuityOptions& continuity,
                                const std::vector<double>& dx,
                                std::vector<double>& out) {
  const auto& m = dev.mesh();
  const std::size_t n_nodes = m.node_count();
  if (dx.size() != 3 * n_nodes) {
    throw std::invalid_argument(
        "newton_dd_jacobian_product: dx size mismatch");
  }
  const DirichletInfo d = resolve_dirichlet(dev, biases);
  linalg::BlockBandedMatrix jac(n_nodes, 3, m.nx());
  std::vector<double> residual;
  std::vector<double> row_mag;
  assemble(dev, d, psi, n, p, continuity, residual, row_mag, &jac);
  // The stored density columns are scaled by ni (unknowns are n/ni);
  // feed the matrix the scaled perturbation so the product is physical.
  std::vector<double> v(dx);
  const double ni = dev.ni();
  for (std::size_t idx = 0; idx < n_nodes; ++idx) {
    v[3 * idx + kN] /= ni;
    v[3 * idx + kP] /= ni;
  }
  out = jac.scalar().multiply(v);
}

NewtonDdResult solve_newton_dd(const DeviceStructure& dev,
                               const std::map<std::string, double>& biases,
                               std::vector<double>& psi,
                               std::vector<double>& n,
                               std::vector<double>& p,
                               const NewtonDdOptions& options,
                               const ContinuityOptions& continuity,
                               obs::SpanProfiler* profiler) {
  const obs::ScopedSpan span(profiler, obs::names::spans::kNewtonSolve);
  const auto& m = dev.mesh();
  const std::size_t n_nodes = m.node_count();
  if (psi.size() != n_nodes || n.size() != n_nodes || p.size() != n_nodes) {
    throw std::invalid_argument("solve_newton_dd: state size mismatch");
  }
  const double ni = dev.ni();
  const double floor = 1e-20 * ni;
  const DirichletInfo d = resolve_dirichlet(dev, biases);

  // Impose the Dirichlet values up front (the ramped guess normally has
  // them already; a prolonged coarse guess may not, exactly).
  for (std::size_t idx = 0; idx < n_nodes; ++idx) {
    if (d.psi_fixed_mask[idx]) psi[idx] = d.psi_fixed[idx];
    if (d.carrier_fixed_mask[idx]) {
      n[idx] = d.n_fixed[idx];
      p[idx] = d.p_fixed[idx];
    } else {
      n[idx] = std::max(n[idx], floor);
      p[idx] = std::max(p[idx], floor);
    }
  }

  linalg::BlockBandedMatrix jac(n_nodes, 3, m.nx());
  std::vector<double> residual, row_mag, trial_res, trial_mag;
  std::vector<double> rhs(3 * n_nodes, 0.0);
  std::vector<double> psi_t(n_nodes), n_t(n_nodes), p_t(n_nodes);

  NewtonDdResult result;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;
    assemble(dev, d, psi, n, p, continuity, residual, row_mag, &jac);
    const double merit = merit_of(residual, row_mag);
    for (std::size_t r = 0; r < rhs.size(); ++r) rhs[r] = -residual[r];

    std::vector<double> delta;
    try {
      const obs::ScopedSpan lu_span(profiler,
                                    obs::names::spans::kBandedLuSolve);
      delta = linalg::BlockBandedLu(jac).solve(rhs);
    } catch (const std::runtime_error&) {
      result.status = SolveStatus::kNonFinite;  // singular/non-finite pivot
      return result;
    }

    // Backtracking line search on the frozen-weight residual RMS
    // (row_mag of the current iterate, NOT of the trial state).
    double t = 1.0;
    bool accepted = false;
    for (std::size_t ls = 0; ls <= options.max_line_search; ++ls) {
      for (std::size_t idx = 0; idx < n_nodes; ++idx) {
        const std::size_t row = 3 * idx;
        psi_t[idx] = psi[idx] + t * delta[row + kPsi];
        if (d.carrier_fixed_mask[idx]) {
          n_t[idx] = n[idx];
          p_t[idx] = p[idx];
        } else {
          n_t[idx] = std::max(floor, n[idx] + t * ni * delta[row + kN]);
          p_t[idx] = std::max(floor, p[idx] + t * ni * delta[row + kP]);
        }
      }
      assemble(dev, d, psi_t, n_t, p_t, continuity, trial_res, trial_mag,
               nullptr);
      const double trial_merit = merit_of(trial_res, row_mag);
      if (std::isfinite(trial_merit) &&
          trial_merit < merit * (1.0 - 1e-4 * t)) {
        accepted = true;
        break;
      }
      t *= 0.5;
    }
    if (!accepted) {
      result.status = SolveStatus::kDiverged;
      result.residual = merit;
      return result;
    }

    double max_dpsi = 0.0;
    double max_psi = 0.0;
    for (std::size_t idx = 0; idx < n_nodes; ++idx) {
      max_dpsi = std::max(max_dpsi, std::abs(psi_t[idx] - psi[idx]));
      max_psi = std::max(max_psi, std::abs(psi_t[idx]));
    }
    psi.swap(psi_t);
    n.swap(n_t);
    p.swap(p_t);
    result.residual = max_dpsi;
    if (!std::isfinite(max_dpsi) || !std::isfinite(max_psi)) {
      result.status = SolveStatus::kNonFinite;
      return result;
    }
    if (max_psi > options.divergence_threshold) {
      result.status = SolveStatus::kDiverged;
      return result;
    }
    // Converged: a full, undamped step that barely moved the potential.
    if (t == 1.0 && max_dpsi < options.update_tolerance) {
      result.status = SolveStatus::kConverged;
      return result;
    }
  }
  result.status = SolveStatus::kStalled;
  return result;
}

}  // namespace subscale::tcad
