#include "cache/solve_cache.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>
#include <utility>

#include <unistd.h>

#include "cache/bytes.h"
#include "cache/lease.h"
#include "obs/names.h"

namespace subscale::cache {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x43425553u;  // "SUBC" little-endian

std::uint64_t payload_fnv(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Consume one unit of a fault budget; returns true while any remains.
bool consume(std::atomic<long>& budget) {
  long cur = budget.load(std::memory_order_relaxed);
  while (cur > 0) {
    if (budget.compare_exchange_weak(cur, cur - 1,
                                     std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void CacheOptions::validate() const {
  const auto fail = [](const char* msg) {
    throw std::invalid_argument(std::string("CacheOptions: ") + msg);
  };
  if (fault.fail_reads < 0) fail("fault.fail_reads must be >= 0");
  if (fault.fail_writes < 0) fail("fault.fail_writes must be >= 0");
}

SolveCache::SolveCache(const CacheOptions& options)
    : dir_(options.dir),
      warm_start_(options.warm_start),
      max_entries_per_shard_(options.max_entries_per_shard) {
  options.validate();
  read_fault_budget_.store(options.fault.fail_reads,
                           std::memory_order_relaxed);
  write_fault_budget_.store(options.fault.fail_writes,
                            std::memory_order_relaxed);
  obs::MetricsRegistry* sink =
      options.metrics != nullptr ? options.metrics : obs::default_registry();
  if (sink != nullptr) {
    namespace names = obs::names;
    ins_.hit = &sink->counter(names::kCacheHit);
    ins_.miss = &sink->counter(names::kCacheMiss);
    ins_.store = &sink->counter(names::kCacheStore);
    ins_.evict = &sink->counter(names::kCacheEvict);
    ins_.warmstart = &sink->counter(names::kCacheWarmstart);
    ins_.corrupt = &sink->counter(names::kCacheCorrupt);
  }
}

std::string SolveCache::record_path(const HashKey& key) const {
  const std::string hex = key.hex();
  // 256-way shard by the first key byte keeps directories small.
  return dir_ + "/" + hex.substr(0, 2) + "/" + hex + ".sc";
}

std::shared_ptr<const Payload> SolveCache::lookup(const HashKey& key,
                                                  PayloadKind kind) {
  {
    Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.map.find(key);
    if (it != s.map.end() && it->second->kind == kind) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (ins_.hit != nullptr) ins_.hit->add(1);
      return it->second;
    }
  }
  if (persistent()) {
    if (std::shared_ptr<const Payload> p = read_disk(key, kind);
        p != nullptr) {
      remember(key, p);
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (ins_.hit != nullptr) ins_.hit->add(1);
      return p;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (ins_.miss != nullptr) ins_.miss->add(1);
  return nullptr;
}

void SolveCache::store(const HashKey& key, PayloadKind kind,
                       std::vector<std::uint8_t> bytes) {
  auto payload = std::make_shared<Payload>();
  payload->kind = kind;
  payload->bytes = std::move(bytes);
  if (persistent()) write_disk(key, *payload);
  remember(key, std::move(payload));
  stores_.fetch_add(1, std::memory_order_relaxed);
  if (ins_.store != nullptr) ins_.store->add(1);
}

void SolveCache::note_warmstart() {
  warmstarts_.fetch_add(1, std::memory_order_relaxed);
  if (ins_.warmstart != nullptr) ins_.warmstart->add(1);
}

void SolveCache::remember(const HashKey& key,
                          std::shared_ptr<const Payload> payload) {
  if (max_entries_per_shard_ == 0) return;
  Shard& s = shard_of(key);
  std::size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    const auto [it, inserted] = s.map.try_emplace(key, nullptr);
    it->second = std::move(payload);
    if (inserted) {
      s.order.push_back(key);
      while (s.order.size() > max_entries_per_shard_) {
        s.map.erase(s.order.front());
        s.order.erase(s.order.begin());
        ++evicted;
      }
    }
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    if (ins_.evict != nullptr) ins_.evict->add(evicted);
  }
}

std::shared_ptr<const Payload> SolveCache::read_disk(const HashKey& key,
                                                     PayloadKind kind) {
  const std::string path = record_path(key);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return nullptr;  // plain absence: not corruption

  const auto reject = [&]() -> std::shared_ptr<const Payload> {
    std::fclose(f);
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    if (ins_.corrupt != nullptr) ins_.corrupt->add(1);
    return nullptr;
  };
  if (consume(read_fault_budget_)) return reject();

  // Header: magic u32 | version u32 | kind u32 | size u64 | fnv u64.
  std::uint8_t full_header[28];
  if (std::fread(full_header, 1, sizeof(full_header), f) !=
      sizeof(full_header)) {
    return reject();
  }
  ByteReader r(full_header, sizeof(full_header));
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t record_kind = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
  if (!r.u32(magic) || !r.u32(version) || !r.u32(record_kind) ||
      !r.u64(size) || !r.u64(checksum)) {
    return reject();
  }
  if (magic != kMagic) return reject();
  if (version != kFormatVersion) return reject();  // stale schema: a miss
  if (record_kind != static_cast<std::uint32_t>(kind)) return reject();
  if (size > (1ull << 31)) return reject();  // implausible length

  auto payload = std::make_shared<Payload>();
  payload->kind = kind;
  payload->bytes.resize(static_cast<std::size_t>(size));
  if (std::fread(payload->bytes.data(), 1, payload->bytes.size(), f) !=
      payload->bytes.size()) {
    return reject();
  }
  // Trailing garbage also fails the record (the atomic-rename publish
  // never produces it; its presence means external tampering).
  std::uint8_t extra = 0;
  if (std::fread(&extra, 1, 1, f) != 0) return reject();
  std::fclose(f);
  if (payload_fnv(payload->bytes) != checksum) {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    if (ins_.corrupt != nullptr) ins_.corrupt->add(1);
    return nullptr;
  }
  return payload;
}

bool SolveCache::write_disk(const HashKey& key, const Payload& payload) {
  const std::string path = record_path(key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) return false;

  ByteWriter header;
  header.u32(kMagic);
  header.u32(kFormatVersion);
  header.u32(static_cast<std::uint32_t>(payload.kind));
  header.u64(payload.bytes.size());
  header.u64(payload_fnv(payload.bytes));

  const std::uint64_t seq =
      temp_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::string temp = dir_ + "/tmp-" +
                           std::to_string(static_cast<long>(::getpid())) +
                           "-" + std::to_string(seq);
  std::FILE* f = std::fopen(temp.c_str(), "wb");
  if (f == nullptr) return false;
  const auto& h = header.bytes();
  bool ok = std::fwrite(h.data(), 1, h.size(), f) == h.size();
  ok = ok && std::fwrite(payload.bytes.data(), 1, payload.bytes.size(), f) ==
                 payload.bytes.size();
  // Flush to the platter before the rename: a crash after the publish
  // must find the complete record, not a page-cache torso. Opt-out via
  // SUBSCALE_CACHE_FSYNC=0 (atomicity is the rename's job either way).
  if (ok && fsync_enabled()) {
    ok = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  }
  ok = std::fclose(f) == 0 && ok;
  if (consume(write_fault_budget_)) ok = false;  // injected publish failure
  if (!ok) {
    fs::remove(temp, ec);
    return false;
  }
  // Atomic publish: a concurrent reader sees the old record or the new
  // one, never a partial write.
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    return false;
  }
  return true;
}

std::size_t SolveCache::sweep_stale_temps(double min_age_seconds) {
  if (!persistent()) return 0;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) return 0;
  std::size_t removed = 0;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("tmp-", 0) != 0) continue;
    const fs::file_time_type mtime = fs::last_write_time(entry.path(), ec);
    if (ec) continue;
    const double age = std::chrono::duration<double>(
                           fs::file_time_type::clock::now() - mtime)
                           .count();
    if (age < min_age_seconds) continue;  // possibly a live writer
    if (fs::remove(entry.path(), ec) && !ec) ++removed;
  }
  if (removed > 0) {
    // Torn-write debris: the records these were meant to become will
    // read as plain misses, so account them under the corruption
    // counter like any other unreadable record.
    corrupt_.fetch_add(removed, std::memory_order_relaxed);
    if (ins_.corrupt != nullptr) ins_.corrupt->add(removed);
  }
  return removed;
}

SolveCache::Stats SolveCache::stats() const {
  return {hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed),
          stores_.load(std::memory_order_relaxed),
          evictions_.load(std::memory_order_relaxed),
          warmstarts_.load(std::memory_order_relaxed),
          corrupt_.load(std::memory_order_relaxed)};
}

namespace {
SolveCache* g_default_cache = nullptr;
bool g_default_set = false;
}  // namespace

void set_default_cache(SolveCache* cache) {
  g_default_cache = cache;
  g_default_set = true;
}

SolveCache* default_cache() { return g_default_cache; }

SolveCache* install_env_cache() {
  static SolveCache* installed = [] {
    if (g_default_set) return g_default_cache;  // explicit install wins
    const char* toggle = std::getenv("SUBSCALE_CACHE");
    if (toggle != nullptr && (std::strcmp(toggle, "0") == 0 ||
                              std::strcmp(toggle, "off") == 0)) {
      return static_cast<SolveCache*>(nullptr);
    }
    const char* dir = std::getenv("SUBSCALE_CACHE_DIR");
    if (dir == nullptr && toggle == nullptr) {
      return static_cast<SolveCache*>(nullptr);
    }
    CacheOptions options;
    if (dir != nullptr) options.dir = dir;
    static SolveCache cache(options);
    set_default_cache(&cache);
    return &cache;
  }();
  return installed;
}

}  // namespace subscale::cache
