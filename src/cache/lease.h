#pragma once

/// \file lease.h
/// Crash-tolerant file primitives for multi-process coordination, used
/// by the study orchestrator (src/orch) and shared with SolveCache's
/// disk store. Everything here reduces to two POSIX guarantees:
///
///   * open(O_CREAT|O_EXCL) is atomic — exactly one of N racing
///     processes creates the file. That is the claim: a work unit's
///     lease file exists iff some worker owns it.
///   * rename(2) within a filesystem is atomic — a reader sees the old
///     content or the new content, never a torn mix. That is the
///     heartbeat (content replaced wholesale) and the cache publish.
///
/// A lease carries no locks to leak: if its owner dies, the file simply
/// stops being refreshed, and the orchestrator detects the staleness by
/// age (lease_inspect) and deletes it. Correctness never depends on the
/// lease — the result store is content-addressed, so two workers that
/// somehow both solve a unit publish identical bytes (last-writer-wins).
/// Leases only prevent duplicated effort.
///
/// Durability: atomic_write_file fsyncs the temp file before the rename
/// by default, so a record that survives a crash is complete on the
/// platter, not just in the page cache. SUBSCALE_CACHE_FSYNC=0 opts out
/// (benchmark boxes with battery-backed write caches), trading the
/// durability of the *latest* records for publish latency; atomicity is
/// unaffected either way.

#include <cstdint>
#include <string>
#include <vector>

namespace subscale::cache {

/// Whether publishes fsync the temp file before renaming it into place.
/// Reads SUBSCALE_CACHE_FSYNC once per process: unset or any value but
/// "0"/"off" means on.
bool fsync_enabled();

/// Write `bytes` to `path` atomically: temp file in the same directory
/// (same filesystem, so the rename cannot degrade to a copy), optional
/// fsync, rename over the target. Creates parent directories. Returns
/// false — leaving any previous file untouched — on any failure.
bool atomic_write_file(const std::string& path,
                       const void* data, std::size_t size,
                       bool sync = fsync_enabled());
bool atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& bytes,
                       bool sync = fsync_enabled());

/// Read a whole file; false when it does not exist or cannot be read.
bool read_file_bytes(const std::string& path,
                     std::vector<std::uint8_t>& out);

// ---- leases -----------------------------------------------------------------

/// What an observer can tell about a lease file without trusting its
/// owner to still be alive.
struct LeaseInfo {
  bool exists = false;
  std::string owner;       ///< owner token written at acquire/heartbeat
  std::uint64_t beats = 0; ///< heartbeats since acquire
  double age_seconds = 0;  ///< time since the last heartbeat (file mtime)
};

/// Claim the lease: atomically create `path` (O_CREAT|O_EXCL) holding
/// `owner`. Exactly one of N concurrent callers succeeds; the rest see
/// false. Also false when the parent directory cannot be created.
bool lease_try_acquire(const std::string& path, const std::string& owner);

/// Refresh the lease: atomically replace its content with
/// (owner, beats), updating the file mtime that lease_inspect ages by.
/// The caller owns the lease; this does not re-check.
bool lease_heartbeat(const std::string& path, const std::string& owner,
                     std::uint64_t beats);

/// Observe a lease without touching it.
LeaseInfo lease_inspect(const std::string& path);

/// Drop the lease (idempotent; removing a lease that a stale-detection
/// pass already cleared is not an error).
void lease_release(const std::string& path);

}  // namespace subscale::cache
