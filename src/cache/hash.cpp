#include "cache/hash.h"

#include <cmath>
#include <cstring>

namespace subscale::cache {

namespace {

// FNV-1a 64-bit. Stream A uses the standard offset basis; stream B a
// distinct one (the standard basis XOR a splitmix64 constant) so the two
// halves decorrelate from the first byte.
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
constexpr std::uint64_t kOffsetA = 0xcbf29ce484222325ull;
constexpr std::uint64_t kOffsetB = 0xcbf29ce484222325ull ^ 0x9e3779b97f4a7c15ull;

inline void mix(std::uint64_t& h, const unsigned char* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

// Final avalanche (splitmix64 finalizer) so short inputs still spread
// across the whole word; stream B gets an extra rotation so the halves
// never coincide even on identical byte streams.
inline std::uint64_t finish(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

}  // namespace

std::uint64_t canonical_f64_bits(double v) {
  if (v == 0.0) v = 0.0;  // collapses -0.0 onto +0.0
  if (std::isnan(v)) {
    return 0x7ff8000000000000ull;  // one canonical quiet NaN
  }
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::string HashKey::hex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = kDigits[(hi >> (4 * i)) & 0xf];
    out[31 - i] = kDigits[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

KeyHasher::KeyHasher() : a_(kOffsetA), b_(kOffsetB) {}

KeyHasher::KeyHasher(const HashKey& seed)
    : a_(kOffsetA ^ seed.hi), b_(kOffsetB ^ seed.lo) {}

KeyHasher& KeyHasher::bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  mix(a_, p, size);
  mix(b_, p, size);
  return *this;
}

KeyHasher& KeyHasher::tag(std::string_view label) { return str(label); }

KeyHasher& KeyHasher::str(std::string_view s) {
  u64(s.size());
  return bytes(s.data(), s.size());
}

KeyHasher& KeyHasher::u64(std::uint64_t v) {
  unsigned char le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<unsigned char>(v >> (8 * i));
  return bytes(le, sizeof(le));
}

KeyHasher& KeyHasher::i64(std::int64_t v) {
  return u64(static_cast<std::uint64_t>(v));
}

KeyHasher& KeyHasher::boolean(bool v) { return u64(v ? 1 : 0); }

KeyHasher& KeyHasher::f64(double v) { return u64(canonical_f64_bits(v)); }

HashKey KeyHasher::key() const {
  return {finish(a_), finish(b_ + 0x2545f4914f6cdd1dull)};
}

}  // namespace subscale::cache
