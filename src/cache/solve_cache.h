#pragma once

/// \file solve_cache.h
/// Persistent, content-addressed result cache for TCAD solves and study
/// nodes. Records are addressed by a 128-bit canonical content hash
/// (cache/hash.h) of everything that determines the result — device
/// structure, mesh spec, solver options, bias point — so two runs that
/// pose the same problem read the same record, and any physical change
/// moves to a fresh key (there is no invalidation protocol to get
/// wrong; stale keys simply stop being asked for).
///
/// Layout:
///   * a sharded in-memory index (16 shards, each its own mutex) holds
///     decoded payloads behind shared_ptr, FIFO-capped per shard with
///     eviction accounting;
///   * an optional disk store under CacheOptions::dir backs the index:
///     one file per record, sharded into 256 subdirectories by the
///     first key byte, published write-to-temp + fsync + atomic rename
///     so a concurrent reader sees either the whole record or none of
///     it, and a record that survives a crash is complete on disk (the
///     fsync is opt-out via SUBSCALE_CACHE_FSYNC=0, see cache/lease.h).
///     A writer killed mid-publish leaves only a torn temp file, which
///     sweep_stale_temps() later removes and counts as a miss.
///
/// On-disk record format (little-endian):
///   magic "SUBC" | format_version u32 | kind u32 | payload_size u64 |
///   payload_fnv u64 | payload bytes
/// A reader rejects — and reports as a plain miss — anything that does
/// not parse bit-for-bit: wrong magic, unknown (version-bumped) format,
/// kind mismatch, truncated payload, checksum mismatch. Corrupt records
/// are counted (cache.corrupt) and left for the writer to replace via
/// the normal store path; they are never propagated.
///
/// Telemetry: hit/miss/store/evict/corrupt land both in internal atomic
/// stats (always on, test-visible) and in the obs counters cache.* when
/// a registry is resolvable at construction.
///
/// Fault injection: CacheOptions::fault deterministically fails the
/// next N disk reads and/or publishes, mirroring GummelOptions::fault —
/// the robustness tests drive the corruption paths through it without
/// touching real files.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/hash.h"
#include "obs/metrics.h"

namespace subscale::cache {

/// What a record holds; stored in the header and checked on lookup so a
/// key collision across kinds (or a caller bug) reads as a miss, never
/// as a misparse.
enum class PayloadKind : std::uint32_t {
  kSweep = 1,      ///< a full TcadDevice::id_vg result
  kState = 2,      ///< solver state (biases, psi, n, p) at one bias point
  kBiasIndex = 3,  ///< per-device list of cached bias-state points
  kScalar = 4,     ///< one memoized objective evaluation (opt layer)
  kUnit = 5,       ///< one orchestrator work-unit result (src/orch)
};

struct Payload {
  PayloadKind kind = PayloadKind::kSweep;
  std::vector<std::uint8_t> bytes;
};

/// Deterministic fault injection for the robustness tests: while a
/// budget remains, the next disk read parses as corrupt / the next
/// publish is dropped after the temp write. Mirrors GummelOptions::fault
/// in spirit: counts down, then heals.
struct CacheFault {
  long fail_reads = 0;
  long fail_writes = 0;
};

struct CacheOptions {
  /// Disk store root; empty = in-memory only (still a useful
  /// process-lifetime cache). Created on demand.
  std::string dir;
  /// Allow call sites to seed a solver from the nearest cached bias
  /// state when the exact record misses. Within-tolerance, not bitwise —
  /// see DESIGN.md §12.4.
  bool warm_start = true;
  /// FIFO cap per in-memory shard (16 shards). 0 keeps nothing in
  /// memory (every lookup goes to disk) — useful in tests.
  std::size_t max_entries_per_shard = 512;
  CacheFault fault;
  /// Telemetry sink; null falls back to obs::default_registry().
  obs::MetricsRegistry* metrics = nullptr;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class SolveCache {
 public:
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Validates the options; does not touch the filesystem yet (the
  /// directory is created on first store).
  explicit SolveCache(const CacheOptions& options = {});

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// The record at `key`, or null on miss. A record whose kind differs
  /// from `kind` — or whose disk image fails any header/checksum test —
  /// is a miss.
  std::shared_ptr<const Payload> lookup(const HashKey& key,
                                        PayloadKind kind);

  /// Publish a record (memory index + disk when persistent). Replaces
  /// any existing record at the key.
  void store(const HashKey& key, PayloadKind kind,
             std::vector<std::uint8_t> bytes);

  /// Bump the warm-start counter (the cache cannot see which lookups
  /// seeded a solver, so the call site reports it).
  void note_warmstart();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;
    std::uint64_t warmstarts = 0;
    std::uint64_t corrupt = 0;  ///< disk records rejected as unreadable
  };
  Stats stats() const;

  bool persistent() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }
  bool warm_start_enabled() const { return warm_start_; }

  /// Path the record for `key` lives at (even if absent) — test hook
  /// for the corruption suite.
  std::string record_path(const HashKey& key) const;

  /// Remove torn temp files left at the store root by writers that died
  /// mid-publish (a SIGKILLed worker, a crashed bench). Only temps older
  /// than `min_age_seconds` are touched — a live writer's temp exists
  /// for milliseconds, so the age gate keeps the sweep safe to run while
  /// other processes publish. Each removal is counted as corruption
  /// (cache.corrupt): the debris is evidence of a torn write, and the
  /// record it was meant to become reads as a plain miss. Returns the
  /// number of temps removed; no-op (0) for in-memory caches.
  std::size_t sweep_stale_temps(double min_age_seconds = 60.0);

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    std::mutex mu;
    // FIFO over insertion order backs the eviction cap.
    std::vector<HashKey> order;
    std::unordered_map<HashKey, std::shared_ptr<const Payload>,
                       HashKeyHasher>
        map;
  };

  Shard& shard_of(const HashKey& key) {
    return shards_[key.lo % kShards];
  }
  void remember(const HashKey& key, std::shared_ptr<const Payload> payload);
  std::shared_ptr<const Payload> read_disk(const HashKey& key,
                                           PayloadKind kind);
  bool write_disk(const HashKey& key, const Payload& payload);

  std::string dir_;
  bool warm_start_ = true;
  std::size_t max_entries_per_shard_ = 512;
  Shard shards_[kShards];

  std::atomic<long> read_fault_budget_{0};
  std::atomic<long> write_fault_budget_{0};

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> warmstarts_{0};
  std::atomic<std::uint64_t> corrupt_{0};

  std::atomic<std::uint64_t> temp_seq_{0};

  struct Instruments {
    obs::Counter* hit = nullptr;
    obs::Counter* miss = nullptr;
    obs::Counter* store = nullptr;
    obs::Counter* evict = nullptr;
    obs::Counter* warmstart = nullptr;
    obs::Counter* corrupt = nullptr;
  };
  Instruments ins_;
};

/// Process-wide default cache, mirroring obs::default_registry(): null
/// until installed; RunContext::cache_sink() falls back to it.
void set_default_cache(SolveCache* cache);
SolveCache* default_cache();

/// Build and install the process default from the environment, once:
///   * SUBSCALE_CACHE=0|off           -> caching disabled (null),
///   * SUBSCALE_CACHE_DIR=<path>      -> persistent cache at <path>,
///   * SUBSCALE_CACHE=1 (and no dir)  -> in-memory process cache,
///   * neither variable               -> null (caching off).
/// Returns the installed cache (or null). Idempotent; an explicit
/// set_default_cache() before the first call wins.
SolveCache* install_env_cache();

}  // namespace subscale::cache
