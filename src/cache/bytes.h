#pragma once

/// \file bytes.h
/// Little-endian binary payload (de)serialization for cache records.
/// Doubles travel as raw IEEE-754 bit patterns, so a round-trip through
/// the cache is bitwise-exact — the property the golden tier's
/// cached-vs-uncached equality checks rely on. The reader is fully
/// bounds-checked and never throws: any overrun flips it into a failed
/// state the caller turns into a cache miss (a truncated or corrupted
/// record must never crash or yield garbage).

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace subscale::cache {

class ByteWriter {
 public:
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void f64_vector(const std::vector<double>& v) {
    u64(v.size());
    for (const double x : v) f64(x);
  }

  std::vector<std::uint8_t> take() { return std::move(out_); }
  const std::vector<std::uint8_t>& bytes() const { return out_; }

 private:
  std::vector<std::uint8_t> out_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  bool u32(std::uint32_t& v) {
    if (!take(4)) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ - 4 + i]) << (8 * i);
    }
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (!take(8)) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ - 8 + i]) << (8 * i);
    }
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }
  /// Rejects length prefixes that could not possibly fit in the
  /// remaining bytes before allocating (a corrupted length must not
  /// trigger a multi-gigabyte allocation).
  bool str(std::string& s) {
    std::uint64_t n = 0;
    if (!u64(n) || n > remaining()) return false;
    s.assign(reinterpret_cast<const char*>(data_ + pos_),
             static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return true;
  }
  bool f64_vector(std::vector<double>& v) {
    std::uint64_t n = 0;
    if (!u64(n) || n > remaining() / 8) return false;
    v.resize(static_cast<std::size_t>(n));
    for (double& x : v) {
      if (!f64(x)) return false;
    }
    return true;
  }

  std::size_t remaining() const { return failed_ ? 0 : size_ - pos_; }
  bool exhausted() const { return !failed_ && pos_ == size_; }
  bool ok() const { return !failed_; }

 private:
  bool take(std::size_t n) {
    if (failed_ || size_ - pos_ < n) {
      failed_ = true;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace subscale::cache
