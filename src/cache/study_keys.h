#pragma once

/// \file study_keys.h
/// Cache-key derivation for the ANALYTICAL study layer: the compact-model
/// objectives that scaling::design_subvth_device and circuits::find_vmin
/// minimize. Header-only for the same reason as tcad_keys.h — the cache
/// library stays a leaf; the schema lives next to the hasher.
///
/// Same schema rules as tcad_keys.h: tagged fields, physics-bearing
/// inputs only (ExecPolicy / cache pointers are excluded — thread count
/// and caching cannot change a result), and kStudyKeySchema is bumped
/// whenever the hashed field set OR the analytical model it feeds
/// changes meaning.

#include "cache/tcad_keys.h"
#include "circuits/chain.h"
#include "circuits/vmin.h"
#include "compact/calibration.h"
#include "scaling/subvth_strategy.h"
#include "scaling/technology.h"

namespace subscale::cache {

/// v2: SubVthOptions carries a DeviceEnv (backend kind, temperature,
/// nanowire radius) — two cards differing only in environment must
/// never share a design-objective memo.
inline constexpr std::uint64_t kStudyKeySchema = 2;

inline void hash_append(KeyHasher& h, const compact::Calibration& c) {
  h.tag("calib")
      .f64(c.c_dep)
      .f64(c.c_sce)
      .f64(c.c_len)
      .f64(c.k_halo)
      .f64(c.k_io)
      .f64(c.k_dibl)
      .f64(c.delta_vth)
      .f64(c.k_vsat)
      .f64(c.j_crit)
      .f64(c.c_fringe)
      .f64(c.c_wire);
}

inline void hash_append(KeyHasher& h, const scaling::NodeInput& n) {
  h.tag("node")
      .str(n.name)
      .i64(n.generation)
      .f64(n.lpoly_nm)
      .f64(n.tox_nm)
      .f64(n.vdd)
      .f64(n.feature_shrink)
      .f64(n.ileak_max_pa_um);
}

inline void hash_append(KeyHasher& h, const compact::DeviceEnv& env) {
  h.tag("env")
      .u64(static_cast<std::uint64_t>(env.backend))
      .f64(env.temperature)
      .f64(env.nw_radius_nm);
}

inline void hash_append(KeyHasher& h, const scaling::SubVthOptions& o) {
  // exec (and the cache pointer itself) intentionally absent: results
  // are thread-count independent by construction.
  h.tag("subvth_options")
      .f64(o.ioff_pa_um)
      .f64(o.vds_ref)
      .f64(o.lpoly_max_factor)
      .u64(o.lpoly_scan_points)
      .u64(o.split_iterations);
  hash_append(h, o.env);
}

/// Domain key of design_subvth_device's L_poly objective: every input
/// the energy factor at a candidate length depends on.
inline HashKey subvth_design_key(const scaling::NodeInput& node,
                                 const scaling::SubVthOptions& options,
                                 const compact::Calibration& calib) {
  KeyHasher h;
  h.tag("subscale.scaling.subvth_design").u64(kStudyKeySchema);
  hash_append(h, node);
  hash_append(h, options);
  hash_append(h, calib);
  return h.key();
}

inline void hash_append(KeyHasher& h, const circuits::ChainSpec& spec) {
  h.tag("chain")
      .u64(spec.stages)
      .f64(spec.activity)
      .f64(spec.self_load_factor);
}

/// Domain key of find_vmin's chain-energy objective. The inverter pair
/// is identified by its NFET/PFET specs plus the calibration (a
/// CompactMosfet is a pure function of those); `vdd` is the search
/// variable, so it is NOT part of the domain.
inline HashKey vmin_key(const compact::DeviceSpec& nfet,
                        const compact::DeviceSpec& pfet,
                        const compact::Calibration& calib,
                        const circuits::ChainSpec& chain,
                        const circuits::VminOptions& options) {
  KeyHasher h;
  h.tag("subscale.circuits.vmin").u64(kStudyKeySchema);
  hash_append(h, nfet);
  hash_append(h, pfet);
  hash_append(h, calib);
  hash_append(h, chain);
  h.tag("vmin_options")
      .f64(options.v_lo)
      .f64(options.v_hi)
      .f64(options.v_tolerance)
      .u64(options.scan_points);
  return h.key();
}

}  // namespace subscale::cache
