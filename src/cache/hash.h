#pragma once

/// \file hash.h
/// Content-addressed cache keys: a 128-bit key built from two
/// independent FNV-1a-64 streams over a canonical byte serialization of
/// the inputs. The canonicalization rules make the key platform-stable:
///
///   * doubles are hashed through their IEEE-754 bit pattern, after
///     normalizing `-0.0` to `+0.0` (the two compare equal and produce
///     identical physics) and collapsing every NaN payload onto the one
///     canonical quiet-NaN pattern;
///   * integers are widened to 64 bits and hashed little-endian,
///     regardless of the host's native width or endianness;
///   * every logical field is preceded by a `tag()` naming it, so two
///     structs that happen to share a numeric prefix cannot collide by
///     field reordering, and inserting a field changes every key built
///     after it (schema evolution = new keys, never misreads).
///
/// Two independent 64-bit streams (different offset bases and a
/// different post-mix) give an effective 128-bit key; a collision needs
/// both halves to agree, which at the cache sizes this library sees
/// (thousands of records) is out of reach.

#include <cstdint>
#include <string>
#include <string_view>

namespace subscale::cache {

/// A 128-bit content hash; value type, usable as an unordered_map key
/// via HashKeyHasher below.
struct HashKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const HashKey& a, const HashKey& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const HashKey& a, const HashKey& b) {
    return !(a == b);
  }

  /// 32 lowercase hex chars (hi then lo); used as the on-disk filename.
  std::string hex() const;
};

struct HashKeyHasher {
  std::size_t operator()(const HashKey& k) const noexcept {
    // The key is already uniformly mixed; fold the halves.
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ull));
  }
};

/// Incremental canonical hasher. Feed fields in a fixed order, each
/// preceded by a tag; call key() at the end.
class KeyHasher {
 public:
  KeyHasher();

  /// Start from an existing key (domain/namespace chaining).
  explicit KeyHasher(const HashKey& seed);

  /// Field / record label. Hashes the label text including its length.
  KeyHasher& tag(std::string_view label);

  /// Canonical double: -0.0 == +0.0, all NaNs equal.
  KeyHasher& f64(double v);
  KeyHasher& u64(std::uint64_t v);
  KeyHasher& i64(std::int64_t v);
  KeyHasher& boolean(bool v);
  KeyHasher& str(std::string_view s);
  KeyHasher& bytes(const void* data, std::size_t size);

  HashKey key() const;

 private:
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};

/// The canonical bit pattern f64() hashes for `v` (exposed for the
/// property tests: -0.0 -> bits of +0.0, NaN -> one quiet-NaN pattern).
std::uint64_t canonical_f64_bits(double v);

}  // namespace subscale::cache
