#pragma once

/// \file serve_keys.h
/// Content-hash schema for design-space queries (src/serve). The serve
/// Dispatcher coalesces identical in-flight queries onto one solve by
/// addressing them with this key; like tcad_keys.h it lives next to the
/// hasher whose canonicalization rules it relies on, header-only, so
/// the cache library itself stays free of serve link dependencies.
///
/// Schema rules (same contract as tcad_keys.h):
///   * every field is tagged by name — reordering can never alias two
///     different queries;
///   * only problem-defining fields participate. Query::id is a client
///     correlation tag and is deliberately excluded: two clients asking
///     the same question must land on the same key (that is the whole
///     point of coalescing);
///   * bump kServeKeySchema whenever the hashed field set changes.

#include "cache/hash.h"
#include "serve/query.h"

namespace subscale::cache {

/// Version of the hashed-field schema below.
inline constexpr std::uint64_t kServeKeySchema = 1;

/// The identity of one design-space query: everything that determines
/// its Result except who asked (Query::id) — kServerInfo queries are
/// never coalesced (their answer is time-varying), but hashing them is
/// still well-defined.
inline HashKey query_key(const serve::Query& q) {
  KeyHasher h;
  h.tag("subscale.serve.query").u64(kServeKeySchema);
  h.tag("kind").u64(static_cast<std::uint64_t>(q.kind));
  h.tag("card").str(q.card);
  h.tag("strategy").u64(q.strategy == core::Strategy::kSubVth ? 1 : 0);
  h.tag("node").u64(q.node);
  h.tag("sweep")
      .f64(q.vd)
      .f64(q.vg_start)
      .f64(q.vg_stop)
      .u64(q.points)
      .boolean(q.coarse_mesh);
  h.tag("figure").str(q.figure);
  return h.key();
}

}  // namespace subscale::cache
