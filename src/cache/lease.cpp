#include "cache/lease.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace subscale::cache {

namespace fs = std::filesystem;

bool fsync_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("SUBSCALE_CACHE_FSYNC");
    return env == nullptr || (std::strcmp(env, "0") != 0 &&
                              std::strcmp(env, "off") != 0);
  }();
  return enabled;
}

namespace {

/// Unique-per-call temp name next to the target (same filesystem).
std::string temp_name_for(const std::string& path) {
  static std::atomic<std::uint64_t> seq{0};
  return path + ".tmp-" + std::to_string(static_cast<long>(::getpid())) +
         "-" + std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

bool atomic_write_file(const std::string& path, const void* data,
                       std::size_t size, bool sync) {
  std::error_code ec;
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) {
    fs::create_directories(parent, ec);
    if (ec) return false;
  }

  const std::string temp = temp_name_for(path);
  std::FILE* f = std::fopen(temp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = size == 0 || std::fwrite(data, 1, size, f) == size;
  if (ok && sync) {
    ok = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  }
  ok = (std::fclose(f) == 0) && ok;
  if (ok) {
    fs::rename(temp, path, ec);
    ok = !ec;
  }
  if (!ok) fs::remove(temp, ec);
  return ok;
}

bool atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& bytes, bool sync) {
  return atomic_write_file(path, bytes.data(), bytes.size(), sync);
}

bool read_file_bytes(const std::string& path,
                     std::vector<std::uint8_t>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

// ---- leases -----------------------------------------------------------------

namespace {

std::vector<std::uint8_t> lease_body(const std::string& owner,
                                     std::uint64_t beats) {
  const std::string text = owner + "\n" + std::to_string(beats) + "\n";
  return {text.begin(), text.end()};
}

}  // namespace

bool lease_try_acquire(const std::string& path, const std::string& owner) {
  std::error_code ec;
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) {
    fs::create_directories(parent, ec);
    if (ec) return false;
  }
  // O_EXCL is the whole point: exactly one of N racing creators wins.
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  const std::vector<std::uint8_t> body = lease_body(owner, 0);
  const bool ok =
      ::write(fd, body.data(), body.size()) ==
      static_cast<ssize_t>(body.size());
  ::close(fd);
  if (!ok) ::unlink(path.c_str());
  return ok;
}

bool lease_heartbeat(const std::string& path, const std::string& owner,
                     std::uint64_t beats) {
  // No fsync: a heartbeat lost in the page cache only ages the lease
  // early, which is safe (the unit gets reassigned, results dedupe).
  return atomic_write_file(path, lease_body(owner, beats),
                           /*sync=*/false);
}

LeaseInfo lease_inspect(const std::string& path) {
  LeaseInfo info;
  std::vector<std::uint8_t> bytes;
  if (!read_file_bytes(path, bytes)) return info;
  info.exists = true;
  const std::string text(bytes.begin(), bytes.end());
  const std::size_t nl = text.find('\n');
  if (nl != std::string::npos) {
    info.owner = text.substr(0, nl);
    info.beats = std::strtoull(text.c_str() + nl + 1, nullptr, 10);
  }
  std::error_code ec;
  const fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (!ec) {
    const auto age = fs::file_time_type::clock::now() - mtime;
    info.age_seconds =
        std::chrono::duration<double>(age).count();
    if (info.age_seconds < 0.0) info.age_seconds = 0.0;
  }
  return info;
}

void lease_release(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace subscale::cache
