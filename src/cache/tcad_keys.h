#pragma once

/// \file tcad_keys.h
/// Canonical cache-key derivation for the TCAD stack: a stable
/// serialization of DeviceSpec + MeshOptions + GummelOptions (and the
/// bias/sweep coordinates layered on top) into a cache::HashKey.
///
/// Header-only on purpose: the cache library stays free of tcad/compact
/// link dependencies (it is a leaf like obs), while the key schema for
/// device solves still lives in src/cache next to the hasher whose
/// canonicalization rules it relies on.
///
/// Schema rules (see also DESIGN.md §12.2):
///   * every field is tagged by name, so adding or reordering fields can
///     never silently alias two different physical problems;
///   * only physics-bearing fields participate. GummelOptions::fault is
///     deliberately excluded — call sites bypass the cache entirely
///     while fault injection is armed, because replaying a cached result
///     would mask the recovery paths the faults exist to exercise;
///   * bump kTcadKeySchema whenever the hashed field set changes — old
///     records then simply stop being addressed.

#include "cache/hash.h"
#include "compact/device_spec.h"
#include "tcad/device_structure.h"
#include "tcad/gummel.h"

namespace subscale::cache {

/// Version of the hashed-field schema below (NOT the on-disk format
/// version, which SolveCache owns).
/// v2: DeviceSpec grew a backend kind and nanowire radius (a cached
/// bulk solve must never be addressable from a nanowire query).
/// v3: GummelOptions grew the cold-path accelerators (solver strategy,
/// coupled-Newton knobs, mesh-continuation levels) and state payloads
/// a provenance trailer; although all strategies converge to the same
/// physics within tolerance, cached states are bitwise replays and the
/// bitwise result is strategy-dependent.
inline constexpr std::uint64_t kTcadKeySchema = 3;

inline void hash_append(KeyHasher& h, const doping::MosfetGeometry& g) {
  h.tag("geom")
      .f64(g.lpoly)
      .f64(g.tox)
      .f64(g.lov)
      .f64(g.xj)
      .f64(g.lsd)
      .f64(g.substrate_depth)
      .f64(g.halo_depth)
      .f64(g.halo_sigma_x)
      .f64(g.halo_sigma_y)
      .f64(g.sd_straggle_x)
      .f64(g.sd_straggle_y)
      .f64(g.feature_shrink);
}

inline void hash_append(KeyHasher& h, const doping::MosfetDopingLevels& l) {
  h.tag("levels").f64(l.nsub).f64(l.np_halo).f64(l.nsd);
}

inline void hash_append(KeyHasher& h, const compact::DeviceSpec& spec) {
  h.tag("spec")
      .u64(spec.polarity == doping::Polarity::kNfet ? 0 : 1)
      .u64(static_cast<std::uint64_t>(spec.backend))
      .f64(spec.vdd)
      .f64(spec.temperature)
      .f64(spec.nw_radius)
      .f64(spec.width);
  hash_append(h, spec.geometry);
  hash_append(h, spec.levels);
}

inline void hash_append(KeyHasher& h, const tcad::MeshOptions& m) {
  h.tag("mesh")
      .f64(m.surface_spacing)
      .f64(m.junction_spacing)
      .f64(m.grading_ratio)
      .u64(m.oxide_layers)
      .f64(m.well_multiplier)
      .f64(m.well_onset_factor)
      .f64(m.well_straggle_factor);
}

inline void hash_append(KeyHasher& h, const tcad::GummelOptions& o) {
  h.tag("gummel")
      .u64(o.max_iterations)
      .f64(o.psi_tolerance)
      .f64(o.bias_step)
      .f64(o.min_bias_step)
      .f64(o.damping)
      .f64(o.retry_damping)
      .f64(o.min_damping)
      .f64(o.divergence_threshold)
      .u64(o.max_continuation_steps);
  h.tag("poisson")
      .u64(o.poisson.max_iterations)
      .f64(o.poisson.update_tolerance)
      .f64(o.poisson.damping_clamp)
      .f64(o.poisson.divergence_threshold);
  h.tag("continuity")
      .f64(o.continuity.tau_srh)
      .boolean(o.continuity.velocity_saturation)
      .boolean(o.continuity.slotboom);
  h.tag("strategy")
      .u64(static_cast<std::uint64_t>(o.strategy))
      .u64(o.mesh_continuation_levels)
      .f64(o.density_tolerance);
  h.tag("newton")
      .u64(o.newton.max_iterations)
      .f64(o.newton.update_tolerance)
      .f64(o.newton.divergence_threshold)
      .u64(o.newton.max_line_search);
  // GummelOptions::fault intentionally absent — see the file comment.
}

/// The identity of one discretized solver problem: everything that
/// determines a solve's result except the bias point.
inline HashKey device_solve_key(const compact::DeviceSpec& spec,
                                const tcad::MeshOptions& mesh,
                                const tcad::GummelOptions& gummel) {
  KeyHasher h;
  h.tag("subscale.tcad.device").u64(kTcadKeySchema);
  hash_append(h, spec);
  hash_append(h, mesh);
  hash_append(h, gummel);
  return h.key();
}

/// One id_vg sweep on that device.
inline HashKey sweep_key(const HashKey& device_key, double vd,
                         double vg_start, double vg_stop,
                         std::size_t points) {
  KeyHasher h(device_key);
  h.tag("sweep").f64(vd).f64(vg_start).f64(vg_stop).u64(points);
  return h.key();
}

/// Solver state (psi, n, p) at one solved bias point on that device.
inline HashKey state_key(const HashKey& device_key, double vg, double vd,
                         double vs, double vb) {
  KeyHasher h(device_key);
  h.tag("state").f64(vg).f64(vd).f64(vs).f64(vb);
  return h.key();
}

/// The per-device directory of cached bias states (warm-start lookup).
inline HashKey bias_index_key(const HashKey& device_key) {
  KeyHasher h(device_key);
  h.tag("bias_index");
  return h.key();
}

}  // namespace subscale::cache
