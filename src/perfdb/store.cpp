#include "perfdb/store.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "cache/lease.h"

namespace subscale::perfdb {

namespace {

constexpr const char* kSuffix = ".jsonl";

std::string sanitize(std::string_view bench) {
  std::string out;
  out.reserve(bench.size());
  for (const char c : bench) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

PerfDb::PerfDb(std::string dir) : dir_(std::move(dir)) {}

std::string PerfDb::path_for(std::string_view bench) const {
  return dir_ + "/" + sanitize(bench) + kSuffix;
}

bool PerfDb::append(const PerfRecord& record) {
  if (record.bench.empty()) return false;
  const std::string path = path_for(record.bench);
  std::vector<std::uint8_t> bytes;
  cache::read_file_bytes(path, bytes);  // absent file = empty history
  std::string content(bytes.begin(), bytes.end());
  if (!content.empty() && content.back() != '\n') {
    content += '\n';  // heal a truncated tail so the new line stays whole
  }
  content += record_to_line(record);
  content += '\n';
  return cache::atomic_write_file(path, content.data(), content.size());
}

std::vector<PerfRecord> PerfDb::load(std::string_view bench,
                                     LoadStats* stats,
                                     bool include_interrupted) const {
  std::vector<PerfRecord> out;
  LoadStats local;
  std::vector<std::uint8_t> bytes;
  if (cache::read_file_bytes(path_for(bench), bytes)) {
    const std::string_view content(
        reinterpret_cast<const char*>(bytes.data()), bytes.size());
    std::size_t pos = 0;
    while (pos < content.size()) {
      std::size_t eol = content.find('\n', pos);
      if (eol == std::string_view::npos) eol = content.size();
      const std::string_view line = content.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      ++local.total_lines;
      PerfRecord record;
      if (!parse_record_line(line, record)) {
        ++local.corrupt;
        continue;
      }
      if (record.interrupted && !include_interrupted) {
        ++local.interrupted;
        continue;
      }
      ++local.loaded;
      out.push_back(std::move(record));
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<std::string> PerfDb::benches() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const std::size_t n = std::string(kSuffix).size();
    if (name.size() > n && name.compare(name.size() - n, n, kSuffix) == 0) {
      out.push_back(name.substr(0, name.size() - n));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace subscale::perfdb
