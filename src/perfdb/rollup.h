#pragma once

/// \file rollup.h
/// Rollup queries and the trend-aware regression gate over a loaded
/// perf history (the timescaledb continuous-aggregate idiom, scaled to
/// JSONL): extract one metric's series across runs, summarize windows
/// (mean/median/min/max), fit a robust per-run trend (Theil–Sen), and
/// gate the newest record against the ROLLING BASELINE — the median of
/// the last N prior runs — instead of a single predecessor.
///
/// Why a rolling median beats the pairwise obs_diff gate it supersedes:
/// a 3%-per-PR drift never trips a 10% pairwise diff, but after four
/// PRs the newest run is ~13% over the window median and the trend gate
/// fires. The median also shrugs off one noisy or anomalous baseline
/// run where a mean (or a single-predecessor diff) would not. obs_diff
/// stays available for explicit two-record comparisons.
///
/// Which keys gate, and how hard, comes from the one schema table
/// (obs::names::regression_gated + per-metric tolerance overrides) —
/// the same policy the pairwise gate applies, applied longitudinally.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "perfdb/record.h"

namespace subscale::perfdb {

/// Summary statistics over a window of values.
struct WindowStats {
  std::size_t n = 0;
  double mean = 0.0;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
};

WindowStats window_stats(const std::vector<double>& values);

/// Median of a value set (empty -> 0.0; even n -> midpoint average).
double median_of(std::vector<double> values);

/// Robust per-run trend: Theil–Sen estimator (median of all pairwise
/// slopes over x = 0..n-1), intercept = median(y_i - slope * i). One
/// wild outlier run cannot swing the slope the way least squares would.
/// `ok` is false below 2 points.
struct TrendFit {
  bool ok = false;
  double slope = 0.0;      ///< per-run change in the metric's units
  double intercept = 0.0;
};

TrendFit robust_trend(const std::vector<double>& values);

/// One metric's series across a history, oldest first, skipping records
/// that lack the key. Keys: "wall_ms", flat obs keys, headline metric
/// keys (PerfRecord::find order).
std::vector<double> metric_series(const std::vector<PerfRecord>& history,
                                  std::string_view key);

struct TrendGateOptions {
  /// Baseline = median of up to this many records preceding the newest.
  std::size_t window = 8;
  /// Default relative regression tolerance (newest vs baseline).
  double tolerance = 0.10;
  /// Per-metric tolerance overrides, exact flat key -> tolerance.
  std::vector<std::pair<std::string, double>> tolerance_overrides;
  /// Gate latency-histogram .sum keys too (wall clock; off by default
  /// for the same reason obs_diff skips *_ms.sum).
  bool include_timing = false;
  /// Gate the record-level wall_ms as well (timing; off by default).
  bool gate_wall_ms = false;
  /// When > 0, additionally fail a metric whose fitted Theil–Sen slope,
  /// accumulated over the window, exceeds this relative fraction of the
  /// baseline — catches sub-tolerance creep before the median gate can.
  double slope_tolerance = 0.0;
};

/// One gated metric's verdict.
struct MetricTrend {
  std::string key;
  std::size_t window_n = 0;  ///< baseline samples actually present
  double baseline = 0.0;     ///< rolling median of the window
  double newest = 0.0;
  /// (newest - baseline) / |baseline|; 0 when both are zero.
  double change = 0.0;
  TrendFit trend;            ///< fit over window + newest
  bool missing = false;      ///< key vanished from the newest record
  bool regressed = false;
};

struct TrendReport {
  std::size_t records = 0;      ///< usable history length (incl. newest)
  std::size_t compared = 0;     ///< metrics actually gated
  std::size_t regressions = 0;
  /// Every gated metric, sorted by key (regressed or not).
  std::vector<MetricTrend> metrics;

  bool ok() const { return regressions == 0; }
};

/// Gate the newest record of `history` (oldest first, as PerfDb::load
/// returns it) against the rolling baseline. Fewer than 2 records gates
/// nothing and passes — a fresh history cannot regress. A gated key
/// present anywhere in the baseline window but missing from the newest
/// record fails (schema drift, same stance as obs_diff's MISSING); a
/// key new in the newest record has no baseline and is skipped.
TrendReport trend_gate(const std::vector<PerfRecord>& history,
                       const TrendGateOptions& options = {});

}  // namespace subscale::perfdb
