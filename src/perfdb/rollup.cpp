#include "perfdb/rollup.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/names.h"

namespace subscale::perfdb {

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

WindowStats window_stats(const std::vector<double>& values) {
  WindowStats s;
  s.n = values.size();
  if (values.empty()) return s;
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  s.median = median_of(values);
  return s;
}

TrendFit robust_trend(const std::vector<double>& values) {
  TrendFit fit;
  const std::size_t n = values.size();
  if (n < 2) return fit;
  // Histories are short (a gate window, tens of runs at most), so the
  // O(n^2) all-pairs slope set is fine.
  std::vector<double> slopes;
  slopes.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      slopes.push_back((values[j] - values[i]) /
                       static_cast<double>(j - i));
    }
  }
  fit.slope = median_of(std::move(slopes));
  std::vector<double> intercepts;
  intercepts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    intercepts.push_back(values[i] - fit.slope * static_cast<double>(i));
  }
  fit.intercept = median_of(std::move(intercepts));
  fit.ok = true;
  return fit;
}

std::vector<double> metric_series(const std::vector<PerfRecord>& history,
                                  std::string_view key) {
  std::vector<double> out;
  out.reserve(history.size());
  for (const PerfRecord& record : history) {
    double value = 0.0;
    if (record.find(key, value)) out.push_back(value);
  }
  return out;
}

namespace {

double tolerance_for(const TrendGateOptions& options,
                     const std::string& key) {
  for (const auto& [k, tol] : options.tolerance_overrides) {
    if (k == key) return tol;
  }
  return options.tolerance;
}

}  // namespace

TrendReport trend_gate(const std::vector<PerfRecord>& history,
                       const TrendGateOptions& options) {
  TrendReport report;
  report.records = history.size();
  if (history.size() < 2) return report;  // nothing to gate against

  const PerfRecord& newest = history.back();
  const std::size_t window_end = history.size() - 1;
  const std::size_t window_begin =
      options.window < window_end ? window_end - options.window : 0;

  // The gated key set: every gateable obs key seen anywhere in the
  // baseline window. (Headline "metrics" values are bench-chosen
  // numbers — ratios, currents — informational, not effort, so they
  // never gate.) Keys only the newest record has get no baseline
  // (skipped); keys the window has but the newest lost fail as schema
  // drift.
  std::set<std::string> keys;
  for (std::size_t i = window_begin; i < window_end; ++i) {
    for (const auto& [key, value] : history[i].obs) {
      if (obs::names::regression_gated(key, options.include_timing)) {
        keys.insert(key);
      }
    }
  }
  if (options.gate_wall_ms) keys.insert("wall_ms");

  for (const std::string& key : keys) {
    MetricTrend mt;
    mt.key = key;

    std::vector<double> window_values;
    for (std::size_t i = window_begin; i < window_end; ++i) {
      double value = 0.0;
      if (history[i].find(key, value)) window_values.push_back(value);
    }
    if (window_values.empty()) continue;  // cannot happen for obs keys
    mt.window_n = window_values.size();
    mt.baseline = median_of(window_values);

    const double tol = tolerance_for(options, key);
    double newest_value = 0.0;
    if (!newest.find(key, newest_value)) {
      mt.missing = true;
      mt.regressed = true;  // schema drift: the key vanished
    } else {
      mt.newest = newest_value;
      if (mt.baseline == 0.0) {
        mt.change = newest_value > 0.0 ? 1.0 : 0.0;
        mt.regressed = newest_value > 0.0;  // appeared from zero
      } else {
        mt.change = (newest_value - mt.baseline) / std::abs(mt.baseline);
        mt.regressed = mt.change > tol;
      }
      std::vector<double> fit_values = window_values;
      fit_values.push_back(newest_value);
      mt.trend = robust_trend(fit_values);
      if (!mt.regressed && options.slope_tolerance > 0.0 && mt.trend.ok &&
          mt.baseline != 0.0) {
        const double accumulated =
            mt.trend.slope * static_cast<double>(mt.window_n);
        mt.regressed =
            accumulated / std::abs(mt.baseline) > options.slope_tolerance;
      }
    }

    ++report.compared;
    if (mt.regressed) ++report.regressions;
    report.metrics.push_back(std::move(mt));
  }
  return report;
}

}  // namespace subscale::perfdb
