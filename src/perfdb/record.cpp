#include "perfdb/record.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "io/json_parse.h"
#include "io/writer.h"

namespace subscale::perfdb {

namespace {

/// Compact a JsonWriter document to one line: every newline in the
/// pretty output is formatting (JsonWriter escapes control characters
/// inside strings), so dropping each newline plus its following indent
/// is exactly de-pretty-printing.
std::string compact(const std::string& pretty) {
  std::string out;
  out.reserve(pretty.size());
  for (std::size_t i = 0; i < pretty.size(); ++i) {
    if (pretty[i] == '\n') {
      while (i + 1 < pretty.size() && pretty[i + 1] == ' ') ++i;
      continue;
    }
    out += pretty[i];
  }
  return out;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void write_sorted_pairs(
    io::Writer& w, const std::vector<std::pair<std::string, double>>& pairs) {
  std::vector<std::pair<std::string, double>> sorted = pairs;
  std::sort(sorted.begin(), sorted.end());
  w.begin_object();
  for (const auto& [key, value] : sorted) {
    w.key(key);
    w.value(value);
  }
  w.end_object();
}

bool fail(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

/// The marker the checksum splits the line at. The "obs"/"metrics"
/// sub-objects hold only number values, so this byte sequence cannot
/// occur earlier in a well-formed line.
constexpr const char* kChecksumMarker = ",\"checksum\": \"";

std::vector<std::pair<std::string, double>> number_fields(
    const io::JsonPtr& obj) {
  std::vector<std::pair<std::string, double>> out;
  if (obj == nullptr) return out;
  for (const auto& [key, value] : obj->fields()) {
    out.emplace_back(key, value->as_number());
  }
  return out;  // JsonValue::fields() is a sorted map — canonical order
}

}  // namespace

bool PerfRecord::find(std::string_view key, double& out) const {
  if (key == "wall_ms") {
    out = wall_ms;
    return true;
  }
  for (const auto& [k, v] : obs) {
    if (k == key) {
      out = v;
      return true;
    }
  }
  for (const auto& [k, v] : metrics) {
    if (k == key) {
      out = v;
      return true;
    }
  }
  return false;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string record_to_line(const PerfRecord& record) {
  io::JsonWriter w;
  w.begin_object();
  w.key("perfdb");
  w.value(kPerfDbVersion);
  w.key("bench");
  w.value(record.bench);
  w.key("card");
  w.value(record.card);
  w.key("rev");
  w.value(record.rev);
  w.key("ts");
  w.value(record.ts);
  w.key("shape_ok");
  w.value(record.shape_ok);
  w.key("interrupted");  // always explicit so loaders never infer
  w.value(record.interrupted);
  w.key("wall_ms");
  w.value(record.wall_ms);
  w.key("threads");
  w.value(record.threads);
  w.key("metrics");
  write_sorted_pairs(w, record.metrics);
  w.key("obs");
  write_sorted_pairs(w, record.obs);
  w.end_object();

  std::string body = compact(w.str());
  body.pop_back();  // drop the closing '}' to splice the checksum in
  const std::string digest = hex16(fnv1a64(body));
  return body + kChecksumMarker + digest + "\"}";
}

bool parse_record_line(std::string_view line, PerfRecord& out,
                       std::string* error) {
  const std::size_t marker = line.rfind(kChecksumMarker);
  if (marker == std::string_view::npos) {
    return fail(error, "no checksum member");
  }
  const std::string_view body = line.substr(0, marker);
  const std::size_t digest_at = marker + std::string_view(kChecksumMarker).size();
  if (line.size() < digest_at + 16) {
    return fail(error, "truncated checksum");
  }
  const std::string digest(line.substr(digest_at, 16));
  char* end = nullptr;
  const std::uint64_t claimed = std::strtoull(digest.c_str(), &end, 16);
  if (end != digest.c_str() + 16) {
    return fail(error, "malformed checksum digits");
  }
  if (claimed != fnv1a64(body)) {
    return fail(error, "checksum mismatch (torn or corrupted line)");
  }

  std::string parse_error;
  const io::JsonPtr doc = io::json_parse(line, &parse_error);
  if (doc == nullptr) {
    return fail(error, "malformed record JSON: " + parse_error);
  }
  if (doc->string_at("perfdb") != kPerfDbVersion) {
    return fail(error, "unknown perfdb version '" +
                           doc->string_at("perfdb") + "'");
  }
  PerfRecord r;
  r.bench = doc->string_at("bench");
  if (r.bench.empty()) return fail(error, "record without a bench name");
  r.card = doc->string_at("card");
  r.rev = doc->string_at("rev");
  r.ts = static_cast<std::uint64_t>(doc->number_at("ts", 0.0));
  r.shape_ok = doc->bool_at("shape_ok", false);
  r.interrupted = doc->bool_at("interrupted", false);
  r.wall_ms = doc->number_at("wall_ms", 0.0);
  r.threads = static_cast<std::uint64_t>(doc->number_at("threads", 0.0));
  r.metrics = number_fields(doc->get("metrics"));
  r.obs = number_fields(doc->get("obs"));
  out = std::move(r);
  return true;
}

bool record_from_bench_json(std::string_view text, PerfRecord& out,
                            std::string* error) {
  std::string parse_error;
  const io::JsonPtr doc = io::json_parse(text, &parse_error);
  if (doc == nullptr) {
    return fail(error, "malformed BENCH JSON: " + parse_error);
  }
  PerfRecord r;
  r.bench = doc->string_at("bench");
  if (r.bench.empty()) {
    return fail(error, "BENCH document without a \"bench\" name");
  }
  r.card = doc->string_at("card");
  r.shape_ok = doc->bool_at("shape_ok", false);
  r.interrupted = doc->bool_at("interrupted", false);
  r.wall_ms = doc->number_at("wall_ms", 0.0);
  r.threads = static_cast<std::uint64_t>(doc->number_at("threads", 0.0));
  r.metrics = number_fields(doc->get("metrics"));
  r.obs = number_fields(doc->get("obs"));
  out = std::move(r);
  return true;
}

}  // namespace subscale::perfdb
