#pragma once

/// \file record.h
/// One perf-history record: the durable, longitudinal form of a
/// BENCH_<name>.json document. Where a BENCH file is the *latest* run
/// (overwritten every time), a PerfRecord is one line of an append-only
/// JSONL history (perfdb/store.h) tagged with when it ran and what
/// source revision produced it, so rollup queries (perfdb/rollup.h) can
/// see drift across PRs, not just across two files.
///
/// Line format — one compact, self-checksummed JSON object, e.g.
///   {"perfdb": "subscale.perfdb.v1", "bench": "tcad_validation", ...,
///    "obs": {...}, "checksum": "9f86d081884c7d65"}
/// The checksum is FNV-1a-64 over every byte of the line up to (and not
/// including) the `,"checksum"` member, rendered as 16 lowercase hex
/// digits. A loader verifies it before trusting the line: a torn or
/// bit-flipped line fails closed (skip-and-count, perfdb/store.h)
/// instead of feeding a corrupted value into a trend baseline.
///
/// Key order inside "metrics"/"obs" is sorted, so parse -> render is a
/// byte fixed point — the same canonical-bytes stance the serve wire
/// schema takes (serve/query.h).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace subscale::perfdb {

/// The record-schema version string every line carries. Bump it when a
/// field changes meaning; loaders reject lines speaking another version
/// (counted as corrupt) rather than guessing.
inline constexpr const char* kPerfDbVersion = "subscale.perfdb.v1";

struct PerfRecord {
  std::string bench;  ///< bench name ("tcad_validation", ...)
  std::string card;   ///< technology-card id the run used
  std::string rev;    ///< source revision (SUBSCALE_GIT_REV); "" unknown
  std::uint64_t ts = 0;     ///< unix seconds when the record was made
  bool shape_ok = false;    ///< the bench's shape criterion held
  bool interrupted = false; ///< flushed by a signal handler mid-run —
                            ///< partial counters; loaders exclude these
                            ///< from baselines by default
  double wall_ms = 0.0;
  std::uint64_t threads = 0;
  /// The bench's headline numbers (BENCH "metrics" block).
  std::vector<std::pair<std::string, double>> metrics;
  /// The flat telemetry block (BENCH "obs" block: counters, gauges,
  /// histograms flattened to .count/.sum — see io::write_metrics_snapshot).
  std::vector<std::pair<std::string, double>> obs;

  /// Value lookup across the record's series-able keys: "wall_ms", any
  /// obs key, any headline metric key (obs wins on collision). False
  /// when absent.
  bool find(std::string_view key, double& out) const;
};

/// FNV-1a-64 of a byte string — the line checksum. Public so tests can
/// forge/verify lines without reimplementing it.
std::uint64_t fnv1a64(std::string_view bytes);

/// Render one self-checksummed JSONL line (compact, no trailing
/// newline; "metrics"/"obs" keys sorted).
std::string record_to_line(const PerfRecord& record);

/// Parse + verify one line. False — with the reason in `error` when
/// non-null — on malformed JSON, a missing/forged checksum, a version
/// mismatch, or an empty bench name. On success `out` is fully
/// populated (absent optional fields default).
bool parse_record_line(std::string_view line, PerfRecord& out,
                       std::string* error = nullptr);

/// Build a PerfRecord from a BENCH_<name>.json document's text (the
/// obs_trend `append` ingest path). `ts` and `rev` are NOT in BENCH
/// documents — the caller stamps them afterwards. False + reason on
/// malformed or bench-less input.
bool record_from_bench_json(std::string_view text, PerfRecord& out,
                            std::string* error = nullptr);

}  // namespace subscale::perfdb
