#pragma once

/// \file store.h
/// The append-only perf-history store: one `<dir>/<bench>.jsonl` file
/// per bench, one self-checksummed PerfRecord line per run, oldest
/// first. File-per-bench is the concurrency design, not a convenience:
/// appends are read-modify-rename (cache::atomic_write_file — the same
/// temp-file + fsync + rename primitive the solve cache publishes
/// through), so a reader always sees a whole file of whole lines, and
/// two *different* benches append in parallel without touching each
/// other. Two simultaneous appends to the SAME bench would lose one
/// record (last rename wins) — benches are single-writer per process
/// run, which check.sh and the bench driver both respect.
///
/// Load stance mirrors the solve cache's: corruption is data loss, not
/// an error. A line that fails its checksum or JSON parse is skipped
/// and counted (LoadStats::corrupt), never fed into a trend baseline.
/// Records stamped `interrupted` (a SIGTERM-flushed partial run) are
/// likewise excluded by default — their counters describe a fraction of
/// a run and would drag a rolling median — but can be opted back in for
/// forensics.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "perfdb/record.h"

namespace subscale::perfdb {

class PerfDb {
 public:
  /// Binds the store to a directory (created lazily on first append).
  explicit PerfDb(std::string dir);

  const std::string& dir() const { return dir_; }

  /// The history file for a bench name. Names outside [A-Za-z0-9_-]
  /// are sanitized to '_' so a hostile bench name cannot escape `dir`.
  std::string path_for(std::string_view bench) const;

  /// Append one record to its bench's history (atomic rename; creates
  /// the directory). False on an empty bench name or any I/O failure —
  /// the previous history is untouched either way.
  bool append(const PerfRecord& record);

  struct LoadStats {
    std::size_t total_lines = 0;  ///< non-empty lines seen
    std::size_t loaded = 0;       ///< records returned
    std::size_t corrupt = 0;      ///< skipped: bad checksum/JSON/version
    std::size_t interrupted = 0;  ///< skipped: partial signal-flushed runs
  };

  /// The history for `bench`, oldest first (file order). Corrupt lines
  /// skip-and-count; interrupted records are excluded unless opted in.
  /// A missing file is an empty history, not an error.
  std::vector<PerfRecord> load(std::string_view bench,
                               LoadStats* stats = nullptr,
                               bool include_interrupted = false) const;

  /// Bench names with history present, sorted.
  std::vector<std::string> benches() const;

 private:
  std::string dir_;
};

}  // namespace subscale::perfdb
