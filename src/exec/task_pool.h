#pragma once

/// \file task_pool.h
/// A fixed-size pool of worker threads draining one FIFO work queue.
/// This is the only place in the library that owns threads; the
/// parallel_for/parallel_map wrappers (exec/parallel.h) are what the
/// compute layers actually call.
///
/// Tasks submitted to the pool must not throw — the wrappers catch
/// per-task exceptions and return them as structured results, so a
/// throwing task never takes a worker (or the process) down.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace subscale::exec {

class TaskPool {
 public:
  /// Spawns `threads` workers (at least 1) that start draining the
  /// queue immediately. `metrics` (default: the process-wide
  /// obs::default_registry(), which may be null = telemetry off)
  /// receives queue-depth / task-count / utilization instruments on
  /// the pool's lifetime; see obs/names.h for the key set.
  explicit TaskPool(std::size_t threads,
                    obs::MetricsRegistry* metrics = obs::default_registry());

  /// Finishes every queued task, then joins the workers.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue one task. The task must not throw (see file comment).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished running (the queue
  /// is empty and no worker is mid-task).
  void wait_idle();

  /// True when the calling thread is a worker of *any* TaskPool. Used
  /// by the parallel_* wrappers to run nested parallelism inline
  /// instead of deadlocking on a second pool's queue.
  static bool on_worker_thread();

  /// Fraction of worker capacity spent inside tasks so far, in percent
  /// (busy ns / (threads * pool lifetime ns)). Exposed for tests; the
  /// same number is published as a gauge when the pool dies.
  double utilization_pct() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::size_t pending_ = 0;  ///< queued + currently running tasks
  bool stop_ = false;

  // Telemetry (instrument pointers cached once at construction; the
  // registry outlives the pool by the default-registry contract).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* tasks_run_counter_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  std::atomic<std::uint64_t> busy_ns_{0};  ///< sum of task run times
  std::chrono::steady_clock::time_point born_;
};

}  // namespace subscale::exec
