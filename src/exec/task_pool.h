#pragma once

/// \file task_pool.h
/// A fixed-size pool of worker threads draining one FIFO work queue.
/// This is the only place in the library that owns threads; the
/// parallel_for/parallel_map wrappers (exec/parallel.h) are what the
/// compute layers actually call.
///
/// Tasks submitted to the pool must not throw — the wrappers catch
/// per-task exceptions and return them as structured results, so a
/// throwing task never takes a worker (or the process) down.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace subscale::exec {

class TaskPool {
 public:
  /// Spawns `threads` workers (at least 1) that start draining the
  /// queue immediately.
  explicit TaskPool(std::size_t threads);

  /// Finishes every queued task, then joins the workers.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue one task. The task must not throw (see file comment).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished running (the queue
  /// is empty and no worker is mid-task).
  void wait_idle();

  /// True when the calling thread is a worker of *any* TaskPool. Used
  /// by the parallel_* wrappers to run nested parallelism inline
  /// instead of deadlocking on a second pool's queue.
  static bool on_worker_thread();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::size_t pending_ = 0;  ///< queued + currently running tasks
  bool stop_ = false;
};

}  // namespace subscale::exec
