#pragma once

/// \file parallel.h
/// Structured data-parallel loops on top of TaskPool.
///
/// Contract (relied on by core/circuits/scaling and enforced by
/// tests/test_exec.cpp):
///   * results are ordered by task index, never by completion order;
///   * a task that throws yields a structured TaskError/TaskResult for
///     that index — with the original exception preserved as an
///     std::exception_ptr so strict callers can rethrow it (keeping
///     e.g. tcad::SolverError and its SolverReport intact) — while
///     every other task still runs to completion;
///   * a resolved thread count of 1 executes the exact serial path:
///     fn(0), fn(1), ... inline on the calling thread, no pool;
///   * nested calls from inside a pool worker run inline (serially)
///     instead of submitting to a second pool, so layered parallelism
///     (roadmap over nodes -> candidate scan per node) cannot deadlock
///     or oversubscribe.

#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exec/policy.h"

namespace subscale::obs {
class SpanProfiler;
class TraceRing;
}  // namespace subscale::obs

namespace subscale::exec {

/// One task index that threw, with the message and the rethrowable
/// original exception.
struct TaskError {
  std::size_t index = 0;
  std::string message;
  std::exception_ptr exception;
};

/// Observability hooks for one parallel loop. `profiler` null falls
/// back to obs::default_profiler(); `trace` null disables task events
/// (no process default, matching RunContext::trace). Each task then
/// records one "exec.task" span and one kTaskSpan trace event carrying
/// (index, duration ms) — on the serial path too, so task *counts* stay
/// thread-count-invariant per the §10.3 determinism contract.
struct TaskObs {
  obs::SpanProfiler* profiler = nullptr;
  obs::TraceRing* trace = nullptr;
};

/// Run fn(i) for i in [0, n), capturing per-task exceptions. Returns
/// the failures sorted by index (empty = all tasks succeeded).
std::vector<TaskError> parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& fn,
    const ExecPolicy& policy = global_policy(), const TaskObs& obs = {});

/// Rethrow the lowest-index failure (no-op when there is none). This
/// is what strict modes use: the first failure in index order is the
/// same one the serial loop would have hit first.
void rethrow_first(const std::vector<TaskError>& errors);

/// Outcome of one mapped task: value on success, error otherwise.
template <typename T>
struct TaskResult {
  std::size_t index = 0;
  std::optional<T> value;
  std::string error;
  std::exception_ptr exception;
  bool ok() const { return value.has_value(); }
};

/// Map fn over [0, n), returning one TaskResult per index, in index
/// order. T must be default-irrelevant: a failed index carries no value.
template <typename T>
std::vector<TaskResult<T>> parallel_map(
    std::size_t n, const std::function<T(std::size_t)>& fn,
    const ExecPolicy& policy = global_policy(), const TaskObs& obs = {}) {
  std::vector<TaskResult<T>> results(n);
  const std::vector<TaskError> errors = parallel_for(
      n, [&](std::size_t i) { results[i].value.emplace(fn(i)); }, policy,
      obs);
  for (std::size_t i = 0; i < n; ++i) results[i].index = i;
  for (const TaskError& e : errors) {
    results[e.index].error = e.message;
    results[e.index].exception = e.exception;
  }
  return results;
}

/// Rethrow the lowest-index failed result (no-op when all succeeded).
template <typename T>
void rethrow_first(const std::vector<TaskResult<T>>& results) {
  for (const TaskResult<T>& r : results) {
    if (!r.ok() && r.exception) std::rethrow_exception(r.exception);
  }
}

/// Unwrap an all-success map into plain values (index order). Throws
/// the first failure if any task failed.
template <typename T>
std::vector<T> values_or_throw(std::vector<TaskResult<T>> results) {
  rethrow_first(results);
  std::vector<T> out;
  out.reserve(results.size());
  for (TaskResult<T>& r : results) out.push_back(std::move(*r.value));
  return out;
}

}  // namespace subscale::exec
