#pragma once

/// \file rng.h
/// Deterministic per-shard RNG stream derivation for parallel Monte
/// Carlo. A workload that shards its samples into fixed-size blocks and
/// seeds each block with seed_stream(base, block_index) produces
/// bitwise-identical results at every thread count: the stream layout
/// depends only on the shard index, never on which worker ran it.

#include <cstdint>

namespace subscale::exec {

/// SplitMix64 finalizer — a cheap, well-mixed 64-bit permutation
/// (Steele et al., "Fast splittable pseudorandom number generators").
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Seed for the `stream`-th independent RNG stream derived from `base`.
/// Distinct (base, stream) pairs land on well-separated seeds even when
/// base seeds are small consecutive integers.
constexpr std::uint64_t seed_stream(std::uint64_t base, std::uint64_t stream) {
  return splitmix64(base ^ splitmix64(stream + 1));
}

}  // namespace subscale::exec
