#pragma once

/// \file policy.h
/// Process-wide execution policy for the task runtime. Thread counts
/// resolve in priority order: explicit option > SUBSCALE_THREADS
/// environment variable > hardware concurrency. A resolved count of 1
/// makes every parallel_* entry point degrade to the exact serial path
/// (no pool, no locks, index order), which is the baseline of the
/// determinism contract: results at any thread count must match the
/// serial run bitwise.

#include <cstddef>

namespace subscale::exec {

struct ExecPolicy {
  /// Worker threads to use. 0 = auto: SUBSCALE_THREADS if set and
  /// valid, otherwise std::thread::hardware_concurrency().
  std::size_t threads = 0;

  /// The concrete thread count this policy resolves to (always >= 1).
  std::size_t resolved_threads() const;

  static ExecPolicy serial() { return ExecPolicy{1}; }
};

/// Thread count requested by SUBSCALE_THREADS, or 0 when unset,
/// empty, non-numeric, or zero (all of which mean "auto").
std::size_t env_thread_override();

/// The policy parallel_* entry points use when the caller passes none.
/// Defaults to auto ({threads = 0}).
ExecPolicy global_policy();

/// Replace the process-wide default policy (e.g. a bench pinning the
/// whole run to one thread). Thread-safe.
void set_global_policy(const ExecPolicy& policy);

}  // namespace subscale::exec
