#include "exec/task_pool.h"

#include <stdexcept>

namespace subscale::exec {

namespace {

thread_local bool tl_on_worker_thread = false;

}  // namespace

TaskPool::TaskPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void TaskPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      throw std::logic_error("TaskPool::submit: pool is shutting down");
    }
    queue_.push_back(std::move(task));
    ++pending_;
  }
  work_ready_.notify_one();
}

void TaskPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

bool TaskPool::on_worker_thread() { return tl_on_worker_thread; }

void TaskPool::worker_loop() {
  tl_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace subscale::exec
