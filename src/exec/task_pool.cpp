#include "exec/task_pool.h"

#include <stdexcept>

#include "obs/names.h"

namespace subscale::exec {

namespace {

thread_local bool tl_on_worker_thread = false;

}  // namespace

TaskPool::TaskPool(std::size_t threads, obs::MetricsRegistry* metrics)
    : metrics_(metrics), born_(std::chrono::steady_clock::now()) {
  if (threads == 0) threads = 1;
  if (metrics_ != nullptr) {
    // Look the instruments up once; submit/worker paths only touch
    // atomics after this.
    tasks_run_counter_ = &metrics_->counter(obs::names::kPoolTasksRun);
    queue_depth_gauge_ = &metrics_->gauge(obs::names::kPoolQueueDepthMax);
    metrics_->counter(obs::names::kPoolPools).add(1);
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  if (metrics_ != nullptr) {
    metrics_->gauge(obs::names::kPoolUtilizationPct).set(utilization_pct());
  }
}

double TaskPool::utilization_pct() const {
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - born_)
          .count());
  if (!(wall_ns > 0.0)) return 0.0;
  const double busy = static_cast<double>(
      busy_ns_.load(std::memory_order_relaxed));
  return 100.0 * busy / (wall_ns * static_cast<double>(workers_.size()));
}

void TaskPool::submit(std::function<void()> task) {
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      throw std::logic_error("TaskPool::submit: pool is shutting down");
    }
    queue_.push_back(std::move(task));
    ++pending_;
    depth = queue_.size();
  }
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->set_max(static_cast<double>(depth));
  }
  work_ready_.notify_one();
}

void TaskPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

bool TaskPool::on_worker_thread() { return tl_on_worker_thread; }

void TaskPool::worker_loop() {
  tl_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto start = std::chrono::steady_clock::now();
    task();
    if (metrics_ != nullptr) {
      busy_ns_.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count()),
          std::memory_order_relaxed);
      tasks_run_counter_->add(1);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace subscale::exec
