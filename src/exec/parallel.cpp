#include "exec/parallel.h"

#include <algorithm>
#include <mutex>

#include "exec/task_pool.h"

namespace subscale::exec {

namespace {

TaskError capture(std::size_t index) {
  TaskError error;
  error.index = index;
  error.exception = std::current_exception();
  try {
    throw;
  } catch (const std::exception& e) {
    error.message = e.what();
  } catch (...) {
    error.message = "unknown exception";
  }
  return error;
}

std::vector<TaskError> serial_for(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<TaskError> errors;
  for (std::size_t i = 0; i < n; ++i) {
    try {
      fn(i);
    } catch (...) {
      errors.push_back(capture(i));
    }
  }
  return errors;
}

}  // namespace

std::vector<TaskError> parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& fn,
    const ExecPolicy& policy) {
  const std::size_t threads = std::min(policy.resolved_threads(), n);
  if (threads <= 1 || TaskPool::on_worker_thread()) {
    return serial_for(n, fn);
  }

  std::vector<TaskError> errors;
  std::mutex errors_mu;
  {
    TaskPool pool(threads);
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&fn, &errors, &errors_mu, i] {
        try {
          fn(i);
        } catch (...) {
          TaskError error = capture(i);
          std::lock_guard<std::mutex> lock(errors_mu);
          errors.push_back(std::move(error));
        }
      });
    }
    pool.wait_idle();
  }
  std::sort(errors.begin(), errors.end(),
            [](const TaskError& a, const TaskError& b) {
              return a.index < b.index;
            });
  return errors;
}

void rethrow_first(const std::vector<TaskError>& errors) {
  if (!errors.empty() && errors.front().exception) {
    std::rethrow_exception(errors.front().exception);
  }
}

}  // namespace subscale::exec
