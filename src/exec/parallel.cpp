#include "exec/parallel.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "exec/task_pool.h"
#include "obs/names.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace subscale::exec {

namespace {

TaskError capture(std::size_t index) {
  TaskError error;
  error.index = index;
  error.exception = std::current_exception();
  try {
    throw;
  } catch (const std::exception& e) {
    error.message = e.what();
  } catch (...) {
    error.message = "unknown exception";
  }
  return error;
}

/// One task body with its observability wrapper. Shared by the serial
/// and pooled paths so a loop records the same events (one "exec.task"
/// span + one kTaskSpan trace event per index) at any thread count.
void run_task(const std::function<void(std::size_t)>& fn, std::size_t i,
              obs::SpanProfiler* profiler, obs::TraceRing* trace) {
  const obs::ScopedSpan span(profiler, obs::names::spans::kTask);
  if (trace == nullptr) {
    fn(i);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  try {
    fn(i);
  } catch (...) {
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    trace->record(obs::TraceKind::kTaskSpan, "parallel_for",
                  static_cast<double>(i), ms);
    throw;
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  trace->record(obs::TraceKind::kTaskSpan, "parallel_for",
                static_cast<double>(i), ms);
}

std::vector<TaskError> serial_for(
    std::size_t n, const std::function<void(std::size_t)>& fn,
    obs::SpanProfiler* profiler, obs::TraceRing* trace) {
  std::vector<TaskError> errors;
  for (std::size_t i = 0; i < n; ++i) {
    try {
      run_task(fn, i, profiler, trace);
    } catch (...) {
      errors.push_back(capture(i));
    }
  }
  return errors;
}

}  // namespace

std::vector<TaskError> parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& fn,
    const ExecPolicy& policy, const TaskObs& task_obs) {
  obs::SpanProfiler* profiler = task_obs.profiler != nullptr
                                    ? task_obs.profiler
                                    : obs::default_profiler();
  obs::TraceRing* trace = task_obs.trace;
  const std::size_t threads = std::min(policy.resolved_threads(), n);
  if (threads <= 1 || TaskPool::on_worker_thread()) {
    return serial_for(n, fn, profiler, trace);
  }

  std::vector<TaskError> errors;
  std::mutex errors_mu;
  {
    TaskPool pool(threads);
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&fn, &errors, &errors_mu, profiler, trace, i] {
        try {
          run_task(fn, i, profiler, trace);
        } catch (...) {
          TaskError error = capture(i);
          std::lock_guard<std::mutex> lock(errors_mu);
          errors.push_back(std::move(error));
        }
      });
    }
    pool.wait_idle();
  }
  std::sort(errors.begin(), errors.end(),
            [](const TaskError& a, const TaskError& b) {
              return a.index < b.index;
            });
  return errors;
}

void rethrow_first(const std::vector<TaskError>& errors) {
  if (!errors.empty() && errors.front().exception) {
    std::rethrow_exception(errors.front().exception);
  }
}

}  // namespace subscale::exec
