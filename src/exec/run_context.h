#pragma once

/// \file run_context.h
/// RunContext: the one object that travels top-down through the solver
/// stack. It consolidates the knobs that PRs 1–2 had scattered across
/// SweepOptions (`strict`), TcadValidationOptions (`strict` + `exec`),
/// StudyOptions and bare ExecPolicy parameters:
///
///   * `exec`    — thread policy. Resolution precedence is documented
///                 and tested: explicit per-layer ExecPolicy >
///                 StudyOptions-level RunContext > SUBSCALE_THREADS >
///                 hardware auto (see ExecPolicy::resolved_threads and
///                 ScalingStudy's constructor).
///   * `metrics` — telemetry sink. Null means "fall back to the
///                 process-wide obs::default_registry()", which is
///                 itself null unless installed — the zero-overhead
///                 default.
///   * `trace`   — optional structured event ring (stage enter/exit,
///                 retry, step-halve, rollback, fault injection).
///   * `profiler` — optional hierarchical span profiler. Null falls
///                 back to obs::default_profiler() (itself null unless
///                 installed), mirroring `metrics`.
///   * `convergence` — optional per-solve residual-trajectory recorder.
///                 Strictly opt-in: no process-wide default exists.
///   * `cache`   — optional persistent solve cache. Null falls back to
///                 cache::default_cache() (itself null unless installed,
///                 e.g. via cache::install_env_cache() from
///                 SUBSCALE_CACHE_DIR), mirroring `metrics`. Components
///                 resolve it once at construction.
///   * `strict`  — throw on the first solver failure instead of
///                 recording it and continuing.
///
/// Like GummelOptions, a RunContext is validated at the point a
/// component adopts it (TcadDevice, ScalingStudy), not at each field
/// assignment.

#include <cstddef>

#include "exec/policy.h"
#include "obs/convergence.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace subscale::cache {
class SolveCache;
SolveCache* default_cache();
}  // namespace subscale::cache

namespace subscale::exec {

struct RunContext {
  ExecPolicy exec{};
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRing* trace = nullptr;
  obs::SpanProfiler* profiler = nullptr;
  obs::ConvergenceRecorder* convergence = nullptr;
  cache::SolveCache* cache = nullptr;
  /// Opt out of the default-cache fallback entirely (cache_sink() then
  /// resolves to null even when an env cache is installed). Benches use
  /// this to measure genuinely cold solves under SUBSCALE_CACHE_DIR.
  bool no_cache = false;
  bool strict = false;

  /// Fat-finger guard on explicit thread counts (a request for tens of
  /// thousands of workers is always a unit mistake, not a policy).
  static constexpr std::size_t kMaxThreads = 4096;

  /// Throws std::invalid_argument naming the offending field
  /// (GummelOptions::validate style). Called by every component
  /// constructor/entry point that adopts the context.
  void validate() const;

  /// The telemetry sink this context resolves to: the explicit
  /// registry, else the process default, else null (telemetry off).
  obs::MetricsRegistry* sink() const {
    return metrics != nullptr ? metrics : obs::default_registry();
  }

  /// The span profiler this context resolves to: the explicit profiler,
  /// else the process default, else null (profiling off). Components
  /// resolve this once at construction, Instruments-style.
  obs::SpanProfiler* span_sink() const {
    return profiler != nullptr ? profiler : obs::default_profiler();
  }

  /// The solve cache this context resolves to: the explicit cache, else
  /// the process default, else null (caching off). Resolved once at
  /// component construction, like the metrics sink.
  cache::SolveCache* cache_sink() const {
    if (no_cache) return nullptr;
    return cache != nullptr ? cache : cache::default_cache();
  }

  std::size_t resolved_threads() const { return exec.resolved_threads(); }

  static RunContext serial() {
    RunContext ctx;
    ctx.exec = ExecPolicy::serial();
    return ctx;
  }
};

}  // namespace subscale::exec
