#include "exec/policy.h"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>

namespace subscale::exec {

namespace {

/// The default-policy thread count; 0 keeps the auto resolution.
std::atomic<std::size_t> g_default_threads{0};

}  // namespace

std::size_t env_thread_override() {
  const char* raw = std::getenv("SUBSCALE_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  // Digits only: strtoul would silently wrap "-2" to a huge count.
  for (const char* c = raw; *c != '\0'; ++c) {
    if (*c < '0' || *c > '9') return 0;
  }
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(raw, &end, 10);
  if (end == raw || (end != nullptr && *end != '\0')) return 0;
  return static_cast<std::size_t>(parsed);
}

std::size_t ExecPolicy::resolved_threads() const {
  if (threads > 0) return threads;
  const std::size_t from_env = env_thread_override();
  if (from_env > 0) return from_env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

ExecPolicy global_policy() {
  return ExecPolicy{g_default_threads.load(std::memory_order_relaxed)};
}

void set_global_policy(const ExecPolicy& policy) {
  g_default_threads.store(policy.threads, std::memory_order_relaxed);
}

}  // namespace subscale::exec
