#include "exec/run_context.h"

#include <stdexcept>
#include <string>

namespace subscale::exec {

void RunContext::validate() const {
  if (exec.threads > kMaxThreads) {
    throw std::invalid_argument(
        "RunContext: exec.threads = " + std::to_string(exec.threads) +
        " exceeds the sanity cap of " + std::to_string(kMaxThreads) +
        " (0 means auto; explicit counts are worker threads, not items)");
  }
}

}  // namespace subscale::exec
