#pragma once

/// \file csv.h
/// CSV export of data series (so figure data can be re-plotted outside).

#include <string>
#include <vector>

#include "io/series.h"

namespace subscale::io {

/// Render series sharing an x axis as CSV text: header "x,name1,name2,...",
/// one row per x of the FIRST series; other series must have identical x
/// values (throws std::invalid_argument otherwise).
std::string to_csv(const std::vector<Series>& series);

/// Write CSV text to a file (throws std::runtime_error on I/O failure).
void write_csv_file(const std::string& path, const std::vector<Series>& series);

}  // namespace subscale::io
