#include "io/csv.h"

#include <fstream>
#include <stdexcept>

#include "io/writer.h"

namespace subscale::io {

std::string to_csv(const std::vector<Series>& series) {
  // One serialization path for curves: the same column document that
  // the JSON backend renders for BENCH records, through the CSV
  // backend (see io/writer.h).
  CsvWriter w;
  write_series_document(w, series);
  return w.str();
}

void write_csv_file(const std::string& path,
                    const std::vector<Series>& series) {
  const std::string text = to_csv(series);
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("write_csv_file: cannot open " + path);
  }
  file << text;
  if (!file) {
    throw std::runtime_error("write_csv_file: write failed for " + path);
  }
}

}  // namespace subscale::io
