#include "io/csv.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace subscale::io {

std::string to_csv(const std::vector<Series>& series) {
  if (series.empty()) {
    throw std::invalid_argument("to_csv: no series");
  }
  const std::size_t n = series.front().size();
  for (const Series& s : series) {
    if (s.size() != n) {
      throw std::invalid_argument("to_csv: series lengths differ");
    }
  }
  std::ostringstream out;
  out << "x";
  for (const Series& s : series) out << ',' << s.name();
  out << '\n';
  for (std::size_t i = 0; i < n; ++i) {
    const double x = series.front()[i].x;
    for (const Series& s : series) {
      if (std::abs(s[i].x - x) > 1e-12 * std::max(1.0, std::abs(x))) {
        throw std::invalid_argument("to_csv: series x axes differ");
      }
    }
    out << x;
    for (const Series& s : series) out << ',' << s[i].y;
    out << '\n';
  }
  return out.str();
}

void write_csv_file(const std::string& path,
                    const std::vector<Series>& series) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("write_csv_file: cannot open " + path);
  }
  file << to_csv(series);
  if (!file) {
    throw std::runtime_error("write_csv_file: write failed for " + path);
  }
}

}  // namespace subscale::io
