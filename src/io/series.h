#pragma once

/// \file series.h
/// Named (x, y) data series — the in-memory representation of a paper
/// figure's curve, with helpers the benches use (normalization, per-
/// generation change, min/max).

#include <string>
#include <vector>

namespace subscale::io {

struct DataPoint {
  double x = 0.0;
  double y = 0.0;
};

/// One labelled curve.
class Series {
 public:
  Series() = default;
  explicit Series(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void add(double x, double y) { points_.push_back({x, y}); }

  const std::vector<DataPoint>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }
  const DataPoint& operator[](std::size_t i) const { return points_[i]; }

  double y_min() const;
  double y_max() const;

  /// Series with every y divided by the first point's y.
  Series normalized_to_first() const;

  /// y[i+1]/y[i] for each consecutive pair (per-generation ratios).
  std::vector<double> consecutive_ratios() const;

  /// Relative change (y_last - y_first) / y_first.
  double total_relative_change() const;

 private:
  std::string name_;
  std::vector<DataPoint> points_;
};

}  // namespace subscale::io
