#pragma once

/// \file json_parse.h
/// Minimal JSON reader for the library's own artifacts (study manifests,
/// BENCH records, merged study outputs). The writers in this directory
/// emit a small, predictable JSON dialect; this parser accepts full
/// JSON anyway (objects, arrays, strings with escapes, numbers, bools,
/// null) so hand-edited manifests still load.
///
/// Design mirrors cache::ByteReader: no exceptions from malformed
/// input — parse() returns nullptr and fills an error string with the
/// offset and reason. Numbers are held as double (the writers emit
/// %.17g, so doubles round-trip bit-exactly; integers are exact up to
/// 2^53, far beyond any index this library serializes).

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace subscale::io {

class JsonValue;
using JsonPtr = std::shared_ptr<const JsonValue>;

/// One parsed JSON value. Accessors are total: asking an object for a
/// missing key (or the wrong type) returns null / a caller default
/// instead of throwing, so manifest-loading code reads as a straight
/// line with explicit fallbacks.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool as_bool(bool fallback = false) const {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const {
    return kind_ == Kind::kNumber ? number_ : fallback;
  }
  const std::string& as_string() const { return string_; }

  /// Array access; null when out of range or not an array.
  std::size_t size() const { return array_.size(); }
  JsonPtr at(std::size_t i) const {
    return i < array_.size() ? array_[i] : nullptr;
  }
  const std::vector<JsonPtr>& items() const { return array_; }

  /// Object access; null when the key is absent or not an object.
  JsonPtr get(const std::string& key) const {
    const auto it = object_.find(key);
    return it != object_.end() ? it->second : nullptr;
  }
  bool has(const std::string& key) const {
    return object_.find(key) != object_.end();
  }
  const std::map<std::string, JsonPtr>& fields() const { return object_; }

  /// Convenience: object lookup with typed fallback in one call.
  double number_at(const std::string& key, double fallback) const {
    const JsonPtr v = get(key);
    return v != nullptr ? v->as_number(fallback) : fallback;
  }
  bool bool_at(const std::string& key, bool fallback) const {
    const JsonPtr v = get(key);
    return v != nullptr ? v->as_bool(fallback) : fallback;
  }
  std::string string_at(const std::string& key,
                        const std::string& fallback = {}) const {
    const JsonPtr v = get(key);
    return v != nullptr && v->kind() == Kind::kString ? v->as_string()
                                                      : fallback;
  }

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonPtr> array_;
  std::map<std::string, JsonPtr> object_;
};

/// Parse a complete JSON document. Returns null on any syntax error and
/// describes it (byte offset + reason) in `error` when non-null.
/// Trailing garbage after the document is an error.
JsonPtr json_parse(std::string_view text, std::string* error = nullptr);

/// Parse the contents of a file; null when the file is unreadable or
/// malformed (reason in `error`).
JsonPtr json_parse_file(const std::string& path,
                        std::string* error = nullptr);

}  // namespace subscale::io
