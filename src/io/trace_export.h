#pragma once

/// \file trace_export.h
/// Serializers for the observability artifacts that are documents in
/// their own right (rather than blocks inside a BENCH record): profiler
/// snapshots as Chrome trace-event JSON, and convergence trajectories
/// as a column-friendly JSON document.
///
/// write_chrome_trace emits the trace-event format understood by
/// chrome://tracing and by Perfetto's legacy importer: one "X"
/// (complete) event per closed span, timestamps in microseconds, one
/// track per recording thread. Drag the file into the viewer and the
/// nesting recorded by obs::SpanProfiler renders as a flamegraph.
///
/// Both emitters drive the generic io::Writer, but the trace format is
/// only meaningful as JSON — handing a CsvWriter to write_chrome_trace
/// throws from the writer (nested objects are not CSV-representable),
/// which is the intended failure.

#include <vector>

#include "io/writer.h"
#include "obs/convergence.h"
#include "obs/profiler.h"

namespace subscale::io {

/// Emit a profiler snapshot as a Chrome trace-event document:
/// {"displayTimeUnit": "ms", "traceEvents": [{name, cat, ph, ts, dur,
/// pid, tid, args: {depth, seq, parent}}, ...]}. Events keep the
/// snapshot's (tid, t0, seq) order; pid is always 1 (one process).
void write_chrome_trace(Writer& w, const obs::ProfileSnapshot& snapshot);

/// Emit recorded convergence trajectories as one document:
/// {"solves": [{vg, vd, converged, iteration: [...],
/// poisson_update: [...], poisson_iterations: [...],
/// continuity_max_density: [...], psi_update: [...]}, ...]}.
/// Per-iteration fields are column arrays so a solve's residual decay
/// plots directly; NaN samples (stage never reached) render as null.
void write_convergence_document(
    Writer& w, const std::vector<obs::SolveTrajectory>& solves);

}  // namespace subscale::io
