#include "io/writer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace subscale::io {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN literals; null is the conventional stand-in.
    return "null";
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Shortest decimal text for CSV cells (matches the old to_csv output,
/// which used default ostream formatting: "2" not "2.0000000...").
/// Non-finite values render as "null", matching the JSON backend, so a
/// NaN in a curve cannot silently become platform-dependent "nan"/"inf"
/// text that downstream CSV readers disagree on.
std::string format_cell(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

// ---- JsonWriter -----------------------------------------------------------

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;  // value follows "key": inline
  }
  if (needs_comma_) out_ += ',';
  if (!stack_.empty()) {
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }
}

void JsonWriter::scalar(const std::string& text) {
  separate();
  out_ += text;
  needs_comma_ = true;
}

void JsonWriter::begin_object() {
  separate();
  out_ += '{';
  stack_ += 'o';
  needs_comma_ = false;
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != 'o') {
    throw std::logic_error("JsonWriter: end_object without begin_object");
  }
  stack_.pop_back();
  if (needs_comma_) {
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }
  out_ += '}';
  needs_comma_ = true;
}

void JsonWriter::begin_array() {
  separate();
  out_ += '[';
  stack_ += 'a';
  needs_comma_ = false;
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != 'a') {
    throw std::logic_error("JsonWriter: end_array without begin_array");
  }
  stack_.pop_back();
  if (needs_comma_) {
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }
  out_ += ']';
  needs_comma_ = true;
}

void JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != 'o') {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  separate();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  needs_comma_ = false;
  after_key_ = true;
}

void JsonWriter::value(double v) { scalar(format_double(v)); }

void JsonWriter::value(std::uint64_t v) { scalar(std::to_string(v)); }

void JsonWriter::value(bool v) { scalar(v ? "true" : "false"); }

void JsonWriter::value(std::string_view v) {
  std::string quoted;
  const std::string escaped = json_escape(v);
  quoted.reserve(escaped.size() + 2);
  quoted += '"';
  quoted += escaped;
  quoted += '"';
  scalar(quoted);
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: document has unclosed containers");
  }
  return out_ + "\n";
}

// ---- CsvWriter ------------------------------------------------------------

void CsvWriter::begin_object() {
  if (depth_ != 0 || done_) {
    throw std::invalid_argument(
        "CsvWriter: only one top-level object of columns is representable");
  }
  depth_ = 1;
}

void CsvWriter::end_object() {
  if (depth_ != 1) {
    throw std::invalid_argument("CsvWriter: unbalanced end_object");
  }
  depth_ = 0;
  done_ = true;
}

void CsvWriter::begin_array() {
  if (depth_ != 1 || headers_.size() != columns_.size() + 1) {
    // An array is only legal directly after a column key.
    throw std::invalid_argument(
        "CsvWriter: arrays must be object values (columns)");
  }
  columns_.emplace_back();
  depth_ = 2;
}

void CsvWriter::end_array() {
  if (depth_ != 2) {
    throw std::invalid_argument("CsvWriter: unbalanced end_array");
  }
  depth_ = 1;
}

void CsvWriter::key(std::string_view k) {
  if (depth_ != 1 || headers_.size() != columns_.size()) {
    throw std::invalid_argument("CsvWriter: key outside the column object");
  }
  headers_.emplace_back(k);
}

void CsvWriter::cell(std::string text) {
  if (depth_ != 2) {
    throw std::invalid_argument(
        "CsvWriter: scalar outside a column array (nested documents are "
        "not CSV-representable)");
  }
  columns_.back().push_back(std::move(text));
}

void CsvWriter::value(double v) { cell(format_cell(v)); }

void CsvWriter::value(std::uint64_t v) { cell(std::to_string(v)); }

void CsvWriter::value(bool v) { cell(v ? "true" : "false"); }

void CsvWriter::value(std::string_view v) { cell(std::string(v)); }

std::string CsvWriter::str() const {
  if (!done_ || depth_ != 0) {
    throw std::logic_error("CsvWriter: document is not complete");
  }
  if (headers_.empty()) {
    throw std::invalid_argument("CsvWriter: no columns");
  }
  const std::size_t rows = columns_.front().size();
  for (const auto& col : columns_) {
    if (col.size() != rows) {
      throw std::invalid_argument("CsvWriter: columns have unequal lengths");
    }
  }
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out += ',';
    out += headers_[c];
  }
  out += '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += ',';
      out += columns_[c][r];
    }
    out += '\n';
  }
  return out;
}

// ---- document emitters ----------------------------------------------------

void write_series_document(Writer& w, const std::vector<Series>& series) {
  if (series.empty()) {
    throw std::invalid_argument("write_series_document: no series");
  }
  const Series& first = series.front();
  for (const Series& s : series) {
    if (s.size() != first.size()) {
      throw std::invalid_argument(
          "write_series_document: series lengths differ");
    }
    for (std::size_t i = 0; i < s.size(); ++i) {
      // Same tolerance the CSV exporter always applied: the axes must
      // agree to ~1e-12 relative, not bitwise.
      const double x = first[i].x;
      if (std::abs(s[i].x - x) > 1e-12 * std::max(1.0, std::abs(x))) {
        throw std::invalid_argument(
            "write_series_document: series x axes differ");
      }
    }
  }
  w.begin_object();
  w.key("x");
  w.begin_array();
  for (std::size_t i = 0; i < first.size(); ++i) w.value(first[i].x);
  w.end_array();
  for (const Series& s : series) {
    w.key(s.name());
    w.begin_array();
    for (std::size_t i = 0; i < s.size(); ++i) w.value(s[i].y);
    w.end_array();
  }
  w.end_object();
}

void write_metrics_snapshot(Writer& w, const obs::MetricsSnapshot& snap) {
  w.begin_object();
  for (const auto& [name, value] : snap.counters) {
    w.key(name);
    w.value(static_cast<std::uint64_t>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    w.key(name);
    w.value(value);
  }
  for (const auto& h : snap.histograms) {
    w.key(h.name + ".count");
    w.value(static_cast<std::uint64_t>(h.count));
    w.key(h.name + ".sum");
    w.value(h.sum);
  }
  w.end_object();
}

void write_table_document(Writer& w, const TextTable& table) {
  w.begin_object();
  w.key("headers");
  w.begin_array();
  for (const std::string& h : table.headers()) w.value(h);
  w.end_array();
  w.key("rows");
  w.begin_array();
  for (const auto& row : table.rows()) {
    w.begin_array();
    for (const std::string& cell : row) w.value(cell);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

}  // namespace subscale::io
