#pragma once

/// \file writer.h
/// One structured-document writer interface for every serialized
/// artifact the library emits: BENCH_<name>.json records, metrics
/// snapshots, and the figure-data CSV files all drive the same
/// event-based Writer (begin/end object, begin/end array, key, value)
/// instead of three hand-rolled fprintf paths.
///
/// Backends:
///   * JsonWriter — pretty-printed JSON with correct escaping; accepts
///     any document shape.
///   * CsvWriter  — accepts exactly the "column document" shape (one
///     object whose values are equal-length arrays of scalars) and
///     renders header + rows; anything else throws. This is the shape
///     write_series_document() produces, so CSV export and JSON export
///     of the same curves share one code path.
///
/// Writers are single-document and not thread-safe: build the document
/// on one thread, then str() it.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "io/series.h"
#include "io/table.h"
#include "obs/metrics.h"

namespace subscale::io {

class Writer {
 public:
  virtual ~Writer() = default;

  virtual void begin_object() = 0;
  virtual void end_object() = 0;
  virtual void begin_array() = 0;
  virtual void end_array() = 0;
  /// Key of the next value inside an object.
  virtual void key(std::string_view k) = 0;
  virtual void value(double v) = 0;
  virtual void value(std::uint64_t v) = 0;
  virtual void value(bool v) = 0;
  virtual void value(std::string_view v) = 0;
  /// Guard against const char* binding to the bool overload.
  void value(const char* v) { value(std::string_view(v)); }

  /// The rendered document. Throws std::logic_error while containers
  /// are still open (unbalanced begin/end).
  virtual std::string str() const = 0;
};

/// JSON backend (2-space indent, stable key order = insertion order,
/// %.17g doubles so values round-trip bit-exactly).
class JsonWriter : public Writer {
 public:
  void begin_object() override;
  void end_object() override;
  void begin_array() override;
  void end_array() override;
  void key(std::string_view k) override;
  void value(double v) override;
  void value(std::uint64_t v) override;
  void value(bool v) override;
  void value(std::string_view v) override;
  using Writer::value;  ///< keep the const char* guard visible
  std::string str() const override;

 private:
  void separate();  ///< comma/newline/indent before a new element
  void scalar(const std::string& text);

  std::string out_;
  /// One char per open container: 'o' object, 'a' array.
  std::string stack_;
  bool needs_comma_ = false;
  bool after_key_ = false;
};

/// CSV backend for column documents: {"x": [..], "curve": [..], ...}.
/// Columns must be equal-length arrays of scalars; nesting any deeper
/// (or writing a top-level scalar/array) throws std::invalid_argument.
class CsvWriter : public Writer {
 public:
  void begin_object() override;
  void end_object() override;
  void begin_array() override;
  void end_array() override;
  void key(std::string_view k) override;
  void value(double v) override;
  void value(std::uint64_t v) override;
  void value(bool v) override;
  void value(std::string_view v) override;
  using Writer::value;  ///< keep the const char* guard visible
  std::string str() const override;

 private:
  void cell(std::string text);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> columns_;
  int depth_ = 0;       ///< 0 = outside, 1 = in object, 2 = in a column
  bool done_ = false;
};

/// Emit a set of curves sharing one x axis as a column document:
/// {"x": [...], "<name1>": [...], ...}. All series must have the exact
/// x values of the first one (throws std::invalid_argument otherwise —
/// same contract the old CSV path had).
void write_series_document(Writer& w, const std::vector<Series>& series);

/// Emit a metrics snapshot as one flat object: counters and gauges as
/// "name": value, histograms flattened to "name.count" / "name.sum"
/// (bucket tallies are diagnostic-level and stay out of the flat
/// schema). Key order is sorted-by-kind-then-name and deterministic —
/// tools/bench_schema.sh validates BENCH json against exactly this
/// layout.
void write_metrics_snapshot(Writer& w, const obs::MetricsSnapshot& snap);

/// Emit a TextTable as {"headers": [...], "rows": [[...], ...]} so the
/// paper-vs-measured tables the benches print can also travel in
/// structured records.
void write_table_document(Writer& w, const TextTable& table);

}  // namespace subscale::io
