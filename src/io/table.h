#pragma once

/// \file table.h
/// Aligned plain-text tables for the bench harnesses: every bench prints
/// paper-reported values next to measured values in this format.

#include <string>
#include <vector>

namespace subscale::io {

/// A simple column-oriented text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Add one row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment, a header underline and `indent` spaces
  /// before each line.
  std::string render(int indent = 0) const;

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers with fixed significant digits.
std::string fmt(double value, int precision = 4);
std::string fmt_sci(double value, int precision = 3);
/// "x.xx%" formatting of a ratio (0.23 -> "23.0%").
std::string fmt_pct(double ratio, int precision = 1);

}  // namespace subscale::io
