#include "io/trace_export.h"

namespace subscale::io {

void write_chrome_trace(Writer& w, const obs::ProfileSnapshot& snapshot) {
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  for (const obs::ProfileSpan& span : snapshot.spans) {
    w.begin_object();
    w.key("name");
    w.value(span.label);
    w.key("cat");
    w.value("span");
    w.key("ph");
    w.value("X");
    // Trace-event timestamps are microseconds; fractional µs keeps the
    // full ns resolution of the recorder.
    w.key("ts");
    w.value(static_cast<double>(span.t0_ns) * 1e-3);
    w.key("dur");
    w.value(static_cast<double>(span.t1_ns - span.t0_ns) * 1e-3);
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(static_cast<std::uint64_t>(span.tid));
    w.key("args");
    w.begin_object();
    w.key("depth");
    w.value(static_cast<std::uint64_t>(span.depth));
    w.key("seq");
    w.value(span.seq);
    w.key("parent");
    w.value(span.parent);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("droppedSpans");
  w.value(snapshot.dropped);
  w.end_object();
}

void write_convergence_document(
    Writer& w, const std::vector<obs::SolveTrajectory>& solves) {
  w.begin_object();
  w.key("solves");
  w.begin_array();
  for (const obs::SolveTrajectory& solve : solves) {
    w.begin_object();
    w.key("vg");
    w.value(solve.vg);
    w.key("vd");
    w.value(solve.vd);
    w.key("converged");
    w.value(solve.converged);
    w.key("iteration");
    w.begin_array();
    for (const auto& s : solve.samples) {
      w.value(static_cast<std::uint64_t>(s.iteration));
    }
    w.end_array();
    w.key("poisson_update");
    w.begin_array();
    for (const auto& s : solve.samples) w.value(s.poisson_update);
    w.end_array();
    w.key("poisson_iterations");
    w.begin_array();
    for (const auto& s : solve.samples) {
      w.value(static_cast<std::uint64_t>(s.poisson_iterations));
    }
    w.end_array();
    w.key("continuity_max_density");
    w.begin_array();
    for (const auto& s : solve.samples) w.value(s.continuity_max_density);
    w.end_array();
    w.key("psi_update");
    w.begin_array();
    for (const auto& s : solve.samples) w.value(s.psi_update);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace subscale::io
