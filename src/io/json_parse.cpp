#include "io/json_parse.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace subscale::io {

/// Recursive-descent parser over a bounded view. Depth-limited so a
/// pathological file cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonPtr parse(std::string* error) {
    JsonPtr v = value(0);
    skip_ws();
    if (v != nullptr && pos_ != text_.size()) {
      fail("trailing characters after document");
      v = nullptr;
    }
    if (v == nullptr && error != nullptr) *error = error_;
    return v;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  void fail(const std::string& why) {
    if (error_.empty()) {
      error_ = "json: offset " + std::to_string(pos_) + ": " + why;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonPtr value(std::size_t depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return nullptr;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return nullptr;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return string_value();
      case 't':
        if (literal("true")) return make_bool(true);
        break;
      case 'f':
        if (literal("false")) return make_bool(false);
        break;
      case 'n':
        if (literal("null")) return std::make_shared<JsonValue>();
        break;
      default:
        return number();
    }
    fail("unrecognized token");
    return nullptr;
  }

  static JsonPtr make_bool(bool b) {
    auto v = std::make_shared<JsonValue>();
    v->kind_ = JsonValue::Kind::kBool;
    v->bool_ = b;
    return v;
  }

  JsonPtr number() {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    // strtod accepts exactly the JSON number grammar plus a few
    // extensions (hex, inf, nan); reject the extensions below.
    const double d = std::strtod(begin, &end);
    if (end == begin) {
      fail("expected a value");
      return nullptr;
    }
    const std::string_view consumed(begin,
                                    static_cast<std::size_t>(end - begin));
    for (const char ch : consumed) {
      if (std::isalpha(static_cast<unsigned char>(ch)) != 0 && ch != 'e' &&
          ch != 'E') {
        fail("malformed number");
        return nullptr;
      }
    }
    pos_ += consumed.size();
    auto v = std::make_shared<JsonValue>();
    v->kind_ = JsonValue::Kind::kNumber;
    v->number_ = d;
    return v;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      fail("expected '\"'");
      return false;
    }
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("bad \\u escape");
              return false;
            }
          }
          // UTF-8 encode the BMP code point (the writers only escape
          // control characters, so surrogate pairs are out of scope;
          // a lone surrogate encodes as-is rather than failing).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  JsonPtr string_value() {
    auto v = std::make_shared<JsonValue>();
    v->kind_ = JsonValue::Kind::kString;
    if (!parse_string(v->string_)) return nullptr;
    return v;
  }

  JsonPtr array(std::size_t depth) {
    consume('[');
    auto v = std::make_shared<JsonValue>();
    v->kind_ = JsonValue::Kind::kArray;
    if (consume(']')) return v;
    while (true) {
      JsonPtr item = value(depth + 1);
      if (item == nullptr) return nullptr;
      v->array_.push_back(std::move(item));
      if (consume(',')) continue;
      if (consume(']')) return v;
      fail("expected ',' or ']' in array");
      return nullptr;
    }
  }

  JsonPtr object(std::size_t depth) {
    consume('{');
    auto v = std::make_shared<JsonValue>();
    v->kind_ = JsonValue::Kind::kObject;
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return nullptr;
      if (!consume(':')) {
        fail("expected ':' after object key");
        return nullptr;
      }
      JsonPtr item = value(depth + 1);
      if (item == nullptr) return nullptr;
      v->object_[key] = std::move(item);
      if (consume(',')) continue;
      if (consume('}')) return v;
      fail("expected ',' or '}' in object");
      return nullptr;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

JsonPtr json_parse(std::string_view text, std::string* error) {
  JsonParser parser(text);
  return parser.parse(error);
}

JsonPtr json_parse_file(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "json: cannot open " + path;
    return nullptr;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  return json_parse(text, error);
}

}  // namespace subscale::io
