#include "io/series.h"

#include <algorithm>
#include <stdexcept>

namespace subscale::io {

double Series::y_min() const {
  if (points_.empty()) throw std::logic_error("Series::y_min: empty series");
  return std::min_element(points_.begin(), points_.end(),
                          [](const DataPoint& a, const DataPoint& b) {
                            return a.y < b.y;
                          })
      ->y;
}

double Series::y_max() const {
  if (points_.empty()) throw std::logic_error("Series::y_max: empty series");
  return std::max_element(points_.begin(), points_.end(),
                          [](const DataPoint& a, const DataPoint& b) {
                            return a.y < b.y;
                          })
      ->y;
}

Series Series::normalized_to_first() const {
  if (points_.empty()) {
    throw std::logic_error("Series::normalized_to_first: empty series");
  }
  const double y0 = points_.front().y;
  if (y0 == 0.0) {
    throw std::logic_error("Series::normalized_to_first: first y is zero");
  }
  Series out(name_ + " (norm)");
  for (const DataPoint& p : points_) out.add(p.x, p.y / y0);
  return out;
}

std::vector<double> Series::consecutive_ratios() const {
  std::vector<double> out;
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    out.push_back(points_[i + 1].y / points_[i].y);
  }
  return out;
}

double Series::total_relative_change() const {
  if (points_.size() < 2) {
    throw std::logic_error("Series::total_relative_change: need >= 2 points");
  }
  return (points_.back().y - points_.front().y) / points_.front().y;
}

}  // namespace subscale::io
