#include "io/table.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace subscale::io {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: need at least one column");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: column count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::render(int indent) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << pad;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      if (c + 1 < cells.size()) out << "  ";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << pad;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c], '-');
    if (c + 1 < headers_.size()) out << "  ";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::setprecision(precision) << value;
  return out.str();
}

std::string fmt_sci(double value, int precision) {
  std::ostringstream out;
  out << std::scientific << std::setprecision(precision) << value;
  return out.str();
}

std::string fmt_pct(double ratio, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << (ratio * 100.0) << '%';
  return out.str();
}

}  // namespace subscale::io
