#include "cards/card_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/json_parse.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace subscale::cards {

namespace {

/// Strict readers over the total JsonValue accessors: a missing key or
/// a wrong-kinded value names the offending field instead of silently
/// defaulting.
[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("card_from_json: " + what);
}

const io::JsonValue& require_object(const io::JsonPtr& v,
                                    const std::string& where) {
  if (v == nullptr || v->kind() != io::JsonValue::Kind::kObject) {
    fail(where + " must be an object");
  }
  return *v;
}

std::string require_string(const io::JsonValue& obj, const std::string& key,
                           const std::string& where) {
  const io::JsonPtr v = obj.get(key);
  if (v == nullptr || v->kind() != io::JsonValue::Kind::kString) {
    fail(where + "." + key + " must be a string");
  }
  return v->as_string();
}

double require_number(const io::JsonValue& obj, const std::string& key,
                      const std::string& where) {
  const io::JsonPtr v = obj.get(key);
  if (v == nullptr || v->kind() != io::JsonValue::Kind::kNumber) {
    fail(where + "." + key + " must be a number");
  }
  return v->as_number();
}

void write_node(io::Writer& w, const scaling::NodeInput& node) {
  w.begin_object();
  w.key("name");
  w.value(node.name);
  w.key("generation");
  w.value(static_cast<std::uint64_t>(node.generation));
  w.key("lpoly_nm");
  w.value(node.lpoly_nm);
  w.key("tox_nm");
  w.value(node.tox_nm);
  w.key("vdd");
  w.value(node.vdd);
  w.key("feature_shrink");
  w.value(node.feature_shrink);
  w.key("ileak_max_pa_um");
  w.value(node.ileak_max_pa_um);
  w.end_object();
}

scaling::NodeInput read_node(const io::JsonPtr& v, const std::string& where) {
  const io::JsonValue& obj = require_object(v, where);
  scaling::NodeInput node;
  node.name = require_string(obj, "name", where);
  node.generation = static_cast<int>(require_number(obj, "generation", where));
  node.lpoly_nm = require_number(obj, "lpoly_nm", where);
  node.tox_nm = require_number(obj, "tox_nm", where);
  node.vdd = require_number(obj, "vdd", where);
  node.feature_shrink = require_number(obj, "feature_shrink", where);
  node.ileak_max_pa_um = require_number(obj, "ileak_max_pa_um", where);
  return node;
}

void write_recipe(io::Writer& w, const ScalingRecipe& r) {
  w.begin_object();
  w.key("first_generation");
  w.value(static_cast<std::uint64_t>(r.first_generation));
  w.key("node_count");
  w.value(static_cast<std::uint64_t>(r.node_count));
  w.key("lpoly0_nm");
  w.value(r.lpoly0_nm);
  w.key("lpoly_shrink");
  w.value(r.lpoly_shrink);
  w.key("tox0_nm");
  w.value(r.tox0_nm);
  w.key("tox_shrink");
  w.value(r.tox_shrink);
  w.key("vdd0");
  w.value(r.vdd0);
  w.key("vdd_step");
  w.value(r.vdd_step);
  w.key("vdd_floor");
  w.value(r.vdd_floor);
  w.key("ileak0_pa_um");
  w.value(r.ileak0_pa_um);
  w.key("ileak_growth");
  w.value(r.ileak_growth);
  w.end_object();
}

ScalingRecipe read_recipe(const io::JsonPtr& v, const std::string& where) {
  const io::JsonValue& obj = require_object(v, where);
  ScalingRecipe r;
  r.first_generation =
      static_cast<int>(require_number(obj, "first_generation", where));
  r.node_count = static_cast<int>(require_number(obj, "node_count", where));
  r.lpoly0_nm = require_number(obj, "lpoly0_nm", where);
  r.lpoly_shrink = require_number(obj, "lpoly_shrink", where);
  r.tox0_nm = require_number(obj, "tox0_nm", where);
  r.tox_shrink = require_number(obj, "tox_shrink", where);
  r.vdd0 = require_number(obj, "vdd0", where);
  r.vdd_step = require_number(obj, "vdd_step", where);
  r.vdd_floor = require_number(obj, "vdd_floor", where);
  r.ileak0_pa_um = require_number(obj, "ileak0_pa_um", where);
  r.ileak_growth = require_number(obj, "ileak_growth", where);
  return r;
}

}  // namespace

void write_card(io::Writer& w, const TechnologyCard& card) {
  w.begin_object();
  w.key("schema");
  w.value(kCardSchemaTag);
  w.key("id");
  w.value(card.id);
  w.key("description");
  w.value(card.description);
  w.key("env");
  w.begin_object();
  w.key("backend");
  w.value(compact::backend_kind_name(card.env.backend));
  w.key("temperature");
  w.value(card.env.temperature);
  w.key("nw_radius_nm");
  w.value(card.env.nw_radius_nm);
  w.end_object();
  w.key("subvth_ioff_pa_um");
  w.value(card.subvth_ioff_pa_um);
  w.key("use_recipe");
  w.value(card.use_recipe);
  if (card.use_recipe) {
    w.key("recipe");
    write_recipe(w, card.recipe);
  } else {
    w.key("nodes");
    w.begin_array();
    for (const scaling::NodeInput& node : card.nodes) {
      write_node(w, node);
    }
    w.end_array();
  }
  w.end_object();
}

std::string card_to_json(const TechnologyCard& card) {
  io::JsonWriter w;
  write_card(w, card);
  return w.str();
}

TechnologyCard card_from_json(const std::string& text) {
  if (obs::MetricsRegistry* reg = obs::default_registry(); reg != nullptr) {
    reg->counter(obs::names::kCardsLoads).add(1);
  }
  std::string error;
  const io::JsonPtr root = io::json_parse(text, &error);
  if (root == nullptr) {
    fail("malformed JSON: " + error);  // error carries the byte offset
  }
  const io::JsonValue& obj = require_object(root, "card");
  const std::string schema = require_string(obj, "schema", "card");
  if (schema != kCardSchemaTag) {
    fail("unsupported schema '" + schema + "' (expected " +
         std::string(kCardSchemaTag) + ")");
  }
  TechnologyCard card;
  card.id = require_string(obj, "id", "card");
  card.description = obj.string_at("description");

  const io::JsonValue& env = require_object(obj.get("env"), "card.env");
  const std::string backend = require_string(env, "backend", "card.env");
  if (!compact::parse_backend_kind(backend, card.env.backend)) {
    fail("card.env.backend: unknown backend '" + backend + "'");
  }
  card.env.temperature = require_number(env, "temperature", "card.env");
  card.env.nw_radius_nm = require_number(env, "nw_radius_nm", "card.env");

  card.subvth_ioff_pa_um =
      require_number(obj, "subvth_ioff_pa_um", "card");

  const io::JsonPtr use_recipe = obj.get("use_recipe");
  if (use_recipe == nullptr ||
      use_recipe->kind() != io::JsonValue::Kind::kBool) {
    fail("card.use_recipe must be a bool");
  }
  card.use_recipe = use_recipe->as_bool();
  if (card.use_recipe) {
    card.recipe = read_recipe(obj.get("recipe"), "card.recipe");
  } else {
    const io::JsonPtr nodes = obj.get("nodes");
    if (nodes == nullptr || nodes->kind() != io::JsonValue::Kind::kArray) {
      fail("card.nodes must be an array");
    }
    for (std::size_t i = 0; i < nodes->size(); ++i) {
      card.nodes.push_back(read_node(
          nodes->at(i), "card.nodes[" + std::to_string(i) + "]"));
    }
  }
  card.validate();  // duplicate names, positivity, env sanity
  return card;
}

TechnologyCard load_card(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument("load_card: cannot read '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return card_from_json(text.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string(e.what()) + " (in '" + path +
                                "')");
  }
}

void save_card(const TechnologyCard& card, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::invalid_argument("save_card: cannot write '" + path + "'");
  }
  out << card_to_json(card) << "\n";
  if (!out) {
    throw std::runtime_error("save_card: write to '" + path + "' failed");
  }
}

}  // namespace subscale::cards
