#pragma once

/// \file card_io.h
/// JSON serialization for technology cards, on the library's own io
/// layer (io::JsonWriter emits %.17g doubles, io::json_parse reads them
/// back) so a saved card reloads bitwise: save -> load -> study is
/// byte-identical to running the in-memory card.
///
/// Loading is strict where the total JsonValue accessors are lenient:
/// a malformed document (truncated text, a field of the wrong type, a
/// duplicate node name) throws std::invalid_argument naming the field —
/// and, for syntax errors, carrying json_parse's byte offset.

#include <string>

#include "cards/technology_card.h"
#include "io/writer.h"

namespace subscale::cards {

/// Stamp in every card document; bumped if the card schema changes.
inline constexpr const char* kCardSchemaTag = "subscale.card.v1";

/// Emit the card into an open writer (a complete document: the card is
/// the writer's root object).
void write_card(io::Writer& w, const TechnologyCard& card);

/// The card as a standalone JSON document.
std::string card_to_json(const TechnologyCard& card);

/// Parse + validate a card document. Throws std::invalid_argument on
/// syntax errors (with json_parse's byte offset), wrong-typed or
/// missing fields, and semantically invalid cards (validate()).
TechnologyCard card_from_json(const std::string& text);

/// File convenience wrappers. load_card throws on unreadable files too.
TechnologyCard load_card(const std::string& path);
void save_card(const TechnologyCard& card, const std::string& path);

}  // namespace subscale::cards
