#include "cards/technology_card.h"

#include <cmath>
#include <set>
#include <stdexcept>
#include <sys/stat.h>

#include "cards/card_io.h"

namespace subscale::cards {

std::vector<scaling::NodeInput> ScalingRecipe::derive() const {
  if (node_count < 0 || first_generation < 0) {
    throw std::invalid_argument(
        "ScalingRecipe::derive: negative node_count or first_generation");
  }
  std::vector<scaling::NodeInput> out;
  out.reserve(static_cast<std::size_t>(node_count));
  for (int g = first_generation; g < first_generation + node_count; ++g) {
    // Names / generation / feature shrink continue the ITRS cadence;
    // the scalar trajectories come from the recipe's own rates.
    scaling::NodeInput node = scaling::extrapolate_node(g);
    node.lpoly_nm = lpoly0_nm * std::pow(lpoly_shrink, g);
    node.tox_nm = tox0_nm * std::pow(tox_shrink, g);
    node.vdd = std::max(vdd_floor, vdd0 - vdd_step * g);
    node.ileak_max_pa_um = ileak0_pa_um * std::pow(ileak_growth, g);
    out.push_back(node);
  }
  return out;
}

std::vector<scaling::NodeInput> TechnologyCard::resolved_nodes() const {
  return use_recipe ? recipe.derive() : nodes;
}

void TechnologyCard::validate() const {
  if (id.empty()) {
    throw std::invalid_argument("TechnologyCard: empty id");
  }
  env.validate();
  if (!(subvth_ioff_pa_um > 0.0)) {
    throw std::invalid_argument("TechnologyCard '" + id +
                                "': subvth_ioff_pa_um must be positive");
  }
  const std::vector<scaling::NodeInput> resolved = resolved_nodes();
  if (resolved.empty()) {
    throw std::invalid_argument("TechnologyCard '" + id + "': no nodes");
  }
  std::set<std::string> seen;
  for (const scaling::NodeInput& node : resolved) {
    if (node.name.empty()) {
      throw std::invalid_argument("TechnologyCard '" + id +
                                  "': node with empty name");
    }
    if (!seen.insert(node.name).second) {
      throw std::invalid_argument("TechnologyCard '" + id +
                                  "': duplicate node name '" + node.name +
                                  "'");
    }
    if (!(node.lpoly_nm > 0.0) || !(node.tox_nm > 0.0) ||
        !(node.vdd > 0.0) || !(node.feature_shrink > 0.0) ||
        !(node.ileak_max_pa_um > 0.0)) {
      throw std::invalid_argument("TechnologyCard '" + id + "': node '" +
                                  node.name +
                                  "' has a non-positive parameter");
    }
  }
}

namespace {

TechnologyCard make_paper_card() {
  TechnologyCard card;
  card.id = "paper_bulk_lstp";
  card.description =
      "DAC'07 Table-2 LSTP deck: bulk MOSFET, 300 K, 90nm..32nm";
  // Explicit copy of paper_nodes() — bitwise identical, by construction.
  const auto& nodes = scaling::paper_nodes();
  card.nodes.assign(nodes.begin(), nodes.end());
  return card;
}

TechnologyCard make_extended_card() {
  TechnologyCard card;
  card.id = "bulk_lstp_extended";
  card.description =
      "Recipe-extrapolated bulk deck continuing the paper cadence to 16nm";
  card.use_recipe = true;
  card.recipe.node_count = 6;  // 90nm .. 16nm
  return card;
}

TechnologyCard make_hot_card() {
  TechnologyCard card = make_paper_card();
  card.id = "paper_bulk_hot350";
  card.description = "Paper deck at the 350 K hot corner";
  card.env.temperature = 350.0;
  return card;
}

TechnologyCard make_nanowire_card() {
  TechnologyCard card = make_paper_card();
  card.id = "nanowire_gaa";
  card.description =
      "Gate-all-around nanowire deck (R = 4 nm) on the paper's nodes";
  card.env.backend = compact::BackendKind::kNanowireGaa;
  card.env.nw_radius_nm = 4.0;
  return card;
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace

const TechnologyCard& paper_bulk_lstp() {
  static const TechnologyCard card = make_paper_card();
  return card;
}

const TechnologyCard& bulk_lstp_extended() {
  static const TechnologyCard card = make_extended_card();
  return card;
}

const TechnologyCard& paper_bulk_hot350() {
  static const TechnologyCard card = make_hot_card();
  return card;
}

const TechnologyCard& nanowire_gaa() {
  static const TechnologyCard card = make_nanowire_card();
  return card;
}

std::vector<std::string> builtin_card_ids() {
  return {paper_bulk_lstp().id, bulk_lstp_extended().id,
          paper_bulk_hot350().id, nanowire_gaa().id};
}

TechnologyCard resolve_card(const std::string& id_or_path) {
  for (const TechnologyCard* card :
       {&paper_bulk_lstp(), &bulk_lstp_extended(), &paper_bulk_hot350(),
        &nanowire_gaa()}) {
    if (card->id == id_or_path) return *card;
  }
  if (file_exists(id_or_path)) {
    return load_card(id_or_path);
  }
  std::string known;
  for (const std::string& id : builtin_card_ids()) {
    if (!known.empty()) known += ", ";
    known += id;
  }
  throw std::invalid_argument(
      "resolve_card: '" + id_or_path +
      "' is neither a builtin card id nor a readable card file (builtin "
      "ids: " +
      known + ")");
}

}  // namespace subscale::cards
