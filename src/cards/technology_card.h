#pragma once

/// \file technology_card.h
/// Declarative technology decks. A TechnologyCard bundles everything a
/// scaling study needs to know about "which technology am I studying":
/// the node list (explicit, or derived from a scaling recipe), the
/// device backend (bulk MOSFET vs gate-all-around nanowire), the
/// operating temperature as a first-class axis, and the strategy-level
/// constraints (the sub-V_th leakage anchor). Studies, benches and the
/// orchestrator resolve nodes from a card instead of hard-coding
/// paper_nodes(), so switching the whole pipeline to a different deck
/// is a one-line change (or a JSON file, see card_io.h).
///
/// The builtin `paper_bulk_lstp` card reproduces scaling::paper_nodes()
/// bitwise — every existing golden is pinned against it.

#include <string>
#include <vector>

#include "compact/device_spec.h"
#include "scaling/technology.h"

namespace subscale::cards {

/// Derive nodes by continuing the paper's cadence with tunable rates.
/// Names, generation indices and the 0.7^g feature shrink follow
/// scaling::extrapolate_node; L_poly / T_ox / V_dd / I_leak come from
/// the recipe parameters. Note the paper's own Table-2 nodes are NOT
/// pure recipe outputs (65nm uses L_poly = 46 nm, not 65*0.7 = 45.5),
/// which is exactly why `paper_bulk_lstp` carries an explicit node list
/// while the extended card derives.
struct ScalingRecipe {
  int first_generation = 0;
  int node_count = 0;  ///< 0 = recipe unused (explicit node list instead)
  double lpoly0_nm = 65.0;
  double lpoly_shrink = 0.7;  ///< per generation
  double tox0_nm = 2.10;
  double tox_shrink = 0.9;
  double vdd0 = 1.2;
  double vdd_step = 0.1;  ///< subtracted per generation ...
  double vdd_floor = 0.6; ///< ... down to this floor
  double ileak0_pa_um = 100.0;
  double ileak_growth = 1.25;

  std::vector<scaling::NodeInput> derive() const;
};

struct TechnologyCard {
  std::string id;           ///< stable identity; keyed into caches
  std::string description;
  /// Device environment folded into every spec the strategies build:
  /// backend kind, temperature [K], nanowire radius [nm].
  compact::DeviceEnv env{};
  /// Strategy constraint: the fixed sub-V_th leakage anchor [pA/um]
  /// (the super-V_th cap is per-node, on NodeInput).
  double subvth_ioff_pa_um = 100.0;
  /// Explicit node list; used when `use_recipe` is false.
  std::vector<scaling::NodeInput> nodes;
  /// Recipe alternative; used when `use_recipe` is true.
  ScalingRecipe recipe;
  bool use_recipe = false;

  /// The card's node list, whichever way it is specified.
  std::vector<scaling::NodeInput> resolved_nodes() const;

  /// Throws std::invalid_argument on an unusable card: empty id, bad
  /// env, non-positive constraint, empty/duplicate/malformed nodes.
  void validate() const;
};

/// The paper's deck: Table-2 nodes, bulk MOSFET at 300 K. Bitwise equal
/// to scaling::paper_nodes() — the default card everywhere, so all
/// pre-card goldens are unchanged.
const TechnologyCard& paper_bulk_lstp();

/// Recipe-derived 6-node deck (90nm .. 16nm) continuing the paper's
/// scaling rules beyond Table 2.
const TechnologyCard& bulk_lstp_extended();

/// Hot corner of the paper deck: same nodes, 350 K.
const TechnologyCard& paper_bulk_hot350();

/// Gate-all-around nanowire deck on the paper's node geometry
/// (R = 4 nm wires, compact-model backend #2; TCAD stays bulk-only).
const TechnologyCard& nanowire_gaa();

/// Ids of all builtin cards, in resolution order.
std::vector<std::string> builtin_card_ids();

/// Resolve an id-or-path: builtin ids first, then a JSON card file.
/// Throws std::invalid_argument listing the builtin ids when neither
/// matches.
TechnologyCard resolve_card(const std::string& id_or_path);

}  // namespace subscale::cards
