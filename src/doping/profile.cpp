#include "doping/profile.h"

#include <cmath>
#include <stdexcept>

namespace subscale::doping {

// ---- UniformDoping --------------------------------------------------------

UniformDoping::UniformDoping(Species species, double concentration)
    : species_(species), concentration_(concentration) {
  if (concentration < 0.0) {
    throw std::invalid_argument("UniformDoping: negative concentration");
  }
}

double UniformDoping::donors(double /*x*/, double /*y*/) const {
  return species_ == Species::kDonor ? concentration_ : 0.0;
}

double UniformDoping::acceptors(double /*x*/, double /*y*/) const {
  return species_ == Species::kAcceptor ? concentration_ : 0.0;
}

// ---- GaussianBump2d --------------------------------------------------------

GaussianBump2d::GaussianBump2d(Species species, double peak, double x0,
                               double y0, double sigma_x, double sigma_y)
    : species_(species),
      peak_(peak),
      x0_(x0),
      y0_(y0),
      sigma_x_(sigma_x),
      sigma_y_(sigma_y) {
  if (peak < 0.0 || sigma_x <= 0.0 || sigma_y <= 0.0) {
    throw std::invalid_argument("GaussianBump2d: invalid parameters");
  }
}

double GaussianBump2d::value(double x, double y) const {
  const double dx = (x - x0_) / sigma_x_;
  const double dy = (y - y0_) / sigma_y_;
  const double arg = 0.5 * (dx * dx + dy * dy);
  if (arg > 80.0) return 0.0;  // below any representable doping
  return peak_ * std::exp(-arg);
}

double GaussianBump2d::donors(double x, double y) const {
  return species_ == Species::kDonor ? value(x, y) : 0.0;
}

double GaussianBump2d::acceptors(double x, double y) const {
  return species_ == Species::kAcceptor ? value(x, y) : 0.0;
}

// ---- DiffusedBox -------------------------------------------------------------

DiffusedBox::DiffusedBox(Species species, double peak, double x0, double x1,
                         double junction_depth, double lateral_straggle,
                         double vertical_straggle)
    : species_(species),
      peak_(peak),
      x0_(x0),
      x1_(x1),
      xj_(junction_depth),
      sx_(lateral_straggle),
      sy_(vertical_straggle) {
  if (peak < 0.0 || x1 <= x0 || junction_depth <= 0.0 || sx_ <= 0.0 ||
      sy_ <= 0.0) {
    throw std::invalid_argument("DiffusedBox: invalid parameters");
  }
}

double DiffusedBox::value(double x, double y) const {
  // Distance outside the box in each direction.
  double dx = 0.0;
  if (x < x0_) {
    dx = (x0_ - x) / sx_;
  } else if (x > x1_) {
    dx = (x - x1_) / sx_;
  }
  double dy = 0.0;
  if (y < 0.0) {
    return 0.0;  // no dopant above the silicon surface
  }
  if (y > xj_) {
    dy = (y - xj_) / sy_;
  }
  const double arg = 0.5 * (dx * dx + dy * dy);
  if (arg > 80.0) return 0.0;
  return peak_ * std::exp(-arg);
}

double DiffusedBox::donors(double x, double y) const {
  return species_ == Species::kDonor ? value(x, y) : 0.0;
}

double DiffusedBox::acceptors(double x, double y) const {
  return species_ == Species::kAcceptor ? value(x, y) : 0.0;
}

// ---- RetrogradeWell ----------------------------------------------------------

RetrogradeWell::RetrogradeWell(Species species, double extra_concentration,
                               double onset_depth, double straggle)
    : species_(species),
      extra_(extra_concentration),
      y0_(onset_depth),
      s_(straggle) {
  if (extra_concentration < 0.0 || onset_depth <= 0.0 || straggle <= 0.0) {
    throw std::invalid_argument("RetrogradeWell: invalid parameters");
  }
}

double RetrogradeWell::value(double y) const {
  if (y <= 0.0) return 0.0;  // nothing above the silicon surface
  return extra_ * 0.5 * (1.0 + std::erf((y - y0_) / (std::sqrt(2.0) * s_)));
}

double RetrogradeWell::donors(double x, double y) const {
  (void)x;
  return species_ == Species::kDonor ? value(y) : 0.0;
}

double RetrogradeWell::acceptors(double x, double y) const {
  (void)x;
  return species_ == Species::kAcceptor ? value(y) : 0.0;
}

// ---- Superposition --------------------------------------------------------

void Superposition::add(std::shared_ptr<const DopingProfile> profile) {
  if (!profile) {
    throw std::invalid_argument("Superposition::add: null profile");
  }
  parts_.push_back(std::move(profile));
}

double Superposition::donors(double x, double y) const {
  double acc = 0.0;
  for (const auto& p : parts_) acc += p->donors(x, y);
  return acc;
}

double Superposition::acceptors(double x, double y) const {
  double acc = 0.0;
  for (const auto& p : parts_) acc += p->acceptors(x, y);
  return acc;
}

}  // namespace subscale::doping
