#pragma once

/// \file profile.h
/// Two-dimensional doping profiles. A profile reports donor and acceptor
/// concentrations [m^-3] at a point (x, y) of the device cross-section
/// (x along the channel, y depth below the Si/SiO2 interface, y >= 0 in
/// silicon). Net doping is donors - acceptors (positive = n-type).
///
/// The paper models halo regions as "a pair of two-dimensional Gaussian
/// distributions superimposed on a uniformly doped substrate" (Sec. 2.2);
/// GaussianBump2d + Superposition reproduce exactly that construction.

#include <memory>
#include <vector>

namespace subscale::doping {

enum class Species { kDonor, kAcceptor };

/// Interface: donor/acceptor concentration fields.
class DopingProfile {
 public:
  virtual ~DopingProfile() = default;

  /// Donor concentration at (x, y) [m^-3].
  virtual double donors(double x, double y) const = 0;
  /// Acceptor concentration at (x, y) [m^-3].
  virtual double acceptors(double x, double y) const = 0;

  /// Net doping Nd - Na [m^-3] (positive = n-type).
  double net(double x, double y) const {
    return donors(x, y) - acceptors(x, y);
  }
  /// Total |Nd| + |Na| [m^-3] (drives mobility degradation).
  double total(double x, double y) const {
    return donors(x, y) + acceptors(x, y);
  }
};

/// Spatially uniform doping of one species.
class UniformDoping final : public DopingProfile {
 public:
  UniformDoping(Species species, double concentration);

  double donors(double x, double y) const override;
  double acceptors(double x, double y) const override;

 private:
  Species species_;
  double concentration_;
};

/// A 2-D Gaussian doping bump: peak * exp(-(x-x0)^2/2sx^2 - (y-y0)^2/2sy^2).
class GaussianBump2d final : public DopingProfile {
 public:
  GaussianBump2d(Species species, double peak, double x0, double y0,
                 double sigma_x, double sigma_y);

  double donors(double x, double y) const override;
  double acceptors(double x, double y) const override;

  double peak() const { return peak_; }

 private:
  double value(double x, double y) const;
  Species species_;
  double peak_;
  double x0_, y0_;
  double sigma_x_, sigma_y_;
};

/// Source/drain-style region: constant `peak` inside the box
/// [x0, x1] x [0, xj], decaying as a Gaussian with the given lateral and
/// vertical straggles outside it. This gives the smooth junction the
/// drift-diffusion solver needs.
class DiffusedBox final : public DopingProfile {
 public:
  DiffusedBox(Species species, double peak, double x0, double x1,
              double junction_depth, double lateral_straggle,
              double vertical_straggle);

  double donors(double x, double y) const override;
  double acceptors(double x, double y) const override;

 private:
  double value(double x, double y) const;
  Species species_;
  double peak_;
  double x0_, x1_;
  double xj_;
  double sx_, sy_;
};

/// Retrograde well: extra doping that turns on smoothly BELOW a depth,
/// uniform laterally: extra * 0.5 * (1 + erf((y - y0)/(sqrt(2) s))).
/// Real processes use this to block sub-surface punch-through; it is a
/// deep-profile completion that leaves the surface channel (and thus the
/// paper's four surface scaling parameters) untouched.
class RetrogradeWell final : public DopingProfile {
 public:
  RetrogradeWell(Species species, double extra_concentration,
                 double onset_depth, double straggle);

  double donors(double x, double y) const override;
  double acceptors(double x, double y) const override;

 private:
  double value(double y) const;
  Species species_;
  double extra_;
  double y0_;
  double s_;
};

/// Sum of component profiles.
class Superposition final : public DopingProfile {
 public:
  Superposition() = default;

  void add(std::shared_ptr<const DopingProfile> profile);

  double donors(double x, double y) const override;
  double acceptors(double x, double y) const override;

  std::size_t component_count() const { return parts_.size(); }

 private:
  std::vector<std::shared_ptr<const DopingProfile>> parts_;
};

}  // namespace subscale::doping
