#pragma once

/// \file mosfet_doping.h
/// Geometry description of the paper's bulk-MOSFET scaling model
/// (Fig. 1a) and construction of the corresponding 2-D doping profile:
/// uniformly doped substrate + n+ (p+) source/drain with lateral straggle
/// + a pair of 2-D Gaussian halo bumps at the channel edges.
///
/// Scaling rule (paper Sec. 2.2): "All physical dimensions other than Tox
/// (source/drain junction depth, lateral source/drain diffusion, halo
/// dimensions, etc.) scale in proportion to Lpoly" for the super-Vth
/// strategy; under the sub-Vth strategy these dimensions keep shrinking
/// 30 %/generation while Lpoly scales more slowly (Sec. 3.2), so the
/// geometry carries an explicit `feature_shrink` independent of Lpoly.

#include <memory>

#include "doping/profile.h"

namespace subscale::doping {

enum class Polarity { kNfet, kPfet };

/// Cross-section geometry of one MOSFET [all lengths in metres].
///
/// Coordinates: x = 0 at channel centre; y = 0 at the Si/SiO2 interface,
/// increasing into the substrate. The gate spans [-lpoly/2, +lpoly/2];
/// source/drain metallurgical boxes start at -+(lpoly/2 - lov).
struct MosfetGeometry {
  double lpoly = 0.0;  ///< physical (post-etch) gate length
  double tox = 0.0;    ///< gate oxide thickness
  double lov = 0.0;    ///< gate/source-drain overlap per side
  double xj = 0.0;     ///< source/drain junction depth
  double lsd = 0.0;    ///< source/drain region length beyond the gate edge
  double substrate_depth = 0.0;  ///< simulated silicon depth
  double halo_depth = 0.0;       ///< y-position of the halo peak
  double halo_sigma_x = 0.0;     ///< lateral halo straggle
  double halo_sigma_y = 0.0;     ///< vertical halo straggle
  double sd_straggle_x = 0.0;    ///< lateral S/D diffusion straggle
  double sd_straggle_y = 0.0;    ///< vertical S/D diffusion straggle
  double feature_shrink = 1.0;   ///< the node's 0.7^generation factor
                                 ///< (recorded so circuit-level loads that
                                 ///< scale with wiring can use it)

  /// Effective (electrical) channel length: gate length minus overlaps.
  double leff() const { return lpoly - 2.0 * lov; }
  /// x position of the source-side metallurgical junction (< 0).
  double source_edge() const { return -0.5 * leff(); }
  /// x position of the drain-side metallurgical junction (> 0).
  double drain_edge() const { return 0.5 * leff(); }
  /// Total simulated lateral extent.
  double device_length() const { return leff() + 2.0 * lov + 2.0 * lsd; }

  /// Reference geometry of the paper's 90nm-node device (lpoly = 65 nm,
  /// tox = 2.1 nm), with every other feature scaled by `feature_shrink`
  /// (1.0 at 90nm, 0.7 at 65nm, 0.49 at 45nm, 0.343 at 32nm) and the gate
  /// given explicitly — the two scaling strategies differ exactly in how
  /// they pick `lpoly`.
  static MosfetGeometry scaled(double lpoly, double tox, double feature_shrink);
};

/// Doping levels of the MOSFET profile [m^-3].
struct MosfetDopingLevels {
  double nsub = 0.0;     ///< uniform substrate (channel-type) doping
  double np_halo = 0.0;  ///< PEAK halo doping ABOVE the substrate level
  double nsd = 1e26;     ///< source/drain peak doping (1e20 cm^-3)
};

/// Assemble the full doping profile of the device.
/// For an NFET: acceptor substrate + donor S/D + acceptor halos;
/// for a PFET the species are mirrored.
std::shared_ptr<const DopingProfile> make_mosfet_profile(
    Polarity polarity, const MosfetGeometry& geometry,
    const MosfetDopingLevels& levels);

/// Closed-form average over the channel (|x| < leff/2, at the surface) of
/// the halo pair's contribution, as a fraction of the peak np_halo:
///   f = (2 sx sqrt(pi/2) / leff) * erf(leff / (sqrt(2) sx)) * d
/// with d = exp(-halo_depth^2 / (2 halo_sigma_y^2)) the vertical overlap
/// of the halo with the surface channel. Multiplying by np_halo and
/// adding nsub gives the effective channel doping N_eff the compact
/// model's S_S (Eq. 2b) and V_th expressions use.
double halo_channel_fraction(const MosfetGeometry& geometry);

/// Effective channel doping N_eff = nsub + np_halo * halo_channel_fraction
/// [m^-3]; the single most important derived quantity of the paper's
/// device model (sets W_dep and hence S_S).
double effective_channel_doping(const MosfetGeometry& geometry,
                                const MosfetDopingLevels& levels);

}  // namespace subscale::doping
