#include "doping/mosfet_doping.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "physics/units.h"

namespace subscale::doping {

MosfetGeometry MosfetGeometry::scaled(double lpoly, double tox,
                                      double feature_shrink) {
  if (lpoly <= 0.0 || tox <= 0.0 || feature_shrink <= 0.0) {
    throw std::invalid_argument("MosfetGeometry::scaled: invalid arguments");
  }
  namespace u = subscale::units;
  const double s = feature_shrink;
  MosfetGeometry g;
  g.lpoly = lpoly;
  g.tox = tox;
  g.lov = u::nm(8.0) * s;
  g.xj = u::nm(20.0) * s;
  g.lsd = u::nm(60.0) * s;
  g.substrate_depth = u::nm(120.0) * s + u::nm(60.0);
  g.halo_depth = u::nm(12.0) * s;
  g.halo_sigma_x = u::nm(12.0) * s;
  g.halo_sigma_y = u::nm(14.0) * s;
  g.sd_straggle_x = u::nm(4.0) * s;
  g.sd_straggle_y = u::nm(4.0) * s;
  g.feature_shrink = s;
  if (g.leff() <= 0.0) {
    throw std::invalid_argument(
        "MosfetGeometry::scaled: lpoly too small for the overlap at this "
        "feature shrink (leff <= 0)");
  }
  return g;
}

std::shared_ptr<const DopingProfile> make_mosfet_profile(
    Polarity polarity, const MosfetGeometry& g,
    const MosfetDopingLevels& levels) {
  if (levels.nsub <= 0.0 || levels.nsd <= 0.0 || levels.np_halo < 0.0) {
    throw std::invalid_argument("make_mosfet_profile: invalid doping levels");
  }
  const Species body =
      polarity == Polarity::kNfet ? Species::kAcceptor : Species::kDonor;
  const Species sd =
      polarity == Polarity::kNfet ? Species::kDonor : Species::kAcceptor;

  auto profile = std::make_shared<Superposition>();
  // Uniform substrate.
  profile->add(std::make_shared<UniformDoping>(body, levels.nsub));

  // Source and drain diffusions. The metallurgical boxes reach in to
  // -+leff/2 at the surface; they extend outward past the gate edge by lsd.
  const double le = g.leff();
  const double x_out = 0.5 * le + 2.0 * g.lov + g.lsd;
  profile->add(std::make_shared<DiffusedBox>(sd, levels.nsd, -x_out,
                                             -0.5 * le, g.xj, g.sd_straggle_x,
                                             g.sd_straggle_y));
  profile->add(std::make_shared<DiffusedBox>(sd, levels.nsd, 0.5 * le, x_out,
                                             g.xj, g.sd_straggle_x,
                                             g.sd_straggle_y));

  // Halo pair at the channel edges.
  if (levels.np_halo > 0.0) {
    profile->add(std::make_shared<GaussianBump2d>(
        body, levels.np_halo, -0.5 * le, g.halo_depth, g.halo_sigma_x,
        g.halo_sigma_y));
    profile->add(std::make_shared<GaussianBump2d>(
        body, levels.np_halo, 0.5 * le, g.halo_depth, g.halo_sigma_x,
        g.halo_sigma_y));
  }
  return profile;
}

double halo_channel_fraction(const MosfetGeometry& g) {
  const double le = g.leff();
  if (le <= 0.0) {
    throw std::invalid_argument("halo_channel_fraction: leff <= 0");
  }
  const double sx = g.halo_sigma_x;
  const double lateral = (2.0 * sx * std::sqrt(std::numbers::pi / 2.0) / le) *
                         std::erf(le / (std::sqrt(2.0) * sx));
  const double dz = g.halo_depth / g.halo_sigma_y;
  const double vertical = std::exp(-0.5 * dz * dz);
  // The lateral average cannot exceed 1 even for halos much wider than the
  // channel (the Gaussians then fully overlap the channel).
  return std::min(1.0, lateral) * vertical;
}

double effective_channel_doping(const MosfetGeometry& g,
                                const MosfetDopingLevels& levels) {
  return levels.nsub + levels.np_halo * halo_channel_fraction(g);
}

}  // namespace subscale::doping
