#include "scaling/generalized_scaling.h"

#include <cmath>
#include <stdexcept>

namespace subscale::scaling {

GeneralizedScalingFactors generalized_scaling(double alpha, double epsilon) {
  if (alpha <= 0.0 || epsilon <= 0.0) {
    throw std::invalid_argument("generalized_scaling: factors must be > 0");
  }
  GeneralizedScalingFactors f;
  f.physical_dimensions = 1.0 / alpha;
  f.channel_doping = epsilon * alpha;
  f.supply_voltage = epsilon / alpha;
  f.area = 1.0 / (alpha * alpha);
  f.delay = 1.0 / alpha;
  f.power = (epsilon * epsilon) / (alpha * alpha);
  return f;
}

double after_generations(double per_generation_factor, int generations) {
  if (generations < 0) {
    throw std::invalid_argument("after_generations: negative generations");
  }
  return std::pow(per_generation_factor, generations);
}

}  // namespace subscale::scaling
