#include "scaling/supervth_strategy.h"

#include <cmath>
#include <stdexcept>

#include "compact/device_model.h"
#include "exec/parallel.h"
#include "opt/bisection.h"
#include "physics/units.h"

namespace subscale::scaling {

namespace {

namespace u = subscale::units;

/// I_off [A] of the device assembled from the node + doping choice, with
/// the gate length overridden (long- vs short-channel probes).
double ioff_of(const NodeInput& node, double lpoly_nm, double nsub,
               double np_halo, const compact::Calibration& calib,
               const compact::DeviceEnv& env) {
  doping::MosfetDopingLevels levels;
  levels.nsub = nsub;
  levels.np_halo = np_halo;
  const compact::DeviceSpec spec =
      make_node_spec(node, lpoly_nm, levels, node.vdd, env);
  return compact::make_device_model(spec, calib)->ioff();
}

}  // namespace

DesignedDevice design_supervth_device(const NodeInput& node,
                                      const compact::Calibration& calib,
                                      const SuperVthOptions& options) {
  const double ioff_target = u::pA_per_um(node.ileak_max_pa_um) * 1e-6;

  // Step 1: substrate doping from the long-channel device (no halo).
  const double long_lpoly = options.long_channel_factor * node.lpoly_nm;
  const auto long_leak = [&](double nsub) {
    return std::log(ioff_of(node, long_lpoly, nsub, 0.0, calib, options.env));
  };
  const auto nsub_root = opt::solve_monotone_log(
      long_leak, std::log(ioff_target), u::per_cm3(1.5e18),
      u::per_cm3(options.nsub_lo_cm3), u::per_cm3(options.nsub_hi_cm3));
  if (!nsub_root.converged) {
    throw std::runtime_error(
        "design_supervth_device: long-channel leakage target unreachable");
  }
  const double nsub = nsub_root.x;

  // Step 2: halo doping from the short-channel device. If the minimum
  // device already meets the cap without halo, none is needed.
  double np_halo = 0.0;
  if (ioff_of(node, node.lpoly_nm, nsub, 0.0, calib, options.env) >
      ioff_target) {
    const auto short_leak = [&](double np) {
      return std::log(
          ioff_of(node, node.lpoly_nm, nsub, np, calib, options.env));
    };
    const auto np_root = opt::solve_monotone_log(
        short_leak, std::log(ioff_target), nsub, u::per_cm3(1e15),
        u::per_cm3(1e20));
    if (!np_root.converged) {
      throw std::runtime_error(
          "design_supervth_device: short-channel leakage target unreachable");
    }
    np_halo = np_root.x;
  }

  DesignedDevice out;
  out.node = node;
  doping::MosfetDopingLevels levels;
  levels.nsub = nsub;
  levels.np_halo = np_halo;
  out.spec = make_node_spec(node, node.lpoly_nm, levels, node.vdd,
                            options.env);

  const auto fet = compact::make_device_model(out.spec, calib);
  out.nsub_cm3 = u::to_per_cm3(nsub);
  out.nhalo_net_cm3 = u::to_per_cm3(nsub + np_halo);
  out.vth_sat_mv = u::to_mV(fet->vth_sat_extracted());
  out.ioff_pa_um = u::to_pA_per_um(fet->ioff() / out.spec.width);
  out.ss_mv_dec = fet->subthreshold_swing() * 1e3;
  out.tau_ps = u::to_ps(fet->intrinsic_delay());
  return out;
}

std::vector<DesignedDevice> supervth_roadmap(
    const compact::Calibration& calib, const SuperVthOptions& options) {
  const auto& nodes = paper_nodes();
  return supervth_roadmap(
      std::vector<NodeInput>(nodes.begin(), nodes.end()), calib, options);
}

std::vector<DesignedDevice> supervth_roadmap(
    const std::vector<NodeInput>& nodes, const compact::Calibration& calib,
    const SuperVthOptions& options) {
  return exec::values_or_throw(exec::parallel_map<DesignedDevice>(
      nodes.size(),
      [&](std::size_t i) {
        return design_supervth_device(nodes[i], calib, options);
      },
      options.exec));
}

}  // namespace subscale::scaling
