#pragma once

/// \file supervth_strategy.h
/// The conventional, performance-driven device design flow of Fig. 1(c):
/// with (L_poly, T_ox, V_dd) fixed by the node, pick
///   * N_sub so the LONG-channel device sits exactly at the leakage cap
///     (halo doping is largely unnecessary at long channels), then
///   * N_p,halo so the SHORT-channel device also sits at the cap — the
///     halo pulls the rolled-off V_th back up, which is the same thing as
///     enforcing -dV_th,SCE = dV_th,halo.
/// Minimum delay under the leakage constraint means the constraint is
/// active, so both searches solve I_off = I_leak,max.

#include <vector>

#include "compact/calibration.h"
#include "compact/device_spec.h"
#include "exec/policy.h"
#include "scaling/technology.h"

namespace subscale::scaling {

/// A designed device plus the report values of Table 2.
struct DesignedDevice {
  NodeInput node;
  compact::DeviceSpec spec;
  // Table-2-style report values:
  double nsub_cm3 = 0.0;
  double nhalo_net_cm3 = 0.0;  ///< N_sub + N_p,halo (the paper's N_halo)
  double vth_sat_mv = 0.0;     ///< constant-current extracted, at V_dd
  double ioff_pa_um = 0.0;     ///< at V_gs = 0, V_ds = V_dd
  double ss_mv_dec = 0.0;      ///< inverse subthreshold slope
  double tau_ps = 0.0;         ///< intrinsic delay C_g V_dd / I_on
};

struct SuperVthOptions {
  double nsub_lo_cm3 = 5e16;  ///< doping search window
  double nsub_hi_cm3 = 5e19;
  double long_channel_factor = 6.0;  ///< "long" device: this x L_poly
  /// Card-level device environment: backend kind, temperature, wire
  /// radius. The default is the paper's bulk-at-300K setup (bitwise
  /// neutral); a technology card folds its env in here.
  compact::DeviceEnv env{};
  /// Roadmap fan-out: each node's design runs as its own task
  /// (deterministic — node designs are independent and pure).
  exec::ExecPolicy exec{};
};

/// Run Fig. 1(c) for one node.
DesignedDevice design_supervth_device(
    const NodeInput& node,
    const compact::Calibration& calib = compact::paper_calibration(),
    const SuperVthOptions& options = {});

/// The whole roadmap (Table 2 equivalent), 90nm -> 32nm.
std::vector<DesignedDevice> supervth_roadmap(
    const compact::Calibration& calib = compact::paper_calibration(),
    const SuperVthOptions& options = {});

/// The roadmap over an explicit node list (a technology card's resolved
/// nodes). The default-roadmap overload above is exactly this on
/// paper_nodes().
std::vector<DesignedDevice> supervth_roadmap(
    const std::vector<NodeInput>& nodes,
    const compact::Calibration& calib = compact::paper_calibration(),
    const SuperVthOptions& options = {});

}  // namespace subscale::scaling
