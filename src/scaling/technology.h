#pragma once

/// \file technology.h
/// Fixed per-node inputs of the paper's scaling study (Sec. 2.2):
/// L_poly shrinks 30 %/generation, T_ox 10 %/generation, V_dd steps down
/// 100 mV/generation from 1.2 V, and the super-V_th leakage cap starts at
/// 100 pA/um and is allowed to grow 25 %/generation.

#include <array>
#include <string>

#include "compact/device_spec.h"

namespace subscale::scaling {

struct NodeInput {
  std::string name;            ///< "90nm" ... "32nm"
  int generation = 0;          ///< 0 for 90nm
  double lpoly_nm = 0.0;       ///< super-V_th (minimum) physical gate length
  double tox_nm = 0.0;         ///< gate oxide thickness
  double vdd = 0.0;            ///< nominal (super-V_th) supply [V]
  double feature_shrink = 0.0; ///< 0.7^generation, scales all other features
  double ileak_max_pa_um = 0.0;  ///< super-V_th leakage cap [pA/um]
};

/// The four nodes of the study (Table 2's headers and constraints).
const std::array<NodeInput, 4>& paper_nodes();

/// A node by name ("90nm", "65nm", "45nm", "32nm"); throws
/// std::invalid_argument listing the known names on an unknown one.
const NodeInput& node_by_name(const std::string& name);

/// Generate a node beyond the paper's range by continuing the same rules
/// (e.g. generation 4 -> a "22nm"-class device). Used by the extension
/// benches.
NodeInput extrapolate_node(int generation);

/// Assemble a device spec on this node's feature set with an arbitrary
/// gate length and doping (the building block of both strategies and of
/// the Fig. 7 sweeps). `env` carries the card-level device environment
/// (backend kind, temperature, wire radius); the default env reproduces
/// the paper's bulk-at-300K setup bitwise.
compact::DeviceSpec make_node_spec(const NodeInput& node, double lpoly_nm,
                                   const doping::MosfetDopingLevels& levels,
                                   double vdd,
                                   const compact::DeviceEnv& env = {});

}  // namespace subscale::scaling
