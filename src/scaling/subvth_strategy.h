#pragma once

/// \file subvth_strategy.h
/// The paper's proposed scaling strategy (Sec. 3): instead of shrinking
/// L_poly 30 %/generation, pick the ENERGY-OPTIMAL gate length — the
/// minimizer of C_L * S_S^2 (Eq. 8) — with doping co-optimized at every
/// candidate length, and hold I_off fixed at 100 pA/um across
/// generations (which makes the delay factor reduce to C_L * S_S, Eq. 6).
///
/// Doping co-optimization at a given L_poly:
///   * the overall doping scale is set by the I_off constraint, and
///   * the substrate/halo split enforces a flat V_th roll-off,
///     -dV_th,SCE = dV_th,halo (the paper's well-optimized-device
///     condition), iterated to a joint fixed point.

#include <vector>

#include "exec/policy.h"
#include "scaling/supervth_strategy.h"
#include "scaling/technology.h"

namespace subscale::cache {
class SolveCache;
SolveCache* default_cache();
}  // namespace subscale::cache

namespace subscale::scaling {

struct SubVthOptions {
  double ioff_pa_um = 100.0;  ///< fixed leakage across all generations
  double vds_ref = 0.3;       ///< drain bias for the I_off definition and
                              ///< the spec's default operating scale [V]
  double lpoly_max_factor = 3.5;  ///< search L_poly in [min, factor*min]
  std::size_t lpoly_scan_points = 17;
  std::size_t split_iterations = 5;  ///< scale/split fixed-point sweeps
  /// Card-level device environment (backend kind, temperature, wire
  /// radius); the default reproduces the paper's bulk-at-300K setup
  /// bitwise. On a non-bulk backend the halo-split flatness condition
  /// is a bulk-specific concept, so the doping co-optimization solves
  /// the I_off scale only (np_halo stays 0) — GAA wires need no halos.
  compact::DeviceEnv env{};
  /// Fan-out policy for the independent design candidates: the L_poly
  /// scan grid inside design_subvth_device (each candidate runs its own
  /// doping co-optimization) and the nodes of subvth_roadmap. Results
  /// are identical at every thread count; nested fan-out (roadmap over
  /// nodes, scan per node) degrades the inner level to inline execution
  /// instead of oversubscribing.
  exec::ExecPolicy exec{};
  /// Solve cache for memoizing the per-candidate design objective
  /// (see opt::EvalMemo). Null falls back to cache::default_cache()
  /// (the env-installed process default; typically null too), exactly
  /// like RunContext::cache_sink(). ScalingStudy folds its own
  /// RunContext cache in here, so a study-wide cache reaches the
  /// design layer without a second knob.
  cache::SolveCache* cache = nullptr;

  cache::SolveCache* cache_sink() const {
    return cache != nullptr ? cache : cache::default_cache();
  }
};

/// Co-optimize doping at a fixed gate length (I_off constraint + flat
/// roll-off split). Exposed separately because Fig. 7's "optimized
/// doping" curve is exactly this function swept over L_poly.
compact::DeviceSpec optimize_subvth_doping(
    const NodeInput& node, double lpoly_nm, const SubVthOptions& options = {},
    const compact::Calibration& calib = compact::paper_calibration());

/// Energy factor C_L * S_S^2 (paper Eq. 8), in SI units (F * V^2/dec^2
/// per the spec's width). Comparisons/normalization happen in the caller.
double energy_factor(const compact::DeviceSpec& spec,
                     const compact::Calibration& calib =
                         compact::paper_calibration());

/// Delay factor C_L * S_S / I_off (paper Eq. 6) [s/dec-ish units].
double delay_factor(const compact::DeviceSpec& spec,
                    const compact::Calibration& calib =
                        compact::paper_calibration());

/// A designed sub-V_th device plus Table-3-style values.
struct SubVthDevice {
  DesignedDevice device;          ///< report row (I_off at vds_ref)
  double lpoly_opt_nm = 0.0;      ///< the energy-optimal gate length
  double energy_factor_raw = 0.0; ///< C_L S_S^2 (unnormalized)
  double delay_factor_raw = 0.0;  ///< C_L S_S / I_off (unnormalized)
};

/// Design the node's device: sweep L_poly, co-optimize doping, pick the
/// energy-optimal length.
SubVthDevice design_subvth_device(
    const NodeInput& node, const SubVthOptions& options = {},
    const compact::Calibration& calib = compact::paper_calibration());

/// The full roadmap (Table 3 equivalent).
std::vector<SubVthDevice> subvth_roadmap(
    const SubVthOptions& options = {},
    const compact::Calibration& calib = compact::paper_calibration());

/// The roadmap over an explicit node list (a technology card's resolved
/// nodes). The default overload above is exactly this on paper_nodes().
std::vector<SubVthDevice> subvth_roadmap(
    const std::vector<NodeInput>& nodes, const SubVthOptions& options = {},
    const compact::Calibration& calib = compact::paper_calibration());

}  // namespace subscale::scaling
