#include "scaling/technology.h"

#include <cmath>
#include <stdexcept>

#include "physics/units.h"

namespace subscale::scaling {

const std::array<NodeInput, 4>& paper_nodes() {
  static const std::array<NodeInput, 4> nodes = {{
      {"90nm", 0, 65.0, 2.10, 1.2, 1.000, 100.0},
      {"65nm", 1, 46.0, 1.89, 1.1, 0.700, 125.0},
      {"45nm", 2, 32.0, 1.70, 1.0, 0.490, 156.25},
      {"32nm", 3, 22.0, 1.53, 0.9, 0.343, 195.3125},
  }};
  return nodes;
}

const NodeInput& node_by_name(const std::string& name) {
  for (const NodeInput& node : paper_nodes()) {
    if (node.name == name) return node;
  }
  std::string known;
  for (const NodeInput& node : paper_nodes()) {
    if (!known.empty()) known += ", ";
    known += node.name;
  }
  throw std::invalid_argument("node_by_name: unknown node '" + name +
                              "' (known nodes: " + known + ")");
}

NodeInput extrapolate_node(int generation) {
  if (generation < 0) {
    throw std::invalid_argument("extrapolate_node: negative generation");
  }
  if (generation < 4) {
    return paper_nodes()[static_cast<std::size_t>(generation)];
  }
  NodeInput node;
  const int g = generation;
  // Node names continue the ITRS cadence: 90, 65, 45, 32, 22, 16, ...
  static const char* kNames[] = {"90nm", "65nm", "45nm", "32nm",
                                 "22nm", "16nm", "11nm", "8nm"};
  node.name = g < 8 ? kNames[g] : ("gen" + std::to_string(g));
  node.generation = g;
  node.lpoly_nm = 65.0 * std::pow(0.7, g);
  node.tox_nm = 2.10 * std::pow(0.9, g);
  node.vdd = std::max(0.6, 1.2 - 0.1 * g);
  node.feature_shrink = std::pow(0.7, g);
  node.ileak_max_pa_um = 100.0 * std::pow(1.25, g);
  return node;
}

compact::DeviceSpec make_node_spec(const NodeInput& node, double lpoly_nm,
                                   const doping::MosfetDopingLevels& levels,
                                   double vdd,
                                   const compact::DeviceEnv& env) {
  namespace u = subscale::units;
  compact::DeviceSpec spec;
  spec.polarity = doping::Polarity::kNfet;
  spec.geometry = doping::MosfetGeometry::scaled(
      u::nm(lpoly_nm), u::nm(node.tox_nm), node.feature_shrink);
  spec.levels = levels;
  spec.vdd = vdd;
  spec.apply_env(env);
  spec.validate();
  return spec;
}

}  // namespace subscale::scaling
