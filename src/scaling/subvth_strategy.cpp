#include "scaling/subvth_strategy.h"

#include <cmath>
#include <stdexcept>

#include "cache/study_keys.h"
#include "compact/device_model.h"
#include "compact/vth_model.h"
#include "exec/parallel.h"
#include "opt/bisection.h"
#include "opt/golden_section.h"
#include "opt/memo.h"
#include "physics/units.h"

namespace subscale::scaling {

namespace {

namespace u = subscale::units;

double ioff_at(const NodeInput& node, double lpoly_nm,
               const doping::MosfetDopingLevels& levels, double vds_ref,
               const compact::Calibration& calib,
               const compact::DeviceEnv& env) {
  const compact::DeviceSpec spec =
      make_node_spec(node, lpoly_nm, levels, vds_ref, env);
  return compact::make_device_model(spec, calib)->ioff();
}

}  // namespace

compact::DeviceSpec optimize_subvth_doping(const NodeInput& node,
                                           double lpoly_nm,
                                           const SubVthOptions& options,
                                           const compact::Calibration& calib) {
  const double ioff_target = u::pA_per_um(options.ioff_pa_um) * 1e-6;

  double ratio = 0.5;  // N_p,halo / N_sub split, refined by flatness
  doping::MosfetDopingLevels levels{.nsub = u::per_cm3(1.5e18),
                                    .np_halo = 0.0,
                                    .nsd = 1e26};

  for (std::size_t sweep = 0; sweep < options.split_iterations; ++sweep) {
    // (a) Overall scale from the I_off constraint at the current split.
    const auto leak_of_scale = [&](double nsub) {
      doping::MosfetDopingLevels trial = levels;
      trial.nsub = nsub;
      trial.np_halo = ratio * nsub;
      return std::log(ioff_at(node, lpoly_nm, trial, options.vds_ref, calib,
                              options.env));
    };
    const auto scale_root = opt::solve_monotone_log(
        leak_of_scale, std::log(ioff_target), levels.nsub, u::per_cm3(3e16),
        u::per_cm3(8e19));
    if (!scale_root.converged) {
      throw std::runtime_error(
          "optimize_subvth_doping: I_off target unreachable");
    }
    levels.nsub = scale_root.x;
    levels.np_halo = ratio * levels.nsub;

    // (b) Split from the flat-roll-off condition dV_halo = dV_SCE. The
    // halo/SCE decomposition is a bulk concept (threshold_components
    // models a planar depletion charge); on a non-bulk backend the
    // electrostatics are gate-all-around and halos buy nothing, so the
    // co-optimization solves the I_off scale only with np_halo = 0.
    if (options.env.backend != compact::BackendKind::kBulkMosfet) {
      levels.np_halo = 0.0;
      ratio = 0.0;
      continue;
    }
    const auto flatness = [&](double np) {
      doping::MosfetDopingLevels trial = levels;
      trial.np_halo = np;
      const compact::DeviceSpec spec =
          make_node_spec(node, lpoly_nm, trial, options.vds_ref, options.env);
      const auto c =
          compact::threshold_components(spec, calib, options.vds_ref);
      return c.dvth_halo - c.dvth_sce;
    };
    if (flatness(0.0) < 0.0) {
      const double np_hi = 30.0 * levels.nsub;
      if (flatness(np_hi) > 0.0) {
        const auto split_root =
            opt::bisect(flatness, 0.0, np_hi, 1e-4 * levels.nsub, 200);
        levels.np_halo = split_root.x;
      } else {
        levels.np_halo = np_hi;  // saturate; next scale sweep compensates
      }
    } else {
      levels.np_halo = 0.0;
    }
    ratio = levels.np_halo / levels.nsub;
  }

  return make_node_spec(node, lpoly_nm, levels, options.vds_ref, options.env);
}

namespace {

/// The circuit load C_L of Eqs. 6/8: device gate capacitance plus the
/// per-stage wire/junction load (which scales with the node's features,
/// not with the transistor's gate length).
double circuit_load(const compact::DeviceModel& fet,
                    const compact::Calibration& calib) {
  return fet.gate_capacitance() + calib.c_wire *
                                      fet.spec().geometry.feature_shrink *
                                      fet.spec().width;
}

}  // namespace

double energy_factor(const compact::DeviceSpec& spec,
                     const compact::Calibration& calib) {
  const auto fet = compact::make_device_model(spec, calib);
  const double ss = fet->subthreshold_swing();
  return circuit_load(*fet, calib) * ss * ss;
}

double delay_factor(const compact::DeviceSpec& spec,
                    const compact::Calibration& calib) {
  const auto fet = compact::make_device_model(spec, calib);
  return circuit_load(*fet, calib) * fet->subthreshold_swing() / fet->ioff();
}

SubVthDevice design_subvth_device(const NodeInput& node,
                                  const SubVthOptions& options,
                                  const compact::Calibration& calib) {
  const auto objective = [&](double lpoly_nm) {
    const compact::DeviceSpec spec =
        optimize_subvth_doping(node, lpoly_nm, options, calib);
    return energy_factor(spec, calib);
  };
  // The scan candidates are independent full doping co-optimizations —
  // the expensive part of the design — so fan them out; the golden
  // refinement that follows is sequential by nature.
  const opt::BatchObjective scan_batch = [&](const std::vector<double>& xs) {
    return exec::values_or_throw(exec::parallel_map<double>(
        xs.size(), [&](std::size_t i) { return objective(xs[i]); },
        options.exec));
  };
  // Memoize candidate evaluations against the solve cache: a repeated
  // study replays each L_poly design objective bitwise instead of
  // re-running the doping co-optimization (the inert memo on a null
  // cache degrades to the bare objective).
  const opt::EvalMemo memo(
      options.cache_sink(),
      cache::subvth_design_key(node, options, calib));
  const opt::ScalarMinimum best = opt::scan_then_golden(
      scan_batch, objective, node.lpoly_nm,
      options.lpoly_max_factor * node.lpoly_nm, options.lpoly_scan_points,
      0.2 /* nm resolution */, memo);

  SubVthDevice out;
  out.lpoly_opt_nm = best.x;
  out.device.node = node;
  out.device.spec = optimize_subvth_doping(node, best.x, options, calib);
  out.energy_factor_raw = energy_factor(out.device.spec, calib);
  out.delay_factor_raw = delay_factor(out.device.spec, calib);

  const auto fet = compact::make_device_model(out.device.spec, calib);
  out.device.nsub_cm3 = u::to_per_cm3(out.device.spec.levels.nsub);
  out.device.nhalo_net_cm3 = u::to_per_cm3(out.device.spec.levels.nsub +
                                           out.device.spec.levels.np_halo);
  out.device.vth_sat_mv = u::to_mV(fet->vth(options.vds_ref));
  out.device.ioff_pa_um =
      u::to_pA_per_um(fet->ioff() / out.device.spec.width);
  out.device.ss_mv_dec = fet->subthreshold_swing() * 1e3;
  out.device.tau_ps = u::to_ps(fet->intrinsic_delay());
  return out;
}

std::vector<SubVthDevice> subvth_roadmap(const SubVthOptions& options,
                                         const compact::Calibration& calib) {
  const auto& nodes = paper_nodes();
  return subvth_roadmap(std::vector<NodeInput>(nodes.begin(), nodes.end()),
                        options, calib);
}

std::vector<SubVthDevice> subvth_roadmap(const std::vector<NodeInput>& nodes,
                                         const SubVthOptions& options,
                                         const compact::Calibration& calib) {
  return exec::values_or_throw(exec::parallel_map<SubVthDevice>(
      nodes.size(),
      [&](std::size_t i) {
        return design_subvth_device(nodes[i], options, calib);
      },
      options.exec));
}

}  // namespace subscale::scaling
