#pragma once

/// \file generalized_scaling.h
/// Generalized scaling theory (paper Table 1, after Baccarani/Wordeman/
/// Dennard [8]): physical dimensions shrink by 1/alpha while the maximum
/// channel field is allowed to grow by epsilon per generation.

namespace subscale::scaling {

/// The per-generation factors of Table 1 for given (alpha, epsilon).
struct GeneralizedScalingFactors {
  double physical_dimensions = 0.0;  ///< 1/alpha (L_poly, T_ox, W, wires)
  double channel_doping = 0.0;       ///< epsilon * alpha (N_ch)
  double supply_voltage = 0.0;       ///< epsilon / alpha (V_dd)
  double area = 0.0;                 ///< 1/alpha^2
  double delay = 0.0;                ///< 1/alpha
  double power = 0.0;                ///< epsilon^2 / alpha^2
};

/// Evaluate Table 1. alpha > 1 shrinks; epsilon = 1 recovers Dennard's
/// constant-field scaling [7].
GeneralizedScalingFactors generalized_scaling(double alpha, double epsilon);

/// Apply n generations of the factor (factor^n).
double after_generations(double per_generation_factor, int generations);

}  // namespace subscale::scaling
