#include "circuits/variability.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

#include "circuits/delay.h"
#include "exec/parallel.h"
#include "exec/rng.h"
#include "physics/constants.h"

namespace subscale::circuits {

double MismatchModel::sigma_vth(const compact::DeviceSpec& spec) const {
  const double area = spec.width * spec.geometry.lpoly;
  if (area <= 0.0) {
    throw std::invalid_argument("MismatchModel::sigma_vth: non-positive area");
  }
  return a_vt / std::sqrt(area);
}

namespace {

/// Rebuild a device model with a shifted threshold (the calibration's
/// delta_vth is exactly an additive V_th term on every backend, so
/// mismatch composes with it directly, whatever the device physics).
std::shared_ptr<const compact::DeviceModel> shifted(
    const compact::DeviceModel& base, double dvth) {
  compact::Calibration calib = base.calibration();
  calib.delta_vth += dvth;
  return base.with_calibration(calib);
}

}  // namespace

DelayVariabilityResult delay_variability(const InverterDevices& inv,
                                         const MismatchModel& mismatch,
                                         const VariabilityOptions& options) {
  if (options.samples < 2) {
    throw std::invalid_argument("delay_variability: need >= 2 samples");
  }
  if (options.shard_size < 1) {
    throw std::invalid_argument("delay_variability: shard_size must be >= 1");
  }
  const double sigma_n = mismatch.sigma_vth(inv.nfet->spec());
  const double sigma_p = mismatch.sigma_vth(inv.pfet->spec());

  // Fixed-size shards, each drawing from its own counter-derived RNG
  // stream: the sample at a given global index is the same no matter
  // how many threads ran the Monte Carlo (or which one ran the shard).
  const std::size_t n_shards =
      (options.samples + options.shard_size - 1) / options.shard_size;
  std::vector<double> delays(options.samples);
  const auto run_shard = [&](std::size_t shard) {
    std::mt19937_64 rng(exec::seed_stream(options.seed, shard));
    std::normal_distribution<double> gauss(0.0, 1.0);
    const std::size_t begin = shard * options.shard_size;
    const std::size_t end =
        std::min(options.samples, begin + options.shard_size);
    for (std::size_t s = begin; s < end; ++s) {
      InverterDevices sample = inv;
      sample.nfet = shifted(*inv.nfet, sigma_n * gauss(rng));
      sample.pfet = shifted(*inv.pfet, sigma_p * gauss(rng));
      double tp = 0.0;
      if (options.simulate_transient) {
        tp = fo1_delay(sample).tp;
      } else {
        // Per-transition Eq. 4: each edge is driven by one device, so
        // the two V_th shifts enter separate exponentials (this is what
        // makes the delay distribution lognormal).
        const double cl = sample.stage_capacitance();
        const double v = sample.vdd;
        const double tphl =
            options.kd * cl * v / sample.nfet->drain_current(v, v);
        const double tplh =
            options.kd * cl * v / sample.pfet->drain_current(v, v);
        tp = 0.5 * (tphl + tplh);
      }
      delays[s] = tp;
    }
  };
  exec::rethrow_first(exec::parallel_for(n_shards, run_shard, options.exec));

  DelayVariabilityResult r;
  r.samples = delays.size();
  double sum = 0.0, sum_ln = 0.0;
  for (const double d : delays) {
    sum += d;
    sum_ln += std::log(d);
  }
  r.mean = sum / static_cast<double>(delays.size());
  const double mean_ln = sum_ln / static_cast<double>(delays.size());
  double var = 0.0, var_ln = 0.0;
  for (const double d : delays) {
    var += (d - r.mean) * (d - r.mean);
    var_ln += (std::log(d) - mean_ln) * (std::log(d) - mean_ln);
  }
  var /= static_cast<double>(delays.size() - 1);
  var_ln /= static_cast<double>(delays.size() - 1);
  r.sigma = std::sqrt(var);
  r.sigma_over_mean = r.sigma / r.mean;
  r.sigma_ln = std::sqrt(var_ln);

  // Closed form: delay ~ exp(dVth/(m vT)) per transition; averaging the
  // two transitions halves the per-edge variance contribution of each
  // device, so sigma_ln^2 ~ (sigma_n^2 + sigma_p^2) / (2 m vT)^2 ... to
  // first order with equal weighting of rise/fall:
  const double m_n = inv.nfet->slope_factor();
  const double m_p = inv.pfet->slope_factor();
  const double vt = physics::thermal_voltage(inv.nfet->spec().temperature);
  const double s2 = 0.25 * (sigma_n * sigma_n / (m_n * m_n) +
                            sigma_p * sigma_p / (m_p * m_p));
  r.sigma_ln_predicted = std::sqrt(s2) / vt;
  return r;
}

}  // namespace subscale::circuits
