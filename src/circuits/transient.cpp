#include "circuits/transient.h"

#include <stdexcept>

#include "circuits/dc_solver.h"
#include "linalg/newton.h"

namespace subscale::circuits {

TransientSim::TransientSim(Circuit& circuit,
                           std::vector<double> initial_voltages,
                           const TransientOptions& options)
    : circuit_(circuit), options_(options), v_(std::move(initial_voltages)) {
  if (v_.size() != circuit_.node_count()) {
    throw std::invalid_argument("TransientSim: initial voltage size mismatch");
  }
}

void TransientSim::step(double dt) {
  if (dt <= 0.0) {
    throw std::invalid_argument("TransientSim::step: dt must be positive");
  }
  const std::vector<NodeId> free = circuit_.free_nodes();
  const std::vector<double> v_old = v_;

  // Impose (possibly updated) fixed-node voltages for the new time point.
  std::vector<double> v_fixed(circuit_.node_count());
  for (NodeId id = 0; id < circuit_.node_count(); ++id) {
    v_fixed[id] = circuit_.is_fixed(id) ? circuit_.fixed_voltage(id) : 0.0;
  }

  const auto assemble = [&](const std::vector<double>& x) {
    std::vector<double> v = v_fixed;
    for (std::size_t k = 0; k < free.size(); ++k) v[free[k]] = x[k];
    return v;
  };

  const auto residual = [&](const std::vector<double>& x) {
    const std::vector<double> v = assemble(x);
    std::vector<double> f(free.size(), 0.0);
    for (std::size_t k = 0; k < free.size(); ++k) {
      f[k] = circuit_.node_device_current(free[k], v);
    }
    // Capacitor displacement currents (backward Euler).
    for (const CapacitorInstance& cap : circuit_.capacitors()) {
      const double dv_new = v[cap.a] - v[cap.b];
      const double dv_old = v_old[cap.a] - v_old[cap.b];
      const double i_cap = cap.capacitance * (dv_new - dv_old) / dt;
      // i_cap flows out of node a into node b.
      for (std::size_t k = 0; k < free.size(); ++k) {
        if (free[k] == cap.a) f[k] += i_cap;
        if (free[k] == cap.b) f[k] -= i_cap;
      }
    }
    return f;
  };
  const auto jacobian = [&](const std::vector<double>& x) {
    return linalg::finite_difference_jacobian(residual, x, 1e-7);
  };

  std::vector<double> x0(free.size());
  for (std::size_t k = 0; k < free.size(); ++k) x0[k] = v_[free[k]];

  const linalg::NewtonResult newton = linalg::newton_solve(
      residual, jacobian, x0,
      {.max_iterations = options_.max_newton_iterations,
       .residual_tolerance = options_.newton_tolerance,
       .step_tolerance = 1e-16,
       .max_step = options_.max_step});
  if (!newton.converged) {
    throw std::runtime_error("TransientSim::step: Newton did not converge");
  }

  v_ = assemble(newton.x);
  time_ += dt;
}

double TransientSim::rail_device_current(NodeId rail) const {
  return rail_current(circuit_, rail, v_);
}

}  // namespace subscale::circuits
