#pragma once

/// \file transient.h
/// Backward-Euler transient simulation (L-stable — the right choice for
/// the stiff exponential dynamics of subthreshold circuits, where node
/// time-constants span six orders of magnitude between on and off states).

#include <vector>

#include "circuits/netlist.h"

namespace subscale::circuits {

struct TransientOptions {
  double newton_tolerance = 1e-15;  ///< [A]
  std::size_t max_newton_iterations = 200;
  double max_step = 0.3;  ///< Newton voltage clamp per iteration [V]
};

/// Integrates the circuit's node equations in time. Inputs are changed by
/// calling Circuit::set_fixed_voltage between steps (the circuit is held
/// by reference and not owned).
class TransientSim {
 public:
  /// \param initial_voltages  full per-node voltage vector (e.g. from
  ///        solve_dc); fixed nodes are re-imposed at each step.
  TransientSim(Circuit& circuit, std::vector<double> initial_voltages,
               const TransientOptions& options = {});

  /// Advance one backward-Euler step of length dt [s].
  /// Throws std::runtime_error if the step's Newton fails to converge.
  void step(double dt);

  double time() const { return time_; }
  const std::vector<double>& voltages() const { return v_; }
  double voltage(NodeId node) const { return v_[node]; }

  /// Device current drawn from a fixed rail at the end of the last step
  /// [A] (positive = flowing out of the rail into the circuit).
  double rail_device_current(NodeId rail) const;

 private:
  Circuit& circuit_;
  TransientOptions options_;
  std::vector<double> v_;
  double time_ = 0.0;
};

}  // namespace subscale::circuits
