#include "circuits/vmin.h"

#include <cmath>

#include "cache/study_keys.h"
#include "opt/golden_section.h"
#include "opt/memo.h"

namespace subscale::circuits {

VminResult find_vmin(const InverterDevices& devices, const ChainSpec& chain,
                     const VminOptions& options) {
  const auto energy = [&](double vdd) {
    return chain_energy(devices, vdd, chain).e_total;
  };
  const opt::EvalMemo memo(
      options.cache_sink(),
      cache::vmin_key(devices.nfet->spec(), devices.pfet->spec(),
                      devices.nfet->calibration(), chain, options));
  const opt::BatchObjective serial_batch =
      [&](const std::vector<double>& xs) {
        std::vector<double> values;
        values.reserve(xs.size());
        for (const double x : xs) values.push_back(energy(x));
        return values;
      };
  const opt::ScalarMinimum m = opt::scan_then_golden(
      serial_batch, energy, options.v_lo, options.v_hi, options.scan_points,
      options.v_tolerance, memo);
  VminResult result;
  result.vmin = m.x;
  result.at_vmin = chain_energy(devices, m.x, chain);
  return result;
}

}  // namespace subscale::circuits
