#include "circuits/vmin.h"

#include <cmath>

#include "opt/golden_section.h"

namespace subscale::circuits {

VminResult find_vmin(const InverterDevices& devices, const ChainSpec& chain,
                     const VminOptions& options) {
  const auto energy = [&](double vdd) {
    return chain_energy(devices, vdd, chain).e_total;
  };
  const opt::ScalarMinimum m = opt::scan_then_golden(
      energy, options.v_lo, options.v_hi, options.scan_points,
      options.v_tolerance);
  VminResult result;
  result.vmin = m.x;
  result.at_vmin = chain_energy(devices, m.x, chain);
  return result;
}

}  // namespace subscale::circuits
