#include "circuits/inverter.h"

#include <stdexcept>

namespace subscale::circuits {

InverterDevices InverterDevices::at_vdd(double new_vdd) const {
  if (new_vdd <= 0.0) {
    throw std::invalid_argument("InverterDevices::at_vdd: vdd must be > 0");
  }
  InverterDevices out = *this;
  out.vdd = new_vdd;
  return out;
}

InverterDevices make_inverter(const compact::DeviceSpec& nfet_spec,
                              const compact::Calibration& calib) {
  if (nfet_spec.polarity != doping::Polarity::kNfet) {
    throw std::invalid_argument("make_inverter: spec must be an NFET");
  }
  InverterDevices inv;
  inv.vdd = nfet_spec.vdd;
  inv.nfet = compact::make_device_model(nfet_spec, calib);

  compact::DeviceSpec pfet_spec = nfet_spec;
  pfet_spec.polarity = doping::Polarity::kPfet;
  // Probe the weak-inversion current ratio at equal width, then up-size
  // the PFET so the inverter's pull-up and pull-down I_o match.
  const auto pfet_probe = compact::make_device_model(pfet_spec, calib);
  const double v_probe = 0.15;  // deep subthreshold for any of our devices
  const double i_n = inv.nfet->drain_current(v_probe, v_probe);
  const double i_p = pfet_probe->drain_current(v_probe, v_probe);
  if (i_p <= 0.0 || i_n <= 0.0) {
    throw std::logic_error("make_inverter: non-positive probe current");
  }
  pfet_spec.width = nfet_spec.width * (i_n / i_p);
  inv.pfet = compact::make_device_model(pfet_spec, calib);
  return inv;
}

double inverter_leakage(const InverterDevices& inv, bool input_high) {
  // Input high: NFET on, output low, PFET leaks at |vds| = vdd.
  // Input low: PFET on, output high, NFET leaks at vds = vdd.
  if (input_high) {
    return inv.pfet->drain_current(0.0, inv.vdd);
  }
  return inv.nfet->drain_current(0.0, inv.vdd);
}

}  // namespace subscale::circuits
