#pragma once

/// \file inverter.h
/// The CMOS inverter device pair used throughout the paper's circuit
/// experiments. The PFET mirrors the NFET's geometry and doping (the
/// paper derives PFET values analogously and finds nearly identical
/// optima); its width is up-sized to balance the weak-inversion currents
/// (the paper's Eq. 3 assumes I_o,N = I_o,P for a symmetric VTC).

#include <memory>

#include "compact/device_model.h"

namespace subscale::circuits {

struct InverterDevices {
  std::shared_ptr<const compact::DeviceModel> nfet;
  std::shared_ptr<const compact::DeviceModel> pfet;
  double vdd = 0.0;  ///< operating rail for this instance [V]

  /// FO1 load: the gate capacitance of an identical inverter [F].
  double fanout_capacitance() const {
    return nfet->gate_capacitance() + pfet->gate_capacitance();
  }
  /// Per-stage wire/junction load from the calibration [F]. It scales
  /// with the node's feature shrink (wires scale with the process, not
  /// with the gate-length choice) and with the total driven gate width
  /// (wider stages mean longer local wires and bigger junctions). This
  /// makes the circuit C_L exactly proportional to the scaling module's
  /// analytical load C_g + c_wire*W, so circuit-level energy follows the
  /// paper's C_L*S_S^2 factor.
  double wire_capacitance() const {
    return nfet->calibration().c_wire *
           nfet->spec().geometry.feature_shrink *
           (nfet->spec().width + pfet->spec().width);
  }
  /// Total switched capacitance per stage: (FO1 gate load + wire load),
  /// plus drain-junction self-loading as a fraction of both.
  double stage_capacitance(double self_load_factor = 0.5) const {
    return (1.0 + self_load_factor) *
           (fanout_capacitance() + wire_capacitance());
  }

  /// The same devices re-rated for a different supply (used by the V_min
  /// sweep; the device models themselves are bias-independent).
  InverterDevices at_vdd(double new_vdd) const;
};

/// Build a balanced inverter from an NFET spec: the PFET copies geometry
/// and doping, and its width is scaled by the weak-inversion N/P current
/// ratio so that I_o,N = I_o,P. Devices are built through
/// compact::make_device_model, so the spec's backend kind selects the
/// device physics (bulk MOSFET or nanowire GAA).
InverterDevices make_inverter(const compact::DeviceSpec& nfet_spec,
                              const compact::Calibration& calib =
                                  compact::paper_calibration());

/// Static current drawn from the rail by one inverter with input held at
/// logic `input_high` [A] — the off-device's subthreshold leakage at the
/// given rail voltage.
double inverter_leakage(const InverterDevices& inv, bool input_high);

}  // namespace subscale::circuits
