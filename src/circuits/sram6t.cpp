#include "circuits/sram6t.h"

#include <stdexcept>

#include "opt/bisection.h"

namespace subscale::circuits {

Sram6tCell make_sram_cell(const compact::DeviceSpec& nfet_spec,
                          double cell_ratio, double pullup_ratio,
                          const compact::Calibration& calib) {
  if (nfet_spec.polarity != doping::Polarity::kNfet) {
    throw std::invalid_argument("make_sram_cell: spec must be an NFET");
  }
  if (cell_ratio <= 0.0 || pullup_ratio <= 0.0) {
    throw std::invalid_argument("make_sram_cell: ratios must be positive");
  }
  Sram6tCell cell;
  cell.vdd = nfet_spec.vdd;

  compact::DeviceSpec access_spec = nfet_spec;  // unit-width access
  cell.access = compact::make_device_model(access_spec, calib);

  compact::DeviceSpec pd_spec = nfet_spec;
  pd_spec.width = nfet_spec.width * cell_ratio;
  cell.pull_down = compact::make_device_model(pd_spec, calib);

  // Balanced PFET (as in make_inverter) scaled by the pull-up ratio.
  const InverterDevices inv = make_inverter(pd_spec, calib);
  compact::DeviceSpec pu_spec = inv.pfet->spec();
  pu_spec.width *= pullup_ratio;
  cell.pull_up = compact::make_device_model(pu_spec, calib);
  return cell;
}

namespace {

/// Solve the storage-node voltage for a given opposite-node voltage.
/// `with_access` includes the access NFET pulling toward the bitline (at
/// V_dd) with the wordline on.
double storage_node_voltage(const Sram6tCell& cell, double v_other,
                            bool with_access) {
  const double vdd = cell.vdd;
  const auto balance = [&](double vq) {
    // Pull-down NFET: gate at v_other, drain at vq.
    const double i_down = cell.pull_down->drain_current(v_other, vq);
    // Pull-up PFET: gate at v_other, source at vdd, drain at vq.
    const double i_up =
        cell.pull_up->drain_current(vdd - v_other, vdd - vq);
    double f = i_down - i_up;
    if (with_access) {
      // Access NFET: drain at bitline (vdd), source at the storage node,
      // gate at wordline (vdd). Current flows INTO the node.
      const double i_acc = cell.access->drain_current(vdd - vq, vdd - vq);
      f -= i_acc;
    }
    return f;
  };
  // The balance is monotone increasing in vq. With the access device on,
  // the node can be pulled above the inverter's natural low level, but it
  // stays within [0, vdd].
  const auto root = opt::bisect(balance, 0.0, vdd, 1e-12 * vdd, 400);
  return root.x;
}

VtcCurve sample_vtc(const Sram6tCell& cell, bool with_access,
                    std::size_t points) {
  if (points < 2) {
    throw std::invalid_argument("sram vtc: need at least 2 points");
  }
  VtcCurve curve;
  curve.vin.resize(points);
  curve.vout.resize(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double v =
        cell.vdd * static_cast<double>(i) / static_cast<double>(points - 1);
    curve.vin[i] = v;
    curve.vout[i] = storage_node_voltage(cell, v, with_access);
  }
  return curve;
}

}  // namespace

VtcCurve sram_read_vtc(const Sram6tCell& cell, std::size_t points) {
  return sample_vtc(cell, /*with_access=*/true, points);
}

VtcCurve sram_hold_vtc(const Sram6tCell& cell, std::size_t points) {
  return sample_vtc(cell, /*with_access=*/false, points);
}

double sram_hold_snm(const Sram6tCell& cell) {
  const VtcCurve vtc = sram_hold_vtc(cell);
  return butterfly_snm(vtc, vtc);
}

double sram_read_snm(const Sram6tCell& cell) {
  const VtcCurve vtc = sram_read_vtc(cell);
  return butterfly_snm(vtc, vtc);
}

}  // namespace subscale::circuits
