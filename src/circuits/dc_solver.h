#pragma once

/// \file dc_solver.h
/// Nonlinear DC operating-point solver: damped Newton on the KCL
/// residuals of the free nodes (the standard SPICE formulation restricted
/// to this library's element set).

#include <vector>

#include "circuits/netlist.h"

namespace subscale::circuits {

struct DcOptions {
  double residual_tolerance = 1e-15;  ///< [A] — sub-pA circuits need this
  std::size_t max_iterations = 300;
  double max_step = 0.3;  ///< Newton voltage-step clamp [V]
};

struct DcResult {
  /// Full voltage vector indexed by NodeId (fixed nodes hold their value).
  std::vector<double> voltages;
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
};

/// Solve the DC operating point. `initial_guess`, if non-empty, must have
/// one entry per node; free-node entries seed the Newton iteration.
DcResult solve_dc(const Circuit& circuit,
                  const std::vector<double>& initial_guess = {},
                  const DcOptions& options = {});

/// Total current delivered by a fixed node (rail) at the given solution:
/// the current flowing out of the rail into the devices [A]. Useful for
/// leakage accounting.
double rail_current(const Circuit& circuit, NodeId rail,
                    const std::vector<double>& voltages);

}  // namespace subscale::circuits
