#include "circuits/ring_oscillator.h"

#include <stdexcept>
#include <vector>

#include "circuits/netlist.h"
#include "circuits/transient.h"

namespace subscale::circuits {

RingResult simulate_ring(const InverterDevices& inv,
                         const RingOptions& options) {
  if (options.stages < 3 || options.stages % 2 == 0) {
    throw std::invalid_argument("simulate_ring: stages must be odd and >= 3");
  }
  const double vdd = inv.vdd;
  Circuit circuit;
  const NodeId rail = circuit.add_fixed_node("vdd", vdd);

  std::vector<NodeId> nodes(options.stages);
  for (std::size_t s = 0; s < options.stages; ++s) {
    nodes[s] = circuit.add_node("r" + std::to_string(s));
  }
  const double c_load = inv.stage_capacitance(options.self_load_factor);
  for (std::size_t s = 0; s < options.stages; ++s) {
    const NodeId in = nodes[(s + options.stages - 1) % options.stages];
    const NodeId out = nodes[s];
    circuit.add_mosfet(inv.nfet, out, in, circuit.ground());
    circuit.add_mosfet(inv.pfet, out, in, rail);
    circuit.add_capacitor(out, circuit.ground(), c_load);
  }

  // Start from an alternating pattern (not the metastable mid-rail point).
  std::vector<double> v0(circuit.node_count(), 0.0);
  v0[rail] = vdd;
  for (std::size_t s = 0; s < options.stages; ++s) {
    v0[nodes[s]] = (s % 2 == 0) ? vdd : 0.0;
  }

  const double i_drive = inv.nfet->drain_current(vdd, 0.5 * vdd);
  const double tau = c_load * vdd / i_drive;
  const double dt = tau / 30.0;

  TransientSim sim(circuit, v0);
  const NodeId probe = nodes[0];
  const double v_half = 0.5 * vdd;

  std::vector<double> rising_times;
  const std::size_t needed =
      options.settle_periods + options.measure_periods + 1;
  double v_prev = sim.voltage(probe);
  double t_prev = 0.0;
  const std::size_t max_steps =
      needed * options.stages * 2 * 200;  // generous budget
  for (std::size_t step = 0; step < max_steps; ++step) {
    sim.step(dt);
    const double v_now = sim.voltage(probe);
    if (v_prev < v_half && v_now >= v_half) {
      const double t_frac = (v_half - v_prev) / (v_now - v_prev);
      rising_times.push_back(t_prev + t_frac * dt);
      if (rising_times.size() >= needed) break;
    }
    v_prev = v_now;
    t_prev = sim.time();
  }
  if (rising_times.size() < needed) {
    throw std::runtime_error("simulate_ring: oscillation did not settle");
  }

  const std::size_t first = options.settle_periods;
  const double span = rising_times.back() - rising_times[first];
  RingResult result;
  result.period = span / static_cast<double>(options.measure_periods);
  result.frequency = 1.0 / result.period;
  result.stage_delay =
      result.period / (2.0 * static_cast<double>(options.stages));
  return result;
}

}  // namespace subscale::circuits
