#pragma once

/// \file vtc.h
/// Inverter voltage-transfer characteristic and static noise margins.
/// The VTC is obtained exactly as the paper's Eq. 3(a): by equating the
/// NFET and PFET drain currents at the output node (solved numerically,
/// which keeps the full model's DIBL and all-region behaviour instead of
/// the simplified closed form of Eq. 3(c)). SNM is defined at the
/// unity-gain points, matching the paper: "We define SNM at the points
/// where the gain in the voltage transfer characteristic equals -1."

#include <vector>

#include "circuits/inverter.h"

namespace subscale::circuits {

/// Output voltage of the inverter for a given input (current balance at
/// the output node, solved by bisection — the balance is monotone in
/// V_out).
double vtc_output(const InverterDevices& inv, double vin);

/// Sampled VTC on a uniform input grid.
struct VtcCurve {
  std::vector<double> vin;
  std::vector<double> vout;
};
VtcCurve compute_vtc(const InverterDevices& inv, std::size_t points = 201);

/// Small-signal gain dVout/dVin at the given input (central difference).
double vtc_gain(const InverterDevices& inv, double vin);

/// Noise-margin summary from the two unity-|gain| points.
struct NoiseMargins {
  double vil = 0.0;  ///< lower unity-gain input
  double vih = 0.0;  ///< upper unity-gain input
  double voh = 0.0;  ///< V_out(V_IL)
  double vol = 0.0;  ///< V_out(V_IH)
  double nml = 0.0;  ///< V_IL - V_OL
  double nmh = 0.0;  ///< V_OH - V_IH
  double snm = 0.0;  ///< min(nml, nmh)
  double peak_gain = 0.0;  ///< most negative gain (at the switching point)
};
NoiseMargins noise_margins(const InverterDevices& inv);

/// Seevinck rotated-axes butterfly SNM of two cross-coupled transfer
/// curves (used by the SRAM analysis; for a symmetric latch pass the same
/// curve twice). `forward` maps node A's input to its output; `mirrored`
/// maps node B's input to its output. Returns the side of the largest
/// square nested in the smaller eye [V].
double butterfly_snm(const VtcCurve& forward, const VtcCurve& mirrored);

}  // namespace subscale::circuits
