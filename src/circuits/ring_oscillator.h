#pragma once

/// \file ring_oscillator.h
/// Odd-stage ring oscillator simulated with the transient engine — an
/// independent validation of the FO1 delay trend (period ~ 2 N t_p).

#include "circuits/inverter.h"

namespace subscale::circuits {

struct RingResult {
  double period = 0.0;     ///< steady-state oscillation period [s]
  double frequency = 0.0;  ///< 1 / period [Hz]
  double stage_delay = 0.0;  ///< period / (2 N) [s]
};

struct RingOptions {
  std::size_t stages = 5;          ///< must be odd and >= 3
  double self_load_factor = 0.5;
  std::size_t settle_periods = 2;  ///< discard start-up periods
  std::size_t measure_periods = 3;
};

/// Simulate the ring and extract the oscillation period from successive
/// rising crossings of V_dd/2 at one node.
RingResult simulate_ring(const InverterDevices& devices,
                         const RingOptions& options = {});

}  // namespace subscale::circuits
