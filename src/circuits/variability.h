#pragma once

/// \file variability.h
/// Timing variability in the subthreshold regime — the paper's intro
/// motivation ("timing variability grows dramatically as V_dd reduces,
/// forcing pessimistic design practices and large timing margins").
///
/// Random V_th mismatch follows Pelgrom's law, sigma_Vth = A_VT /
/// sqrt(W L). In subthreshold the delay is exponential in V_th
/// (Eq. 5), so a Gaussian V_th spread becomes a LOGNORMAL delay spread
/// with log-sigma = sigma_Vth / (m vT) — this module quantifies that,
/// both in closed form and by Monte-Carlo over the full compact model.
///
/// A side effect the paper's proposed strategy enjoys for free: the
/// energy-optimal device has a LONGER gate, so its W L area is larger
/// and its sigma_Vth smaller — the sub-V_th strategy is also the
/// lower-variability strategy.

#include <cstdint>

#include "circuits/inverter.h"
#include "exec/policy.h"

namespace subscale::circuits {

/// Pelgrom mismatch model.
struct MismatchModel {
  /// A_VT matching coefficient [V*m]; 3.5 mV*um is a typical 90nm-class
  /// thin-oxide value.
  double a_vt = 3.5e-3 * 1e-6;

  /// sigma of the threshold-voltage mismatch for one device [V].
  double sigma_vth(const compact::DeviceSpec& spec) const;
};

struct DelayVariabilityResult {
  double mean = 0.0;            ///< mean FO1 delay [s]
  double sigma = 0.0;           ///< standard deviation [s]
  double sigma_over_mean = 0.0; ///< the paper's "variability" figure
  double sigma_ln = 0.0;        ///< measured std of ln(delay)
  double sigma_ln_predicted = 0.0;  ///< sigma_Vth,eff / (m vT) closed form
  std::size_t samples = 0;
};

struct VariabilityOptions {
  std::size_t samples = 400;
  std::uint64_t seed = 20070604;  ///< deterministic by default
  /// If true, each sample runs the backward-Euler transient; otherwise
  /// the analytical Eq. 4/5 delay with the sampled V_th shifts is used
  /// (three orders of magnitude faster, same distribution shape).
  bool simulate_transient = false;
  double kd = 0.69;  ///< analytical-delay fitting constant
  /// Samples per RNG shard. Each shard draws from its own stream
  /// (exec::seed_stream(seed, shard)), so the sampled V_th shifts — and
  /// therefore every statistic — are bitwise-identical at any thread
  /// count. Changing shard_size changes the sample set (like changing
  /// the seed); changing `exec` never does.
  std::size_t shard_size = 32;
  exec::ExecPolicy exec{};  ///< Monte-Carlo fan-out across shards
};

/// Monte-Carlo FO1 delay variability of an inverter whose N and P
/// devices carry independent Pelgrom V_th shifts.
DelayVariabilityResult delay_variability(const InverterDevices& inv,
                                         const MismatchModel& mismatch = {},
                                         const VariabilityOptions& options = {});

}  // namespace subscale::circuits
