#include "circuits/netlist.h"

#include <stdexcept>

#include "doping/mosfet_doping.h"

namespace subscale::circuits {

Circuit::Circuit() {
  names_.push_back("0");
  fixed_.push_back(true);
  fixed_voltages_.push_back(0.0);
}

NodeId Circuit::add_node(std::string name) {
  names_.push_back(std::move(name));
  fixed_.push_back(false);
  fixed_voltages_.push_back(0.0);
  return names_.size() - 1;
}

NodeId Circuit::add_fixed_node(std::string name, double voltage) {
  const NodeId id = add_node(std::move(name));
  fixed_[id] = true;
  fixed_voltages_[id] = voltage;
  return id;
}

void Circuit::set_fixed_voltage(NodeId node, double voltage) {
  if (node >= names_.size() || !fixed_[node]) {
    throw std::invalid_argument("Circuit::set_fixed_voltage: not a fixed node");
  }
  fixed_voltages_[node] = voltage;
}

double Circuit::fixed_voltage(NodeId node) const {
  if (node >= names_.size() || !fixed_[node]) {
    throw std::invalid_argument("Circuit::fixed_voltage: not a fixed node");
  }
  return fixed_voltages_[node];
}

std::vector<NodeId> Circuit::free_nodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < names_.size(); ++id) {
    if (!fixed_[id]) out.push_back(id);
  }
  return out;
}

void Circuit::add_mosfet(std::shared_ptr<const compact::DeviceModel> model,
                         NodeId drain, NodeId gate, NodeId source) {
  if (!model) {
    throw std::invalid_argument("Circuit::add_mosfet: null model");
  }
  if (drain >= names_.size() || gate >= names_.size() ||
      source >= names_.size()) {
    throw std::out_of_range("Circuit::add_mosfet: bad node id");
  }
  mosfets_.push_back({std::move(model), drain, gate, source});
}

void Circuit::add_capacitor(NodeId a, NodeId b, double capacitance) {
  if (a >= names_.size() || b >= names_.size()) {
    throw std::out_of_range("Circuit::add_capacitor: bad node id");
  }
  if (capacitance < 0.0) {
    throw std::invalid_argument("Circuit::add_capacitor: negative capacitance");
  }
  capacitors_.push_back({a, b, capacitance});
}

double Circuit::mosfet_drain_current(const MosfetInstance& m,
                                     const std::vector<double>& v) const {
  if (m.model->spec().polarity == doping::Polarity::kNfet) {
    const double vgs = v[m.gate] - v[m.source];
    const double vds = v[m.drain] - v[m.source];
    return m.model->drain_current(vgs, vds);
  }
  // PFET in magnitude space: source-referenced with inverted polarities.
  const double vsg = v[m.source] - v[m.gate];
  const double vsd = v[m.source] - v[m.drain];
  // drain_current(vsg, vsd) > 0 means conventional current source -> drain,
  // i.e. current *entering* the drain terminal is positive.
  return m.model->drain_current(vsg, vsd);
}

double Circuit::node_device_current(NodeId node,
                                    const std::vector<double>& v) const {
  double out = 0.0;
  for (const MosfetInstance& m : mosfets_) {
    const double id = mosfet_drain_current(m, v);
    const bool is_n = m.model->spec().polarity == doping::Polarity::kNfet;
    // NFET: +id enters drain and exits source. PFET (magnitude form):
    // +id enters source and exits drain.
    if (m.drain == node) out += is_n ? id : -id;
    if (m.source == node) out += is_n ? -id : id;
  }
  // gmin leak to ground.
  out += gmin_ * v[node];
  return out;
}

double Circuit::node_total_capacitance(NodeId node) const {
  double c = 0.0;
  for (const CapacitorInstance& cap : capacitors_) {
    if (cap.a == node || cap.b == node) c += cap.capacitance;
  }
  return c;
}

}  // namespace subscale::circuits
