#include "circuits/chain.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "circuits/dc_solver.h"
#include "circuits/netlist.h"
#include "circuits/transient.h"

namespace subscale::circuits {

ChainEnergyResult chain_energy(const InverterDevices& devices, double vdd,
                               const ChainSpec& spec) {
  if (spec.stages == 0) {
    throw std::invalid_argument("chain_energy: need at least one stage");
  }
  const InverterDevices inv = devices.at_vdd(vdd);

  ChainEnergyResult r;
  r.vdd = vdd;
  r.stage_delay =
      fo1_delay(inv, {.self_load_factor = spec.self_load_factor}).tp;
  r.cycle_time = static_cast<double>(spec.stages) * r.stage_delay;

  // Static current: alternate logic levels down the chain.
  double i_leak = 0.0;
  for (std::size_t s = 0; s < spec.stages; ++s) {
    i_leak += inverter_leakage(inv, /*input_high=*/(s % 2) == 0);
  }
  r.leakage_current = i_leak;

  const double c_stage = inv.stage_capacitance(spec.self_load_factor);
  r.e_dynamic = spec.activity * static_cast<double>(spec.stages) * c_stage *
                vdd * vdd;
  r.e_leakage = i_leak * vdd * r.cycle_time;
  r.e_total = r.e_dynamic + r.e_leakage;
  return r;
}

double simulate_chain_delay(const InverterDevices& devices, double vdd,
                            std::size_t stages, double self_load_factor) {
  if (stages == 0) {
    throw std::invalid_argument("simulate_chain_delay: stages == 0");
  }
  const InverterDevices inv = devices.at_vdd(vdd);
  Circuit circuit;
  const NodeId rail = circuit.add_fixed_node("vdd", vdd);
  const NodeId in = circuit.add_fixed_node("in", 0.0);

  std::vector<NodeId> outs;
  NodeId prev = in;
  const double c_load = inv.stage_capacitance(self_load_factor);
  for (std::size_t s = 0; s < stages; ++s) {
    const NodeId out = circuit.add_node("n" + std::to_string(s));
    circuit.add_mosfet(inv.nfet, out, prev, circuit.ground());
    circuit.add_mosfet(inv.pfet, out, prev, rail);
    circuit.add_capacitor(out, circuit.ground(), c_load);
    outs.push_back(out);
    prev = out;
  }

  // Seed Newton with the alternating logic levels the chain settles to.
  std::vector<double> guess(circuit.node_count(), 0.0);
  guess[rail] = vdd;
  for (std::size_t s = 0; s < stages; ++s) {
    guess[outs[s]] = (s % 2 == 0) ? vdd : 0.0;
  }
  const DcResult dc = solve_dc(circuit, guess);
  if (!dc.converged) {
    throw std::runtime_error("simulate_chain_delay: DC failed");
  }

  // Step the input; watch the last stage cross 50 %.
  circuit.set_fixed_voltage(in, vdd);
  const double i_drive = inv.nfet->drain_current(vdd, 0.5 * vdd);
  const double tau = c_load * vdd / i_drive;
  const double dt = tau / 12.0;  // coarser than fo1_delay: many stages
  const NodeId last = outs.back();
  const double v_half = 0.5 * vdd;
  const bool last_falls = (stages % 2) == 1;

  TransientSim sim(circuit, dc.voltages);
  double v_prev = sim.voltage(last);
  double t_prev = 0.0;
  const std::size_t max_steps = 400 * stages;
  for (std::size_t step = 0; step < max_steps; ++step) {
    sim.step(dt);
    const double v_now = sim.voltage(last);
    const bool crossed = last_falls ? (v_prev > v_half && v_now <= v_half)
                                    : (v_prev < v_half && v_now >= v_half);
    if (crossed) {
      const double t_frac = (v_half - v_prev) / (v_now - v_prev);
      return t_prev + t_frac * dt;
    }
    v_prev = v_now;
    t_prev = sim.time();
  }
  throw std::runtime_error("simulate_chain_delay: edge never arrived");
}

}  // namespace subscale::circuits
