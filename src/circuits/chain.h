#pragma once

/// \file chain.h
/// Energy-per-cycle model of an inverter chain (the paper's Fig. 6/12
/// workload: 30 inverters, activity factor alpha = 0.1, operated at its
/// maximum frequency so the cycle time equals the chain delay).
///
/// E/cycle = alpha * N * C_stage * V_dd^2  +  I_leak,total * V_dd * T_cycle
/// which is exactly the paper's Eq. 7 with t_p replaced by the chain's
/// critical path N * t_p.

#include "circuits/delay.h"
#include "circuits/inverter.h"

namespace subscale::circuits {

struct ChainSpec {
  std::size_t stages = 30;
  double activity = 0.1;
  double self_load_factor = 0.5;
};

struct ChainEnergyResult {
  double vdd = 0.0;
  double stage_delay = 0.0;     ///< simulated FO1 t_p at this vdd [s]
  double cycle_time = 0.0;      ///< stages * t_p [s]
  double leakage_current = 0.0; ///< whole-chain static current [A]
  double e_dynamic = 0.0;       ///< [J]
  double e_leakage = 0.0;       ///< [J]
  double e_total = 0.0;         ///< [J]
};

/// Evaluate energy per cycle at the supply `vdd`.
ChainEnergyResult chain_energy(const InverterDevices& devices, double vdd,
                               const ChainSpec& spec = {});

/// Full-transient cross-check: propagate one edge down an N-stage chain
/// with the real circuit engine and return the total propagation time
/// (should match stages * fo1 stage delay to within discretization).
double simulate_chain_delay(const InverterDevices& devices, double vdd,
                            std::size_t stages,
                            double self_load_factor = 0.5);

}  // namespace subscale::circuits
