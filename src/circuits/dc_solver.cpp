#include "circuits/dc_solver.h"

#include <cmath>
#include <stdexcept>

#include "linalg/newton.h"

namespace subscale::circuits {

namespace {

std::vector<double> assemble_full_voltages(const Circuit& circuit,
                                           const std::vector<NodeId>& free,
                                           const std::vector<double>& x) {
  std::vector<double> v(circuit.node_count(), 0.0);
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    if (circuit.is_fixed(id)) v[id] = circuit.fixed_voltage(id);
  }
  for (std::size_t k = 0; k < free.size(); ++k) v[free[k]] = x[k];
  return v;
}

}  // namespace

DcResult solve_dc(const Circuit& circuit,
                  const std::vector<double>& initial_guess,
                  const DcOptions& options) {
  const std::vector<NodeId> free = circuit.free_nodes();
  DcResult result;
  if (free.empty()) {
    result.voltages = assemble_full_voltages(circuit, free, {});
    result.converged = true;
    return result;
  }
  if (!initial_guess.empty() && initial_guess.size() != circuit.node_count()) {
    throw std::invalid_argument("solve_dc: initial guess size mismatch");
  }

  std::vector<double> x0(free.size(), 0.0);
  if (!initial_guess.empty()) {
    for (std::size_t k = 0; k < free.size(); ++k) x0[k] = initial_guess[free[k]];
  }

  const auto residual = [&](const std::vector<double>& x) {
    const std::vector<double> v = assemble_full_voltages(circuit, free, x);
    std::vector<double> f(free.size());
    for (std::size_t k = 0; k < free.size(); ++k) {
      f[k] = circuit.node_device_current(free[k], v);
    }
    return f;
  };
  const auto jacobian = [&](const std::vector<double>& x) {
    return linalg::finite_difference_jacobian(residual, x, 1e-7);
  };

  const linalg::NewtonResult newton = linalg::newton_solve(
      residual, jacobian, x0,
      {.max_iterations = options.max_iterations,
       .residual_tolerance = options.residual_tolerance,
       .step_tolerance = 1e-15,
       .max_step = options.max_step});

  result.voltages = assemble_full_voltages(circuit, free, newton.x);
  result.converged = newton.converged;
  result.iterations = newton.iterations;
  result.residual_norm = newton.residual_norm;
  return result;
}

double rail_current(const Circuit& circuit, NodeId rail,
                    const std::vector<double>& voltages) {
  // Current out of the rail node into the devices.
  return circuit.node_device_current(rail, voltages) -
         circuit.gmin() * voltages[rail];
}

}  // namespace subscale::circuits
