#pragma once

/// \file netlist.h
/// Minimal circuit representation for the paper's experiments: MOSFETs
/// (compact model), linear capacitors, and nodes that are either FREE
/// (solved) or FIXED (rails and driven inputs). This is the element set a
/// SPICE DC/TRAN engine needs for inverters, chains, ring oscillators and
/// SRAM cells.
///
/// Sign convention: element currents are reported as current flowing
/// *out of* a node (so KCL at a free node reads sum = 0).

#include <memory>
#include <string>
#include <vector>

#include "compact/device_model.h"

namespace subscale::circuits {

using NodeId = std::size_t;

/// A MOSFET instance: a shared compact model + terminal connections.
/// The bulk is implicitly tied to the source rail (0 for NFET, V_dd for
/// PFET) — body effect within a stack is not modelled, which is adequate
/// for the paper's inverter-class circuits.
struct MosfetInstance {
  std::shared_ptr<const compact::DeviceModel> model;
  NodeId drain = 0;
  NodeId gate = 0;
  NodeId source = 0;
};

struct CapacitorInstance {
  NodeId a = 0;
  NodeId b = 0;
  double capacitance = 0.0;  ///< [F]
};

/// The circuit under construction/simulation.
class Circuit {
 public:
  Circuit();

  /// The pre-made ground node (always fixed at 0 V).
  NodeId ground() const { return 0; }

  /// Create a node. Fixed nodes are rails/inputs with imposed voltage.
  NodeId add_node(std::string name);
  NodeId add_fixed_node(std::string name, double voltage);

  /// Re-drive a fixed node (input stimulus). Throws if the node is free.
  void set_fixed_voltage(NodeId node, double voltage);

  bool is_fixed(NodeId node) const { return fixed_[node]; }
  double fixed_voltage(NodeId node) const;
  const std::string& node_name(NodeId node) const { return names_[node]; }
  std::size_t node_count() const { return names_.size(); }

  /// Indices of the free (solved) nodes, in creation order.
  std::vector<NodeId> free_nodes() const;

  void add_mosfet(std::shared_ptr<const compact::DeviceModel> model,
                  NodeId drain, NodeId gate, NodeId source);
  void add_capacitor(NodeId a, NodeId b, double capacitance);

  const std::vector<MosfetInstance>& mosfets() const { return mosfets_; }
  const std::vector<CapacitorInstance>& capacitors() const {
    return capacitors_;
  }

  /// Tiny conductance from every free node to ground that keeps the
  /// Jacobian nonsingular when all attached devices are off [S].
  double gmin() const { return gmin_; }
  void set_gmin(double gmin) { gmin_ = gmin; }

  /// Static current drawn *out of* `node` by all MOSFETs, given the full
  /// voltage vector (indexed by NodeId).
  double node_device_current(NodeId node,
                             const std::vector<double>& voltages) const;

  /// Signed drain current of mosfet `m` (positive = conventional current
  /// entering the drain terminal), given node voltages.
  double mosfet_drain_current(const MosfetInstance& m,
                              const std::vector<double>& voltages) const;

  /// Total capacitance attached between `node` and anything (used for
  /// diagnostics and energy accounting).
  double node_total_capacitance(NodeId node) const;

 private:
  std::vector<std::string> names_;
  std::vector<bool> fixed_;
  std::vector<double> fixed_voltages_;
  std::vector<MosfetInstance> mosfets_;
  std::vector<CapacitorInstance> capacitors_;
  double gmin_ = 1e-12;
};

}  // namespace subscale::circuits
