#pragma once

/// \file delay.h
/// FO1 inverter propagation delay, both simulated (backward-Euler
/// transient of the real device models — the paper's Fig. 5/11 quantity)
/// and analytical (paper Eq. 4/5, for cross-checks and the k_d fit).

#include "circuits/inverter.h"

namespace subscale::circuits {

struct DelayResult {
  double tphl = 0.0;  ///< output falling delay [s]
  double tplh = 0.0;  ///< output rising delay [s]
  double tp = 0.0;    ///< average propagation delay [s]
};

struct DelayOptions {
  double self_load_factor = 0.5;  ///< drain-junction cap / gate cap
  std::size_t steps_per_tau = 60; ///< BE resolution per RC estimate
  std::size_t max_steps = 200000;
};

/// Simulated FO1 delay: one inverter driving the gate capacitance of an
/// identical inverter, step input, 50 % crossing measurement.
DelayResult fo1_delay(const InverterDevices& inv,
                      const DelayOptions& options = {});

/// Analytical delay t_p = k_d C_L V_dd / I_on(V_dd, V_dd) (paper Eq. 4);
/// in subthreshold this reduces to Eq. 5's exponential form because
/// I_on is Eq. 1's weak-inversion current.
double analytical_delay(const InverterDevices& inv, double kd,
                        double self_load_factor = 0.5);

/// Fit k_d so the analytical delay matches the simulated one at this
/// operating point (the paper's "fitting parameter").
double fit_kd(const InverterDevices& inv, const DelayOptions& options = {});

}  // namespace subscale::circuits
