#pragma once

/// \file sram6t.h
/// 6T SRAM cell static noise margins in the subthreshold regime — the
/// paper's Sec. 2.3.2 motivates SNM scaling with its own sub-200mV SRAM
/// work (ref [16]). Hold SNM uses the cross-coupled inverter butterfly;
/// read SNM adds the access transistors with bitlines precharged to V_dd.

#include "circuits/inverter.h"
#include "circuits/vtc.h"

namespace subscale::circuits {

/// Device complement of a 6T cell. The cell ratio (driver/access width
/// ratio) and pull-up ratio are expressed through the specs' widths.
struct Sram6tCell {
  std::shared_ptr<const compact::DeviceModel> pull_down;  ///< NFET
  std::shared_ptr<const compact::DeviceModel> pull_up;    ///< PFET
  std::shared_ptr<const compact::DeviceModel> access;     ///< NFET
  double vdd = 0.0;
};

/// Build a cell from an NFET spec: pull-down at `cell_ratio` x the access
/// width, pull-up PFET balanced as in make_inverter then scaled by
/// `pullup_ratio`.
Sram6tCell make_sram_cell(const compact::DeviceSpec& nfet_spec,
                          double cell_ratio = 1.5, double pullup_ratio = 1.0,
                          const compact::Calibration& calib =
                              compact::paper_calibration());

/// Internal-node transfer curve with the access device participating
/// (wordline at V_dd, bitline at `vbl`); with the access device absent
/// this is the plain inverter VTC.
VtcCurve sram_read_vtc(const Sram6tCell& cell, std::size_t points = 301);
VtcCurve sram_hold_vtc(const Sram6tCell& cell, std::size_t points = 301);

/// Butterfly SNMs.
double sram_hold_snm(const Sram6tCell& cell);
double sram_read_snm(const Sram6tCell& cell);

}  // namespace subscale::circuits
