#include "circuits/delay.h"

#include <cmath>
#include <stdexcept>

#include "circuits/dc_solver.h"
#include "circuits/netlist.h"
#include "circuits/transient.h"

namespace subscale::circuits {

namespace {

/// Simulate one output transition and return the 50 % crossing time.
/// `rising_input` selects the input step direction (true -> output falls).
double transition_delay(const InverterDevices& inv, bool rising_input,
                        const DelayOptions& options) {
  const double vdd = inv.vdd;
  Circuit circuit;
  const NodeId rail = circuit.add_fixed_node("vdd", vdd);
  const NodeId in = circuit.add_fixed_node("in", rising_input ? 0.0 : vdd);
  const NodeId out = circuit.add_node("out");
  circuit.add_mosfet(inv.nfet, out, in, circuit.ground());
  circuit.add_mosfet(inv.pfet, out, in, rail);
  const double cl = inv.stage_capacitance(options.self_load_factor);
  circuit.add_capacitor(out, circuit.ground(), cl);

  const DcResult dc = solve_dc(circuit);
  if (!dc.converged) {
    throw std::runtime_error("transition_delay: DC solve failed");
  }

  // Drive the step and integrate. The discharge current scale sets dt.
  circuit.set_fixed_voltage(in, rising_input ? vdd : 0.0);
  const double i_drive = rising_input
                             ? inv.nfet->drain_current(vdd, 0.5 * vdd)
                             : inv.pfet->drain_current(vdd, 0.5 * vdd);
  if (i_drive <= 0.0) {
    throw std::runtime_error("transition_delay: no drive current");
  }
  const double tau = cl * vdd / i_drive;
  const double dt = tau / static_cast<double>(options.steps_per_tau);

  TransientSim sim(circuit, dc.voltages);
  const double v_half = 0.5 * vdd;
  double v_prev = sim.voltage(out);
  double t_prev = 0.0;
  for (std::size_t step = 0; step < options.max_steps; ++step) {
    sim.step(dt);
    const double v_now = sim.voltage(out);
    const bool crossed = rising_input ? (v_prev > v_half && v_now <= v_half)
                                      : (v_prev < v_half && v_now >= v_half);
    if (crossed) {
      // Linear interpolation inside the step.
      const double t_frac = (v_half - v_prev) / (v_now - v_prev);
      return t_prev + t_frac * dt;
    }
    v_prev = v_now;
    t_prev = sim.time();
  }
  throw std::runtime_error("transition_delay: output never crossed 50%");
}

}  // namespace

DelayResult fo1_delay(const InverterDevices& inv, const DelayOptions& options) {
  DelayResult result;
  result.tphl = transition_delay(inv, /*rising_input=*/true, options);
  result.tplh = transition_delay(inv, /*rising_input=*/false, options);
  result.tp = 0.5 * (result.tphl + result.tplh);
  return result;
}

double analytical_delay(const InverterDevices& inv, double kd,
                        double self_load_factor) {
  const double cl = inv.stage_capacitance(self_load_factor);
  const double ion_n = inv.nfet->drain_current(inv.vdd, inv.vdd);
  const double ion_p = inv.pfet->drain_current(inv.vdd, inv.vdd);
  const double ion = 0.5 * (ion_n + ion_p);
  return kd * cl * inv.vdd / ion;
}

double fit_kd(const InverterDevices& inv, const DelayOptions& options) {
  const double simulated = fo1_delay(inv, options).tp;
  const double unit = analytical_delay(inv, 1.0, options.self_load_factor);
  return simulated / unit;
}

}  // namespace subscale::circuits
