#include "circuits/vtc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "opt/bisection.h"

namespace subscale::circuits {

double vtc_output(const InverterDevices& inv, double vin) {
  const double vdd = inv.vdd;
  // Balance f(vout) = I_n(vin, vout) - I_p(vdd - vin, vdd - vout).
  // I_n grows and I_p falls with vout, so f is strictly increasing.
  const auto balance = [&](double vout) {
    const double i_n = inv.nfet->drain_current(vin, vout);
    const double i_p = inv.pfet->drain_current(vdd - vin, vdd - vout);
    return i_n - i_p;
  };
  const auto root = opt::bisect(balance, 0.0, vdd, 1e-13 * vdd, 400);
  return root.x;
}

VtcCurve compute_vtc(const InverterDevices& inv, std::size_t points) {
  if (points < 2) {
    throw std::invalid_argument("compute_vtc: need at least 2 points");
  }
  VtcCurve curve;
  curve.vin.resize(points);
  curve.vout.resize(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double vin =
        inv.vdd * static_cast<double>(i) / static_cast<double>(points - 1);
    curve.vin[i] = vin;
    curve.vout[i] = vtc_output(inv, vin);
  }
  return curve;
}

double vtc_gain(const InverterDevices& inv, double vin) {
  const double h = 1e-5 * inv.vdd;
  const double lo = std::max(0.0, vin - h);
  const double hi = std::min(inv.vdd, vin + h);
  return (vtc_output(inv, hi) - vtc_output(inv, lo)) / (hi - lo);
}

NoiseMargins noise_margins(const InverterDevices& inv) {
  const double vdd = inv.vdd;
  // Locate the switching point (most negative gain) with a coarse scan.
  const std::size_t scan = 160;
  double best_gain = 0.0;
  double v_switch = 0.5 * vdd;
  for (std::size_t i = 1; i + 1 < scan; ++i) {
    const double v = vdd * static_cast<double>(i) / static_cast<double>(scan);
    const double g = vtc_gain(inv, v);
    if (g < best_gain) {
      best_gain = g;
      v_switch = v;
    }
  }
  if (best_gain > -1.0) {
    throw std::runtime_error(
        "noise_margins: inverter gain never reaches -1 (no regenerative "
        "transfer at this supply)");
  }

  // gain(v) + 1 changes sign once on each side of the switching point.
  const auto gain_plus_one = [&](double v) { return vtc_gain(inv, v) + 1.0; };
  const auto lo_root = opt::bisect(gain_plus_one, 1e-6 * vdd, v_switch,
                                   1e-9 * vdd, 200);
  const auto hi_root = opt::bisect(gain_plus_one, v_switch, vdd * (1 - 1e-6),
                                   1e-9 * vdd, 200);

  NoiseMargins nm;
  nm.vil = lo_root.x;
  nm.vih = hi_root.x;
  nm.voh = vtc_output(inv, nm.vil);
  nm.vol = vtc_output(inv, nm.vih);
  nm.nml = nm.vil - nm.vol;
  nm.nmh = nm.voh - nm.vih;
  nm.snm = std::min(nm.nml, nm.nmh);
  nm.peak_gain = best_gain;
  return nm;
}

namespace {

/// Linear interpolation of y(x) on a sampled monotone-x curve.
double interp(const std::vector<double>& x, const std::vector<double>& y,
              double xq) {
  const auto it = std::lower_bound(x.begin(), x.end(), xq);
  if (it == x.begin()) return y.front();
  if (it == x.end()) return y.back();
  const std::size_t hi = static_cast<std::size_t>(it - x.begin());
  const std::size_t lo = hi - 1;
  const double t = (xq - x[lo]) / (x[hi] - x[lo]);
  return y[lo] + t * (y[hi] - y[lo]);
}

}  // namespace

namespace {

/// Largest square inscribed in the upper-left butterfly eye of the latch
/// whose two transfer functions are f1 (drives y from x) and f2 (drives x
/// from y), both decreasing. A square of side s anchored at storage state
/// y0 fits iff, with its left edge on the mirrored curve (x0 = f2(y0)),
/// its top stays below the forward curve: y0 + s <= f1(x0 + s). f1 is
/// decreasing, so the residual s - (f1(f2(y0)+s) - y0) is increasing in s
/// and the maximal side solves it by bisection.
double max_square_in_eye(const VtcCurve& forward, const VtcCurve& mirrored,
                         double vdd) {
  const auto f1 = [&](double x) {
    return interp(forward.vin, forward.vout, x);
  };
  const auto f2 = [&](double y) {
    return interp(mirrored.vin, mirrored.vout, y);
  };
  double best = 0.0;
  const std::size_t samples = 240;
  for (std::size_t k = 0; k < samples; ++k) {
    const double y0 = vdd * static_cast<double>(k) / samples;
    const double x0 = f2(y0);
    // Bisect on the square side.
    double lo = 0.0;
    double hi = vdd;
    const auto fits = [&](double s) { return y0 + s <= f1(x0 + s); };
    if (!fits(0.0)) continue;  // y0 already above the forward curve
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (fits(mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    best = std::max(best, lo);
  }
  return best;
}

}  // namespace

double butterfly_snm(const VtcCurve& forward, const VtcCurve& mirrored) {
  if (forward.vin.size() < 2 || mirrored.vin.size() < 2) {
    throw std::invalid_argument("butterfly_snm: curves too short");
  }
  const double vdd =
      std::max(forward.vin.back(), mirrored.vin.back());
  // Upper-left eye: forward on top. Lower-right eye: swap the roles.
  const double upper = max_square_in_eye(forward, mirrored, vdd);
  const double lower = max_square_in_eye(mirrored, forward, vdd);
  return std::min(upper, lower);
}

}  // namespace subscale::circuits
