#pragma once

/// \file vmin.h
/// Minimum-energy operating point: V_min = argmin_vdd E_cycle(vdd) for an
/// inverter chain (paper Sec. 2.3.4, after refs [17][18]). Below V_min
/// leakage energy explodes with the exponentially growing cycle time;
/// above it dynamic CV^2 dominates.

#include "circuits/chain.h"

namespace subscale::cache {
class SolveCache;
SolveCache* default_cache();
}  // namespace subscale::cache

namespace subscale::circuits {

struct VminResult {
  double vmin = 0.0;        ///< energy-optimal supply [V]
  ChainEnergyResult at_vmin;  ///< full breakdown at the optimum
};

struct VminOptions {
  double v_lo = 0.10;  ///< search bracket [V]
  double v_hi = 0.70;
  double v_tolerance = 1e-3;
  std::size_t scan_points = 13;  ///< coarse scan before refinement
  /// Solve cache for memoizing chain-energy evaluations across runs
  /// (opt::EvalMemo, keyed on the device pair + chain + bracket). Null
  /// falls back to cache::default_cache().
  cache::SolveCache* cache = nullptr;

  cache::SolveCache* cache_sink() const {
    return cache != nullptr ? cache : cache::default_cache();
  }
};

/// Golden-section (with coarse scan) minimization of chain energy over
/// the supply voltage.
VminResult find_vmin(const InverterDevices& devices,
                     const ChainSpec& chain = {},
                     const VminOptions& options = {});

}  // namespace subscale::circuits
