#pragma once

/// \file silicon.h
/// Bulk-silicon material model: bandgap, intrinsic carrier density,
/// Fermi/bulk potentials and depletion quantities used throughout the
/// compact and TCAD device models.

namespace subscale::physics {

/// Temperature-dependent silicon bandgap [eV] (Varshni fit, standard
/// parameters: Eg(0)=1.1696 eV, alpha=4.73e-4 eV/K, beta=636 K).
double silicon_bandgap_ev(double temperature_kelvin);

/// Intrinsic carrier concentration of silicon [m^-3].
///
/// Uses n_i = sqrt(Nc*Nv) * exp(-Eg/2kT) with Nc, Nv ∝ T^{3/2} anchored to
/// the accepted n_i(300 K) ≈ 1.0e16 m^-3 (1.0e10 cm^-3, Green's value; the
/// textbook 1.45e10 cm^-3 is available via intrinsic_density_legacy).
double intrinsic_density(double temperature_kelvin);

/// Legacy textbook value n_i(300K) = 1.45e10 cm^-3 scaled with temperature;
/// the paper's reference [19] (Taur & Ning) uses this anchor, so the compact
/// model defaults to it for fidelity with the paper's equations.
double intrinsic_density_legacy(double temperature_kelvin);

/// Bulk Fermi potential phi_F = vT * ln(Na/ni) of p-type silicon [V].
/// \param acceptor_density  net acceptor doping [m^-3], must be > ni.
double bulk_potential(double acceptor_density, double temperature_kelvin);

/// Surface potential at classical threshold, 2*phi_F [V].
double surface_potential_at_threshold(double acceptor_density,
                                      double temperature_kelvin);

/// Depletion-region width under a gate at surface potential psi_s [m]:
/// W = sqrt(2*eps_si*psi_s/(q*Na)).
double depletion_width(double acceptor_density, double surface_potential);

/// Maximum depletion width at threshold (psi_s = 2*phi_F) [m].
double max_depletion_width(double acceptor_density, double temperature_kelvin);

/// Depletion charge per unit area at threshold [C/m^2]:
/// Q_dep = sqrt(2*q*eps_si*Na*2phi_F).
double depletion_charge(double acceptor_density, double temperature_kelvin);

/// Depletion capacitance per unit area C_dep = eps_si / W_dep [F/m^2].
double depletion_capacitance(double acceptor_density,
                             double temperature_kelvin);

/// Oxide capacitance per unit area C_ox = eps_ox / t_ox [F/m^2].
double oxide_capacitance(double oxide_thickness);

/// Built-in potential of an abrupt junction with densities na, nd [V].
double builtin_potential(double na, double nd, double temperature_kelvin);

/// Flat-band voltage of an n+ poly gate over p-type silicon [V].
/// VFB = -(Eg/2 + phi_F) for a degenerate n+ poly gate (work function at
/// the conduction band edge), ignoring oxide fixed charge.
double flatband_voltage_npoly_psub(double acceptor_density,
                                   double temperature_kelvin);

}  // namespace subscale::physics
