#pragma once

/// \file units.h
/// Explicit unit conversions between the library's SI internals and the
/// units the paper quotes (nm, cm^-3, pA/um, mV/dec, fF/um).

namespace subscale::units {

// ---- length -------------------------------------------------------------

/// Nanometres -> metres.
inline constexpr double nm(double v) { return v * 1e-9; }
/// Micrometres -> metres.
inline constexpr double um(double v) { return v * 1e-6; }
/// Metres -> nanometres.
inline constexpr double to_nm(double metres) { return metres * 1e9; }
/// Metres -> micrometres.
inline constexpr double to_um(double metres) { return metres * 1e6; }

// ---- doping concentration -----------------------------------------------

/// cm^-3 -> m^-3 (the paper tabulates doping in cm^-3).
inline constexpr double per_cm3(double v) { return v * 1e6; }
/// m^-3 -> cm^-3.
inline constexpr double to_per_cm3(double per_m3) { return per_m3 * 1e-6; }

// ---- current ------------------------------------------------------------

/// pA/um -> A/m (width-normalized current, the paper's leakage unit).
inline constexpr double pA_per_um(double v) { return v * 1e-12 / 1e-6; }
/// A/m -> pA/um.
inline constexpr double to_pA_per_um(double a_per_m) {
  return a_per_m * 1e12 * 1e-6;
}
/// A/m -> uA/um.
inline constexpr double to_uA_per_um(double a_per_m) {
  return a_per_m * 1e6 * 1e-6;
}

// ---- voltage ------------------------------------------------------------

/// Millivolts -> volts.
inline constexpr double mV(double v) { return v * 1e-3; }
/// Volts -> millivolts.
inline constexpr double to_mV(double volts) { return volts * 1e3; }

// ---- subthreshold slope ---------------------------------------------------

/// V/decade -> mV/decade (the conventional unit for S_S).
inline constexpr double to_mV_per_dec(double v_per_dec) {
  return v_per_dec * 1e3;
}

// ---- capacitance ----------------------------------------------------------

/// fF/um -> F/m (width-normalized capacitance).
inline constexpr double fF_per_um(double v) { return v * 1e-15 / 1e-6; }
/// F/m -> fF/um.
inline constexpr double to_fF_per_um(double f_per_m) {
  return f_per_m * 1e15 * 1e-6;
}
/// F -> fF.
inline constexpr double to_fF(double farad) { return farad * 1e15; }
/// aF -> F.
inline constexpr double aF(double v) { return v * 1e-18; }

// ---- time -----------------------------------------------------------------

/// Picoseconds -> seconds.
inline constexpr double ps(double v) { return v * 1e-12; }
/// Seconds -> picoseconds.
inline constexpr double to_ps(double s) { return s * 1e12; }
/// Seconds -> nanoseconds.
inline constexpr double to_ns(double s) { return s * 1e9; }
/// Seconds -> microseconds.
inline constexpr double to_us(double s) { return s * 1e6; }

// ---- energy -----------------------------------------------------------------

/// Joules -> femtojoules.
inline constexpr double to_fJ(double j) { return j * 1e15; }
/// Joules -> attojoules.
inline constexpr double to_aJ(double j) { return j * 1e18; }

}  // namespace subscale::units
