#pragma once

/// \file constants.h
/// Fundamental physical constants in SI units.
///
/// Everything in the library works in SI internally (metres, volts,
/// amperes, farads, kelvin, m^-3).  The paper quotes doping in cm^-3 and
/// current in pA/um; conversions live in units.h so that any boundary
/// crossing is explicit.

namespace subscale::physics {

/// Elementary charge [C].
inline constexpr double kQ = 1.602176634e-19;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Vacuum permittivity [F/m].
inline constexpr double kEps0 = 8.8541878128e-12;

/// Relative permittivity of silicon.
inline constexpr double kEpsRelSi = 11.7;

/// Relative permittivity of SiO2 gate oxide.
inline constexpr double kEpsRelSiO2 = 3.9;

/// Absolute permittivity of silicon [F/m].
inline constexpr double kEpsSi = kEpsRelSi * kEps0;

/// Absolute permittivity of SiO2 [F/m].
inline constexpr double kEpsSiO2 = kEpsRelSiO2 * kEps0;

/// Reference lattice temperature [K] used by the paper (room temperature).
inline constexpr double kT300 = 300.0;

/// Thermal voltage at temperature T [V].
inline constexpr double thermal_voltage(double temperature_kelvin) {
  return kBoltzmann * temperature_kelvin / kQ;
}

/// Thermal voltage at 300 K [V] (~25.85 mV).
inline constexpr double kVt300 = kBoltzmann * kT300 / kQ;

}  // namespace subscale::physics
