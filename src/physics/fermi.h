#pragma once

/// \file fermi.h
/// Carrier-statistics helpers shared by the TCAD discretization:
/// Boltzmann carrier densities from potentials and the Bernoulli function
/// used in the Scharfetter–Gummel flux.

namespace subscale::physics {

/// The Bernoulli function B(x) = x / (exp(x) - 1), with a numerically
/// stable series branch near x = 0 and an overflow-safe large-|x| branch.
double bernoulli(double x);

/// Derivative dB/dx, stable near zero.
double bernoulli_derivative(double x);

/// Electron density n = ni * exp((psi - phi_n)/vT) under Boltzmann
/// statistics, with potentials referenced to the intrinsic level [m^-3].
double electron_density(double psi, double phi_n, double ni, double vt);

/// Hole density p = ni * exp((phi_p - psi)/vT) [m^-3].
double hole_density(double psi, double phi_p, double ni, double vt);

/// Equilibrium potential of a charge-neutral region with net doping
/// N = Nd - Na (signed) [V]: psi = vT * asinh(N / (2 ni)).
double neutral_potential(double net_doping, double ni, double vt);

}  // namespace subscale::physics
