#include "physics/mobility.h"

#include <cmath>
#include <stdexcept>

#include "physics/constants.h"

namespace subscale::physics {

namespace {

struct MasettiParams {
  double mu_min1;  // m^2/Vs
  double mu_min2;
  double mu1;
  double mu_max;
  double pc;  // m^-3
  double cr;
  double cs;
  double alpha;
  double beta;
};

// Masetti et al., IEEE TED 30(7), 1983; parameters converted to SI.
constexpr MasettiParams kElectronParams{
    .mu_min1 = 52.2e-4,
    .mu_min2 = 52.2e-4,
    .mu1 = 43.4e-4,
    .mu_max = 1417.0e-4,
    .pc = 0.0,
    .cr = 9.68e22,   // 9.68e16 cm^-3
    .cs = 3.43e26,   // 3.43e20 cm^-3
    .alpha = 0.680,
    .beta = 2.0,
};

constexpr MasettiParams kHoleParams{
    .mu_min1 = 44.9e-4,
    .mu_min2 = 0.0,
    .mu1 = 29.0e-4,
    .mu_max = 470.5e-4,
    .pc = 9.23e22,   // 9.23e16 cm^-3
    .cr = 2.23e23,   // 2.23e17 cm^-3
    .cs = 6.10e26,   // 6.10e20 cm^-3
    .alpha = 0.719,
    .beta = 2.0,
};

}  // namespace

double masetti_mobility(Carrier carrier, double total_doping) {
  if (total_doping < 0.0) {
    throw std::invalid_argument("masetti_mobility: negative doping");
  }
  const MasettiParams& p =
      (carrier == Carrier::kElectron) ? kElectronParams : kHoleParams;
  double mu = p.mu_min1;
  if (p.pc > 0.0 && total_doping > 0.0) {
    mu = p.mu_min1 * std::exp(-p.pc / total_doping);
  }
  const double n = total_doping;
  mu += (p.mu_max - p.mu_min2) / (1.0 + std::pow(n / p.cr, p.alpha));
  mu -= p.mu1 / (1.0 + std::pow(p.cs / std::max(n, 1.0), p.beta));
  return mu;
}

double saturation_velocity(Carrier carrier, double temperature_kelvin) {
  // Canali model: vsat = vsat300 / (1 + c*(T/300 - 1)); c ~ 0.8 approximated
  // via the standard exponent form vsat(T) = vsat300*(300/T)^k.
  const double vsat300 = (carrier == Carrier::kElectron) ? 1.07e5 : 8.37e4;
  const double k = (carrier == Carrier::kElectron) ? 0.87 : 0.52;
  return vsat300 * std::pow(kT300 / temperature_kelvin, k);
}

double caughey_thomas_mobility(Carrier carrier, double low_field_mobility,
                               double parallel_field,
                               double temperature_kelvin) {
  if (low_field_mobility <= 0.0) {
    throw std::invalid_argument("caughey_thomas_mobility: mu0 <= 0");
  }
  const double vsat = saturation_velocity(carrier, temperature_kelvin);
  const double beta = (carrier == Carrier::kElectron) ? 2.0 : 1.0;
  const double e = std::abs(parallel_field);
  const double x = low_field_mobility * e / vsat;
  return low_field_mobility / std::pow(1.0 + std::pow(x, beta), 1.0 / beta);
}

double surface_degradation(Carrier carrier, double effective_normal_field) {
  // Reference fields chosen to give ~2x degradation at E_eff ~ 1 MV/cm for
  // electrons, matching universal-mobility-curve behaviour.
  const double e_ref = (carrier == Carrier::kElectron) ? 6.7e7 : 7.0e7;  // V/m
  const double nu = (carrier == Carrier::kElectron) ? 1.6 : 1.0;
  const double e = std::abs(effective_normal_field);
  return 1.0 / (1.0 + std::pow(e / e_ref, nu));
}

double effective_channel_mobility(Carrier carrier, double channel_doping,
                                  double effective_normal_field) {
  return masetti_mobility(carrier, channel_doping) *
         surface_degradation(carrier, effective_normal_field);
}

}  // namespace subscale::physics
