#include "physics/silicon.h"

#include <cmath>
#include <stdexcept>

#include "physics/constants.h"

namespace subscale::physics {

double silicon_bandgap_ev(double temperature_kelvin) {
  constexpr double eg0 = 1.1696;     // eV at 0 K
  constexpr double alpha = 4.73e-4;  // eV/K
  constexpr double beta = 636.0;     // K
  const double t = temperature_kelvin;
  return eg0 - alpha * t * t / (t + beta);
}

namespace {

// n_i(T) with an arbitrary 300 K anchor: n_i ∝ T^{3/2} exp(-Eg/2kT).
double intrinsic_with_anchor(double temperature_kelvin, double ni300) {
  if (temperature_kelvin <= 0.0) {
    throw std::invalid_argument("intrinsic_density: T must be positive");
  }
  const double t = temperature_kelvin;
  const double eg_t = silicon_bandgap_ev(t);
  const double eg_300 = silicon_bandgap_ev(kT300);
  const double vt_t = thermal_voltage(t);
  const double vt_300 = thermal_voltage(kT300);
  const double ratio = std::pow(t / kT300, 1.5) *
                       std::exp(-eg_t / (2.0 * vt_t) + eg_300 / (2.0 * vt_300));
  return ni300 * ratio;
}

}  // namespace

double intrinsic_density(double temperature_kelvin) {
  return intrinsic_with_anchor(temperature_kelvin, 1.0e16);  // m^-3
}

double intrinsic_density_legacy(double temperature_kelvin) {
  return intrinsic_with_anchor(temperature_kelvin, 1.45e16);  // m^-3
}

double bulk_potential(double acceptor_density, double temperature_kelvin) {
  const double ni = intrinsic_density_legacy(temperature_kelvin);
  if (acceptor_density <= ni) {
    throw std::invalid_argument("bulk_potential: doping must exceed n_i");
  }
  return thermal_voltage(temperature_kelvin) *
         std::log(acceptor_density / ni);
}

double surface_potential_at_threshold(double acceptor_density,
                                      double temperature_kelvin) {
  return 2.0 * bulk_potential(acceptor_density, temperature_kelvin);
}

double depletion_width(double acceptor_density, double surface_potential) {
  if (acceptor_density <= 0.0 || surface_potential <= 0.0) {
    throw std::invalid_argument("depletion_width: non-positive argument");
  }
  return std::sqrt(2.0 * kEpsSi * surface_potential /
                   (kQ * acceptor_density));
}

double max_depletion_width(double acceptor_density,
                           double temperature_kelvin) {
  return depletion_width(
      acceptor_density,
      surface_potential_at_threshold(acceptor_density, temperature_kelvin));
}

double depletion_charge(double acceptor_density, double temperature_kelvin) {
  const double psi =
      surface_potential_at_threshold(acceptor_density, temperature_kelvin);
  return std::sqrt(2.0 * kQ * kEpsSi * acceptor_density * psi);
}

double depletion_capacitance(double acceptor_density,
                             double temperature_kelvin) {
  return kEpsSi / max_depletion_width(acceptor_density, temperature_kelvin);
}

double oxide_capacitance(double oxide_thickness) {
  if (oxide_thickness <= 0.0) {
    throw std::invalid_argument("oxide_capacitance: t_ox must be positive");
  }
  return kEpsSiO2 / oxide_thickness;
}

double builtin_potential(double na, double nd, double temperature_kelvin) {
  const double ni = intrinsic_density_legacy(temperature_kelvin);
  if (na <= 0.0 || nd <= 0.0) {
    throw std::invalid_argument("builtin_potential: non-positive doping");
  }
  return thermal_voltage(temperature_kelvin) * std::log(na * nd / (ni * ni));
}

double flatband_voltage_npoly_psub(double acceptor_density,
                                   double temperature_kelvin) {
  const double eg = silicon_bandgap_ev(temperature_kelvin);
  const double phi_f = bulk_potential(acceptor_density, temperature_kelvin);
  return -(eg / 2.0 + phi_f);
}

}  // namespace subscale::physics
