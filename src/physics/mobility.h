#pragma once

/// \file mobility.h
/// Carrier mobility models used by both the compact device model and the
/// 2-D TCAD substrate:
///  * Masetti doping-dependent low-field mobility,
///  * Caughey–Thomas high-field (velocity-saturation) reduction,
///  * a simple vertical-field (effective-field) surface degradation.

namespace subscale::physics {

enum class Carrier { kElectron, kHole };

/// Masetti low-field mobility as a function of total doping [m^2/Vs].
/// \param total_doping  |Na + Nd| at the point of interest [m^-3].
double masetti_mobility(Carrier carrier, double total_doping);

/// Saturation velocity [m/s] (Canali-style temperature dependence).
double saturation_velocity(Carrier carrier, double temperature_kelvin);

/// Caughey–Thomas field-dependent mobility [m^2/Vs]:
/// mu(E) = mu0 / (1 + (mu0*E/vsat)^beta)^(1/beta), beta=2 (n), 1 (p).
double caughey_thomas_mobility(Carrier carrier, double low_field_mobility,
                               double parallel_field,
                               double temperature_kelvin);

/// Surface (vertical effective field) mobility degradation factor in
/// [0, 1]: 1 / (1 + (E_eff/E_ref)^nu).
double surface_degradation(Carrier carrier, double effective_normal_field);

/// Convenience: effective channel mobility for the compact model,
/// combining Masetti at the channel doping with surface degradation at a
/// representative effective field E_eff ~ (V_gs + V_th)/(6 t_ox) [m^2/Vs].
double effective_channel_mobility(Carrier carrier, double channel_doping,
                                  double effective_normal_field);

}  // namespace subscale::physics
