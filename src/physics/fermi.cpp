#include "physics/fermi.h"

#include <cmath>

namespace subscale::physics {

double bernoulli(double x) {
  const double ax = std::abs(x);
  if (ax < 1e-10) {
    return 1.0 - x / 2.0;  // B(x) ~ 1 - x/2 + x^2/12
  }
  if (ax < 1e-4) {
    return 1.0 - x / 2.0 + x * x / 12.0;
  }
  if (x > 700.0) {
    return x * std::exp(-x);  // exp(x) overflows; B(x) -> x e^{-x}
  }
  if (x < -700.0) {
    return -x;  // exp(x) -> 0; B(x) -> -x
  }
  return x / std::expm1(x);
}

double bernoulli_derivative(double x) {
  const double ax = std::abs(x);
  if (ax < 1e-6) {
    return -0.5 + x / 6.0;  // B'(x) ~ -1/2 + x/6
  }
  if (x > 700.0) {
    return (1.0 - x) * std::exp(-x);
  }
  if (x < -700.0) {
    return -1.0;
  }
  const double em1 = std::expm1(x);
  const double ex = std::exp(x);
  return (em1 - x * ex) / (em1 * em1);
}

double electron_density(double psi, double phi_n, double ni, double vt) {
  return ni * std::exp((psi - phi_n) / vt);
}

double hole_density(double psi, double phi_p, double ni, double vt) {
  return ni * std::exp((phi_p - psi) / vt);
}

double neutral_potential(double net_doping, double ni, double vt) {
  return vt * std::asinh(net_doping / (2.0 * ni));
}

}  // namespace subscale::physics
