#include "linalg/ilu0.h"

#include <cmath>
#include <stdexcept>

namespace subscale::linalg {

Ilu0::Ilu0(const CsrMatrix& a)
    : n_(a.size()),
      row_ptr_(a.row_ptr()),
      col_idx_(a.col_idx()),
      vals_(a.values()),
      diag_(n_) {
  // Locate diagonals.
  for (std::size_t r = 0; r < n_; ++r) {
    bool found = false;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_idx_[k] == r) {
        diag_[r] = k;
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::runtime_error("Ilu0: missing diagonal entry");
    }
  }

  // IKJ-variant ILU(0).
  for (std::size_t i = 1; i < n_; ++i) {
    for (std::size_t kk = row_ptr_[i]; kk < row_ptr_[i + 1]; ++kk) {
      const std::size_t k = col_idx_[kk];
      if (k >= i) break;  // only strictly-lower entries
      const double piv = vals_[diag_[k]];
      if (piv == 0.0 || !std::isfinite(piv)) {
        throw std::runtime_error("Ilu0: zero pivot");
      }
      const double factor = vals_[kk] / piv;
      vals_[kk] = factor;
      // Subtract factor * row k from row i on the existing pattern.
      for (std::size_t jj = diag_[k] + 1; jj < row_ptr_[k + 1]; ++jj) {
        const std::size_t j = col_idx_[jj];
        // Find (i, j) in row i.
        for (std::size_t ii = kk + 1; ii < row_ptr_[i + 1]; ++ii) {
          if (col_idx_[ii] == j) {
            vals_[ii] -= factor * vals_[jj];
            break;
          }
          if (col_idx_[ii] > j) break;
        }
      }
    }
  }
}

std::vector<double> Ilu0::apply(const std::vector<double>& r) const {
  if (r.size() != n_) {
    throw std::invalid_argument("Ilu0::apply: size mismatch");
  }
  std::vector<double> z = r;
  // Forward solve L z = r (unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = z[i];
    for (std::size_t k = row_ptr_[i]; k < diag_[i]; ++k) {
      acc -= vals_[k] * z[col_idx_[k]];
    }
    z[i] = acc;
  }
  // Backward solve U z = z.
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = z[ii];
    for (std::size_t k = diag_[ii] + 1; k < row_ptr_[ii + 1]; ++k) {
      acc -= vals_[k] * z[col_idx_[k]];
    }
    z[ii] = acc / vals_[diag_[ii]];
  }
  return z;
}

}  // namespace subscale::linalg
