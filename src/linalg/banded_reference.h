#pragma once

/// \file banded_reference.h
/// Straight-line, element-at-a-time reference implementation of the banded
/// LU factorization in banded.h. The production BandedLu restructures the
/// elimination loops for unit-stride vector access; this reference keeps the
/// textbook row-outer order. Both perform the identical set of element-wise
/// operations (one `a -= factor * u` per in-band element per pivot, same
/// operands), so their factors and solutions must agree BITWISE — the
/// differential kernel tests in tests/test_linalg.cpp and bench_kernels
/// enforce exactly that. This class exists for those tests and as the
/// baseline side of the blocked-vs-reference benchmark; production code
/// should use BandedLu.

#include <cstddef>
#include <vector>

#include "linalg/banded.h"

namespace subscale::linalg {

/// Reference banded LU with row equilibration and partial pivoting,
/// operating on a dense copy restricted to the band. Mirrors BandedLu's
/// numerical behaviour operation-for-operation.
class ReferenceBandedLu {
 public:
  explicit ReferenceBandedLu(const BandedMatrix& a);

  /// Solve A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

 private:
  std::size_t n_;
  std::size_t kl_;
  std::size_t ku_;
  std::vector<double> dense_;  // row-major n x n; out-of-band entries stay 0
  std::vector<std::size_t> ipiv_;
  std::vector<double> row_scale_;

  double& at(std::size_t r, std::size_t c) { return dense_[r * n_ + c]; }
  double at(std::size_t r, std::size_t c) const { return dense_[r * n_ + c]; }
};

}  // namespace subscale::linalg
