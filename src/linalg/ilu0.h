#pragma once

/// \file ilu0.h
/// Zero-fill incomplete LU preconditioner for CSR matrices.

#include <vector>

#include "linalg/csr_matrix.h"

namespace subscale::linalg {

/// ILU(0): incomplete LU on the sparsity pattern of A.
class Ilu0 {
 public:
  explicit Ilu0(const CsrMatrix& a);

  /// Apply the preconditioner: solve (L U) z = r.
  std::vector<double> apply(const std::vector<double>& r) const;

 private:
  std::size_t n_;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> vals_;
  std::vector<std::size_t> diag_;  // index of the diagonal in each row
};

}  // namespace subscale::linalg
