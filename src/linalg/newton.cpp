#include "linalg/newton.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace subscale::linalg {

NewtonResult newton_solve(const ResidualFn& residual, const JacobianFn& jacobian,
                          std::vector<double> initial_guess,
                          const NewtonOptions& options) {
  NewtonResult result;
  result.x = std::move(initial_guess);
  std::vector<double> f = residual(result.x);
  double f_norm = norm_inf(f);

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    result.iterations = it;
    result.residual_norm = f_norm;
    if (f_norm <= options.residual_tolerance) {
      result.converged = true;
      return result;
    }

    const DenseMatrix jac = jacobian(result.x);
    std::vector<double> rhs(f.size());
    for (std::size_t i = 0; i < f.size(); ++i) rhs[i] = -f[i];
    std::vector<double> dx;
    try {
      const LuFactorization lu{jac};
      dx = lu.solve(rhs);
    } catch (const std::runtime_error&) {
      // Singular Jacobian: give up, report non-convergence.
      return result;
    }

    if (options.max_step > 0.0) {
      for (double& d : dx) d = std::clamp(d, -options.max_step, options.max_step);
    }

    const double dx_norm = norm_inf(dx);
    if (dx_norm <= options.step_tolerance) {
      // Step has collapsed: accept if residual is small-ish.
      result.converged = f_norm <= 1e3 * options.residual_tolerance;
      return result;
    }

    // Backtracking line search on ||F||_inf.
    double lambda = 1.0;
    bool accepted = false;
    std::vector<double> x_trial(result.x.size());
    std::vector<double> f_trial;
    for (std::size_t ls = 0; ls <= options.max_line_search_halvings; ++ls) {
      for (std::size_t i = 0; i < result.x.size(); ++i) {
        x_trial[i] = result.x[i] + lambda * dx[i];
      }
      f_trial = residual(x_trial);
      const double f_trial_norm = norm_inf(f_trial);
      if (std::isfinite(f_trial_norm) && f_trial_norm < f_norm) {
        result.x = x_trial;
        f = std::move(f_trial);
        f_norm = f_trial_norm;
        accepted = true;
        break;
      }
      lambda *= 0.5;
    }
    if (!accepted) {
      // Take the smallest step anyway; some circuit residuals have flat
      // plateaus where the norm briefly stalls.
      for (std::size_t i = 0; i < result.x.size(); ++i) {
        result.x[i] += lambda * dx[i];
      }
      f = residual(result.x);
      const double fn = norm_inf(f);
      if (!std::isfinite(fn) || fn > 10.0 * f_norm) {
        return result;  // diverging; bail out
      }
      f_norm = fn;
    }
  }
  result.residual_norm = f_norm;
  result.converged = f_norm <= options.residual_tolerance;
  return result;
}

DenseMatrix finite_difference_jacobian(const ResidualFn& residual,
                                       const std::vector<double>& x,
                                       double relative_step) {
  const std::size_t n = x.size();
  const std::vector<double> f0 = residual(x);
  if (f0.size() != n) {
    throw std::invalid_argument("finite_difference_jacobian: F must map R^n->R^n");
  }
  DenseMatrix jac(n, n);
  std::vector<double> xp = x;
  for (std::size_t j = 0; j < n; ++j) {
    const double h = relative_step * std::max(1.0, std::abs(x[j]));
    xp[j] = x[j] + h;
    const std::vector<double> fj = residual(xp);
    xp[j] = x[j];
    for (std::size_t i = 0; i < n; ++i) {
      jac(i, j) = (fj[i] - f0[i]) / h;
    }
  }
  return jac;
}

}  // namespace subscale::linalg
