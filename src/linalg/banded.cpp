#include "linalg/banded.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace subscale::linalg {

BandedMatrix::BandedMatrix(std::size_t n, std::size_t kl, std::size_t ku)
    : n_(n), kl_(kl), ku_(ku), ldab_(2 * kl + ku + 1), ab_(ldab_ * n, 0.0) {
  if (n == 0) throw std::invalid_argument("BandedMatrix: n must be > 0");
}

bool BandedMatrix::in_band(std::size_t r, std::size_t c) const {
  if (r >= n_ || c >= n_) return false;
  if (c > r) return (c - r) <= ku_;
  return (r - c) <= kl_;
}

double& BandedMatrix::at(std::size_t r, std::size_t c) {
  if (!in_band(r, c)) {
    throw std::out_of_range("BandedMatrix::at: entry outside band");
  }
  return storage(r, c);
}

double BandedMatrix::at(std::size_t r, std::size_t c) const {
  if (!in_band(r, c)) {
    throw std::out_of_range("BandedMatrix::at: entry outside band");
  }
  return storage(r, c);
}

void BandedMatrix::set_zero() { std::fill(ab_.begin(), ab_.end(), 0.0); }

std::vector<double> BandedMatrix::multiply(const std::vector<double>& x) const {
  if (x.size() != n_) {
    throw std::invalid_argument("BandedMatrix::multiply: size mismatch");
  }
  std::vector<double> y(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t c_lo = (r > kl_) ? r - kl_ : 0;
    const std::size_t c_hi = std::min(n_ - 1, r + ku_);
    double acc = 0.0;
    for (std::size_t c = c_lo; c <= c_hi; ++c) acc += storage(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

BandedLu::BandedLu(BandedMatrix a)
    : lu_(std::move(a)), ipiv_(lu_.n_), row_scale_(lu_.n_, 1.0) {
  const std::size_t n = lu_.n_;
  const std::size_t kl = lu_.kl_;
  const std::size_t ku = lu_.ku_;

  // Row equilibration: scale every row so its largest entry is ~1.
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t c_lo = (r > kl) ? r - kl : 0;
    const std::size_t c_hi = std::min(n - 1, r + ku);
    double max_abs = 0.0;
    for (std::size_t c = c_lo; c <= c_hi; ++c) {
      max_abs = std::max(max_abs, std::abs(lu_.storage(r, c)));
    }
    if (max_abs == 0.0 || !std::isfinite(max_abs)) {
      throw std::runtime_error("BandedLu: zero or non-finite row");
    }
    row_scale_[r] = 1.0 / max_abs;
    for (std::size_t c = c_lo; c <= c_hi; ++c) {
      lu_.storage(r, c) *= row_scale_[r];
    }
  }
  // During factorization with partial pivoting the upper bandwidth grows to
  // kl + ku; the storage already reserves that room (2*kl + ku + 1 rows).
  const std::size_t ku_eff = kl + ku;

  // Band storage is contiguous in r for fixed c (stride 1 down a column),
  // so the trailing rank-1 update runs column-outer / row-inner: each inner
  // loop is a unit-stride axpy the compiler can vectorize. Every element
  // still receives exactly one `a -= factor * u` with the same operands as
  // the row-outer form, so the factorization is bitwise identical to the
  // reference (see banded_reference.h and the bench_kernels assertions).
  double* ab = lu_.ab_.data();
  const std::size_t ldab = lu_.ldab_;
  const std::size_t band0 = kl + ku;  // storage row of the main diagonal

  for (std::size_t k = 0; k < n; ++k) {
    // Pivot search in column k, rows k .. min(n-1, k+kl).
    const std::size_t r_hi = std::min(n - 1, k + kl);
    const std::size_t nr = r_hi - k;           // rows strictly below the pivot
    double* colk = ab + k * ldab + band0;      // colk[i] = storage(k+i, k)
    std::size_t pivot_off = 0;
    double pivot_mag = std::abs(colk[0]);
    for (std::size_t i = 1; i <= nr; ++i) {
      const double mag = std::abs(colk[i]);
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_off = i;
      }
    }
    if (pivot_mag == 0.0 || !std::isfinite(pivot_mag)) {
      throw std::runtime_error("BandedLu: singular matrix");
    }
    const std::size_t pivot_row = k + pivot_off;
    ipiv_[k] = pivot_row;
    const std::size_t c_hi = std::min(n - 1, k + ku_eff);
    if (pivot_row != k) {
      // Swap rows k and pivot_row across the accessible band columns.
      for (std::size_t c = k; c <= c_hi; ++c) {
        double* colc = ab + c * ldab + (band0 + k - c);
        std::swap(colc[0], colc[pivot_off]);
      }
    }
    const double pivot = colk[0];
    for (std::size_t i = 1; i <= nr; ++i) colk[i] /= pivot;
    for (std::size_t c = k + 1; c <= c_hi; ++c) {
      double* colc = ab + c * ldab + (band0 + k - c);  // colc[i] = storage(k+i, c)
      const double u = colc[0];
      if (u == 0.0) continue;
      for (std::size_t i = 1; i <= nr; ++i) colc[i] -= colk[i] * u;
    }
  }
}

std::vector<double> BandedLu::solve(const std::vector<double>& b) const {
  const std::size_t n = lu_.n_;
  if (b.size() != n) {
    throw std::invalid_argument("BandedLu::solve: size mismatch");
  }
  const std::size_t kl = lu_.kl_;
  const std::size_t ku_eff = lu_.kl_ + lu_.ku_;
  std::vector<double> x = b;
  for (std::size_t r = 0; r < n; ++r) x[r] *= row_scale_[r];

  // Apply row interchanges and forward-substitute with unit-lower L. The
  // multipliers for column k sit contiguously in band storage, so the inner
  // loop is a unit-stride axpy (same ops as the element-wise form).
  const double* ab = lu_.ab_.data();
  const std::size_t ldab = lu_.ldab_;
  const std::size_t band0 = kl + lu_.ku_;
  for (std::size_t k = 0; k < n; ++k) {
    if (ipiv_[k] != k) std::swap(x[k], x[ipiv_[k]]);
    const std::size_t nr = std::min(n - 1, k + kl) - k;
    const double* colk = ab + k * ldab + band0;  // colk[i] = storage(k+i, k)
    const double xk = x[k];
    double* xr = x.data() + k;
    for (std::size_t i = 1; i <= nr; ++i) xr[i] -= colk[i] * xk;
  }
  // Back substitution with U.
  for (std::size_t kk = n; kk-- > 0;) {
    const std::size_t c_hi = std::min(n - 1, kk + ku_eff);
    double acc = x[kk];
    for (std::size_t c = kk + 1; c <= c_hi; ++c) {
      acc -= lu_.storage(kk, c) * x[c];
    }
    x[kk] = acc / lu_.storage(kk, kk);
  }
  return x;
}

}  // namespace subscale::linalg
