#include "linalg/block_banded.h"

#include <stdexcept>

namespace subscale::linalg {

namespace {
std::size_t scalar_bandwidth(std::size_t block_size, std::size_t block_bw) {
  // Unknown index = node * block_size + component, so the farthest coupled
  // scalar entry for node offset block_bw is block_size*block_bw +
  // (block_size - 1).
  return block_size * block_bw + block_size - 1;
}
}  // namespace

BlockBandedMatrix::BlockBandedMatrix(std::size_t n_blocks,
                                     std::size_t block_size,
                                     std::size_t block_bandwidth)
    : n_blocks_(n_blocks),
      block_size_(block_size),
      block_bw_(block_bandwidth),
      scalar_(n_blocks * block_size,
              scalar_bandwidth(block_size, block_bandwidth),
              scalar_bandwidth(block_size, block_bandwidth)) {
  if (block_size == 0) {
    throw std::invalid_argument("BlockBandedMatrix: block_size must be > 0");
  }
}

BlockBandedLu::BlockBandedLu(const BlockBandedMatrix& a) : lu_(a.scalar()) {}

std::vector<double> BlockBandedLu::solve(const std::vector<double>& b) const {
  return lu_.solve(b);
}

}  // namespace subscale::linalg
