#pragma once

/// \file csr_matrix.h
/// Compressed-sparse-row matrix with triplet-based assembly, used by the
/// iterative linear solvers and as an interchange format for the TCAD
/// Jacobians.

#include <cstddef>
#include <vector>

namespace subscale::linalg {

/// Triplet (COO) assembler: accumulate duplicate entries, then compress.
class SparseBuilder {
 public:
  explicit SparseBuilder(std::size_t n) : n_(n) {}

  std::size_t size() const { return n_; }

  /// Accumulate `value` into entry (r, c).
  void add(std::size_t r, std::size_t c, double value);

  std::size_t entry_count() const { return rows_.size(); }

 private:
  friend class CsrMatrix;
  std::size_t n_;
  std::vector<std::size_t> rows_;
  std::vector<std::size_t> cols_;
  std::vector<double> vals_;
};

/// Immutable CSR matrix.
class CsrMatrix {
 public:
  /// Compress a triplet builder (duplicates are summed).
  explicit CsrMatrix(const SparseBuilder& builder);

  std::size_t size() const { return n_; }
  std::size_t nonzeros() const { return vals_.size(); }

  /// y = A x.
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// Read-only access used by the preconditioners.
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return vals_; }

  /// Value at (r, c), or 0 if not stored.
  double at(std::size_t r, std::size_t c) const;

 private:
  std::size_t n_;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> vals_;
};

}  // namespace subscale::linalg
