#pragma once

/// \file dense.h
/// Small dense-matrix support for the circuit engine's Newton iterations.
/// Row-major storage, LU factorization with partial pivoting.

#include <cstddef>
#include <vector>

namespace subscale::linalg {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Set every entry to zero (keeps the shape).
  void set_zero();

  /// y = A * x. Requires x.size() == cols().
  std::vector<double> multiply(const std::vector<double>& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// In-place LU factorization with partial pivoting.
/// Throws std::runtime_error on a (numerically) singular matrix.
class LuFactorization {
 public:
  explicit LuFactorization(DenseMatrix a);

  /// Solve A x = b for x.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Estimated reciprocal of the max pivot ratio (rough conditioning hint).
  double min_pivot_magnitude() const { return min_pivot_; }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  double min_pivot_ = 0.0;
};

/// Euclidean norm of a vector.
double norm2(const std::vector<double>& v);

/// Max-abs norm of a vector.
double norm_inf(const std::vector<double>& v);

/// Dot product; sizes must match.
double dot(const std::vector<double>& a, const std::vector<double>& b);

/// y += alpha * x (sizes must match).
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

}  // namespace subscale::linalg
