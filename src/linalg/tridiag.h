#pragma once

/// \file tridiag.h
/// Thomas-algorithm solver for tridiagonal systems (used by the 1-D
/// Poisson warm-start and line smoothers).

#include <vector>

namespace subscale::linalg {

/// Solve a tridiagonal system in O(n).
/// \param lower  sub-diagonal, lower[0] unused (size n)
/// \param diag   main diagonal (size n)
/// \param upper  super-diagonal, upper[n-1] unused (size n)
/// \param rhs    right-hand side (size n)
/// Throws std::runtime_error on zero pivot.
std::vector<double> solve_tridiagonal(const std::vector<double>& lower,
                                      const std::vector<double>& diag,
                                      const std::vector<double>& upper,
                                      const std::vector<double>& rhs);

}  // namespace subscale::linalg
