#pragma once

/// \file block_banded.h
/// Block-structured banded matrix + factorization for the coupled Newton
/// drift–diffusion Jacobian. Each mesh node carries a small fixed block of
/// unknowns (here 3: {psi, n, p}) and couples only to its stencil
/// neighbours, so the Jacobian is block-banded: a banded matrix of B x B
/// blocks with node-level bandwidth p (p = nx on the 2-D tensor mesh).
///
/// The blocks are assembled straight into scalar LAPACK band storage with
/// kl = ku = B*p + B - 1 and factorized by the vectorized BandedLu kernel —
/// block assembly keeps the Newton code readable while the scalar band
/// factorization (with its contiguous column-axpy inner loops) does the
/// heavy lifting. Partial pivoting stays global across the band, which the
/// ill-conditioned drift–diffusion blocks require; confining pivots inside
/// blocks is not robust for these systems.

#include <cstddef>
#include <vector>

#include "linalg/banded.h"

namespace subscale::linalg {

/// Banded matrix of dense block_size x block_size blocks.
class BlockBandedMatrix {
 public:
  /// \param n_blocks        number of block rows/columns (mesh nodes)
  /// \param block_size      unknowns per node (3 for {psi, n, p})
  /// \param block_bandwidth farthest coupled neighbour in node index units
  BlockBandedMatrix(std::size_t n_blocks, std::size_t block_size,
                    std::size_t block_bandwidth);

  std::size_t n_blocks() const { return n_blocks_; }
  std::size_t block_size() const { return block_size_; }
  std::size_t block_bandwidth() const { return block_bw_; }
  /// Scalar dimension = n_blocks * block_size.
  std::size_t size() const { return n_blocks_ * block_size_; }

  /// Add `value` to local entry (r, c) of block (bi, bj). The block must lie
  /// within the declared block band: |bi - bj| <= block_bandwidth.
  void add(std::size_t bi, std::size_t bj, std::size_t r, std::size_t c,
           double value) {
    scalar_.add(bi * block_size_ + r, bj * block_size_ + c, value);
  }

  /// Scalar-index view of the assembled matrix.
  const BandedMatrix& scalar() const { return scalar_; }
  BandedMatrix& scalar() { return scalar_; }

  void set_zero() { scalar_.set_zero(); }

 private:
  std::size_t n_blocks_;
  std::size_t block_size_;
  std::size_t block_bw_;
  BandedMatrix scalar_;
};

/// LU factorization of a BlockBandedMatrix. Delegates to the vectorized
/// scalar BandedLu (row equilibration + partial pivoting); see the header
/// comment for why pivoting is not confined to blocks.
class BlockBandedLu {
 public:
  /// Factorizes a copy. Throws std::runtime_error if singular.
  explicit BlockBandedLu(const BlockBandedMatrix& a);

  /// Solve A x = b; b is in scalar (node-major, component-minor) order.
  std::vector<double> solve(const std::vector<double>& b) const;

 private:
  BandedLu lu_;
};

}  // namespace subscale::linalg
