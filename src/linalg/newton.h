#pragma once

/// \file newton.h
/// Damped Newton driver for dense nonlinear systems F(x) = 0, used by the
/// circuit engine (nodal analysis) and available to any module that can
/// provide residual + Jacobian callbacks.

#include <functional>
#include <vector>

#include "linalg/dense.h"

namespace subscale::linalg {

struct NewtonOptions {
  std::size_t max_iterations = 200;
  double residual_tolerance = 1e-12;  ///< on ||F||_inf
  double step_tolerance = 1e-12;      ///< on ||dx||_inf
  double max_step = 0.0;  ///< if > 0, clamp each component of dx to +-max_step
  std::size_t max_line_search_halvings = 30;
};

struct NewtonResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Callback computing the residual F(x) (size n).
using ResidualFn = std::function<std::vector<double>(const std::vector<double>&)>;

/// Callback computing the Jacobian dF/dx (n x n).
using JacobianFn = std::function<DenseMatrix(const std::vector<double>&)>;

/// Solve F(x) = 0 with damped Newton + Armijo-style backtracking on ||F||.
NewtonResult newton_solve(const ResidualFn& residual, const JacobianFn& jacobian,
                          std::vector<double> initial_guess,
                          const NewtonOptions& options = {});

/// Convenience: finite-difference Jacobian of a residual function.
DenseMatrix finite_difference_jacobian(const ResidualFn& residual,
                                       const std::vector<double>& x,
                                       double relative_step = 1e-7);

}  // namespace subscale::linalg
