#include "linalg/dense.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace subscale::linalg {

void DenseMatrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

std::vector<double> DenseMatrix::multiply(const std::vector<double>& x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("DenseMatrix::multiply: size mismatch");
  }
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      acc += data_[r * cols_ + c] * x[c];
    }
    y[r] = acc;
  }
  return y;
}

LuFactorization::LuFactorization(DenseMatrix a) : lu_(std::move(a)) {
  const std::size_t n = lu_.rows();
  if (n != lu_.cols()) {
    throw std::invalid_argument("LuFactorization: matrix must be square");
  }
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  min_pivot_ = std::numeric_limits<double>::infinity();

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: find the largest entry in column k at/below row k.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag == 0.0 || !std::isfinite(pivot_mag)) {
      throw std::runtime_error("LuFactorization: singular matrix");
    }
    min_pivot_ = std::min(min_pivot_, pivot_mag);
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot_row, c));
      }
      std::swap(perm_[k], perm_[pivot_row]);
    }
    const double pivot = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
}

std::vector<double> LuFactorization::solve(const std::vector<double>& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("LuFactorization::solve: size mismatch");
  }
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution (unit lower triangle).
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

double norm2(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double norm_inf(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc = std::max(acc, std::abs(x));
  return acc;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("axpy: size mismatch");
  }
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace subscale::linalg
