#include "linalg/csr_matrix.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace subscale::linalg {

void SparseBuilder::add(std::size_t r, std::size_t c, double value) {
  if (r >= n_ || c >= n_) {
    throw std::out_of_range("SparseBuilder::add: index out of range");
  }
  rows_.push_back(r);
  cols_.push_back(c);
  vals_.push_back(value);
}

CsrMatrix::CsrMatrix(const SparseBuilder& builder) : n_(builder.n_) {
  const std::size_t nnz_in = builder.rows_.size();
  std::vector<std::size_t> order(nnz_in);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (builder.rows_[a] != builder.rows_[b]) {
      return builder.rows_[a] < builder.rows_[b];
    }
    return builder.cols_[a] < builder.cols_[b];
  });

  row_ptr_.assign(n_ + 1, 0);
  col_idx_.reserve(nnz_in);
  vals_.reserve(nnz_in);

  std::size_t i = 0;
  while (i < nnz_in) {
    const std::size_t r = builder.rows_[order[i]];
    const std::size_t c = builder.cols_[order[i]];
    double acc = 0.0;
    while (i < nnz_in && builder.rows_[order[i]] == r &&
           builder.cols_[order[i]] == c) {
      acc += builder.vals_[order[i]];
      ++i;
    }
    col_idx_.push_back(c);
    vals_.push_back(acc);
    ++row_ptr_[r + 1];
  }
  for (std::size_t r = 0; r < n_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

std::vector<double> CsrMatrix::multiply(const std::vector<double>& x) const {
  if (x.size() != n_) {
    throw std::invalid_argument("CsrMatrix::multiply: size mismatch");
  }
  std::vector<double> y(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += vals_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
  return y;
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= n_ || c >= n_) {
    throw std::out_of_range("CsrMatrix::at: index out of range");
  }
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
    if (col_idx_[k] == c) return vals_[k];
  }
  return 0.0;
}

}  // namespace subscale::linalg
