#include "linalg/banded_reference.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace subscale::linalg {

ReferenceBandedLu::ReferenceBandedLu(const BandedMatrix& a)
    : n_(a.size()),
      kl_(a.lower_bandwidth()),
      ku_(a.upper_bandwidth()),
      dense_(n_ * n_, 0.0),
      ipiv_(n_),
      row_scale_(n_, 1.0) {
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t c_lo = (r > kl_) ? r - kl_ : 0;
    const std::size_t c_hi = std::min(n_ - 1, r + ku_);
    for (std::size_t c = c_lo; c <= c_hi; ++c) at(r, c) = a.at(r, c);
  }

  // Row equilibration: scale every row so its largest entry is ~1.
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t c_lo = (r > kl_) ? r - kl_ : 0;
    const std::size_t c_hi = std::min(n_ - 1, r + ku_);
    double max_abs = 0.0;
    for (std::size_t c = c_lo; c <= c_hi; ++c) {
      max_abs = std::max(max_abs, std::abs(at(r, c)));
    }
    if (max_abs == 0.0 || !std::isfinite(max_abs)) {
      throw std::runtime_error("ReferenceBandedLu: zero or non-finite row");
    }
    row_scale_[r] = 1.0 / max_abs;
    for (std::size_t c = c_lo; c <= c_hi; ++c) at(r, c) *= row_scale_[r];
  }

  const std::size_t ku_eff = kl_ + ku_;
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t r_hi = std::min(n_ - 1, k + kl_);
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(at(k, k));
    for (std::size_t r = k + 1; r <= r_hi; ++r) {
      const double mag = std::abs(at(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag == 0.0 || !std::isfinite(pivot_mag)) {
      throw std::runtime_error("ReferenceBandedLu: singular matrix");
    }
    ipiv_[k] = pivot_row;
    const std::size_t c_hi = std::min(n_ - 1, k + ku_eff);
    if (pivot_row != k) {
      for (std::size_t c = k; c <= c_hi; ++c) {
        std::swap(at(k, c), at(pivot_row, c));
      }
    }
    const double pivot = at(k, k);
    for (std::size_t r = k + 1; r <= r_hi; ++r) at(r, k) /= pivot;
    // Row-outer trailing update; skips the same zero-u columns as the
    // vectorized version so both perform identical element operations.
    for (std::size_t r = k + 1; r <= r_hi; ++r) {
      const double factor = at(r, k);
      for (std::size_t c = k + 1; c <= c_hi; ++c) {
        const double u = at(k, c);
        if (u == 0.0) continue;
        at(r, c) -= factor * u;
      }
    }
  }
}

std::vector<double> ReferenceBandedLu::solve(const std::vector<double>& b) const {
  if (b.size() != n_) {
    throw std::invalid_argument("ReferenceBandedLu::solve: size mismatch");
  }
  const std::size_t ku_eff = kl_ + ku_;
  std::vector<double> x = b;
  for (std::size_t r = 0; r < n_; ++r) x[r] *= row_scale_[r];

  for (std::size_t k = 0; k < n_; ++k) {
    if (ipiv_[k] != k) std::swap(x[k], x[ipiv_[k]]);
    const std::size_t r_hi = std::min(n_ - 1, k + kl_);
    for (std::size_t r = k + 1; r <= r_hi; ++r) {
      x[r] -= at(r, k) * x[k];
    }
  }
  for (std::size_t kk = n_; kk-- > 0;) {
    const std::size_t c_hi = std::min(n_ - 1, kk + ku_eff);
    double acc = x[kk];
    for (std::size_t c = kk + 1; c <= c_hi; ++c) {
      acc -= at(kk, c) * x[c];
    }
    x[kk] = acc / at(kk, kk);
  }
  return x;
}

}  // namespace subscale::linalg
