#include "linalg/bicgstab.h"

#include <cmath>
#include <stdexcept>

#include "linalg/dense.h"
#include "linalg/ilu0.h"
#include "obs/names.h"
#include "obs/profiler.h"

namespace subscale::linalg {

namespace {

/// Publish one solve's counters in a single batch (no per-iteration
/// registry traffic; the hot loop only bumps locals).
void publish(obs::MetricsRegistry* sink, const IterativeResult& result) {
  if (sink == nullptr) return;
  sink->counter(obs::names::kBicgstabSolves).add(1);
  sink->counter(obs::names::kBicgstabIterations).add(result.iterations);
  if (result.breakdown) {
    sink->counter(obs::names::kBicgstabBreakdowns).add(1);
  }
  if (!result.converged) {
    sink->counter(obs::names::kBicgstabFailures).add(1);
  }
}

IterativeResult bicgstab_impl(const CsrMatrix& a,
                              const std::vector<double>& b,
                              const BicgstabOptions& options) {
  const std::size_t n = a.size();
  if (b.size() != n) {
    throw std::invalid_argument("bicgstab: size mismatch");
  }
  const Ilu0 precond(a);

  IterativeResult result;
  result.x.assign(n, 0.0);

  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> r_hat = r;
  std::vector<double> p(n, 0.0);
  std::vector<double> v(n, 0.0);

  double rho_prev = 1.0;
  double alpha = 1.0;
  double omega = 1.0;

  const double b_norm = norm2(b);
  const double target =
      std::max(options.absolute_tolerance, options.relative_tolerance * b_norm);

  double r_norm = norm2(r);
  if (!std::isfinite(r_norm)) {
    // NaN/Inf in the right-hand side: no Krylov step can recover.
    result.breakdown = true;
    result.residual_norm = r_norm;
    return result;
  }
  if (r_norm <= target) {
    result.converged = true;
    result.residual_norm = r_norm;
    return result;
  }

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const double rho = dot(r_hat, r);
    if (rho == 0.0 || !std::isfinite(rho)) {
      result.breakdown = true;
      break;
    }

    if (it == 0) {
      p = r;
    } else {
      const double beta = (rho / rho_prev) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
      }
    }
    const std::vector<double> p_hat = precond.apply(p);
    v = a.multiply(p_hat);
    const double rhv = dot(r_hat, v);
    if (rhv == 0.0 || !std::isfinite(rhv)) {
      result.breakdown = true;
      break;
    }
    alpha = rho / rhv;

    std::vector<double> s = r;
    axpy(-alpha, v, s);

    if (norm2(s) <= target) {
      axpy(alpha, p_hat, result.x);
      result.converged = true;
      result.iterations = it + 1;
      result.residual_norm = norm2(s);
      return result;
    }

    const std::vector<double> s_hat = precond.apply(s);
    const std::vector<double> t = a.multiply(s_hat);
    const double tt = dot(t, t);
    if (tt == 0.0 || !std::isfinite(tt)) {
      result.breakdown = true;
      break;
    }
    omega = dot(t, s) / tt;

    axpy(alpha, p_hat, result.x);
    axpy(omega, s_hat, result.x);

    r = s;
    axpy(-omega, t, r);

    r_norm = norm2(r);
    result.iterations = it + 1;
    result.residual_norm = r_norm;
    if (!std::isfinite(r_norm)) {
      result.breakdown = true;
      break;
    }
    if (r_norm <= target) {
      result.converged = true;
      return result;
    }
    if (omega == 0.0) {
      result.breakdown = true;
      break;
    }
    rho_prev = rho;
  }
  result.residual_norm = r_norm;
  return result;
}

}  // namespace

IterativeResult bicgstab(const CsrMatrix& a, const std::vector<double>& b,
                         const BicgstabOptions& options) {
  const obs::ScopedSpan span(options.profiler != nullptr
                                 ? options.profiler
                                 : obs::default_profiler(),
                             obs::names::spans::kBicgstabSolve);
  const IterativeResult result = bicgstab_impl(a, b, options);
  publish(options.metrics != nullptr ? options.metrics
                                     : obs::default_registry(),
          result);
  return result;
}

}  // namespace subscale::linalg
