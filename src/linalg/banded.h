#pragma once

/// \file banded.h
/// Banded LU solver. The 2-D TCAD discretization on a tensor-product mesh
/// produces matrices whose bandwidth equals the number of nodes in the
/// faster-varying direction; a banded direct solve is both fast (O(n*bw^2))
/// and far more robust than iterative methods for the strongly
/// nonsymmetric drift–diffusion Jacobians.

#include <cstddef>
#include <vector>

namespace subscale::linalg {

/// Banded matrix in LAPACK-style band storage with room for fill-in from
/// partial pivoting: (2*kl + ku + 1) x n.
class BandedMatrix {
 public:
  /// \param n  matrix dimension
  /// \param kl number of sub-diagonals
  /// \param ku number of super-diagonals
  BandedMatrix(std::size_t n, std::size_t kl, std::size_t ku);

  std::size_t size() const { return n_; }
  std::size_t lower_bandwidth() const { return kl_; }
  std::size_t upper_bandwidth() const { return ku_; }

  /// Access entry (r, c); (r, c) must lie within the band.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// True if (r, c) lies within the declared band.
  bool in_band(std::size_t r, std::size_t c) const;

  /// Add `value` to entry (r, c) (must be in band).
  void add(std::size_t r, std::size_t c, double value) { at(r, c) += value; }

  void set_zero();

  /// y = A x.
  std::vector<double> multiply(const std::vector<double>& x) const;

 private:
  friend class BandedLu;
  std::size_t n_;
  std::size_t kl_;
  std::size_t ku_;
  std::size_t ldab_;          // rows of band storage = 2*kl + ku + 1
  std::vector<double> ab_;    // column-major band storage

  double& storage(std::size_t r, std::size_t c) {
    // Row index within band storage: kl + ku + r - c.
    return ab_[c * ldab_ + (kl_ + ku_ + r - c)];
  }
  double storage(std::size_t r, std::size_t c) const {
    return ab_[c * ldab_ + (kl_ + ku_ + r - c)];
  }
};

/// LU factorization of a banded matrix with row equilibration and
/// partial pivoting (LAPACK dgbtrf/dgbtrs behaviour plus dgbequ-style
/// row scaling — drift-diffusion systems mix row magnitudes across ~25
/// orders, which plain partial pivoting cannot survive).
class BandedLu {
 public:
  /// Factorizes a copy of `a`. Throws std::runtime_error if singular.
  explicit BandedLu(BandedMatrix a);

  /// Solve A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

 private:
  BandedMatrix lu_;
  std::vector<std::size_t> ipiv_;
  std::vector<double> row_scale_;
};

}  // namespace subscale::linalg
