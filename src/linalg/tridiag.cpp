#include "linalg/tridiag.h"

#include <cmath>
#include <stdexcept>

namespace subscale::linalg {

std::vector<double> solve_tridiagonal(const std::vector<double>& lower,
                                      const std::vector<double>& diag,
                                      const std::vector<double>& upper,
                                      const std::vector<double>& rhs) {
  const std::size_t n = diag.size();
  if (lower.size() != n || upper.size() != n || rhs.size() != n) {
    throw std::invalid_argument("solve_tridiagonal: size mismatch");
  }
  std::vector<double> c_star(n, 0.0);
  std::vector<double> d_star(n, 0.0);

  if (diag[0] == 0.0) throw std::runtime_error("tridiagonal: zero pivot");
  c_star[0] = upper[0] / diag[0];
  d_star[0] = rhs[0] / diag[0];

  for (std::size_t i = 1; i < n; ++i) {
    const double m = diag[i] - lower[i] * c_star[i - 1];
    if (m == 0.0 || !std::isfinite(m)) {
      throw std::runtime_error("tridiagonal: zero pivot");
    }
    c_star[i] = upper[i] / m;
    d_star[i] = (rhs[i] - lower[i] * d_star[i - 1]) / m;
  }

  std::vector<double> x(n);
  x[n - 1] = d_star[n - 1];
  for (std::size_t ii = n - 1; ii-- > 0;) {
    x[ii] = d_star[ii] - c_star[ii] * x[ii + 1];
  }
  return x;
}

}  // namespace subscale::linalg
