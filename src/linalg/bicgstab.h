#pragma once

/// \file bicgstab.h
/// ILU(0)-preconditioned BiCGSTAB for nonsymmetric sparse systems.

#include <cstddef>
#include <vector>

#include "linalg/csr_matrix.h"
#include "obs/metrics.h"

namespace subscale::obs {
class SpanProfiler;
}  // namespace subscale::obs

namespace subscale::linalg {

struct IterativeResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
  /// True when the recurrence broke down (zero or non-finite inner
  /// product / residual) rather than merely running out of iterations.
  /// `x` is then the last finite iterate, not a solution.
  bool breakdown = false;
};

struct BicgstabOptions {
  std::size_t max_iterations = 2000;
  double relative_tolerance = 1e-10;
  double absolute_tolerance = 1e-300;
  /// Telemetry sink for solve/iteration/breakdown counters (see
  /// obs/names.h). Null falls back to obs::default_registry(); a null
  /// resolved sink costs one pointer test per solve.
  obs::MetricsRegistry* metrics = nullptr;
  /// Span sink for one "linalg.bicgstab.solve" span per call. Null
  /// falls back to obs::default_profiler(), same resolution as metrics.
  obs::SpanProfiler* profiler = nullptr;
};

/// Solve A x = b with right-preconditioned BiCGSTAB.
IterativeResult bicgstab(const CsrMatrix& a, const std::vector<double>& b,
                         const BicgstabOptions& options = {});

}  // namespace subscale::linalg
