#pragma once

/// \file timer.h
/// ScopedTimer: monotonic (steady_clock), nanosecond-resolution span
/// timing. On destruction the elapsed time lands in a histogram of the
/// bound registry; with a null registry the timer is two steady_clock
/// reads and nothing else. Header-only so the compiler can inline the
/// null path away at the call site.

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace subscale::obs {

class ScopedTimer {
 public:
  /// Starts timing. `histogram_name` must outlive the timer (call sites
  /// pass literals); the histogram uses the latency-ms layout and is
  /// resolved at stop time, not construction, so a timer is free to
  /// outlive a registry swap-in.
  ScopedTimer(MetricsRegistry* registry, const char* histogram_name)
      : registry_(registry),
        name_(histogram_name),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (registry_ != nullptr && !stopped_) {
      registry_->histogram(name_, buckets::kLatencyMs).record(elapsed_ms());
    }
  }

  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// Record now (into the histogram) and disarm the destructor.
  /// Returns the elapsed milliseconds either way.
  double stop() {
    const double ms = elapsed_ms();
    if (registry_ != nullptr && !stopped_) {
      registry_->histogram(name_, buckets::kLatencyMs).record(ms);
    }
    stopped_ = true;
    return ms;
  }

 private:
  MetricsRegistry* registry_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

}  // namespace subscale::obs
