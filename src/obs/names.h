#pragma once

/// \file names.h
/// The canonical metric schema. Every instrumented layer names its
/// instruments through these constants, and bench::run preregisters all
/// of them so each BENCH_<name>.json carries the full key set (zeros
/// included) — that is what keeps the bench trajectory comparable
/// across PRs. tools/bench_schema.sh holds the same list as a
/// whitelist and fails the build check on unknown or renamed keys, so
/// adding a metric means touching BOTH files deliberately.

#include "obs/metrics.h"

namespace subscale::obs::names {

// exec layer (thread-count dependent by nature; excluded from the
// bitwise determinism contract, see DESIGN.md §10.3)
inline constexpr const char* kPoolPools = "exec.pool.pools";
inline constexpr const char* kPoolTasksRun = "exec.pool.tasks_run";
inline constexpr const char* kPoolQueueDepthMax = "exec.pool.queue_depth_max";
inline constexpr const char* kPoolUtilizationPct = "exec.pool.utilization_pct";

// linalg layer
inline constexpr const char* kBicgstabSolves = "linalg.bicgstab.solves";
inline constexpr const char* kBicgstabIterations =
    "linalg.bicgstab.iterations";
inline constexpr const char* kBicgstabBreakdowns =
    "linalg.bicgstab.breakdowns";
inline constexpr const char* kBicgstabFailures = "linalg.bicgstab.failures";

// tcad layer — Gummel outer loop and its stages
inline constexpr const char* kGummelSolves = "tcad.gummel.solves";
inline constexpr const char* kGummelOuterIterations =
    "tcad.gummel.outer_iterations";
inline constexpr const char* kGummelContinuationSteps =
    "tcad.gummel.continuation_steps";
inline constexpr const char* kGummelRetries = "tcad.gummel.retries";
inline constexpr const char* kGummelStepHalvings =
    "tcad.gummel.step_halvings";
inline constexpr const char* kGummelDampingTightenings =
    "tcad.gummel.damping_tightenings";
inline constexpr const char* kGummelRollbacks = "tcad.gummel.rollbacks";
inline constexpr const char* kGummelFaultsInjected =
    "tcad.gummel.faults_injected";
inline constexpr const char* kGummelFailedSolves =
    "tcad.gummel.failed_solves";
inline constexpr const char* kGummelLastResidual =
    "tcad.gummel.last_residual";
inline constexpr const char* kGummelIterationsPerSolve =
    "tcad.gummel.iterations_per_solve";
inline constexpr const char* kPoissonNewtonIterations =
    "tcad.poisson.newton_iterations";
inline constexpr const char* kContinuitySolves = "tcad.continuity.solves";

// tcad layer — bias sweeps
inline constexpr const char* kSweepPointsAttempted =
    "tcad.sweep.points_attempted";
inline constexpr const char* kSweepPointsConverged =
    "tcad.sweep.points_converged";
inline constexpr const char* kSweepPointsFailed =
    "tcad.sweep.points_failed";
inline constexpr const char* kSweepPointMs = "tcad.sweep.point_ms";

// core layer — study-level fan-out
inline constexpr const char* kStudyNodesValidated =
    "core.study.nodes_validated";
inline constexpr const char* kStudyNodeErrors = "core.study.node_errors";
inline constexpr const char* kStudySweepPointFailures =
    "core.study.sweep_point_failures";
inline constexpr const char* kStudyNodeMs = "core.study.node_ms";

// cache layer — persistent solve-cache traffic. Hit/miss/store totals
// depend on what previous runs left on disk, so every cache.* key is
// excluded from the obs_diff regression gate (tools/obs_diff skip list).
inline constexpr const char* kCacheHit = "cache.hit";
inline constexpr const char* kCacheMiss = "cache.miss";
inline constexpr const char* kCacheStore = "cache.store";
inline constexpr const char* kCacheEvict = "cache.evict";
inline constexpr const char* kCacheWarmstart = "cache.warmstart";
inline constexpr const char* kCacheCorrupt = "cache.corrupt";

// orch layer — multi-process study orchestration (src/orch). Claim/
// reassign/poison traffic depends on scheduling, lease timeouts and
// chaos policy — wall-clock artifacts, not solver effort — so every
// orch.* key is excluded from the obs_diff regression gate alongside
// cache.*.
inline constexpr const char* kOrchUnitsTotal = "orch.units_total";
inline constexpr const char* kOrchClaimed = "orch.claimed";
inline constexpr const char* kOrchCompleted = "orch.completed";
inline constexpr const char* kOrchReassigned = "orch.reassigned";
inline constexpr const char* kOrchPoisoned = "orch.poisoned";
inline constexpr const char* kOrchWorkerRestarts = "orch.worker_restarts";

// cards layer — technology-deck traffic: card JSON loads and compact
// device-backend factory dispatches (make_device_model). Both are
// deterministic for a given study shape at any thread count.
inline constexpr const char* kCardsLoads = "cards.loads";
inline constexpr const char* kCardsBackendDispatches =
    "cards.backend_dispatches";

// serve layer — the design-query daemon (src/serve). Request/error/
// throttle traffic depends on what clients send and when — wall-clock
// artifacts like cache.* and orch.* — so every serve.* key is excluded
// from the obs_diff regression gate.
inline constexpr const char* kServeRequests = "serve.requests";
inline constexpr const char* kServeExecuted = "serve.executed";
inline constexpr const char* kServeCoalesced = "serve.coalesced";
inline constexpr const char* kServeErrors = "serve.errors";
inline constexpr const char* kServeThrottled = "serve.throttled";
inline constexpr const char* kServeRejected = "serve.rejected";
inline constexpr const char* kServeClients = "serve.clients";
inline constexpr const char* kServeQueueDepthMax = "serve.queue_depth_max";
inline constexpr const char* kServeRequestMs = "serve.request_ms";

// obs layer — span-profiler export tallies (bumped once at export time
// so every BENCH record says how many spans its trace carries; zero
// when profiling is off)
inline constexpr const char* kProfilerSpans = "obs.profiler.spans";
inline constexpr const char* kProfilerSpansDropped =
    "obs.profiler.spans_dropped";

/// Touch every standard instrument so a snapshot (and the BENCH json
/// written from it) always carries the complete schema, zeros included.
inline void preregister_standard(MetricsRegistry& registry) {
  for (const char* name :
       {kPoolPools, kPoolTasksRun, kBicgstabSolves, kBicgstabIterations,
        kBicgstabBreakdowns, kBicgstabFailures, kGummelSolves,
        kGummelOuterIterations, kGummelContinuationSteps, kGummelRetries,
        kGummelStepHalvings, kGummelDampingTightenings, kGummelRollbacks,
        kGummelFaultsInjected, kGummelFailedSolves,
        kPoissonNewtonIterations, kContinuitySolves, kSweepPointsAttempted,
        kSweepPointsConverged, kSweepPointsFailed, kStudyNodesValidated,
        kStudyNodeErrors, kStudySweepPointFailures, kCacheHit, kCacheMiss,
        kCacheStore, kCacheEvict, kCacheWarmstart, kCacheCorrupt,
        kOrchUnitsTotal, kOrchClaimed, kOrchCompleted, kOrchReassigned,
        kOrchPoisoned, kOrchWorkerRestarts, kCardsLoads,
        kCardsBackendDispatches, kServeRequests, kServeExecuted,
        kServeCoalesced, kServeErrors, kServeThrottled, kServeRejected,
        kServeClients, kProfilerSpans, kProfilerSpansDropped}) {
    registry.counter(name);
  }
  for (const char* name : {kPoolQueueDepthMax, kPoolUtilizationPct,
                           kGummelLastResidual, kServeQueueDepthMax}) {
    registry.gauge(name);
  }
  registry.histogram(kGummelIterationsPerSolve, buckets::kIterations);
  for (const char* name : {kSweepPointMs, kStudyNodeMs, kServeRequestMs}) {
    registry.histogram(name, buckets::kLatencyMs);
  }
}

/// Canonical span labels for the hierarchical profiler (obs/profiler.h).
/// Like the metric names, every instrumented layer spells its spans
/// through these constants so trace exports stay comparable across PRs.
/// Labels must be static-storage strings (the profiler stores pointers).
namespace spans {
inline constexpr const char* kTask = "exec.task";
inline constexpr const char* kStudyNode = "core.study.node";
inline constexpr const char* kSweepPoint = "tcad.sweep.point";
inline constexpr const char* kGummelEquilibrium = "tcad.gummel.equilibrium";
inline constexpr const char* kGummelBiasRamp = "tcad.gummel.bias_ramp";
inline constexpr const char* kGummelSolve = "tcad.gummel.solve";
inline constexpr const char* kGummelPoisson = "tcad.gummel.poisson";
inline constexpr const char* kGummelContinuity = "tcad.gummel.continuity";
inline constexpr const char* kBandedLuSolve = "linalg.banded_lu.solve";
inline constexpr const char* kBicgstabSolve = "linalg.bicgstab.solve";
inline constexpr const char* kCacheLookup = "cache.lookup";
inline constexpr const char* kCachePublish = "cache.publish";
inline constexpr const char* kOrchUnit = "orch.unit";
}  // namespace spans

}  // namespace subscale::obs::names
