#pragma once

/// \file names.h
/// The canonical metric schema, declared ONCE as the X-macro table
/// SUBSCALE_OBS_SCHEMA below. Every consumer derives from that table:
///   * the `names::k*` constants every instrumented layer spells its
///     instruments through,
///   * `preregister_standard()`, which touches every instrument so each
///     BENCH_<name>.json carries the full key set (zeros included) —
///     that is what keeps the bench trajectory comparable across PRs,
///   * `kStandardSchema` + `regression_gated()`, the single gating
///     policy tools/obs_diff (pairwise) and tools/obs_trend (rolling
///     baseline) apply to flat record keys,
///   * tools/bench_schema.sh, which awk-extracts the rows textually to
///     build its whitelist — keep each X(...) row on one line.
/// Adding or renaming a metric therefore means editing exactly one row.

#include <string_view>

#include "obs/metrics.h"

namespace subscale::obs::names {

/// What instrument a schema row registers (and how its flat record keys
/// gate): histograms flatten to "<name>.count"/"<name>.sum" in BENCH
/// and perfdb records, and a latency histogram's .sum is wall clock —
/// excluded from the regression gates unless timing is opted in.
enum class MetricKind {
  kCounter,
  kGauge,
  kLatencyHistogram,    ///< buckets::kLatencyMs; .sum is timing
  kIterationHistogram,  ///< buckets::kIterations; .sum is effort
};

/// Whether the regression gates compare the metric at all. Exempt rows
/// are environment- or scheduling-dependent (thread counts, what past
/// runs left in a cache dir, client arrival timing) — comparing them
/// would gate noise, not solver effort. See DESIGN.md §16.2.
enum class GatePolicy { kGated, kExempt };

// clang-format off
/// One row per instrument: X(<constant>, "<wire name>", <kind>, <gate>).
/// Rationale for the Exempt rows:
///   * exec.pool.*  — thread-count-dependent by nature (DESIGN.md §10.3),
///   * *.last_residual — a gauge of the final solve, not effort,
///   * cache.*      — hit/miss/store totals depend on what past runs
///                    left in SUBSCALE_CACHE_DIR, not the change under
///                    test,
///   * orch.*       — claim/reassign/poison traffic depends on
///                    scheduling, lease timeouts and chaos policy,
///   * serve.*      — request/throttle/coalesce traffic depends on
///                    client arrival timing.
#define SUBSCALE_OBS_SCHEMA(X)                                                \
  /* exec layer */                                                            \
  X(kPoolPools, "exec.pool.pools", kCounter, kExempt)                         \
  X(kPoolTasksRun, "exec.pool.tasks_run", kCounter, kExempt)                  \
  X(kPoolQueueDepthMax, "exec.pool.queue_depth_max", kGauge, kExempt)         \
  X(kPoolUtilizationPct, "exec.pool.utilization_pct", kGauge, kExempt)        \
  /* linalg layer */                                                          \
  X(kBicgstabSolves, "linalg.bicgstab.solves", kCounter, kGated)              \
  X(kBicgstabIterations, "linalg.bicgstab.iterations", kCounter, kGated)      \
  X(kBicgstabBreakdowns, "linalg.bicgstab.breakdowns", kCounter, kGated)      \
  X(kBicgstabFailures, "linalg.bicgstab.failures", kCounter, kGated)          \
  /* tcad layer — Gummel outer loop and its stages */                         \
  X(kGummelSolves, "tcad.gummel.solves", kCounter, kGated)                    \
  X(kGummelOuterIterations, "tcad.gummel.outer_iterations", kCounter, kGated) \
  X(kGummelContinuationSteps, "tcad.gummel.continuation_steps", kCounter, kGated) \
  X(kGummelRetries, "tcad.gummel.retries", kCounter, kGated)                  \
  X(kGummelStepHalvings, "tcad.gummel.step_halvings", kCounter, kGated)       \
  X(kGummelDampingTightenings, "tcad.gummel.damping_tightenings", kCounter, kGated) \
  X(kGummelRollbacks, "tcad.gummel.rollbacks", kCounter, kGated)              \
  X(kGummelFaultsInjected, "tcad.gummel.faults_injected", kCounter, kGated)   \
  X(kGummelFailedSolves, "tcad.gummel.failed_solves", kCounter, kGated)       \
  X(kGummelLastResidual, "tcad.gummel.last_residual", kGauge, kExempt)        \
  X(kGummelIterationsPerSolve, "tcad.gummel.iterations_per_solve", kIterationHistogram, kGated) \
  X(kPoissonNewtonIterations, "tcad.poisson.newton_iterations", kCounter, kGated) \
  X(kContinuitySolves, "tcad.continuity.solves", kCounter, kGated)            \
  /* tcad layer — coupled Newton solver and mesh continuation */              \
  X(kNewtonSolves, "tcad.newton.solves", kCounter, kGated)                    \
  X(kNewtonIterations, "tcad.newton.iterations", kCounter, kGated)            \
  X(kNewtonFallbacks, "tcad.newton.fallbacks", kCounter, kGated)              \
  X(kMeshContLevels, "tcad.meshcont.levels", kCounter, kGated)                \
  X(kMeshContProlongations, "tcad.meshcont.prolongations", kCounter, kGated)  \
  X(kMeshContFallbacks, "tcad.meshcont.fallbacks", kCounter, kGated)          \
  /* tcad layer — bias sweeps */                                              \
  X(kSweepPointsAttempted, "tcad.sweep.points_attempted", kCounter, kGated)   \
  X(kSweepPointsConverged, "tcad.sweep.points_converged", kCounter, kGated)   \
  X(kSweepPointsFailed, "tcad.sweep.points_failed", kCounter, kGated)         \
  X(kSweepPointMs, "tcad.sweep.point_ms", kLatencyHistogram, kGated)          \
  /* core layer — study-level fan-out */                                      \
  X(kStudyNodesValidated, "core.study.nodes_validated", kCounter, kGated)     \
  X(kStudyNodeErrors, "core.study.node_errors", kCounter, kGated)             \
  X(kStudySweepPointFailures, "core.study.sweep_point_failures", kCounter, kGated) \
  X(kStudyNodeMs, "core.study.node_ms", kLatencyHistogram, kGated)            \
  /* cache layer — persistent solve-cache traffic */                          \
  X(kCacheHit, "cache.hit", kCounter, kExempt)                                \
  X(kCacheMiss, "cache.miss", kCounter, kExempt)                              \
  X(kCacheStore, "cache.store", kCounter, kExempt)                            \
  X(kCacheEvict, "cache.evict", kCounter, kExempt)                            \
  X(kCacheWarmstart, "cache.warmstart", kCounter, kExempt)                    \
  X(kCacheCorrupt, "cache.corrupt", kCounter, kExempt)                        \
  /* orch layer — multi-process study orchestration (src/orch) */             \
  X(kOrchUnitsTotal, "orch.units_total", kCounter, kExempt)                   \
  X(kOrchClaimed, "orch.claimed", kCounter, kExempt)                          \
  X(kOrchCompleted, "orch.completed", kCounter, kExempt)                      \
  X(kOrchReassigned, "orch.reassigned", kCounter, kExempt)                    \
  X(kOrchPoisoned, "orch.poisoned", kCounter, kExempt)                        \
  X(kOrchWorkerRestarts, "orch.worker_restarts", kCounter, kExempt)           \
  /* cards layer — technology-deck traffic */                                 \
  X(kCardsLoads, "cards.loads", kCounter, kGated)                             \
  X(kCardsBackendDispatches, "cards.backend_dispatches", kCounter, kGated)    \
  /* serve layer — the design-query daemon (src/serve) */                     \
  X(kServeRequests, "serve.requests", kCounter, kExempt)                      \
  X(kServeExecuted, "serve.executed", kCounter, kExempt)                      \
  X(kServeCoalesced, "serve.coalesced", kCounter, kExempt)                    \
  X(kServeErrors, "serve.errors", kCounter, kExempt)                          \
  X(kServeThrottled, "serve.throttled", kCounter, kExempt)                    \
  X(kServeRejected, "serve.rejected", kCounter, kExempt)                      \
  X(kServeClients, "serve.clients", kCounter, kExempt)                        \
  X(kServeQueueDepthMax, "serve.queue_depth_max", kGauge, kExempt)            \
  X(kServeRequestMs, "serve.request_ms", kLatencyHistogram, kExempt)          \
  /* obs layer — span-profiler export tallies */                              \
  X(kProfilerSpans, "obs.profiler.spans", kCounter, kGated)                   \
  X(kProfilerSpansDropped, "obs.profiler.spans_dropped", kCounter, kGated)
// clang-format on

// The named constants every call site uses, generated from the table.
#define SUBSCALE_OBS_DECLARE_NAME(ident, name, kind, gate) \
  inline constexpr const char* ident = name;
SUBSCALE_OBS_SCHEMA(SUBSCALE_OBS_DECLARE_NAME)
#undef SUBSCALE_OBS_DECLARE_NAME

/// One schema row, queryable at runtime (obs_diff/obs_trend gating,
/// bench whitelists, the perfdb rollup layer).
struct MetricDef {
  const char* name;
  MetricKind kind;
  GatePolicy gate;

  bool is_histogram() const {
    return kind == MetricKind::kLatencyHistogram ||
           kind == MetricKind::kIterationHistogram;
  }
};

inline constexpr MetricDef kStandardSchema[] = {
#define SUBSCALE_OBS_DEF_ROW(ident, name, kind, gate) \
  {name, MetricKind::kind, GatePolicy::gate},
    SUBSCALE_OBS_SCHEMA(SUBSCALE_OBS_DEF_ROW)
#undef SUBSCALE_OBS_DEF_ROW
};

inline constexpr std::size_t kStandardSchemaSize =
    sizeof(kStandardSchema) / sizeof(kStandardSchema[0]);

/// Touch every standard instrument so a snapshot (and the BENCH json
/// written from it) always carries the complete schema, zeros included.
inline void preregister_standard(MetricsRegistry& registry) {
  for (const MetricDef& def : kStandardSchema) {
    switch (def.kind) {
      case MetricKind::kCounter:
        registry.counter(def.name);
        break;
      case MetricKind::kGauge:
        registry.gauge(def.name);
        break;
      case MetricKind::kLatencyHistogram:
        registry.histogram(def.name, buckets::kLatencyMs);
        break;
      case MetricKind::kIterationHistogram:
        registry.histogram(def.name, buckets::kIterations);
        break;
    }
  }
}

/// Schema row for a FLAT record key — the form keys take in BENCH and
/// perfdb records, where a histogram appears as "<name>.count" and
/// "<name>.sum". Null for keys outside the standard schema.
inline const MetricDef* find_flat(std::string_view key) {
  const auto strip = [&](std::string_view suffix) -> std::string_view {
    if (key.size() > suffix.size() &&
        key.substr(key.size() - suffix.size()) == suffix) {
      return key.substr(0, key.size() - suffix.size());
    }
    return {};
  };
  const std::string_view base_count = strip(".count");
  const std::string_view base_sum = strip(".sum");
  for (const MetricDef& def : kStandardSchema) {
    const std::string_view name = def.name;
    if (name == key && !def.is_histogram()) return &def;
    if (def.is_histogram() && (name == base_count || name == base_sum)) {
      return &def;
    }
  }
  return nullptr;
}

/// THE gating predicate both regression gates share: does this flat key
/// participate? Schema rows answer from their GatePolicy/MetricKind;
/// keys outside the table (a record written by a newer binary) fall
/// back to the historical prefix/suffix heuristics so the gates degrade
/// conservatively instead of flagging noise.
inline bool regression_gated(std::string_view key,
                             bool include_timing = false) {
  const auto ends_with = [&](std::string_view suffix) {
    return key.size() >= suffix.size() &&
           key.substr(key.size() - suffix.size()) == suffix;
  };
  if (const MetricDef* def = find_flat(key); def != nullptr) {
    if (def->gate == GatePolicy::kExempt) return false;
    if (def->kind == MetricKind::kLatencyHistogram && ends_with(".sum")) {
      return include_timing;  // wall clock, not effort
    }
    return true;
  }
  const auto starts_with = [&](std::string_view prefix) {
    return key.substr(0, prefix.size()) == prefix;
  };
  if (starts_with("exec.pool.") || starts_with("cache.") ||
      starts_with("orch.") || starts_with("serve.")) {
    return false;
  }
  if (ends_with("_ms.sum") && !include_timing) return false;
  if (ends_with(".last_residual")) return false;
  return true;
}

/// Canonical span labels for the hierarchical profiler (obs/profiler.h).
/// Like the metric names, every instrumented layer spells its spans
/// through these constants so trace exports stay comparable across PRs.
/// Labels must be static-storage strings (the profiler stores pointers).
namespace spans {
inline constexpr const char* kTask = "exec.task";
inline constexpr const char* kStudyNode = "core.study.node";
inline constexpr const char* kSweepPoint = "tcad.sweep.point";
inline constexpr const char* kGummelEquilibrium = "tcad.gummel.equilibrium";
inline constexpr const char* kGummelBiasRamp = "tcad.gummel.bias_ramp";
inline constexpr const char* kGummelSolve = "tcad.gummel.solve";
inline constexpr const char* kGummelPoisson = "tcad.gummel.poisson";
inline constexpr const char* kGummelContinuity = "tcad.gummel.continuity";
inline constexpr const char* kNewtonSolve = "tcad.newton.solve";
inline constexpr const char* kMeshContCoarse = "tcad.meshcont.coarse_solve";
inline constexpr const char* kMeshContProlong = "tcad.meshcont.prolong";
inline constexpr const char* kBandedLuSolve = "linalg.banded_lu.solve";
inline constexpr const char* kBicgstabSolve = "linalg.bicgstab.solve";
inline constexpr const char* kCacheLookup = "cache.lookup";
inline constexpr const char* kCachePublish = "cache.publish";
inline constexpr const char* kOrchUnit = "orch.unit";
}  // namespace spans

}  // namespace subscale::obs::names
