#pragma once

/// \file convergence.h
/// Per-solve convergence trajectories. Counters say a Gummel solve took
/// 47 outer iterations; this recorder keeps *how the residual decayed*
/// across those iterations, so a pathological bias point can be
/// diagnosed from its recorded curve (slow geometric decay vs. a
/// plateau vs. oscillation) instead of rerunning under a debugger.
///
/// Strictly opt-in via exec::RunContext::convergence — unlike the
/// metrics registry there is no process-wide default, because one
/// trajectory is hundreds of bytes and a study runs thousands of
/// solves. With a null recorder the solver pays one branch per solve.
///
/// Concurrency: the solver builds each trajectory privately and commits
/// it whole, so the recorder's lock is taken once per solve, never per
/// iteration. Capacity is fixed at construction; trajectories past it
/// are dropped and counted, soak-run safe like the trace ring.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace subscale::obs {

/// One Gummel outer iteration of one solve. Fields that an iteration
/// never reached (e.g. psi_update when the Poisson stage failed) hold
/// NaN, which the JSON exporter renders as null.
struct ConvergenceSample {
  std::uint32_t iteration = 0;  ///< outer iteration, 1-based
  double poisson_update = 0.0;  ///< nonlinear-Poisson final max |dV| [V]
  std::uint32_t poisson_iterations = 0;  ///< Newton iterations spent
  double continuity_max_density = 0.0;   ///< peak carrier density [1/m^3]
  double psi_update = 0.0;  ///< outer-loop max |dpsi| — the residual [V]
};

/// The decay curve of one Gummel solve at one (possibly intermediate
/// continuation) bias point.
struct SolveTrajectory {
  double vg = 0.0;  ///< gate bias of this solve [V]
  double vd = 0.0;  ///< drain bias of this solve [V]
  bool converged = false;
  std::vector<ConvergenceSample> samples;  ///< one per outer iteration
};

class ConvergenceRecorder {
 public:
  /// Throws std::invalid_argument when max_solves is zero.
  explicit ConvergenceRecorder(std::size_t max_solves = 256);

  ConvergenceRecorder(const ConvergenceRecorder&) = delete;
  ConvergenceRecorder& operator=(const ConvergenceRecorder&) = delete;

  /// Store one finished trajectory (drops it when at capacity).
  void commit(SolveTrajectory&& trajectory);

  std::size_t capacity() const { return capacity_; }
  /// Solves offered since construction, including dropped ones.
  std::uint64_t total_solves() const;
  /// Solves lost to the capacity cap.
  std::uint64_t dropped_solves() const;

  /// The retained trajectories, in commit order.
  std::vector<SolveTrajectory> snapshot() const;
  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SolveTrajectory> solves_;
  std::uint64_t total_ = 0;
};

}  // namespace subscale::obs
