#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace subscale::obs {

namespace {

std::atomic<MetricsRegistry*> g_default_registry{nullptr};

/// CAS-loop add: std::atomic<double>::fetch_add is C++20 but the CAS
/// form is portable across libstdc++ versions and equally TSAN-clean.
void atomic_add(std::atomic<double>& target, double v) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + v,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::set_max(double v) {
  double expected = value_.load(std::memory_order_relaxed);
  while (expected < v && !value_.compare_exchange_weak(
                             expected, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(const BucketLayout& layout)
    : layout_(layout), counts_(layout.count + 1) {
  if (layout.bounds == nullptr || layout.count == 0) {
    throw std::invalid_argument("Histogram: empty bucket layout");
  }
  for (std::size_t i = 1; i < layout.count; ++i) {
    if (!(layout.bounds[i] > layout.bounds[i - 1])) {
      throw std::invalid_argument("Histogram: bounds must be increasing");
    }
  }
}

void Histogram::record(double v) {
  // Linear scan: layouts are ~16 buckets and most samples land low.
  std::size_t i = 0;
  while (i < layout_.count && v > layout_.bounds[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const BucketLayout& layout) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(layout))
             .first;
  } else if (it->second->layout().bounds != layout.bounds ||
             it->second->layout().count != layout.count) {
    throw std::invalid_argument("MetricsRegistry: histogram '" +
                                std::string(name) +
                                "' re-registered with a different layout");
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue v;
    v.name = name;
    v.count = h->count();
    v.sum = h->sum();
    const BucketLayout& layout = h->layout();
    v.buckets.reserve(layout.count + 1);
    for (std::size_t i = 0; i < layout.count; ++i) {
      v.buckets.emplace_back(layout.bounds[i], h->bucket(i));
    }
    v.buckets.emplace_back(std::numeric_limits<double>::infinity(),
                           h->bucket(layout.count));
    snap.histograms.push_back(std::move(v));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

double MetricsSnapshot::HistogramValue::percentile(double p) const {
  if (count == 0 || buckets.empty()) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  const double target = p / 100.0 * static_cast<double>(count);
  std::uint64_t seen = 0;
  double lower = 0.0;  // the first bucket's lower edge
  for (const auto& [upper, tally] : buckets) {
    if (tally > 0) {
      const double cum = static_cast<double>(seen + tally);
      if (cum >= target) {
        if (std::isinf(upper)) {
          // Overflow bucket: no finite upper edge; clamp to the highest
          // finite bound (== this bucket's lower edge).
          return lower;
        }
        const double fraction =
            (target - static_cast<double>(seen)) / static_cast<double>(tally);
        return lower + (upper - lower) * (fraction < 0.0 ? 0.0 : fraction);
      }
      seen += tally;
    }
    if (!std::isinf(upper)) lower = upper;
  }
  return lower;  // ranks beyond the last tally clamp to the top edge
}

void set_default_registry(MetricsRegistry* registry) {
  g_default_registry.store(registry, std::memory_order_release);
}

MetricsRegistry* default_registry() {
  return g_default_registry.load(std::memory_order_acquire);
}

}  // namespace subscale::obs
