#include "obs/convergence.h"

#include <stdexcept>
#include <utility>

namespace subscale::obs {

ConvergenceRecorder::ConvergenceRecorder(std::size_t max_solves)
    : capacity_(max_solves) {
  if (max_solves == 0) {
    throw std::invalid_argument(
        "ConvergenceRecorder: max_solves must be positive");
  }
  solves_.reserve(max_solves);
}

void ConvergenceRecorder::commit(SolveTrajectory&& trajectory) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (solves_.size() < capacity_) {
    solves_.push_back(std::move(trajectory));
  }
}

std::uint64_t ConvergenceRecorder::total_solves() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t ConvergenceRecorder::dropped_solves() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > solves_.size() ? total_ - solves_.size() : 0;
}

std::vector<SolveTrajectory> ConvergenceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return solves_;
}

void ConvergenceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  solves_.clear();
  total_ = 0;
}

}  // namespace subscale::obs
