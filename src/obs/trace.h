#pragma once

/// \file trace.h
/// Bounded ring buffer of structured solver events. Where the metrics
/// registry answers "how many", the trace answers "in what order": it
/// keeps the last N stage entries/exits, retries, step-halvings,
/// rollbacks and fault injections with nanosecond timestamps, so a
/// failed sweep can be reconstructed without rerunning it under a
/// debugger. Fixed capacity — a soak run cannot grow it; old events are
/// overwritten and counted as dropped.
///
/// Event labels (`what`) must be string literals or other
/// static-storage strings: the ring stores the pointer, not a copy,
/// so recording stays allocation-free.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace subscale::obs {

/// The solver-stack event taxonomy (DESIGN.md §10.2).
enum class TraceKind {
  kStageEnter,     ///< a solve stage started (what = stage name)
  kStageExit,      ///< a solve stage finished successfully
  kRetry,          ///< an attempt was rejected and will be retried
  kStepHalve,      ///< continuation bias step was halved
  kDampingTighten, ///< under-relaxation was tightened
  kRollback,       ///< state restored to the last-good snapshot
  kFaultInjected,  ///< deterministic test fault fired
  kPointFailed,    ///< a bias point was abandoned (budget exhausted)
  kSweepPoint,     ///< one sweep bias point finished (a = vg, b = ms)
  kTaskSpan,       ///< an exec-layer task span (a = index, b = ms)
};

const char* to_string(TraceKind kind);

/// Small dense ordinal of the calling thread (0, 1, 2, ... in first-use
/// order, process-wide). Shared by the trace ring and the span profiler
/// so concurrent events attribute to the same track everywhere. Stable
/// for a thread's lifetime; NOT stable across runs (scheduling decides
/// first-use order), so it is diagnostic, never part of a determinism
/// contract.
std::uint32_t thread_ordinal();

struct TraceEvent {
  TraceKind kind = TraceKind::kStageEnter;
  std::uint64_t t_ns = 0;    ///< monotonic ns since the ring was created
  const char* what = "";     ///< static label (stage/site name)
  double a = 0.0;            ///< payload (meaning depends on kind)
  double b = 0.0;
  /// Recording thread (thread_ordinal()), filled by TraceRing::record —
  /// without it concurrent kTaskSpan events are indistinguishable.
  std::uint32_t tid = 0;
};

/// Fixed-capacity, thread-safe event ring.
class TraceRing {
 public:
  /// Throws std::invalid_argument when capacity is zero.
  explicit TraceRing(std::size_t capacity = 4096);

  void record(TraceKind kind, const char* what, double a = 0.0,
              double b = 0.0);

  std::size_t capacity() const { return capacity_; }
  /// Events recorded since construction (including overwritten ones).
  std::uint64_t total_recorded() const;
  /// Events lost to overwrite (total_recorded - min(total, capacity)).
  std::uint64_t dropped() const;

  /// The retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;
  /// Retained-event tally per kind (order of the TraceKind enum) —
  /// unlike timestamps this is thread-count-deterministic as long as
  /// nothing was dropped.
  std::vector<std::uint64_t> kind_counts() const;
  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;  ///< ring storage, capacity_ slots
  std::uint64_t total_ = 0;
  std::uint64_t t0_ns_ = 0;  ///< steady-clock origin
};

}  // namespace subscale::obs
