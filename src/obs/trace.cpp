#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace subscale::obs {

std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kStageEnter: return "stage_enter";
    case TraceKind::kStageExit: return "stage_exit";
    case TraceKind::kRetry: return "retry";
    case TraceKind::kStepHalve: return "step_halve";
    case TraceKind::kDampingTighten: return "damping_tighten";
    case TraceKind::kRollback: return "rollback";
    case TraceKind::kFaultInjected: return "fault_injected";
    case TraceKind::kPointFailed: return "point_failed";
    case TraceKind::kSweepPoint: return "sweep_point";
    case TraceKind::kTaskSpan: return "task_span";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity), t0_ns_(steady_now_ns()) {
  if (capacity == 0) {
    throw std::invalid_argument("TraceRing: capacity must be positive");
  }
  events_.reserve(capacity);
}

void TraceRing::record(TraceKind kind, const char* what, double a, double b) {
  const std::uint64_t now = steady_now_ns();
  const std::uint32_t tid = thread_ordinal();
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent ev{kind, now - t0_ns_, what, a, b, tid};
  if (events_.size() < capacity_) {
    events_.push_back(ev);
  } else {
    events_[total_ % capacity_] = ev;
  }
  ++total_;
}

std::uint64_t TraceRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (total_ <= capacity_) return events_;
  // The ring has wrapped: oldest retained event sits at total_ % cap.
  std::vector<TraceEvent> out;
  out.reserve(capacity_);
  const std::size_t head = total_ % capacity_;
  for (std::size_t i = 0; i < capacity_; ++i) {
    out.push_back(events_[(head + i) % capacity_]);
  }
  return out;
}

std::vector<std::uint64_t> TraceRing::kind_counts() const {
  std::vector<std::uint64_t> counts(
      static_cast<std::size_t>(TraceKind::kTaskSpan) + 1, 0);
  std::lock_guard<std::mutex> lock(mu_);
  for (const TraceEvent& ev : events_) {
    ++counts[static_cast<std::size_t>(ev.kind)];
  }
  return counts;
}

void TraceRing::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  total_ = 0;
  t0_ns_ = steady_now_ns();
}

}  // namespace subscale::obs
