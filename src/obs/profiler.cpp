#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "obs/trace.h"

namespace subscale::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<SpanProfiler*> g_default_profiler{nullptr};

std::uint64_t next_profiler_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

/// One thread's recording state. The owner thread is the only writer:
/// it fills the next slot, then publishes it with a release store on
/// `size`; snapshot() reads `size` with acquire and only touches slots
/// below it, so recording needs no lock and no per-record atomics
/// beyond the publication index. The nesting fields (next_seq,
/// open_seq, open_depth) are owner-thread-only and never read by
/// snapshot.
struct SpanProfiler::ThreadBuffer {
  std::vector<ProfileSpan> records;     ///< fixed capacity, preallocated
  std::atomic<std::size_t> size{0};     ///< published record count
  std::atomic<std::uint64_t> dropped{0};
  std::uint32_t tid = 0;
  std::uint64_t epoch_ns = 0;  ///< copy of the profiler's epoch
  // Owner-thread nesting state:
  std::uint64_t next_seq = 1;
  std::uint64_t open_seq = 0;   ///< seq of the innermost open span
  std::uint32_t open_depth = 0;
};

SpanProfiler::SpanProfiler(std::size_t per_thread_capacity)
    : id_(next_profiler_id()),
      capacity_(per_thread_capacity),
      t0_ns_(steady_now_ns()) {
  if (per_thread_capacity == 0) {
    throw std::invalid_argument(
        "SpanProfiler: per_thread_capacity must be positive");
  }
}

SpanProfiler::~SpanProfiler() = default;

SpanProfiler::ThreadBuffer* SpanProfiler::local_buffer() {
  // Keyed by the process-unique profiler id, not the pointer, so a
  // destroyed profiler's cache entry can never alias a new profiler
  // allocated at the same address. Entries for dead profilers are never
  // matched again (ids are not reused) and are bounded by the number of
  // profilers this thread ever recorded into.
  thread_local std::map<std::uint64_t, ThreadBuffer*> tl_buffers;
  const auto it = tl_buffers.find(id_);
  if (it != tl_buffers.end()) return it->second;

  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->records.resize(capacity_);
  buffer->tid = thread_ordinal();
  buffer->epoch_ns = t0_ns_;
  ThreadBuffer* raw = buffer.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::move(buffer));
  }
  tl_buffers.emplace(id_, raw);
  return raw;
}

ProfileSnapshot SpanProfiler::snapshot() const {
  ProfileSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    const std::size_t n = buffer->size.load(std::memory_order_acquire);
    snap.spans.insert(snap.spans.end(), buffer->records.begin(),
                      buffer->records.begin() + static_cast<long>(n));
    snap.dropped += buffer->dropped.load(std::memory_order_relaxed);
  }
  std::sort(snap.spans.begin(), snap.spans.end(),
            [](const ProfileSpan& a, const ProfileSpan& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
              return a.seq < b.seq;
            });
  return snap;
}

ScopedSpan::ScopedSpan(SpanProfiler* profiler, const char* label) {
  if (profiler == nullptr) return;
  buf_ = profiler->local_buffer();
  label_ = label;
  seq_ = buf_->next_seq++;
  parent_ = buf_->open_seq;
  depth_ = buf_->open_depth;
  buf_->open_seq = seq_;
  ++buf_->open_depth;
  t0_ns_ = steady_now_ns() - buf_->epoch_ns;
}

ScopedSpan::~ScopedSpan() {
  if (buf_ == nullptr) return;
  buf_->open_seq = parent_;
  --buf_->open_depth;
  const std::uint64_t t1_ns = steady_now_ns() - buf_->epoch_ns;
  const std::size_t slot = buf_->size.load(std::memory_order_relaxed);
  if (slot < buf_->records.size()) {
    buf_->records[slot] =
        ProfileSpan{label_, buf_->tid, depth_, seq_, parent_, t0_ns_, t1_ns};
    buf_->size.store(slot + 1, std::memory_order_release);
  } else {
    buf_->dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t ProfileSnapshot::wall_ns() const {
  if (spans.empty()) return 0;
  std::uint64_t t0 = spans.front().t0_ns;
  std::uint64_t t1 = spans.front().t1_ns;
  for (const ProfileSpan& s : spans) {
    t0 = std::min(t0, s.t0_ns);
    t1 = std::max(t1, s.t1_ns);
  }
  return t1 - t0;
}

std::vector<ProfileRollupRow> ProfileSnapshot::rollup() const {
  // Self time: each span starts with its own duration and loses every
  // direct child's duration; (tid, seq) -> index resolves the parents.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::size_t> index;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    index.emplace(std::make_pair(spans[i].tid, spans[i].seq), i);
  }
  std::vector<double> self_ms(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    self_ms[i] = spans[i].duration_ms();
  }
  for (const ProfileSpan& s : spans) {
    if (s.parent == 0) continue;
    const auto it = index.find(std::make_pair(s.tid, s.parent));
    if (it != index.end()) self_ms[it->second] -= s.duration_ms();
  }

  std::map<std::string, ProfileRollupRow> by_label;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const ProfileSpan& s = spans[i];
    auto [it, inserted] = by_label.try_emplace(s.label);
    ProfileRollupRow& row = it->second;
    if (inserted) {
      row.label = s.label;
      row.min_depth = s.depth;
    }
    row.min_depth = std::min(row.min_depth, s.depth);
    ++row.count;
    row.total_ms += s.duration_ms();
    row.self_ms += self_ms[i];
  }

  const double wall_ms = static_cast<double>(wall_ns()) * 1e-6;
  std::vector<ProfileRollupRow> rows;
  rows.reserve(by_label.size());
  for (auto& [label, row] : by_label) {
    row.pct_of_wall = wall_ms > 0.0 ? 100.0 * row.total_ms / wall_ms : 0.0;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const ProfileRollupRow& a, const ProfileRollupRow& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              return a.label < b.label;
            });
  return rows;
}

std::string ProfileSnapshot::rollup_table() const {
  const std::vector<ProfileRollupRow> rows = rollup();
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-36s %10s %12s %12s %7s\n", "span",
                "count", "total ms", "self ms", "% wall");
  out += line;
  out.append(80, '-');
  out += '\n';
  for (const ProfileRollupRow& row : rows) {
    std::string label(2 * static_cast<std::size_t>(row.min_depth), ' ');
    label += row.label;
    std::snprintf(line, sizeof line, "%-36s %10llu %12.3f %12.3f %6.1f%%\n",
                  label.c_str(),
                  static_cast<unsigned long long>(row.count), row.total_ms,
                  row.self_ms, row.pct_of_wall);
    out += line;
  }
  if (dropped > 0) {
    std::snprintf(line, sizeof line,
                  "(%llu span(s) dropped: thread buffer full — self times "
                  "above are inflated)\n",
                  static_cast<unsigned long long>(dropped));
    out += line;
  }
  return out;
}

std::map<std::string, std::uint64_t> ProfileSnapshot::label_counts() const {
  std::map<std::string, std::uint64_t> counts;
  for (const ProfileSpan& s : spans) ++counts[s.label];
  return counts;
}

std::map<std::pair<std::string, std::string>, std::uint64_t>
ProfileSnapshot::edge_counts() const {
  std::map<std::pair<std::uint32_t, std::uint64_t>, const char*> labels;
  for (const ProfileSpan& s : spans) {
    labels.emplace(std::make_pair(s.tid, s.seq), s.label);
  }
  std::map<std::pair<std::string, std::string>, std::uint64_t> counts;
  for (const ProfileSpan& s : spans) {
    const char* parent = "";
    if (s.parent != 0) {
      const auto it = labels.find(std::make_pair(s.tid, s.parent));
      if (it != labels.end()) parent = it->second;
    }
    ++counts[std::make_pair(std::string(parent), std::string(s.label))];
  }
  return counts;
}

void set_default_profiler(SpanProfiler* profiler) {
  g_default_profiler.store(profiler, std::memory_order_release);
}

SpanProfiler* default_profiler() {
  return g_default_profiler.load(std::memory_order_acquire);
}

}  // namespace subscale::obs
