#pragma once

/// \file profiler.h
/// Hierarchical span profiler: RAII ScopedSpan handles record nested
/// begin/end intervals (static label, thread ordinal, nesting depth,
/// parent link) into per-thread buffers, merged on snapshot. Where the
/// metrics registry answers "how many" and the trace ring "in what
/// order", the profiler answers "where the time nests": a slow study
/// node decomposes into sweep-point -> Gummel-stage -> linear-solve
/// time without rerunning under an external profiler.
///
/// Cost model (same philosophy as metrics.h):
///   * recording is lock-free: each thread owns a fixed-capacity,
///     preallocated buffer and publishes completed spans with a single
///     release store; the profiler mutex is taken only on a thread's
///     FIRST span and on snapshot();
///   * a null profiler costs one branch per ScopedSpan — call sites
///     resolve the profiler once (RunContext::span_sink()) and pass
///     the pointer, exactly like the Instruments pattern;
///   * buffers never grow: a span recorded past capacity is counted in
///     dropped() instead of allocating (soak-run safe).
///
/// Determinism contract: span *counts* per label and per
/// (parent label, label) edge are thread-count-invariant for work whose
/// event count is deterministic (study nodes, sweep points, Gummel
/// iterations) — the bitwise contract of DESIGN.md §10.3 extended to
/// nesting. Timestamps, durations and thread ordinals are wall-clock /
/// scheduling artifacts and are excluded, as always.
///
/// Labels must be string literals or other static-storage strings (the
/// records store the pointer, not a copy). A profiler must outlive
/// every ScopedSpan bound to it and every snapshot consumer.
///
/// This layer stays dependency-free (std only); the Chrome trace-event
/// exporter lives in io/trace_export.h.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace subscale::obs {

/// One closed interval, as merged into a snapshot. `seq` numbers spans
/// per thread in open order (1-based); `parent` is the `seq` of the
/// enclosing span on the same thread (0 = thread root), so (tid, seq)
/// uniquely keys a span and parent chains can be walked offline.
struct ProfileSpan {
  const char* label = "";   ///< static-storage label
  std::uint32_t tid = 0;    ///< thread ordinal (see thread_ordinal())
  std::uint32_t depth = 0;  ///< nesting depth on its thread (0 = root)
  std::uint64_t seq = 0;    ///< per-thread open order, 1-based
  std::uint64_t parent = 0; ///< seq of the enclosing span (0 = root)
  std::uint64_t t0_ns = 0;  ///< open time, ns since profiler creation
  std::uint64_t t1_ns = 0;  ///< close time, ns since profiler creation
  double duration_ms() const {
    return static_cast<double>(t1_ns - t0_ns) * 1e-6;
  }
};

/// One row of the self-time roll-up (the textual flamegraph).
struct ProfileRollupRow {
  std::string label;
  std::uint32_t min_depth = 0;  ///< shallowest depth the label occurs at
  std::uint64_t count = 0;
  double total_ms = 0.0;  ///< sum of span durations
  double self_ms = 0.0;   ///< total minus time inside child spans
  double pct_of_wall = 0.0;  ///< total as % of the snapshot wall span
};

/// Point-in-time merge of every thread's completed spans.
struct ProfileSnapshot {
  /// Sorted by (tid, t0_ns, seq) — one contiguous track per thread.
  std::vector<ProfileSpan> spans;
  std::uint64_t dropped = 0;  ///< spans lost to full thread buffers

  /// Earliest open to latest close across all threads (0 when empty).
  std::uint64_t wall_ns() const;

  /// Per-label aggregation, largest total first. Self time subtracts
  /// each child's duration from its parent; a dropped child inflates
  /// its parent's self time (noted by dropped > 0).
  std::vector<ProfileRollupRow> rollup() const;

  /// The roll-up rendered as a fixed-width text table: label (indented
  /// by min depth), count, total ms, self ms, % of wall.
  std::string rollup_table() const;

  /// Span tally per label — the thread-count-deterministic view.
  std::map<std::string, std::uint64_t> label_counts() const;
  /// Span tally per (parent label, label) edge; a thread-root span has
  /// parent label "". Deterministic like label_counts().
  std::map<std::pair<std::string, std::string>, std::uint64_t>
  edge_counts() const;
};

class ScopedSpan;

/// Owns the per-thread span buffers. Threads attach lazily on their
/// first span (one mutex acquisition per thread per profiler); snapshot
/// merges whatever each thread has published so far and is safe to call
/// while spans are still being recorded on other threads.
class SpanProfiler {
 public:
  /// `per_thread_capacity` spans are preallocated per recording thread
  /// (~56 bytes each). Throws std::invalid_argument when zero.
  explicit SpanProfiler(std::size_t per_thread_capacity = 1 << 16);
  ~SpanProfiler();

  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  std::size_t per_thread_capacity() const { return capacity_; }

  ProfileSnapshot snapshot() const;

 private:
  friend class ScopedSpan;
  struct ThreadBuffer;

  /// The calling thread's buffer, attached on first use.
  ThreadBuffer* local_buffer();

  const std::uint64_t id_;  ///< process-unique (guards thread caches)
  const std::size_t capacity_;
  const std::uint64_t t0_ns_;  ///< steady-clock epoch of the profiler
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span handle. A null profiler makes construction and destruction
/// a single branch each — the instrumented stack passes the resolved
/// profiler pointer down and pays nothing when profiling is off.
class ScopedSpan {
 public:
  ScopedSpan(SpanProfiler* profiler, const char* label);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanProfiler::ThreadBuffer* buf_ = nullptr;
  const char* label_ = "";
  std::uint64_t t0_ns_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t parent_ = 0;
  std::uint32_t depth_ = 0;
};

/// Process-wide default profiler, mirroring obs::default_registry():
/// null (the default) disables every call site that falls back to it.
/// The caller keeps ownership and must keep the profiler alive until it
/// is uninstalled (benches install a function-local static).
void set_default_profiler(SpanProfiler* profiler);
SpanProfiler* default_profiler();

}  // namespace subscale::obs
