#pragma once

/// \file metrics.h
/// Low-overhead telemetry for the solver stack: a MetricsRegistry of
/// named counters, gauges and histograms (fixed bucket layouts).
///
/// Cost model — the reason this file exists instead of a logging call:
///   * instruments are plain atomics; add/set/record never allocate and
///     never take the registry lock;
///   * looking an instrument up by name takes the registry mutex once —
///     hot loops cache the returned reference (stable for the registry's
///     lifetime) and accumulate locally before publishing;
///   * when no registry is installed every instrumented call site is a
///     single null-pointer test (see the disabled-registry overhead test
///     in tests/test_obs.cpp).
///
/// Determinism contract: counter totals and histogram bucket tallies are
/// integer sums of per-event increments, so for work whose event count
/// is thread-count-invariant (Gummel iterations, retries, sweep points)
/// the snapshot values are bitwise identical at any thread count.
/// Histogram `sum` is a floating-point accumulation in completion order
/// and timing gauges measure the wall clock — those are diagnostic only.
///
/// This layer is dependency-free (std only): exec, linalg, io, tcad and
/// core all link against it without cycles.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace subscale::obs {

/// Monotonically increasing event count (atomic, wait-free).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written / maximum scalar (atomic via CAS; no fetch_add on
/// double so both ops are compare-exchange loops).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Keep the running maximum (used for e.g. peak queue depth).
  void set_max(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed histogram bucket layout: `bounds[i]` is the inclusive upper
/// edge of bucket i; one implicit overflow bucket catches the rest.
/// Layouts are compile-time constants so every registry (and every PR's
/// BENCH_*.json) buckets identically.
struct BucketLayout {
  const double* bounds = nullptr;
  std::size_t count = 0;
};

namespace buckets {
/// Wall-time buckets [ms]: ~2.5x steps from 100 us to 10 s.
inline constexpr double kLatencyMsBounds[] = {
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
inline constexpr BucketLayout kLatencyMs{kLatencyMsBounds, 16};

/// Iteration-count buckets (solver inner/outer loops).
inline constexpr double kIterationBounds[] = {
    1, 2, 3, 5, 8, 12, 20, 30, 50, 80, 120, 200, 500, 1000};
inline constexpr BucketLayout kIterations{kIterationBounds, 14};
}  // namespace buckets

/// Bucketed distribution with total count and sum.
class Histogram {
 public:
  explicit Histogram(const BucketLayout& layout);

  void record(double v);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const BucketLayout& layout() const { return layout_; }
  /// Tally of bucket i (i == layout().count is the overflow bucket).
  std::uint64_t bucket(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  BucketLayout layout_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< count+1 buckets
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered instrument, sorted by name.
struct MetricsSnapshot {
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    /// (upper bound, tally) per bucket; the overflow bucket reports
    /// an infinite bound.
    std::vector<std::pair<double, std::uint64_t>> buckets;

    /// Percentile estimate (p in [0, 100]) by linear interpolation
    /// inside the bucket holding the rank — the Prometheus
    /// histogram_quantile convention: the first bucket's lower edge is
    /// 0, and a rank landing in the overflow bucket clamps to the
    /// highest finite bound (there is no upper edge to interpolate
    /// toward). Returns 0.0 for an empty histogram; p is clamped to
    /// [0, 100].
    double percentile(double p) const;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramValue> histograms;

  /// Counter value by exact name (0 when absent) — test convenience.
  std::uint64_t counter(std::string_view name) const;
  /// Gauge value by exact name (0.0 when absent).
  double gauge(std::string_view name) const;
};

/// Named instruments with first-touch registration. Registration takes
/// a mutex; the returned references are stable until the registry dies,
/// so call sites look up once and hammer the atomic afterwards.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First touch fixes the layout; a later call with a different layout
  /// throws std::invalid_argument (renamed/re-bucketed metrics must be
  /// a deliberate schema change, not an accident).
  Histogram& histogram(std::string_view name, const BucketLayout& layout);

  MetricsSnapshot snapshot() const;
  /// Zero every instrument, keeping registrations (and thus the schema).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Process-wide default sink. Null (the default) disables every call
/// site that falls back to it — the "null registry" of the design docs.
/// The caller keeps ownership and must keep the registry alive until it
/// is uninstalled (benches install a function-local static).
void set_default_registry(MetricsRegistry* registry);
MetricsRegistry* default_registry();

}  // namespace subscale::obs
