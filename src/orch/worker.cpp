#include "orch/worker.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>

#include <signal.h>
#include <unistd.h>

#include "cache/lease.h"
#include "cache/solve_cache.h"
#include "exec/run_context.h"
#include "orch/unit_runner.h"

namespace subscale::orch {

namespace {

// The lease the SIGTERM handler must release. Plain char buffer +
// sig_atomic_t flag: the handler runs with only async-signal-safe calls
// (unlink, _exit), so no std::string may be touched from it.
constexpr std::size_t kLeaseBufSize = 4096;
char g_current_lease[kLeaseBufSize];
volatile std::sig_atomic_t g_lease_armed = 0;

extern "C" void worker_sigterm_handler(int /*signo*/) {
  if (g_lease_armed != 0) {
    ::unlink(g_current_lease);
    g_lease_armed = 0;
  }
  ::_exit(143);  // 128 + SIGTERM, the conventional code
}

void arm_lease_release(const std::string& path) {
  if (path.size() >= kLeaseBufSize) return;  // too long: fall back to timeout
  std::memcpy(g_current_lease, path.c_str(), path.size() + 1);
  g_lease_armed = 1;
}

void disarm_lease_release() { g_lease_armed = 0; }

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

[[noreturn]] void chaos_die(const ChaosPolicy& chaos) {
  // SIGKILL leaves every mess behind (lease, torn temps); SIGTERM runs
  // the graceful handler above. Both end the process here.
  ::raise(chaos.sigkill ? SIGKILL : SIGTERM);
  ::_exit(137);  // unreachable unless signals are blocked externally
}

/// Refreshes one lease on a fixed period until told to stop. A worker
/// wedged inside a long solve keeps its lease fresh through this thread;
/// a SIGKILLed worker takes the thread down with it, and the lease goes
/// stale — exactly the signal the orchestrator keys reassignment on.
class Heartbeat {
 public:
  Heartbeat(std::string path, std::string owner, double period_seconds)
      : path_(std::move(path)), owner_(std::move(owner)) {
    const auto period = std::chrono::duration<double>(
        period_seconds > 0 ? period_seconds : 0.2);
    thread_ = std::thread([this, period] {
      std::unique_lock<std::mutex> lock(mu_);
      std::uint64_t beats = 0;
      while (!stop_) {
        cv_.wait_for(lock, period);
        if (stop_) break;
        cache::lease_heartbeat(path_, owner_, ++beats);
      }
    });
  }

  ~Heartbeat() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::string path_;
  std::string owner_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

std::size_t chaos_kill_phase(const ChaosPolicy& chaos,
                             std::size_t unit_index) {
  return static_cast<std::size_t>(
      splitmix64(chaos.seed ^ (0x51ed270bull + unit_index)) % 3);
}

void WorkerOptions::validate() const {
  const auto fail = [](const char* msg) {
    throw std::invalid_argument(std::string("WorkerOptions: ") + msg);
  };
  if (study_dir.empty()) fail("study_dir must not be empty");
  if (cache_dir.empty()) fail("cache_dir must not be empty");
  if (!(heartbeat_seconds > 0)) fail("heartbeat_seconds must be > 0");
}

int worker_main(const Manifest& manifest, const WorkerOptions& options) {
  try {
    options.validate();
    manifest.spec.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "subscale_worker: %s\n", e.what());
    return 2;
  }
  const std::string owner =
      options.worker_id.empty()
          ? "pid-" + std::to_string(static_cast<long>(::getpid()))
          : options.worker_id;

  std::signal(SIGTERM, worker_sigterm_handler);
  std::signal(SIGINT, worker_sigterm_handler);

  // Workers disable warm starts (bitwise contract, see header) and run
  // the solver serially — parallelism comes from the process fan-out.
  cache::CacheOptions cache_options;
  cache_options.dir = options.cache_dir;
  cache_options.warm_start = false;
  cache::SolveCache cache(cache_options);

  exec::RunContext ctx;
  ctx.exec = exec::ExecPolicy::serial();
  ctx.cache = &cache;

  const core::ScalingStudy study(compact::paper_calibration(),
                                 study_options_for(manifest.spec));
  std::size_t claimed = 0;

  // Scan until a full pass claims nothing: then every unit is either
  // published, poisoned, or leased to a live peer — this worker is done
  // either way (the orchestrator respawns workers if leases go stale).
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const WorkUnit& unit : manifest.units) {
      UnitResult existing;
      if (load_unit_result(cache, unit, existing)) continue;
      if (unit_poisoned(options.study_dir, unit.index)) continue;
      const std::string lease = lease_path(options.study_dir, unit.index);
      if (!cache::lease_try_acquire(lease, owner)) continue;

      progressed = true;
      ++claimed;
      arm_lease_release(lease);
      const bool chaos_here = options.chaos.armed() &&
                              claimed == options.chaos.kill_after_units;
      const std::size_t kill_phase =
          chaos_here ? chaos_kill_phase(options.chaos, unit.index) : 3;
      if (kill_phase == 0) chaos_die(options.chaos);

      {
        Heartbeat heartbeat(lease, owner, options.heartbeat_seconds);
        const UnitResult result = solve_unit(
            study, manifest.spec, unit, ctx, [&](UnitPhase phase) {
              if (phase == UnitPhase::kAfterEquilibrium && kill_phase == 1) {
                chaos_die(options.chaos);
              }
              if (phase == UnitPhase::kAfterSolve && kill_phase == 2) {
                chaos_die(options.chaos);
              }
            });
        publish_unit_result(cache, unit, result);
      }
      disarm_lease_release();
      cache::lease_release(lease);
    }
  }
  return 0;
}

int worker_main(const WorkerOptions& options) {
  Manifest manifest;
  std::string error;
  if (!load_manifest(options.manifest_path, manifest, &error)) {
    std::fprintf(stderr, "subscale_worker: %s\n", error.c_str());
    return 2;
  }
  return worker_main(manifest, options);
}

}  // namespace subscale::orch
