#include "orch/orchestrator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "cache/lease.h"
#include "cache/solve_cache.h"
#include "obs/names.h"

namespace subscale::orch {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Orchestrator-side view of one manifest unit's lifecycle.
struct UnitTrack {
  bool done = false;
  bool resumed = false;
  bool poisoned = false;
  std::size_t retries = 0;
  bool release_pending = false;  ///< stale lease awaiting backoff expiry
  Clock::time_point release_at{};
  UnitResult result;
};

struct WorkerProc {
  pid_t pid = -1;
  std::size_t index = 0;  ///< spawn slot (worker id derives from it)
};

/// orch.* counter handles, resolved once (Instruments pattern).
struct OrchCounters {
  obs::Counter* total = nullptr;
  obs::Counter* claimed = nullptr;
  obs::Counter* completed = nullptr;
  obs::Counter* reassigned = nullptr;
  obs::Counter* poisoned = nullptr;
  obs::Counter* restarts = nullptr;

  explicit OrchCounters(obs::MetricsRegistry* sink) {
    if (sink == nullptr) return;
    namespace names = obs::names;
    total = &sink->counter(names::kOrchUnitsTotal);
    claimed = &sink->counter(names::kOrchClaimed);
    completed = &sink->counter(names::kOrchCompleted);
    reassigned = &sink->counter(names::kOrchReassigned);
    poisoned = &sink->counter(names::kOrchPoisoned);
    restarts = &sink->counter(names::kOrchWorkerRestarts);
  }
  static void bump(obs::Counter* c, std::uint64_t n = 1) {
    if (c != nullptr && n > 0) c->add(n);
  }
};

pid_t spawn_worker(const Manifest& manifest, const OrchOptions& options,
                   const std::string& worker_id, const ChaosPolicy& chaos) {
  WorkerOptions wopts;
  wopts.manifest_path = options.study_dir + "/manifest.json";
  wopts.study_dir = options.study_dir;
  wopts.cache_dir = options.cache_dir;
  wopts.worker_id = worker_id;
  wopts.chaos = chaos;
  wopts.heartbeat_seconds = options.heartbeat_seconds;

  // Buffered stdio crossing a fork duplicates into both processes.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;  // parent (or -1 on failure)

  if (options.worker_exe.empty()) {
    // Hermetic mode: the child IS the worker; never return into the
    // parent's stack.
    ::_exit(worker_main(manifest, wopts));
  }
  std::vector<std::string> args = {
      options.worker_exe, "--manifest", wopts.manifest_path,
      "--study-dir", wopts.study_dir, "--cache-dir", wopts.cache_dir,
      "--worker-id", wopts.worker_id,
      "--heartbeat", std::to_string(wopts.heartbeat_seconds)};
  if (chaos.armed()) {
    args.push_back("--chaos-kill-after");
    args.push_back(std::to_string(chaos.kill_after_units));
    args.push_back("--chaos-seed");
    args.push_back(std::to_string(chaos.seed));
    if (!chaos.sigkill) args.push_back("--chaos-sigterm");
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  ::_exit(127);  // exec failed
}

}  // namespace

void OrchOptions::validate() const {
  const auto fail = [](const char* msg) {
    throw std::invalid_argument(std::string("OrchOptions: ") + msg);
  };
  if (workers > 256) fail("workers must be <= 256");
  if (cache_dir.empty()) fail("cache_dir must not be empty");
  if (workers > 0 && study_dir.empty()) {
    fail("study_dir must not be empty when workers > 0");
  }
  if (!(heartbeat_seconds > 0)) fail("heartbeat_seconds must be > 0");
  if (!(lease_timeout_seconds > heartbeat_seconds)) {
    fail("lease_timeout_seconds must exceed heartbeat_seconds");
  }
  if (!(poll_seconds > 0)) fail("poll_seconds must be > 0");
  if (!(backoff_seconds >= 0)) fail("backoff_seconds must be >= 0");
  if (!(deadline_seconds > 0)) fail("deadline_seconds must be > 0");
}

bool StudyResult::complete() const {
  for (const UnitOutcome& o : outcomes) {
    if (!o.completed) return false;
  }
  return outcomes.size() == manifest.units.size();
}

std::string StudyResult::json() const {
  std::vector<const UnitResult*> results;
  results.reserve(outcomes.size());
  for (const UnitOutcome& o : outcomes) {
    results.push_back(o.completed ? &o.result : nullptr);
  }
  return study_result_json(manifest, results);
}

StudyResult run_study(const Manifest& manifest, const OrchOptions& options) {
  options.validate();
  manifest.spec.validate();

  OrchCounters counters(options.run.sink());
  const std::size_t n = manifest.units.size();
  OrchCounters::bump(counters.total, n);

  // The shared store every process publishes into. Warm starts stay off
  // (bitwise contract); torn temps from a previously killed run are
  // swept before anything reads the store.
  cache::CacheOptions cache_options;
  cache_options.dir = options.cache_dir;
  cache_options.warm_start = false;
  cache_options.metrics = options.run.metrics;
  cache::SolveCache cache(cache_options);
  cache.sweep_stale_temps(options.lease_timeout_seconds);

  StudyResult out;
  out.manifest = manifest;
  out.report.units_total = n;
  std::vector<UnitTrack> track(n);

  // ---- resume scan: published results ARE the checkpoint ------------------
  std::size_t remaining = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (load_unit_result(cache, manifest.units[i], track[i].result)) {
      track[i].done = true;
      track[i].resumed = true;
      ++out.report.resumed;
      ++out.report.completed;
      OrchCounters::bump(counters.completed);
    } else if (!options.study_dir.empty() &&
               unit_poisoned(options.study_dir, manifest.units[i].index)) {
      // Poison markers persist across reruns: a unit a previous run gave
      // up on is not silently retried (clear the marker to force one).
      track[i].poisoned = true;
      ++out.report.poisoned;
      OrchCounters::bump(counters.poisoned);
    } else {
      ++remaining;
    }
  }

  if (remaining > 0 && options.workers == 0) {
    // ---- serial reference mode ---------------------------------------------
    const core::ScalingStudy study(compact::paper_calibration(),
                                   study_options_for(manifest.spec));
    exec::RunContext ctx = options.run;
    ctx.exec = exec::ExecPolicy::serial();
    ctx.cache = &cache;
    for (std::size_t i = 0; i < n; ++i) {
      if (track[i].done || track[i].poisoned) continue;
      OrchCounters::bump(counters.claimed);
      ++out.report.claimed;
      track[i].result =
          solve_unit(study, manifest.spec, manifest.units[i], ctx);
      publish_unit_result(cache, manifest.units[i], track[i].result);
      track[i].done = true;
      ++out.report.completed;
      OrchCounters::bump(counters.completed);
    }
    remaining = 0;
  }

  if (remaining > 0) {
    // ---- multi-process mode --------------------------------------------------
    if (!save_manifest(options.study_dir + "/manifest.json", manifest)) {
      throw std::runtime_error("run_study: cannot write " +
                               options.study_dir + "/manifest.json");
    }
    const Clock::time_point start = Clock::now();
    std::vector<WorkerProc> workers;
    std::size_t spawned = 0;
    const auto spawn = [&](const ChaosPolicy& chaos) {
      const std::size_t slot = spawned++;
      const pid_t pid = spawn_worker(
          manifest, options, "w" + std::to_string(slot), chaos);
      if (pid > 0) workers.push_back({pid, slot});
      return pid > 0;
    };
    const std::size_t initial =
        std::min(options.workers, std::max<std::size_t>(remaining, 1));
    for (std::size_t i = 0; i < initial; ++i) spawn(options.chaos);

    const ChaosPolicy respawn_chaos =
        options.rearm_chaos ? options.chaos : ChaosPolicy{};

    while (true) {
      // Reap dead workers (chaos victims and clean exits alike).
      for (std::size_t w = 0; w < workers.size();) {
        int status = 0;
        const pid_t r = ::waitpid(workers[w].pid, &status, WNOHANG);
        if (r == workers[w].pid) {
          workers.erase(workers.begin() + static_cast<long>(w));
        } else {
          ++w;
        }
      }

      // Scan units: published? poisoned by a worker? stale lease?
      std::size_t claimable = 0;
      remaining = 0;
      for (std::size_t i = 0; i < n; ++i) {
        UnitTrack& t = track[i];
        if (t.done || t.poisoned) continue;
        const std::size_t index = manifest.units[i].index;
        if (load_unit_result(cache, manifest.units[i], t.result)) {
          t.done = true;
          ++out.report.completed;
          OrchCounters::bump(counters.completed);
          OrchCounters::bump(counters.claimed);
          ++out.report.claimed;
          cache::lease_release(lease_path(options.study_dir, index));
          continue;
        }
        if (unit_poisoned(options.study_dir, index)) {
          t.poisoned = true;
          ++out.report.poisoned;
          OrchCounters::bump(counters.poisoned);
          continue;
        }
        ++remaining;

        const std::string lease = lease_path(options.study_dir, index);
        if (t.release_pending) {
          if (Clock::now() >= t.release_at) {
            cache::lease_release(lease);
            t.release_pending = false;
            ++claimable;
          }
          continue;
        }
        const cache::LeaseInfo info = cache::lease_inspect(lease);
        if (!info.exists) {
          ++claimable;
          continue;
        }
        if (info.age_seconds <= options.lease_timeout_seconds) continue;
        // Dead owner. Reassign with exponential backoff, or poison once
        // the retry budget is spent.
        ++t.retries;
        ++out.report.reassigned;
        OrchCounters::bump(counters.reassigned);
        if (t.retries > options.retry_budget) {
          poison_unit(options.study_dir, index,
                      "retry budget exhausted after " +
                          std::to_string(t.retries - 1) + " reassignments");
          cache::lease_release(lease);
          t.poisoned = true;
          ++out.report.poisoned;
          OrchCounters::bump(counters.poisoned);
          --remaining;
          continue;
        }
        double backoff = options.backoff_seconds;
        for (std::size_t k = 1; k < t.retries; ++k) backoff *= 2.0;
        t.release_pending = true;
        t.release_at =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(backoff));
      }

      if (remaining == 0) break;

      if (seconds_since(start) > options.deadline_seconds) {
        out.report.deadline_hit = true;
        for (std::size_t i = 0; i < n; ++i) {
          if (track[i].done || track[i].poisoned) continue;
          poison_unit(options.study_dir, manifest.units[i].index,
                      "deadline");
          track[i].poisoned = true;
          ++out.report.poisoned;
          OrchCounters::bump(counters.poisoned);
        }
        break;
      }

      // Keep the fleet at strength while claimable work exists. Workers
      // exit when a scan claims nothing, so respawn is gated on an
      // actually-claimable unit to avoid fork churn against units still
      // serving their backoff.
      while (claimable > 0 && workers.size() < options.workers &&
             workers.size() < remaining) {
        if (!spawn(spawned < options.workers ? options.chaos
                                             : respawn_chaos)) {
          break;
        }
        if (spawned > options.workers) {
          ++out.report.worker_restarts;
          OrchCounters::bump(counters.restarts);
        }
        --claimable;
      }

      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.poll_seconds));
    }

    // Drain the fleet: ask nicely (workers release leases on SIGTERM),
    // then reap.
    for (const WorkerProc& w : workers) ::kill(w.pid, SIGTERM);
    for (const WorkerProc& w : workers) {
      int status = 0;
      ::waitpid(w.pid, &status, 0);
    }
  }

  out.outcomes.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    UnitOutcome& o = out.outcomes[i];
    o.unit = manifest.units[i].index;
    o.completed = track[i].done;
    o.resumed = track[i].resumed;
    o.poisoned = track[i].poisoned;
    o.reassignments = track[i].retries;
    if (track[i].done) o.result = std::move(track[i].result);
  }
  return out;
}

bool write_study_result(const std::string& path, const StudyResult& result) {
  const std::string text = result.json();
  return cache::atomic_write_file(path, text.data(), text.size());
}

}  // namespace subscale::orch
