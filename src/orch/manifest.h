#pragma once

/// \file manifest.h
/// Study manifests: the shard plan of a multi-process study run. A
/// manifest names every work unit of a study's (strategy × node × V_d)
/// grid together with the content-addressed key its result publishes
/// under, so any process — a worker claiming units, an orchestrator
/// polling for completion, a resumed run months later — can agree on
/// what the study is and what is already done by looking only at the
/// manifest and the shared cache directory.
///
/// Unit identity is *content*, not position: a unit's result key chains
/// from the existing cache key schemas (cache/tcad_keys.h
/// device_solve_key → sweep_key) plus the strategy/node provenance, so
/// two manifests that pose the same physical problem share results,
/// and any change to device, mesh, solver options or bias grid moves
/// every affected unit to a fresh key. Resume falls out: a rerun loads
/// the manifest, looks up each unit's key, and solves only the misses.
///
/// The manifest file is JSON (written via io::JsonWriter, read via
/// io/json_parse.h) and is itself published by atomic rename, so a
/// crashed manifest build leaves no torn file behind.

#include <cstdint>
#include <string>
#include <vector>

#include "cache/hash.h"
#include "compact/calibration.h"
#include "core/scaling_study.h"
#include "tcad/device_structure.h"
#include "tcad/gummel.h"

namespace subscale::orch {

/// Bump when the manifest JSON layout or the unit-key derivation
/// changes meaning; a loader rejects unknown versions.
/// v2: the spec carries a technology-card id.
inline constexpr std::uint64_t kManifestVersion = 2;

/// Key-schema version folded into every unit result key (mirrors
/// cache::kTcadKeySchema's role: bump = old records stop being asked
/// for).
/// v2: the card id joins the provenance fields.
inline constexpr std::uint64_t kOrchKeySchema = 2;

/// Canonical strategy names now live in core (shared with the serve
/// wire schema); these using-declarations keep the orch-layer spelling
/// working for existing callers.
using core::parse_strategy;
using core::strategy_name;

/// The study grid a manifest shards: which devices, which sweeps.
/// Mesh/solver options ride along so every process solves the same
/// discretized problem (GummelOptions::fault is deliberately not
/// serialized — process-level chaos replaces in-process faults here).
struct StudySpec {
  /// Technology card id (builtin) or card-file path; resolved through
  /// cards::resolve_card when the study is built, and part of every
  /// unit's result key — the same grid on two decks never shares
  /// records.
  std::string card = "paper_bulk_lstp";
  std::vector<core::Strategy> strategies{core::Strategy::kSuperVth};
  std::vector<std::size_t> nodes;  ///< indices into the card's nodes; empty = all
  std::vector<double> vds{0.25};   ///< drain biases, one sweep per entry
  double vg_start = 0.0;
  double vg_stop = 0.45;
  std::size_t points = 10;
  tcad::MeshOptions mesh;
  tcad::GummelOptions gummel;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// One shardable work unit: a full id_vg sweep of one designed node at
/// one drain bias.
struct WorkUnit {
  std::size_t index = 0;  ///< position in the manifest (display/lease id)
  core::Strategy strategy = core::Strategy::kSuperVth;
  std::size_t node = 0;   ///< index into the card's node list
  double vd = 0.25;
  cache::HashKey result_key{};  ///< where the UnitResult publishes
};

struct Manifest {
  std::uint64_t version = kManifestVersion;
  StudySpec spec;
  std::vector<WorkUnit> units;
};

/// The content address a unit's result publishes under: chained from
/// the sweep key of the designed device (so it inherits every schema
/// rule of cache/tcad_keys.h) plus the strategy/node provenance that
/// the merged study output reports.
cache::HashKey unit_result_key(const compact::DeviceSpec& spec,
                               const tcad::MeshOptions& mesh,
                               const tcad::GummelOptions& gummel,
                               const std::string& card,
                               core::Strategy strategy, std::size_t node,
                               double vd, double vg_start, double vg_stop,
                               std::size_t points);

/// Study options matching the spec: the spec's card resolved through
/// cards::resolve_card (throws on an unknown id/path). Every process of
/// a run builds its study through this so they agree on the deck.
core::StudyOptions study_options_for(const StudySpec& spec);

/// Expand the spec's grid into units, designing the devices (through
/// `study`, so the design cache is honored) to derive each result key.
/// The study must have been built on the spec's card (see
/// study_options_for). Node indices out of range throw
/// std::out_of_range.
Manifest build_manifest(const StudySpec& spec,
                        const core::ScalingStudy& study);

/// Convenience: build with a spec-matched study on the paper
/// calibration.
Manifest build_manifest(const StudySpec& spec);

/// JSON round-trip. save_manifest publishes by atomic rename and
/// returns false on I/O failure; load_manifest returns false on a
/// missing/malformed/version-bumped file with the reason in `error`.
std::string manifest_to_json(const Manifest& manifest);
bool save_manifest(const std::string& path, const Manifest& manifest);
bool load_manifest(const std::string& path, Manifest& out,
                   std::string* error = nullptr);

// ---- study directory layout -------------------------------------------------
// The study directory holds the coordination state that is NOT content
// addressed: lease files (one per in-flight unit) and poison markers
// (units abandoned after the retry budget). Results never live here —
// they go through the solve cache.

std::string lease_path(const std::string& study_dir, std::size_t unit);
std::string poison_path(const std::string& study_dir, std::size_t unit);
bool unit_poisoned(const std::string& study_dir, std::size_t unit);
/// Write the poison marker (atomic; idempotent). `reason` is stored for
/// the post-mortem. Returns false on I/O failure.
bool poison_unit(const std::string& study_dir, std::size_t unit,
                 const std::string& reason);
/// The stored poison reason, or empty.
std::string poison_reason(const std::string& study_dir, std::size_t unit);

}  // namespace subscale::orch
