#pragma once

/// \file worker.h
/// The worker side of a multi-process study: scan the manifest, claim
/// unsolved units via lease files, solve each through the normal
/// RunContext + SolveCache path, publish into the shared store, release
/// the lease, repeat until a full scan finds nothing claimable.
///
/// Crash stance (FDB-style): a worker may die at ANY instruction —
/// that is the chaos tier's whole premise — so nothing a worker does is
/// load-bearing for correctness. A death after claim leaves a lease
/// that goes stale (the orchestrator reaps it); a death mid-publish
/// leaves a torn temp file (swept and counted as a miss); a death
/// after publish just wastes the lease. The one graceful path, SIGTERM,
/// releases the in-flight lease from an async-signal-safe handler so an
/// orchestrator shutdown does not cost a lease timeout.
///
/// Workers run the solver single-threaded and construct their cache
/// with warm starts disabled: the bias warm start is the library's one
/// within-tolerance (not bitwise) accelerator, and the orchestrator's
/// contract is that a merged multi-process study equals the serial
/// reference bit for bit.

#include <cstdint>
#include <string>

#include "orch/manifest.h"

namespace subscale::orch {

/// Deterministic self-destruction for the chaos tier. An armed worker
/// kills itself mid-unit while working on its kill_after_units-th
/// claimed unit; `seed` (hashed with the unit index) picks which of the
/// three in-unit phases the death lands on, so one knob sweeps claim /
/// post-equilibrium / solved-but-unpublished crash sites reproducibly.
struct ChaosPolicy {
  std::size_t kill_after_units = 0;  ///< 0 = chaos off
  bool sigkill = true;  ///< false: SIGTERM instead (graceful-release path)
  std::uint64_t seed = 0;

  bool armed() const { return kill_after_units > 0; }
};

/// The in-unit crash site chaos picked: 0 = immediately after the
/// claim, 1 = after equilibrium, 2 = solved but not yet published.
/// Exposed so tests can assert which site a given seed exercises.
std::size_t chaos_kill_phase(const ChaosPolicy& chaos, std::size_t unit_index);

struct WorkerOptions {
  std::string manifest_path;  ///< used by the path-based entry point
  std::string study_dir;      ///< lease/poison coordination directory
  std::string cache_dir;      ///< shared content-addressed result store
  std::string worker_id;      ///< lease owner tag; empty = "pid-<pid>"
  ChaosPolicy chaos;
  double heartbeat_seconds = 0.2;  ///< lease refresh period while solving

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Run the claim/solve/publish loop over `manifest` until nothing is
/// claimable (every unit is published, poisoned, or leased by someone
/// else). Returns a process exit code: 0 on a clean drain, 2 on setup
/// failure (bad options / unusable cache dir).
int worker_main(const Manifest& manifest, const WorkerOptions& options);

/// CLI entry: load WorkerOptions::manifest_path, then run. Exit 2 when
/// the manifest does not load.
int worker_main(const WorkerOptions& options);

}  // namespace subscale::orch
