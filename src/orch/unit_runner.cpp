#include "orch/unit_runner.h"

#include <utility>

#include "cache/bytes.h"
#include "cache/solve_cache.h"
#include "io/writer.h"
#include "obs/names.h"
#include "tcad/solver_status.h"

namespace subscale::orch {

std::vector<std::uint8_t> encode_unit_result(const UnitResult& result) {
  cache::ByteWriter w;
  w.u32(kUnitResultVersion);
  w.u64(result.node);
  w.f64(result.lpoly_nm);
  w.str(result.error);
  w.u64(result.attempted);
  w.u64(result.points.size());
  for (const tcad::IdVgPoint& p : result.points) {
    w.f64(p.vg);
    w.f64(p.id);
  }
  w.u64(result.failures.size());
  for (const UnitFailure& f : result.failures) {
    w.f64(f.vg);
    w.f64(f.vd);
    w.str(f.stage);
    w.str(f.status);
  }
  return w.bytes();
}

bool decode_unit_result(const std::vector<std::uint8_t>& bytes,
                        UnitResult& out) {
  cache::ByteReader r(bytes);
  std::uint32_t version = 0;
  if (!r.u32(version) || version != kUnitResultVersion) return false;
  out = UnitResult{};
  std::uint64_t node = 0;
  std::uint64_t attempted = 0;
  if (!r.u64(node) || !r.f64(out.lpoly_nm) || !r.str(out.error) ||
      !r.u64(attempted)) {
    return false;
  }
  out.node = static_cast<std::size_t>(node);
  out.attempted = static_cast<std::size_t>(attempted);
  std::uint64_t count = 0;
  if (!r.u64(count) || count > bytes.size()) return false;
  out.points.resize(static_cast<std::size_t>(count));
  for (tcad::IdVgPoint& p : out.points) {
    if (!r.f64(p.vg) || !r.f64(p.id)) return false;
  }
  if (!r.u64(count) || count > bytes.size()) return false;
  out.failures.resize(static_cast<std::size_t>(count));
  for (UnitFailure& f : out.failures) {
    if (!r.f64(f.vg) || !r.f64(f.vd) || !r.str(f.stage) ||
        !r.str(f.status)) {
      return false;
    }
  }
  return r.exhausted();
}

UnitResult solve_unit(const core::ScalingStudy& study, const StudySpec& spec,
                      const WorkUnit& unit, const exec::RunContext& ctx,
                      const UnitPhaseHook& hook) {
  obs::SpanProfiler* prof = ctx.span_sink();
  const obs::ScopedSpan unit_span(prof, obs::names::spans::kOrchUnit);

  const compact::DeviceSpec& device_spec =
      unit.strategy == core::Strategy::kSubVth
          ? study.sub_devices()[unit.node].device.spec
          : study.super_devices()[unit.node].spec;

  UnitResult result;
  result.node = unit.node;
  result.lpoly_nm = device_spec.geometry.lpoly * 1e9;
  try {
    tcad::TcadDevice device(device_spec, spec.mesh, spec.gummel, ctx);
    if (hook) hook(UnitPhase::kAfterEquilibrium);
    tcad::SweepResult swept = device.id_vg(unit.vd, spec.vg_start,
                                           spec.vg_stop, spec.points);
    result.points = std::move(swept.points);
    result.attempted = swept.report.attempted;
    for (const tcad::FailedPoint& f : swept.report.failures) {
      UnitFailure reduced;
      reduced.vg = f.vg;
      reduced.vd = f.vd;
      reduced.stage = tcad::to_string(f.report.failed_stage);
      reduced.status = tcad::to_string(f.report.status);
      result.failures.push_back(std::move(reduced));
    }
  } catch (const std::exception& e) {
    // A node that cannot mesh or reach equilibrium is a *result* (the
    // serial study records it the same way), not a worker death.
    result.error = e.what();
  }
  if (hook) hook(UnitPhase::kAfterSolve);
  return result;
}

bool publish_unit_result(cache::SolveCache& cache, const WorkUnit& unit,
                         const UnitResult& result) {
  const std::uint64_t before = cache.stats().stores;
  cache.store(unit.result_key, cache::PayloadKind::kUnit,
              encode_unit_result(result));
  // store() is void (in-memory success is unconditional); for a
  // persistent cache, confirm the record actually landed on disk —
  // that is the publish the orchestrator polls for.
  if (!cache.persistent()) return cache.stats().stores > before;
  UnitResult check;
  return load_unit_result(cache, unit, check);
}

bool load_unit_result(cache::SolveCache& cache, const WorkUnit& unit,
                      UnitResult& out) {
  const std::shared_ptr<const cache::Payload> payload =
      cache.lookup(unit.result_key, cache::PayloadKind::kUnit);
  if (payload == nullptr) return false;
  return decode_unit_result(payload->bytes, out);
}

std::string study_result_json(const Manifest& manifest,
                              const std::vector<const UnitResult*>& results) {
  io::JsonWriter w;
  w.begin_object();
  w.key("manifest_version");
  w.value(static_cast<std::uint64_t>(manifest.version));
  w.key("units");
  w.begin_array();
  for (std::size_t i = 0; i < manifest.units.size(); ++i) {
    const WorkUnit& unit = manifest.units[i];
    const UnitResult* result = i < results.size() ? results[i] : nullptr;
    w.begin_object();
    w.key("index");
    w.value(static_cast<std::uint64_t>(unit.index));
    w.key("strategy");
    w.value(strategy_name(unit.strategy));
    w.key("node");
    w.value(static_cast<std::uint64_t>(unit.node));
    w.key("vd");
    w.value(unit.vd);
    w.key("result_key");
    w.value(unit.result_key.hex());
    if (result == nullptr) {
      w.key("poisoned");
      w.value(true);
    } else {
      w.key("lpoly_nm");
      w.value(result->lpoly_nm);
      if (!result->error.empty()) {
        w.key("error");
        w.value(result->error);
      }
      w.key("attempted");
      w.value(static_cast<std::uint64_t>(result->attempted));
      w.key("vg");
      w.begin_array();
      for (const tcad::IdVgPoint& p : result->points) w.value(p.vg);
      w.end_array();
      w.key("id");
      w.begin_array();
      for (const tcad::IdVgPoint& p : result->points) w.value(p.id);
      w.end_array();
      w.key("failures");
      w.begin_array();
      for (const UnitFailure& f : result->failures) {
        w.begin_object();
        w.key("vg");
        w.value(f.vg);
        w.key("vd");
        w.value(f.vd);
        w.key("stage");
        w.value(f.stage);
        w.key("status");
        w.value(f.status);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace subscale::orch
