#pragma once

/// \file unit_runner.h
/// Solving and publishing one manifest work unit. Shared by the worker
/// processes and by the orchestrator's serial (workers == 0) mode, so
/// the multi-process path and the single-process reference run execute
/// literally the same code per unit.
///
/// Determinism contract: a UnitResult holds only the solver's exact
/// outputs — the converged curve, the attempted count, and the failure
/// digest — never wall-clock timings, hostnames or pids. Combined with
/// workers disabling bias warm-starts (CacheOptions::warm_start = false,
/// the one within-tolerance-only accelerator), this is what makes a
/// chaos-interrupted multi-process study merge bitwise-identical to an
/// uninterrupted serial run: every unit's bytes depend only on its key.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/run_context.h"
#include "orch/manifest.h"
#include "tcad/device_sim.h"

namespace subscale::orch {

/// Bump when the UnitResult byte layout changes; decode rejects other
/// versions (the record then reads as a miss and is re-solved).
inline constexpr std::uint32_t kUnitResultVersion = 1;

/// One sweep point the solver gave up on, reduced to the deterministic
/// facts (stage/status names, not the full retry history).
struct UnitFailure {
  double vg = 0.0;
  double vd = 0.0;
  std::string stage;   ///< tcad::to_string(SolveStage)
  std::string status;  ///< tcad::to_string(SolveStatus)
};

/// The published outcome of one work unit.
struct UnitResult {
  std::size_t node = 0;
  double lpoly_nm = 0.0;  ///< designed gate length of the node
  std::string error;      ///< non-empty: device never reached equilibrium
  std::vector<tcad::IdVgPoint> points;  ///< converged sweep points
  std::size_t attempted = 0;            ///< points the sweep tried
  std::vector<UnitFailure> failures;

  bool usable() const { return error.empty() && points.size() >= 2; }
};

/// Byte codec (cache::ByteWriter layout, versioned). decode returns
/// false on truncation/version mismatch and leaves `out` unspecified.
std::vector<std::uint8_t> encode_unit_result(const UnitResult& result);
bool decode_unit_result(const std::vector<std::uint8_t>& bytes,
                        UnitResult& out);

/// Chaos hook points inside one unit solve (worker.h's ChaosPolicy picks
/// one per kill); also usable by tests to observe progress.
enum class UnitPhase {
  kAfterEquilibrium,  ///< device built, equilibrium published
  kAfterSolve,        ///< sweep done, result NOT yet published
};
using UnitPhaseHook = std::function<void(UnitPhase)>;

/// Solve `unit` through the normal TcadDevice path under `ctx` (which
/// carries the solve cache the equilibrium/sweep records publish to).
/// Designs the device through `study`, wraps the work in an orch.unit
/// span, and reports solver failures in-band (UnitResult::error) rather
/// than throwing — a worker must outlive a hard node. `hook` (optional)
/// fires at the UnitPhase points.
UnitResult solve_unit(const core::ScalingStudy& study, const StudySpec& spec,
                      const WorkUnit& unit, const exec::RunContext& ctx,
                      const UnitPhaseHook& hook = {});

/// Publish `result` into `cache` under the unit's result key. Returns
/// false when the cache rejects the disk write (the unit then stays
/// unclaimed for another attempt).
bool publish_unit_result(cache::SolveCache& cache, const WorkUnit& unit,
                         const UnitResult& result);

/// Look the unit up in `cache`; true + `out` on a decodable record.
bool load_unit_result(cache::SolveCache& cache, const WorkUnit& unit,
                      UnitResult& out);

/// Render the merged study output — every unit in manifest order with
/// its result (or its poisoned marker) — as canonical JSON. Two merges
/// over identical unit results produce identical bytes, which is the
/// artifact the chaos tier diffs against the serial reference.
/// `results[i]` pairs with `manifest.units[i]`; a null entry means the
/// unit was poisoned/skipped.
std::string study_result_json(const Manifest& manifest,
                              const std::vector<const UnitResult*>& results);

}  // namespace subscale::orch
