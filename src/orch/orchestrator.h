#pragma once

/// \file orchestrator.h
/// The coordinator of a multi-process study run (ISSUE 6 tentpole):
/// shard the study grid into manifest units, fork N workers that claim
/// units via lease files, poll the shared content-addressed store for
/// published results, and merge them in manifest order.
///
/// Failure policy — everything reduces to the lease heartbeat:
///   * a worker that dies mid-unit stops refreshing its lease; once the
///     lease's mtime age exceeds lease_timeout_seconds the orchestrator
///     counts a reassignment (orch.reassigned) and releases the lease
///     after an exponential backoff (backoff_seconds * 2^(n-1)), so a
///     crash-looping unit is retried at a decelerating rate;
///   * a unit that exhausts retry_budget reassignments is poisoned —
///     a marker file records the reason, orch.poisoned counts it, and
///     the merged output carries the unit as "poisoned" instead of
///     wedging the study;
///   * a dead worker process is reaped and, while claimable work
///     remains, respawned with chaos disarmed (orch.worker_restarts) so
///     a chaos run is guaranteed to terminate.
///
/// Checkpoint/resume needs no checkpoint file: results ARE the
/// checkpoint. A rerun scans the manifest against the cache, counts
/// each hit as completed (orch.completed), and spawns workers only for
/// the remainder; a fully-published study spawns nothing and
/// orch.claimed stays 0 — the property the resume smoke test asserts.
///
/// workers == 0 runs every remaining unit serially in-process through
/// the identical solve_unit path: the bitwise reference the chaos tier
/// diffs multi-process merges against.

#include <cstdint>
#include <string>
#include <vector>

#include "exec/run_context.h"
#include "orch/manifest.h"
#include "orch/unit_runner.h"
#include "orch/worker.h"

namespace subscale::orch {

struct OrchOptions {
  /// Worker process count; 0 = solve serially in this process (no
  /// forks, no leases — the reference path).
  std::size_t workers = 0;
  std::string study_dir;  ///< lease/poison/manifest coordination state
  std::string cache_dir;  ///< shared content-addressed result store
  double heartbeat_seconds = 0.2;     ///< workers refresh leases this often
  double lease_timeout_seconds = 2.0; ///< older leases count as dead owners
  double poll_seconds = 0.05;         ///< orchestrator scan period
  double backoff_seconds = 0.1;       ///< base reassignment delay (doubles)
  std::size_t retry_budget = 3;       ///< reassignments before poisoning
  double deadline_seconds = 600.0;    ///< hard stop for a wedged study
  ChaosPolicy chaos;        ///< armed into initially spawned workers
  bool rearm_chaos = false; ///< also arm respawned workers (tests only:
                            ///< with kill_after_units > 0 this can loop
                            ///< until units poison)
  /// Path to a subscale_worker binary to exec; empty forks this process
  /// and calls worker_main in the child (hermetic, no binary needed).
  std::string worker_exe;
  exec::RunContext run{};  ///< orchestrator-side telemetry (orch.* counters)

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// What happened to one manifest unit.
struct UnitOutcome {
  std::size_t unit = 0;
  bool completed = false;
  bool resumed = false;  ///< already published before this run started
  bool poisoned = false;
  std::size_t reassignments = 0;
  UnitResult result;  ///< valid when completed
};

/// Aggregate counters of one run_study call (mirrors the orch.*
/// metrics, which accumulate across runs in the registry).
struct OrchReport {
  std::size_t units_total = 0;
  std::size_t claimed = 0;    ///< serial mode: units solved in-process
  std::size_t completed = 0;  ///< published units, resumed hits included
  std::size_t resumed = 0;    ///< completed before this run started
  std::size_t reassigned = 0;
  std::size_t poisoned = 0;
  std::size_t worker_restarts = 0;
  bool deadline_hit = false;
};

struct StudyResult {
  Manifest manifest;
  std::vector<UnitOutcome> outcomes;  ///< one per manifest unit, in order
  OrchReport report;

  /// Every unit published (nothing poisoned, nothing missing).
  bool complete() const;
  /// Canonical merged JSON (unit_runner.h study_result_json) — the
  /// artifact two runs of the same manifest are compared on, byte for
  /// byte.
  std::string json() const;
};

/// Run (or resume) the study described by `manifest`. Blocking; returns
/// once every unit is completed or poisoned, or the deadline passes
/// (remaining units are then poisoned with reason "deadline").
StudyResult run_study(const Manifest& manifest, const OrchOptions& options);

/// Atomic-rename publish of result.json(); false on I/O failure.
bool write_study_result(const std::string& path, const StudyResult& result);

}  // namespace subscale::orch
