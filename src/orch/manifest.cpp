#include "orch/manifest.h"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "cache/lease.h"
#include "cache/tcad_keys.h"
#include "cards/technology_card.h"
#include "io/json_parse.h"
#include "io/writer.h"
#include "scaling/technology.h"

namespace subscale::orch {

namespace fs = std::filesystem;

void StudySpec::validate() const {
  const auto fail = [](const char* msg) {
    throw std::invalid_argument(std::string("StudySpec: ") + msg);
  };
  if (card.empty()) fail("card must not be empty");
  if (strategies.empty()) fail("strategies must not be empty");
  if (vds.empty()) fail("vds must not be empty");
  if (points < 2) fail("points must be >= 2");
  if (!(vg_stop > vg_start)) fail("vg_stop must exceed vg_start");
  gummel.validate();
}

cache::HashKey unit_result_key(const compact::DeviceSpec& spec,
                               const tcad::MeshOptions& mesh,
                               const tcad::GummelOptions& gummel,
                               const std::string& card,
                               core::Strategy strategy, std::size_t node,
                               double vd, double vg_start, double vg_stop,
                               std::size_t points) {
  const cache::HashKey sweep = cache::sweep_key(
      cache::device_solve_key(spec, mesh, gummel), vd, vg_start, vg_stop,
      points);
  cache::KeyHasher h(sweep);
  h.tag("subscale.orch.unit")
      .u64(kOrchKeySchema)
      .str(card)
      .str(strategy_name(strategy))
      .u64(node);
  return h.key();
}

core::StudyOptions study_options_for(const StudySpec& spec) {
  core::StudyOptions options;
  options.card = cards::resolve_card(spec.card);
  return options;
}

Manifest build_manifest(const StudySpec& spec,
                        const core::ScalingStudy& study) {
  spec.validate();
  Manifest manifest;
  manifest.spec = spec;

  std::vector<std::size_t> nodes = spec.nodes;
  if (nodes.empty()) {
    for (std::size_t i = 0; i < study.node_count(); ++i) nodes.push_back(i);
  }
  for (const std::size_t node : nodes) {
    if (node >= study.node_count()) {
      throw std::out_of_range("build_manifest: bad node index");
    }
  }

  for (const core::Strategy strategy : spec.strategies) {
    for (const std::size_t node : nodes) {
      const compact::DeviceSpec& device =
          strategy == core::Strategy::kSubVth
              ? study.sub_devices()[node].device.spec
              : study.super_devices()[node].spec;
      for (const double vd : spec.vds) {
        WorkUnit unit;
        unit.index = manifest.units.size();
        unit.strategy = strategy;
        unit.node = node;
        unit.vd = vd;
        unit.result_key = unit_result_key(
            device, spec.mesh, spec.gummel, spec.card, strategy, node, vd,
            spec.vg_start, spec.vg_stop, spec.points);
        manifest.units.push_back(unit);
      }
    }
  }
  return manifest;
}

Manifest build_manifest(const StudySpec& spec) {
  const core::ScalingStudy study(compact::paper_calibration(),
                                 study_options_for(spec));
  return build_manifest(spec, study);
}

// ---- JSON -------------------------------------------------------------------

namespace {

void write_mesh(io::Writer& w, const tcad::MeshOptions& m) {
  w.begin_object();
  w.key("surface_spacing");
  w.value(m.surface_spacing);
  w.key("junction_spacing");
  w.value(m.junction_spacing);
  w.key("grading_ratio");
  w.value(m.grading_ratio);
  w.key("oxide_layers");
  w.value(static_cast<std::uint64_t>(m.oxide_layers));
  w.key("well_multiplier");
  w.value(m.well_multiplier);
  w.key("well_onset_factor");
  w.value(m.well_onset_factor);
  w.key("well_straggle_factor");
  w.value(m.well_straggle_factor);
  w.end_object();
}

void write_gummel(io::Writer& w, const tcad::GummelOptions& g) {
  w.begin_object();
  w.key("max_iterations");
  w.value(static_cast<std::uint64_t>(g.max_iterations));
  w.key("psi_tolerance");
  w.value(g.psi_tolerance);
  w.key("bias_step");
  w.value(g.bias_step);
  w.key("min_bias_step");
  w.value(g.min_bias_step);
  w.key("damping");
  w.value(g.damping);
  w.key("retry_damping");
  w.value(g.retry_damping);
  w.key("min_damping");
  w.value(g.min_damping);
  w.key("divergence_threshold");
  w.value(g.divergence_threshold);
  w.key("max_continuation_steps");
  w.value(static_cast<std::uint64_t>(g.max_continuation_steps));
  w.key("poisson");
  w.begin_object();
  w.key("max_iterations");
  w.value(static_cast<std::uint64_t>(g.poisson.max_iterations));
  w.key("update_tolerance");
  w.value(g.poisson.update_tolerance);
  w.key("damping_clamp");
  w.value(g.poisson.damping_clamp);
  w.key("divergence_threshold");
  w.value(g.poisson.divergence_threshold);
  w.end_object();
  w.key("continuity");
  w.begin_object();
  w.key("tau_srh");
  w.value(g.continuity.tau_srh);
  w.key("velocity_saturation");
  w.value(g.continuity.velocity_saturation);
  w.end_object();
  w.end_object();
}

void read_mesh(const io::JsonValue& v, tcad::MeshOptions& m) {
  m.surface_spacing = v.number_at("surface_spacing", m.surface_spacing);
  m.junction_spacing = v.number_at("junction_spacing", m.junction_spacing);
  m.grading_ratio = v.number_at("grading_ratio", m.grading_ratio);
  m.oxide_layers = static_cast<std::size_t>(v.number_at(
      "oxide_layers", static_cast<double>(m.oxide_layers)));
  m.well_multiplier = v.number_at("well_multiplier", m.well_multiplier);
  m.well_onset_factor =
      v.number_at("well_onset_factor", m.well_onset_factor);
  m.well_straggle_factor =
      v.number_at("well_straggle_factor", m.well_straggle_factor);
}

void read_gummel(const io::JsonValue& v, tcad::GummelOptions& g) {
  g.max_iterations = static_cast<std::size_t>(v.number_at(
      "max_iterations", static_cast<double>(g.max_iterations)));
  g.psi_tolerance = v.number_at("psi_tolerance", g.psi_tolerance);
  g.bias_step = v.number_at("bias_step", g.bias_step);
  g.min_bias_step = v.number_at("min_bias_step", g.min_bias_step);
  g.damping = v.number_at("damping", g.damping);
  g.retry_damping = v.number_at("retry_damping", g.retry_damping);
  g.min_damping = v.number_at("min_damping", g.min_damping);
  g.divergence_threshold =
      v.number_at("divergence_threshold", g.divergence_threshold);
  g.max_continuation_steps = static_cast<std::size_t>(
      v.number_at("max_continuation_steps",
                  static_cast<double>(g.max_continuation_steps)));
  if (const io::JsonPtr p = v.get("poisson"); p != nullptr) {
    g.poisson.max_iterations = static_cast<std::size_t>(p->number_at(
        "max_iterations", static_cast<double>(g.poisson.max_iterations)));
    g.poisson.update_tolerance =
        p->number_at("update_tolerance", g.poisson.update_tolerance);
    g.poisson.damping_clamp =
        p->number_at("damping_clamp", g.poisson.damping_clamp);
    g.poisson.divergence_threshold = p->number_at(
        "divergence_threshold", g.poisson.divergence_threshold);
  }
  if (const io::JsonPtr c = v.get("continuity"); c != nullptr) {
    g.continuity.tau_srh = c->number_at("tau_srh", g.continuity.tau_srh);
    g.continuity.velocity_saturation = c->bool_at(
        "velocity_saturation", g.continuity.velocity_saturation);
  }
}

/// Parse 32 lowercase hex chars back into a HashKey; false on anything
/// else (a mangled key must fail the load, not address a wrong record).
bool parse_hex_key(const std::string& hex, cache::HashKey& out) {
  if (hex.size() != 32) return false;
  std::uint64_t halves[2] = {0, 0};
  for (int half = 0; half < 2; ++half) {
    for (int i = 0; i < 16; ++i) {
      const char c = hex[static_cast<std::size_t>(half * 16 + i)];
      std::uint64_t nibble = 0;
      if (c >= '0' && c <= '9') nibble = static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') nibble = static_cast<std::uint64_t>(c - 'a' + 10);
      else return false;
      halves[half] = (halves[half] << 4) | nibble;
    }
  }
  out.hi = halves[0];
  out.lo = halves[1];
  return true;
}

}  // namespace

std::string manifest_to_json(const Manifest& manifest) {
  io::JsonWriter w;
  w.begin_object();
  w.key("manifest_version");
  w.value(static_cast<std::uint64_t>(manifest.version));
  w.key("spec");
  w.begin_object();
  w.key("card");
  w.value(manifest.spec.card);
  w.key("strategies");
  w.begin_array();
  for (const core::Strategy s : manifest.spec.strategies) {
    w.value(strategy_name(s));
  }
  w.end_array();
  w.key("nodes");
  w.begin_array();
  for (const std::size_t n : manifest.spec.nodes) {
    w.value(static_cast<std::uint64_t>(n));
  }
  w.end_array();
  w.key("vds");
  w.begin_array();
  for (const double vd : manifest.spec.vds) w.value(vd);
  w.end_array();
  w.key("vg_start");
  w.value(manifest.spec.vg_start);
  w.key("vg_stop");
  w.value(manifest.spec.vg_stop);
  w.key("points");
  w.value(static_cast<std::uint64_t>(manifest.spec.points));
  w.key("mesh");
  write_mesh(w, manifest.spec.mesh);
  w.key("gummel");
  write_gummel(w, manifest.spec.gummel);
  w.end_object();
  w.key("units");
  w.begin_array();
  for (const WorkUnit& unit : manifest.units) {
    w.begin_object();
    w.key("index");
    w.value(static_cast<std::uint64_t>(unit.index));
    w.key("strategy");
    w.value(strategy_name(unit.strategy));
    w.key("node");
    w.value(static_cast<std::uint64_t>(unit.node));
    w.key("vd");
    w.value(unit.vd);
    w.key("result_key");
    w.value(unit.result_key.hex());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool save_manifest(const std::string& path, const Manifest& manifest) {
  const std::string text = manifest_to_json(manifest);
  return cache::atomic_write_file(path, text.data(), text.size());
}

bool load_manifest(const std::string& path, Manifest& out,
                   std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "manifest: " + path + ": " + why;
    return false;
  };
  std::string parse_error;
  const io::JsonPtr doc = io::json_parse_file(path, &parse_error);
  if (doc == nullptr) return fail(parse_error);
  const double version = doc->number_at("manifest_version", 0.0);
  if (version != static_cast<double>(kManifestVersion)) {
    return fail("unsupported manifest_version");
  }
  out = Manifest{};

  const io::JsonPtr spec = doc->get("spec");
  if (spec == nullptr) return fail("missing spec");
  out.spec.card = spec->string_at("card");
  if (out.spec.card.empty()) return fail("spec.card missing or empty");
  out.spec.strategies.clear();
  if (const io::JsonPtr arr = spec->get("strategies"); arr != nullptr) {
    for (const io::JsonPtr& item : arr->items()) {
      core::Strategy s;
      if (item == nullptr || !parse_strategy(item->as_string(), s)) {
        return fail("bad strategy name");
      }
      out.spec.strategies.push_back(s);
    }
  }
  if (out.spec.strategies.empty()) return fail("spec.strategies empty");
  out.spec.nodes.clear();
  if (const io::JsonPtr arr = spec->get("nodes"); arr != nullptr) {
    for (const io::JsonPtr& item : arr->items()) {
      out.spec.nodes.push_back(
          static_cast<std::size_t>(item->as_number(0.0)));
    }
  }
  out.spec.vds.clear();
  if (const io::JsonPtr arr = spec->get("vds"); arr != nullptr) {
    for (const io::JsonPtr& item : arr->items()) {
      out.spec.vds.push_back(item->as_number(0.0));
    }
  }
  if (out.spec.vds.empty()) return fail("spec.vds empty");
  out.spec.vg_start = spec->number_at("vg_start", 0.0);
  out.spec.vg_stop = spec->number_at("vg_stop", 0.45);
  out.spec.points =
      static_cast<std::size_t>(spec->number_at("points", 10.0));
  if (const io::JsonPtr m = spec->get("mesh"); m != nullptr) {
    read_mesh(*m, out.spec.mesh);
  }
  if (const io::JsonPtr g = spec->get("gummel"); g != nullptr) {
    read_gummel(*g, out.spec.gummel);
  }

  const io::JsonPtr units = doc->get("units");
  if (units == nullptr || units->kind() != io::JsonValue::Kind::kArray) {
    return fail("missing units array");
  }
  for (const io::JsonPtr& item : units->items()) {
    if (item == nullptr) return fail("bad unit entry");
    WorkUnit unit;
    unit.index = static_cast<std::size_t>(item->number_at("index", 0.0));
    if (!parse_strategy(item->string_at("strategy"), unit.strategy)) {
      return fail("bad unit strategy");
    }
    unit.node = static_cast<std::size_t>(item->number_at("node", 0.0));
    unit.vd = item->number_at("vd", 0.0);
    if (!parse_hex_key(item->string_at("result_key"), unit.result_key)) {
      return fail("bad unit result_key");
    }
    out.units.push_back(unit);
  }
  try {
    out.spec.validate();
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  return true;
}

// ---- study directory layout -------------------------------------------------

std::string lease_path(const std::string& study_dir, std::size_t unit) {
  return study_dir + "/leases/unit-" + std::to_string(unit) + ".lease";
}

std::string poison_path(const std::string& study_dir, std::size_t unit) {
  return study_dir + "/poison/unit-" + std::to_string(unit);
}

bool unit_poisoned(const std::string& study_dir, std::size_t unit) {
  std::error_code ec;
  return fs::exists(poison_path(study_dir, unit), ec) && !ec;
}

bool poison_unit(const std::string& study_dir, std::size_t unit,
                 const std::string& reason) {
  return cache::atomic_write_file(poison_path(study_dir, unit),
                                  reason.data(), reason.size());
}

std::string poison_reason(const std::string& study_dir, std::size_t unit) {
  std::vector<std::uint8_t> bytes;
  if (!cache::read_file_bytes(poison_path(study_dir, unit), bytes)) {
    return {};
  }
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace subscale::orch
