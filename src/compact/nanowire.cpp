#include "compact/nanowire.h"

#include <cmath>
#include <stdexcept>

#include "compact/mosfet.h"  // softplus
#include "physics/constants.h"
#include "physics/mobility.h"
#include "physics/silicon.h"

namespace subscale::compact {

namespace {

/// Gate work-function offset relative to the band-edge reference [V]: a
/// metal gate tuned 200 mV toward midgap, the standard GAA knob that
/// places the intrinsic-wire threshold low enough for the paper's
/// leakage-constrained design loops to have a reachable I_off window
/// (doping then raises V_th from there, monotonically).
constexpr double kGateWorkFunctionOffset = -0.2;

}  // namespace

NanowireFet::NanowireFet(DeviceSpec spec, const Calibration& calib)
    : DeviceModel(std::move(spec), calib) {
  if (spec_.nw_radius <= 0.0) {
    throw std::invalid_argument("NanowireFet: nw_radius must be positive");
  }
  const double r = spec_.nw_radius;
  const double tox = spec_.geometry.tox;
  const double leff = spec_.geometry.leff();

  vt_ = physics::thermal_voltage(spec_.temperature);
  ni_ = physics::intrinsic_density_legacy(spec_.temperature);
  neff_ = spec_.effective_channel_doping(calib_.k_halo);

  // Cylindrical oxide capacitance per unit silicon-surface area.
  const double log_ox = std::log(1.0 + tox / r);
  cox_ = physics::kEpsSiO2 / (r * log_ox);

  // GAA natural length (cylindrical quasi-2-D screening length).
  lambda_ = std::sqrt((2.0 * physics::kEpsSi * r * r * log_ox +
                       physics::kEpsSiO2 * r * r) /
                      (16.0 * physics::kEpsSiO2));

  // Slope degradation: near-ideal, decaying with L_eff / lambda.
  const double sce = std::exp(-leff / (2.0 * calib_.c_len * lambda_));
  n_ = 1.0 + calib_.c_sce * sce;
  ss_ = n_ * vt_ * std::log(10.0);

  // Charge-based long-channel threshold of the intrinsic wire plus the
  // depleted-cross-section doping shift (see file comment).
  vth0_ = kGateWorkFunctionOffset +
          vt_ * std::log(cox_ * vt_ / (physics::kQ * ni_ * r / 2.0));
  vth_dop_ = physics::kQ * neff_ * r / (4.0 * cox_);

  vbi_ = physics::builtin_potential(neff_, spec_.levels.nsd,
                                    spec_.temperature);

  const auto carrier = spec_.polarity == doping::Polarity::kNfet
                           ? physics::Carrier::kElectron
                           : physics::Carrier::kHole;
  // Low-field Masetti mobility at the body doping; GAA wires see no
  // bulk-style vertical-field surface degradation.
  mu_ = physics::masetti_mobility(carrier, neff_);

  wires_ = spec_.width / (6.0 * r);
  weff_ = wires_ * 2.0 * M_PI * r;
}

std::shared_ptr<const DeviceModel> NanowireFet::with_calibration(
    const Calibration& calib) const {
  return std::make_shared<NanowireFet>(spec_, calib);
}

double NanowireFet::vth_long() const {
  return vth0_ + vth_dop_ + calib_.delta_vth;
}

double NanowireFet::vth(double vds) const {
  // Quasi-2-D SCE/DIBL roll-off with the GAA natural length.
  const double sce = std::exp(-spec_.geometry.leff() /
                              (2.0 * calib_.c_len * lambda_));
  const double dvth_sce = calib_.k_dibl * (2.0 * vbi_ + vds) * sce;
  return vth0_ + vth_dop_ + calib_.delta_vth - dvth_sce;
}

double NanowireFet::gate_capacitance() const {
  // Cylindrical gate stack over the electrical width, same structural
  // split as bulk: channel area + overlap + fringe per gate edge.
  const double per_width =
      cox_ * spec_.geometry.lpoly +
      2.0 * (cox_ * spec_.geometry.lov + calib_.c_fringe);
  return per_width * weff_;
}

double NanowireFet::drain_current(double vgs, double vds) const {
  const double sign = (vds < 0.0) ? -1.0 : 1.0;
  const double vds_mag = std::abs(vds);
  const double leff = spec_.geometry.leff();

  const double vth_d = vth(vds_mag);
  const double two_nvt = 2.0 * n_ * vt_;
  const double xf = (vgs - vth_d) / two_nvt;
  const double xr = (vgs - vth_d - n_ * vds_mag) / two_nvt;
  const double qf = softplus(xf);
  const double qr = softplus(xr);
  const double i_norm = qf * qf - qr * qr;

  const double i0 =
      calib_.k_io * 2.0 * n_ * mu_ * cox_ * vt_ * vt_ * weff_ / leff;

  const auto carrier = spec_.polarity == doping::Polarity::kNfet
                           ? physics::Carrier::kElectron
                           : physics::Carrier::kHole;
  const double vsat =
      physics::saturation_velocity(carrier, spec_.temperature);
  const double vov_smooth = two_nvt * qf;
  const double denom =
      1.0 + calib_.k_vsat * mu_ * vov_smooth / (2.0 * vsat * leff);

  return sign * i0 * i_norm / denom;
}

}  // namespace subscale::compact
