#pragma once

/// \file calibration.h
/// Calibration constants of the analytical device model and the fitting
/// routine that derives them from the paper's published anchors.
///
/// The paper's compact expressions (Eqs. 1, 2b) contain universal
/// constants (the 3x and 11x T_ox/W_dep factors, the pi/2 decay length)
/// that Taur & Ning fitted to a particular device family. Our device
/// family (geometry rules in doping::MosfetGeometry) differs in detail,
/// so we keep the functional form and re-fit four dimensionless
/// coefficients to the paper's published S_S anchors (Fig. 2 endpoints
/// and the sub-V_th strategy's ~80 mV/dec plateau, evaluated on the
/// devices of Tables 2 and 3). Current-scale and DIBL coefficients are
/// anchored to Table 2's V_th,sat / I_off columns.

namespace subscale::compact {

/// Dimensionless (unless noted) knobs of the analytical model.
struct Calibration {
  // ---- S_S model (Eq. 2b) -------------------------------------------
  double c_dep = 1.0;  ///< multiplies 3*T_ox/W_dep (body-effect term)
  double c_sce = 1.0;  ///< multiplies the 11*T_ox/W_dep short-channel term
  double c_len = 1.0;  ///< multiplies the decay length (W_dep + 3 T_ox)

  // ---- effective channel doping ----------------------------------------
  /// Weight of the halo contribution to N_eff (vertical halo/channel
  /// overlap is the least-constrained geometry assumption, so it is a fit
  /// degree of freedom): N_eff = N_sub + k_halo * N_p,halo * f_halo.
  double k_halo = 1.0;

  // ---- current scale -------------------------------------------------
  double k_io = 1.0;  ///< multiplies the EKV specific current

  // ---- V_th model -----------------------------------------------------
  double k_dibl = 0.30;    ///< multiplies the quasi-2-D roll-off amplitude
  double delta_vth = 0.0;  ///< additive V_th adjustment [V]

  // ---- strong inversion ----------------------------------------------
  double k_vsat = 1.0;  ///< velocity-saturation strength

  // ---- threshold extraction -------------------------------------------
  /// Constant-current V_th extraction density [A per W/L_eff square];
  /// calibrated so the 90nm super-V_th device reports Table 2's 403 mV.
  double j_crit = 1e-7;

  // ---- capacitance -----------------------------------------------------
  /// Outer-fringe capacitance per gate edge [F/m of width]; part of the
  /// DEVICE gate capacitance (Table 2's C_g V_dd/I_on metric).
  double c_fringe = 0.20e-15 / 1e-6;
  /// Fixed per-stage load (local wire + drain junction) [F/m of width];
  /// part of the CIRCUIT load C_L only. Its size comes from the same
  /// two-stage fit as the S_S constants: it is what places the paper's
  /// energy-optimal L_poly (Table 3) at an interior optimum.
  double c_wire = 0.0;
};

/// The library-default calibration: the result of fit_calibration()
/// against the paper anchors, frozen so all consumers agree bit-for-bit.
const Calibration& paper_calibration();

/// One S_S anchor: a published device evaluated by the S_S model must
/// yield `ss_target` (in V/decade). N_eff is assembled inside the fit as
/// nsub + k_halo * halo_add so k_halo can participate in the fit.
struct SsAnchor {
  double nsub = 0.0;       ///< substrate doping [m^-3]
  double halo_add = 0.0;   ///< N_p,halo * f_halo at k_halo = 1 [m^-3]
  double tox = 0.0;        ///< [m]
  double leff = 0.0;       ///< [m]
  double ss_target = 0.0;  ///< [V/dec]
  double weight = 1.0;     ///< fit weight (endpoints the paper quotes
                           ///< verbatim carry more weight than the
                           ///< interpolated intermediate nodes)
};

/// Fit (c_dep, c_sce, c_len, k_halo) to a set of S_S anchors by
/// coordinate-wise golden-section descent on the sum of squared relative
/// errors. Returns the fitted calibration (other fields keep `base`
/// values) and writes the final RMS relative error to `rms_error` if
/// non-null.
Calibration fit_ss_calibration(const Calibration& base,
                               const SsAnchor* anchors, int count,
                               double* rms_error = nullptr);

/// The anchor set used for the library default (devices of Table 2 and
/// Table 3 at the 90nm and 32nm nodes with the paper's S_S values).
/// Exposed so tests can re-derive the default calibration.
int paper_ss_anchors(SsAnchor out[8]);

}  // namespace subscale::compact
