#pragma once

/// \file device_spec.h
/// The four-parameter device description the paper scales (Sec. 2.2):
/// physical gate length L_poly, oxide thickness T_ox, substrate doping
/// N_sub and peak halo doping N_p,halo — plus V_dd. Geometry details
/// (junction depth, halo straggles, overlaps) derive from the node's
/// feature shrink via doping::MosfetGeometry.
///
/// Since the technology-card refactor a spec also names WHICH compact
/// device physics interprets it: `backend` selects the planar-bulk
/// MOSFET (the paper's device) or the cylindrical nanowire/GAA FET, and
/// `nw_radius` carries the wire radius the nanowire backend needs. The
/// environment knobs a card imposes uniformly on every device it builds
/// (backend, temperature, wire radius) travel together as DeviceEnv.

#include <string>

#include "doping/mosfet_doping.h"

namespace subscale::compact {

/// Which compact device physics a spec is interpreted by. Values are
/// part of the cache-key schema (cache/tcad_keys.h hashes the integer),
/// so existing entries must never be renumbered.
enum class BackendKind {
  kBulkMosfet = 0,   ///< planar bulk MOSFET (the paper's device)
  kNanowireGaa = 1,  ///< cylindrical gate-all-around nanowire FET
};

/// Canonical lowercase name ("bulk_mosfet" / "nanowire_gaa").
const char* backend_kind_name(BackendKind kind);

/// Parse a backend name; false (out untouched) on an unknown name.
bool parse_backend_kind(const std::string& name, BackendKind& out);

/// Device-environment knobs a technology card applies uniformly to
/// every spec it instantiates. Defaults reproduce the paper's setup
/// exactly (bulk device at room temperature), so a default-constructed
/// env is always bitwise-neutral.
struct DeviceEnv {
  BackendKind backend = BackendKind::kBulkMosfet;
  double temperature = 300.0;  ///< lattice temperature [K]
  double nw_radius_nm = 4.0;   ///< nanowire radius [nm] (GAA backend only)

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// A fully specified transistor at some technology node.
struct DeviceSpec {
  doping::Polarity polarity = doping::Polarity::kNfet;
  doping::MosfetGeometry geometry;
  doping::MosfetDopingLevels levels;
  double vdd = 1.2;            ///< nominal supply [V]
  double temperature = 300.0;  ///< lattice temperature [K]
  double width = 1e-6;         ///< reference gate width [m]
  /// Which device physics interprets this spec (see BackendKind).
  BackendKind backend = BackendKind::kBulkMosfet;
  /// Nanowire radius [m]; ignored by the bulk backend.
  double nw_radius = 4e-9;

  /// Validate invariants; throws std::invalid_argument on violation.
  void validate() const;

  /// Copy the card-level environment knobs into this spec.
  void apply_env(const DeviceEnv& env);

  /// Effective channel doping N_eff [m^-3] (substrate + averaged halo) at
  /// unit halo weight. Model code should prefer the calibrated overload
  /// below, which applies Calibration::k_halo.
  double effective_channel_doping() const {
    return doping::effective_channel_doping(geometry, levels);
  }

  /// Calibrated N_eff = nsub + k_halo * np_halo * f_halo [m^-3].
  double effective_channel_doping(double k_halo) const {
    return levels.nsub +
           k_halo * levels.np_halo * doping::halo_channel_fraction(geometry);
  }
};

/// Construct a spec from the paper's table units: lpoly/tox in nm, doping
/// in cm^-3 (N_halo is the NET peak = N_sub + N_p,halo as tabulated),
/// feature shrink per node.
DeviceSpec make_spec_from_table(doping::Polarity polarity, double lpoly_nm,
                                double tox_nm, double nsub_cm3,
                                double nhalo_net_cm3, double vdd,
                                double feature_shrink);

}  // namespace subscale::compact
