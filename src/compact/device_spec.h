#pragma once

/// \file device_spec.h
/// The four-parameter device description the paper scales (Sec. 2.2):
/// physical gate length L_poly, oxide thickness T_ox, substrate doping
/// N_sub and peak halo doping N_p,halo — plus V_dd. Geometry details
/// (junction depth, halo straggles, overlaps) derive from the node's
/// feature shrink via doping::MosfetGeometry.

#include "doping/mosfet_doping.h"

namespace subscale::compact {

/// A fully specified transistor at some technology node.
struct DeviceSpec {
  doping::Polarity polarity = doping::Polarity::kNfet;
  doping::MosfetGeometry geometry;
  doping::MosfetDopingLevels levels;
  double vdd = 1.2;            ///< nominal supply [V]
  double temperature = 300.0;  ///< lattice temperature [K]
  double width = 1e-6;         ///< reference gate width [m]

  /// Validate invariants; throws std::invalid_argument on violation.
  void validate() const;

  /// Effective channel doping N_eff [m^-3] (substrate + averaged halo) at
  /// unit halo weight. Model code should prefer the calibrated overload
  /// below, which applies Calibration::k_halo.
  double effective_channel_doping() const {
    return doping::effective_channel_doping(geometry, levels);
  }

  /// Calibrated N_eff = nsub + k_halo * np_halo * f_halo [m^-3].
  double effective_channel_doping(double k_halo) const {
    return levels.nsub +
           k_halo * levels.np_halo * doping::halo_channel_fraction(geometry);
  }
};

/// Construct a spec from the paper's table units: lpoly/tox in nm, doping
/// in cm^-3 (N_halo is the NET peak = N_sub + N_p,halo as tabulated),
/// feature shrink per node.
DeviceSpec make_spec_from_table(doping::Polarity polarity, double lpoly_nm,
                                double tox_nm, double nsub_cm3,
                                double nhalo_net_cm3, double vdd,
                                double feature_shrink);

}  // namespace subscale::compact
