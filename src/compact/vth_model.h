#pragma once

/// \file vth_model.h
/// Threshold-voltage model following the paper's decomposition (Sec. 2.2,
/// after ref [11]): V_th = V_th0 + dV_th,halo - dV_th,SCE.
///
/// * V_th0 is the classical long-channel threshold V_FB + 2 phi_B +
///   Q_dep/C_ox evaluated at the *substrate* doping.
/// * dV_th,halo (roll-up) enters through the effective channel doping
///   N_eff(L_eff) >= N_sub: evaluating V_th0 at N_eff instead of N_sub
///   raises the threshold exactly as halos do at short channels.
/// * dV_th,SCE (roll-off incl. DIBL) uses the quasi-2-D characteristic-
///   length model: dV = k_dibl (2 (V_bi - 2 phi_B) + V_ds) exp(-L_eff/2 l_t)
///   with l_t = sqrt(eps_si T_ox W_dep / eps_ox).
///
/// Everything is computed in NFET magnitude space; a PFET's |V_th| uses
/// the same expressions (the paper treats PFETs analogously).

#include "compact/calibration.h"
#include "compact/device_spec.h"

namespace subscale::compact {

/// The pieces of the threshold voltage, for reporting and tests.
struct VthComponents {
  double vth_body = 0.0;   ///< V_FB + 2 phi_B + Q_dep(N_eff)/C_ox [V]
  double vth_sub = 0.0;    ///< same but at N_sub only (no halo roll-up) [V]
  double dvth_halo = 0.0;  ///< roll-up = vth_body - vth_sub [V]
  double dvth_sce = 0.0;   ///< roll-off incl. DIBL at the given V_ds [V]
  double vbi = 0.0;        ///< source/drain-to-channel built-in potential [V]
  double lt = 0.0;         ///< quasi-2-D characteristic length [m]
  double vth = 0.0;        ///< net threshold (+ calibration delta) [V]
};

/// Full decomposition at drain bias `vds` (source-referenced magnitude).
VthComponents threshold_components(const DeviceSpec& spec,
                                   const Calibration& calib, double vds);

/// Net threshold voltage magnitude at drain bias `vds` [V].
double threshold_voltage(const DeviceSpec& spec, const Calibration& calib,
                         double vds);

/// DIBL coefficient [V/V]: -(dVth/dVds) evaluated between vds = 50 mV and
/// vds = vdd (the conventional lin/sat definition).
double dibl_coefficient(const DeviceSpec& spec, const Calibration& calib);

}  // namespace subscale::compact
