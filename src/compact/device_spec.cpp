#include "compact/device_spec.h"

#include <stdexcept>

#include "physics/units.h"

namespace subscale::compact {

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kBulkMosfet:
      return "bulk_mosfet";
    case BackendKind::kNanowireGaa:
      return "nanowire_gaa";
  }
  return "unknown";
}

bool parse_backend_kind(const std::string& name, BackendKind& out) {
  if (name == "bulk_mosfet") {
    out = BackendKind::kBulkMosfet;
    return true;
  }
  if (name == "nanowire_gaa") {
    out = BackendKind::kNanowireGaa;
    return true;
  }
  return false;
}

void DeviceEnv::validate() const {
  if (temperature <= 0.0) {
    throw std::invalid_argument("DeviceEnv: temperature must be positive");
  }
  if (nw_radius_nm <= 0.0) {
    throw std::invalid_argument("DeviceEnv: nw_radius_nm must be positive");
  }
}

void DeviceSpec::validate() const {
  if (geometry.lpoly <= 0.0 || geometry.tox <= 0.0) {
    throw std::invalid_argument("DeviceSpec: lpoly and tox must be positive");
  }
  if (geometry.leff() <= 0.0) {
    throw std::invalid_argument("DeviceSpec: leff <= 0 (overlap too large)");
  }
  if (levels.nsub <= 0.0) {
    throw std::invalid_argument("DeviceSpec: nsub must be positive");
  }
  if (levels.np_halo < 0.0) {
    throw std::invalid_argument("DeviceSpec: np_halo must be non-negative");
  }
  if (vdd <= 0.0) {
    throw std::invalid_argument("DeviceSpec: vdd must be positive");
  }
  if (temperature <= 0.0) {
    throw std::invalid_argument("DeviceSpec: temperature must be positive");
  }
  if (width <= 0.0) {
    throw std::invalid_argument("DeviceSpec: width must be positive");
  }
  if (backend == BackendKind::kNanowireGaa && nw_radius <= 0.0) {
    throw std::invalid_argument(
        "DeviceSpec: nw_radius must be positive for the nanowire backend");
  }
}

void DeviceSpec::apply_env(const DeviceEnv& env) {
  env.validate();
  backend = env.backend;
  temperature = env.temperature;
  nw_radius = units::nm(env.nw_radius_nm);
}

DeviceSpec make_spec_from_table(doping::Polarity polarity, double lpoly_nm,
                                double tox_nm, double nsub_cm3,
                                double nhalo_net_cm3, double vdd,
                                double feature_shrink) {
  namespace u = subscale::units;
  if (nhalo_net_cm3 < nsub_cm3) {
    throw std::invalid_argument(
        "make_spec_from_table: net halo peak must be >= substrate doping");
  }
  DeviceSpec spec;
  spec.polarity = polarity;
  spec.geometry = doping::MosfetGeometry::scaled(
      u::nm(lpoly_nm), u::nm(tox_nm), feature_shrink);
  spec.levels.nsub = u::per_cm3(nsub_cm3);
  spec.levels.np_halo = u::per_cm3(nhalo_net_cm3 - nsub_cm3);
  spec.vdd = vdd;
  spec.validate();
  return spec;
}

}  // namespace subscale::compact
