#pragma once

/// \file nanowire.h
/// Cylindrical gate-all-around (GAA) nanowire FET compact model —
/// backend #2 of the DeviceModel interface, following the
/// surface-potential formulation of silicon-nanowire compact models
/// (PAPERS.md: "A Compact Model of Silicon-Based Nanowire FET for
/// Circuit Simulation and Design").
///
/// Subthreshold-accurate ingredients:
///   * cylindrical oxide capacitance per unit silicon-surface area
///     C_ox' = eps_ox / (R ln(1 + t_ox/R));
///   * the GAA natural (screening) length
///     lambda = sqrt((2 eps_si R^2 ln(1 + t_ox/R) + eps_ox R^2)
///                   / (16 eps_ox)),
///     which sets both the slope-factor degradation
///     n = 1 + c_sce exp(-L_eff / (2 c_len lambda)) and the SCE/DIBL
///     V_th roll-off — a GAA wire at the paper's dimensions is
///     near-ideal (n -> 1, S_S -> vT ln 10);
///   * a charge-based long-channel threshold: the gate must supply the
///     threshold sheet charge C_ox' vT against the wire's intrinsic
///     charge budget q n_i(T) R / 2, giving
///     V_th0 = dPhi_gate + vT ln(C_ox' vT / (q n_i(T) R / 2)),
///     temperature-correct through n_i(T) and vT;
///   * body doping acts through the depleted cross-section charge,
///     dV_th,dop = q N_eff R / (4 C_ox') — monotone in doping, so the
///     I_off-constrained design loops of both scaling strategies
///     converge on this backend exactly as they do on bulk.
///
/// Width semantics: spec.width is the LAYOUT width; wires are placed at
/// a pitch of three diameters (6R), each contributing an electrical
/// width of 2 pi R, so currents and capacitances stay per-layout-width
/// comparable (pA/um) with the bulk backend. The Calibration fields
/// keep their roles (k_io current scale, k_vsat velocity saturation,
/// c_sce/c_len short-channel shape, k_dibl DIBL amplitude, delta_vth
/// additive shift — which is how variability resampling works here too).

#include "compact/calibration.h"
#include "compact/device_model.h"
#include "compact/device_spec.h"

namespace subscale::compact {

class NanowireFet final : public DeviceModel {
 public:
  /// \param spec   device description; nw_radius must be positive
  /// \param calib  calibration constants (default: fit to the paper)
  explicit NanowireFet(DeviceSpec spec,
                       const Calibration& calib = paper_calibration());

  // ---- DeviceModel contract ----------------------------------------

  BackendKind backend() const override { return BackendKind::kNanowireGaa; }
  double drain_current(double vgs, double vds) const override;
  double subthreshold_swing() const override { return ss_; }
  double slope_factor() const override { return n_; }
  double vth(double vds) const override;
  double gate_capacitance() const override;
  std::shared_ptr<const DeviceModel> with_calibration(
      const Calibration& calib) const override;

  // ---- nanowire-specific derived quantities -------------------------

  /// Cylindrical oxide capacitance per silicon-surface area [F/m^2].
  double cox() const { return cox_; }
  /// GAA natural length lambda [m].
  double natural_length() const { return lambda_; }
  /// Effective body doping N_eff [m^-3] (same halo weighting as bulk).
  double neff() const { return neff_; }
  /// Wires per layout width (pitch = 3 diameters; fractional allowed so
  /// currents stay continuous in spec.width).
  double wire_count() const { return wires_; }
  /// Total electrical width: wire_count() * 2 pi R [m].
  double electrical_width() const { return weff_; }
  /// Long-channel threshold (no SCE/DIBL) [V].
  double vth_long() const;

 private:
  double neff_ = 0.0;
  double cox_ = 0.0;
  double lambda_ = 0.0;
  double n_ = 0.0;
  double ss_ = 0.0;
  double vt_ = 0.0;
  double ni_ = 0.0;
  double vbi_ = 0.0;
  double mu_ = 0.0;
  double wires_ = 0.0;
  double weff_ = 0.0;
  double vth0_ = 0.0;      ///< charge-based intrinsic-wire threshold [V]
  double vth_dop_ = 0.0;   ///< body-doping shift [V]
};

}  // namespace subscale::compact
