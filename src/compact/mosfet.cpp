#include "compact/mosfet.h"

#include <cmath>
#include <stdexcept>

#include "compact/ss_model.h"
#include "compact/vth_model.h"
#include "physics/constants.h"
#include "physics/mobility.h"
#include "physics/silicon.h"

namespace subscale::compact {

double softplus(double x) {
  if (x > 40.0) return x;       // e^{-x} negligible
  if (x < -40.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

CompactMosfet::CompactMosfet(DeviceSpec spec, const Calibration& calib)
    : DeviceModel(std::move(spec), calib) {
  neff_ = spec_.effective_channel_doping(calib_.k_halo);
  wdep_ = depletion_width_at_threshold(neff_, spec_.temperature);
  ss_ = compact::subthreshold_swing(neff_, spec_.geometry.tox,
                                    spec_.geometry.leff(), spec_.temperature,
                                    calib_);
  n_ = slope_factor_from_swing(ss_, spec_.temperature);
  cox_ = physics::oxide_capacitance(spec_.geometry.tox);
  vt_ = physics::thermal_voltage(spec_.temperature);
}

std::shared_ptr<const DeviceModel> CompactMosfet::with_calibration(
    const Calibration& calib) const {
  return std::make_shared<CompactMosfet>(spec_, calib);
}

double CompactMosfet::vth_long() const {
  // Long-channel limit: drop the SCE/DIBL roll-off term.
  const VthComponents c = threshold_components(spec_, calib_, 0.0);
  return c.vth_body + calib_.delta_vth;
}

double CompactMosfet::vth(double vds) const {
  return threshold_voltage(spec_, calib_, vds);
}

double CompactMosfet::gate_capacitance() const {
  const double per_width = cox_ * spec_.geometry.lpoly +
                           2.0 * (cox_ * spec_.geometry.lov + calib_.c_fringe);
  return per_width * spec_.width;
}

double CompactMosfet::mu_eff(double vgs) const {
  const auto carrier = spec_.polarity == doping::Polarity::kNfet
                           ? physics::Carrier::kElectron
                           : physics::Carrier::kHole;
  // Effective normal field E_eff = (Q_dep + Q_inv/2)/eps_si: constant in
  // deep subthreshold (Q_inv -> 0, so the measured log-slope equals the
  // analytical S_S) and rising in strong inversion.
  const double q_dep = physics::depletion_charge(neff_, spec_.temperature);
  const double vov_smooth =
      2.0 * n_ * vt_ * softplus((vgs - vth(0.0)) / (2.0 * n_ * vt_));
  const double q_inv = cox_ * vov_smooth;
  const double e_eff = (q_dep + 0.5 * q_inv) / physics::kEpsSi;
  return physics::effective_channel_mobility(carrier, neff_, e_eff);
}

double CompactMosfet::specific_current(double vgs) const {
  const double w_over_l = spec_.width / spec_.geometry.leff();
  return calib_.k_io * 2.0 * n_ * mu_eff(vgs) * cox_ * vt_ * vt_ * w_over_l;
}

double CompactMosfet::drain_current(double vgs, double vds) const {
  const double sign = (vds < 0.0) ? -1.0 : 1.0;
  const double vds_mag = std::abs(vds);

  const double vth_d = vth(vds_mag);
  const double two_nvt = 2.0 * n_ * vt_;
  const double xf = (vgs - vth_d) / two_nvt;
  const double xr = (vgs - vth_d - n_ * vds_mag) / two_nvt;
  const double qf = softplus(xf);
  const double qr = softplus(xr);
  const double i_norm = qf * qf - qr * qr;

  // Velocity saturation: degrade by the smooth overdrive (-> 0 in weak
  // inversion, -> Vov in strong inversion).
  const auto carrier = spec_.polarity == doping::Polarity::kNfet
                           ? physics::Carrier::kElectron
                           : physics::Carrier::kHole;
  const double vsat =
      physics::saturation_velocity(carrier, spec_.temperature);
  const double vov_smooth = two_nvt * qf;
  const double mu = mu_eff(vgs);
  const double denom = 1.0 + calib_.k_vsat * mu * vov_smooth /
                                 (2.0 * vsat * spec_.geometry.leff());

  return sign * specific_current(vgs) * i_norm / denom;
}

}  // namespace subscale::compact
