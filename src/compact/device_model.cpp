#include "compact/device_model.h"

#include <stdexcept>

#include "compact/mosfet.h"
#include "compact/nanowire.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace subscale::compact {

DeviceModel::DeviceModel(DeviceSpec spec, const Calibration& calib)
    : spec_(std::move(spec)), calib_(calib) {
  spec_.validate();
}

double DeviceModel::vth_sat_extracted() const {
  // Bisection for vgs where Id(vgs, vdd) = j_crit * W/Leff.
  const double target = calib_.j_crit * spec_.width / spec_.geometry.leff();
  double lo = -0.5;
  double hi = spec_.vdd + 1.5;
  if (drain_current(hi, spec_.vdd) < target) {
    throw std::runtime_error(
        "vth_sat_extracted: extraction current never reached");
  }
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (drain_current(mid, spec_.vdd) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double DeviceModel::intrinsic_delay() const {
  return gate_capacitance() * spec_.vdd / ion();
}

std::shared_ptr<const DeviceModel> make_device_model(
    const DeviceSpec& spec, const Calibration& calib) {
  if (obs::MetricsRegistry* reg = obs::default_registry(); reg != nullptr) {
    reg->counter(obs::names::kCardsBackendDispatches).add(1);
  }
  switch (spec.backend) {
    case BackendKind::kBulkMosfet:
      return std::make_shared<CompactMosfet>(spec, calib);
    case BackendKind::kNanowireGaa:
      return std::make_shared<NanowireFet>(spec, calib);
  }
  throw std::invalid_argument("make_device_model: unknown backend kind");
}

}  // namespace subscale::compact
