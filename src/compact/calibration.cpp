#include "compact/calibration.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "compact/device_spec.h"
#include "compact/mosfet.h"
#include "compact/ss_model.h"
#include "opt/coordinate_descent.h"
#include "physics/constants.h"
#include "physics/units.h"

namespace subscale::compact {

namespace {

/// The published devices used as calibration anchors, in table units.
struct AnchorRow {
  double lpoly_nm, tox_nm, nsub_cm3, nhalo_cm3, shrink, ss_mv_per_dec;
  double weight;
};

// Table 2 (super-V_th strategy) with Fig. 2's S_S trajectory: the paper
// states S_S degrades 11 % from 90nm to 32nm; we anchor the 90nm device at
// 88 mV/dec (consistent with the sub-V_th optimum of ~80 mV/dec lying
// below it) and interpolate the intermediate nodes geometrically.
// Table 3 (sub-V_th strategy) with the stated ~80 mV/dec plateau varying
// by 1.2 mV/dec across four nodes (the paper does not state the drift
// direction; a slight rise is consistent with Eq. 2b since every term of
// the model grows as features shrink). Endpoints the paper quotes
// verbatim carry triple weight; interpolated intermediate targets are
// soft.
constexpr AnchorRow kAnchors[] = {
    // super-V_th (Table 2)
    {65.0, 2.10, 1.52e18, 3.63e18, 1.000, 88.0, 3.0},
    {46.0, 1.89, 1.97e18, 5.17e18, 0.700, 90.8, 1.0},
    {32.0, 1.70, 2.52e18, 7.83e18, 0.490, 93.9, 1.0},
    {22.0, 1.53, 3.31e18, 12.0e18, 0.343, 97.7, 3.0},
    // sub-V_th (Table 3)
    {95.0, 2.10, 1.61e18, 2.02e18, 1.000, 79.1, 3.0},
    {75.0, 1.89, 1.99e18, 2.73e18, 0.700, 79.5, 1.0},
    {60.0, 1.70, 2.53e18, 2.93e18, 0.490, 79.9, 1.0},
    {45.0, 1.53, 3.19e18, 4.89e18, 0.343, 80.3, 3.0},
};

SsAnchor to_anchor(const AnchorRow& row) {
  const DeviceSpec spec =
      make_spec_from_table(doping::Polarity::kNfet, row.lpoly_nm, row.tox_nm,
                           row.nsub_cm3, row.nhalo_cm3, 1.0, row.shrink);
  return SsAnchor{
      .nsub = spec.levels.nsub,
      .halo_add = spec.effective_channel_doping() - spec.levels.nsub,
      .tox = spec.geometry.tox,
      .leff = spec.geometry.leff(),
      .ss_target = row.ss_mv_per_dec * 1e-3,
      .weight = row.weight,
  };
}

}  // namespace

int paper_ss_anchors(SsAnchor out[8]) {
  int i = 0;
  for (const AnchorRow& row : kAnchors) {
    out[i++] = to_anchor(row);
  }
  return i;
}

Calibration fit_ss_calibration(const Calibration& base,
                               const SsAnchor* anchors, int count,
                               double* rms_error) {
  if (count <= 0) {
    throw std::invalid_argument("fit_ss_calibration: no anchors");
  }
  const auto objective = [&](const std::vector<double>& x) {
    Calibration trial = base;
    trial.c_dep = x[0];
    trial.c_sce = x[1];
    trial.c_len = x[2];
    trial.k_halo = x[3];
    double sum = 0.0;
    for (int i = 0; i < count; ++i) {
      const SsAnchor& a = anchors[i];
      const double neff = a.nsub + trial.k_halo * a.halo_add;
      const double ss = subthreshold_swing(neff, a.tox, a.leff,
                                           physics::kT300, trial);
      const double rel = (ss - a.ss_target) / a.ss_target;
      sum += a.weight * rel * rel;
    }
    return sum;
  };

  const std::vector<opt::BoundedVariable> bounds = {
      {.lo = 0.3, .hi = 3.0},   // c_dep
      {.lo = 0.05, .hi = 4.0},  // c_sce
      {.lo = 0.4, .hi = 2.0},   // c_len
      {.lo = 0.2, .hi = 2.5},   // k_halo
  };
  const opt::CoordinateDescentResult fit = opt::coordinate_descent(
      objective, {base.c_dep, base.c_sce, base.c_len, base.k_halo}, bounds,
      {.sweeps = 16, .x_tolerance_fraction = 1e-6});

  Calibration out = base;
  out.c_dep = fit.x[0];
  out.c_sce = fit.x[1];
  out.c_len = fit.x[2];
  out.k_halo = fit.x[3];
  if (rms_error != nullptr) {
    double weight_sum = 0.0;
    for (int i = 0; i < count; ++i) weight_sum += anchors[i].weight;
    *rms_error = std::sqrt(fit.value / weight_sum);
  }
  return out;
}

const Calibration& paper_calibration() {
  static const Calibration calib = [] {
    Calibration c;

    // 1) S_S-model and capacitance constants from the two-stage fit in
    //    tools/refine_calibration.cpp: stage one matches the published
    //    S_S anchors (Tables 2/3 with Fig. 2 / Sec. 3.3 slopes), stage
    //    two additionally reproduces the paper's OPTIMIZER OUTCOME (the
    //    energy-optimal L_poly column of Table 3) and the headline
    //    claims (+11 % S_S under super-V_th scaling, ~1 mV/dec sub-V_th
    //    drift). Re-run that tool and paste here if the geometry rules
    //    or the S_S model change. The large fringe constant plays the
    //    role of the fixed (wire + junction) load per stage.
    c.c_dep = 1.365998;
    c.c_sce = 0.508144;
    c.c_len = 0.997548;
    c.k_halo = 1.028986;
    // Effective per-stage wire/junction load at the 90nm node (6 fF/um,
    // scaled by the node's feature shrink in the consumers). Its size is
    // what places the paper's energy-optimal L_poly at Table 3's interior
    // optimum; physically it stands for the local interconnect + junction
    // loading the paper's MEDICI-extracted circuits carried.
    c.c_wire = 5.998376e-09;

    // 2) Anchor the current scale: the 90nm super-V_th device must leak
    //    exactly its Table 2 value, I_off = 100 pA/um, at V_dd = 1.2 V.
    //    I_off depends on delta_vth exponentially: shift the threshold.
    const AnchorRow& row90 = kAnchors[0];
    const DeviceSpec spec90 = make_spec_from_table(
        doping::Polarity::kNfet, row90.lpoly_nm, row90.tox_nm, row90.nsub_cm3,
        row90.nhalo_cm3, 1.2, row90.shrink);
    const double ioff_target = units::pA_per_um(100.0) * spec90.width;
    {
      const CompactMosfet probe(spec90, c);
      const double ioff0 = probe.ioff();
      const double nvt = probe.slope_factor() *
                         physics::thermal_voltage(spec90.temperature);
      c.delta_vth += nvt * std::log(ioff0 / ioff_target);
    }

    // 3) Threshold-extraction current density: the same device must
    //    report Table 2's V_th,sat = 403 mV under constant-current
    //    extraction.
    {
      const CompactMosfet probe(spec90, c);
      const double id_at_vth = probe.drain_current(0.403, spec90.vdd);
      c.j_crit = id_at_vth * spec90.geometry.leff() / spec90.width;
    }
    return c;
  }();
  return calib;
}

}  // namespace subscale::compact
