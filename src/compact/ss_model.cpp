#include "compact/ss_model.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "physics/constants.h"
#include "physics/silicon.h"

namespace subscale::compact {

double depletion_width_at_threshold(double neff, double temperature) {
  return physics::max_depletion_width(neff, temperature);
}

double subthreshold_swing(double neff, double tox, double leff,
                          double temperature, const Calibration& calib) {
  if (tox <= 0.0 || leff <= 0.0) {
    throw std::invalid_argument("subthreshold_swing: invalid geometry");
  }
  const double vt = physics::thermal_voltage(temperature);
  const double wdep = depletion_width_at_threshold(neff, temperature);
  const double body = 1.0 + calib.c_dep * 3.0 * tox / wdep;
  const double decay_length = calib.c_len * (wdep + 3.0 * tox);
  const double sce =
      1.0 + calib.c_sce * (11.0 * tox / wdep) *
                std::exp(-std::numbers::pi * leff / (2.0 * decay_length));
  return std::numbers::ln10 * vt * body * sce;
}

double subthreshold_swing_long(double neff, double tox, double temperature,
                               const Calibration& calib) {
  if (tox <= 0.0) {
    throw std::invalid_argument("subthreshold_swing_long: invalid tox");
  }
  const double vt = physics::thermal_voltage(temperature);
  const double wdep = depletion_width_at_threshold(neff, temperature);
  return std::numbers::ln10 * vt * (1.0 + calib.c_dep * 3.0 * tox / wdep);
}

double slope_factor_from_swing(double ss, double temperature) {
  return ss / (std::numbers::ln10 * physics::thermal_voltage(temperature));
}

}  // namespace subscale::compact
