#pragma once

/// \file mosfet.h
/// All-region analytical MOSFET model built from the paper's ingredients:
/// weak-inversion current with slope factor m (Eq. 1), S_S from Eq. 2b,
/// the V_th decomposition of Sec. 2.2, an EKV-style interpolation for the
/// super-threshold region (needed for the nominal-V_dd points of Figs. 3
/// and 5 and Table 2's C_g V_dd/I_on metric) and a Caughey–Thomas
/// velocity-saturation correction.
///
/// The model is polarity-agnostic: it computes source-referenced
/// *magnitudes* (an NFET's I_d(V_gs, V_ds) or a PFET's I_d(V_sg, V_sd));
/// the circuit layer applies signs. Currents scale with spec.width.

#include "compact/calibration.h"
#include "compact/device_spec.h"

namespace subscale::compact {

/// Numerically safe softplus ln(1 + e^x), the EKV interpolation kernel.
double softplus(double x);

class CompactMosfet {
 public:
  /// \param spec   fully specified device (validated on construction)
  /// \param calib  calibration constants (default: fit to the paper)
  explicit CompactMosfet(DeviceSpec spec,
                         const Calibration& calib = paper_calibration());

  const DeviceSpec& spec() const { return spec_; }
  const Calibration& calibration() const { return calib_; }

  // ---- derived device quantities -----------------------------------

  /// Effective channel doping N_eff [m^-3].
  double neff() const { return neff_; }
  /// Depletion width at threshold [m].
  double wdep() const { return wdep_; }
  /// Inverse subthreshold slope S_S [V/dec] (Eq. 2b).
  double subthreshold_swing() const { return ss_; }
  /// Slope factor m = S_S/(vT ln 10).
  double slope_factor() const { return n_; }
  /// Long-channel threshold (no SCE/DIBL) [V].
  double vth_long() const;
  /// Threshold magnitude at drain bias vds [V] (model parameter).
  double vth(double vds) const;
  /// Saturation threshold V_th(V_ds = V_dd) [V] (model parameter).
  double vth_sat() const { return vth(spec_.vdd); }
  /// Constant-current extracted threshold at V_ds = V_dd [V]; this is what
  /// Table 2's V_th,sat column reports (extraction current density set by
  /// calibration j_crit, per W/L_eff square).
  double vth_sat_extracted() const;
  /// Oxide capacitance per area [F/m^2].
  double cox() const { return cox_; }
  /// Total gate capacitance C_g = W (C_ox L_poly + 2 (C_ox l_ov + C_fr)) [F].
  double gate_capacitance() const;
  /// Effective mobility at gate bias vgs [m^2/Vs].
  double mu_eff(double vgs) const;
  /// EKV specific current at gate bias vgs [A].
  double specific_current(double vgs) const;

  // ---- currents (magnitudes) ----------------------------------------

  /// Drain current at (vgs, vds) [A]. Valid in all regions; antisymmetric
  /// in vds for small reverse bias (keeps circuit Newton well-behaved).
  double drain_current(double vgs, double vds) const;

  /// Off current I_off = I_d(0, V_dd) [A].
  double ioff() const { return drain_current(0.0, spec_.vdd); }
  /// On current I_on = I_d(V_dd, V_dd) [A].
  double ion() const { return drain_current(spec_.vdd, spec_.vdd); }
  /// On current at a reduced rail: I_d(v, v) [A] (paper's 250 mV points).
  double ion_at(double v) const { return drain_current(v, v); }

  /// Intrinsic delay C_g V_dd / I_on [s] (Table 2's figure of merit).
  double intrinsic_delay() const;

 private:
  DeviceSpec spec_;
  Calibration calib_;
  double neff_ = 0.0;
  double wdep_ = 0.0;
  double ss_ = 0.0;
  double n_ = 0.0;
  double cox_ = 0.0;
  double vt_ = 0.0;
};

}  // namespace subscale::compact
