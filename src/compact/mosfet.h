#pragma once

/// \file mosfet.h
/// All-region analytical MOSFET model built from the paper's ingredients:
/// weak-inversion current with slope factor m (Eq. 1), S_S from Eq. 2b,
/// the V_th decomposition of Sec. 2.2, an EKV-style interpolation for the
/// super-threshold region (needed for the nominal-V_dd points of Figs. 3
/// and 5 and Table 2's C_g V_dd/I_on metric) and a Caughey–Thomas
/// velocity-saturation correction. Backend #1 of the DeviceModel
/// interface (compact/device_model.h) and the default everywhere.
///
/// The model is polarity-agnostic: it computes source-referenced
/// *magnitudes* (an NFET's I_d(V_gs, V_ds) or a PFET's I_d(V_sg, V_sd));
/// the circuit layer applies signs. Currents scale with spec.width.

#include "compact/calibration.h"
#include "compact/device_model.h"
#include "compact/device_spec.h"

namespace subscale::compact {

/// Numerically safe softplus ln(1 + e^x), the EKV interpolation kernel.
double softplus(double x);

class CompactMosfet final : public DeviceModel {
 public:
  /// \param spec   fully specified device (validated on construction)
  /// \param calib  calibration constants (default: fit to the paper)
  explicit CompactMosfet(DeviceSpec spec,
                         const Calibration& calib = paper_calibration());

  // ---- DeviceModel contract ----------------------------------------

  BackendKind backend() const override { return BackendKind::kBulkMosfet; }
  double drain_current(double vgs, double vds) const override;
  /// Inverse subthreshold slope S_S [V/dec] (Eq. 2b).
  double subthreshold_swing() const override { return ss_; }
  /// Slope factor m = S_S/(vT ln 10).
  double slope_factor() const override { return n_; }
  /// Threshold magnitude at drain bias vds [V] (model parameter).
  double vth(double vds) const override;
  /// Total gate capacitance C_g = W (C_ox L_poly + 2 (C_ox l_ov + C_fr)) [F].
  double gate_capacitance() const override;
  std::shared_ptr<const DeviceModel> with_calibration(
      const Calibration& calib) const override;

  // ---- bulk-specific derived quantities -----------------------------

  /// Effective channel doping N_eff [m^-3].
  double neff() const { return neff_; }
  /// Depletion width at threshold [m].
  double wdep() const { return wdep_; }
  /// Long-channel threshold (no SCE/DIBL) [V].
  double vth_long() const;
  /// Oxide capacitance per area [F/m^2].
  double cox() const { return cox_; }
  /// Effective mobility at gate bias vgs [m^2/Vs].
  double mu_eff(double vgs) const;
  /// EKV specific current at gate bias vgs [A].
  double specific_current(double vgs) const;

 private:
  double neff_ = 0.0;
  double wdep_ = 0.0;
  double ss_ = 0.0;
  double n_ = 0.0;
  double cox_ = 0.0;
  double vt_ = 0.0;
};

}  // namespace subscale::compact
