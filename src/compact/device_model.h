#pragma once

/// \file device_model.h
/// The compact device-backend interface the circuit and scaling layers
/// program against. A DeviceModel is a pure function of (DeviceSpec,
/// Calibration): all queries are const, thread-safe, and deterministic,
/// so models can be shared freely across circuits and threads.
///
/// Backends:
///   * CompactMosfet (compact/mosfet.h) — the paper's planar-bulk
///     all-region model; backend #1 and the default.
///   * NanowireFet (compact/nanowire.h) — cylindrical gate-all-around
///     nanowire FET, subthreshold-accurate; backend #2.
///
/// The virtual surface is the minimal query set the consumers actually
/// use (drain current, S_S, slope factor, V_th, gate capacitance) plus
/// `with_calibration` so variability's V_th-shift resampling works on
/// any backend. Derived figures (I_off, I_on, intrinsic delay, the
/// constant-current extracted V_th) are non-virtual conveniences defined
/// on top of the virtual queries — they compute exactly what the old
/// concrete CompactMosfet methods computed, arithmetic untouched.

#include <memory>

#include "compact/calibration.h"
#include "compact/device_spec.h"

namespace subscale::compact {

class DeviceModel {
 public:
  virtual ~DeviceModel() = default;

  const DeviceSpec& spec() const { return spec_; }
  const Calibration& calibration() const { return calib_; }

  /// Which physics this model implements; matches spec().backend.
  virtual BackendKind backend() const = 0;
  /// Stable backend name for reports and cache-key metadata.
  const char* backend_name() const { return backend_kind_name(backend()); }

  // ---- virtual queries (the backend contract) -----------------------

  /// Drain current magnitude at (vgs, vds) [A]. Valid in all regions;
  /// antisymmetric in vds for small reverse bias.
  virtual double drain_current(double vgs, double vds) const = 0;
  /// Inverse subthreshold slope S_S [V/dec].
  virtual double subthreshold_swing() const = 0;
  /// Subthreshold slope factor m = S_S/(vT ln 10).
  virtual double slope_factor() const = 0;
  /// Threshold magnitude at drain bias vds [V] (model parameter).
  virtual double vth(double vds) const = 0;
  /// Total gate capacitance [F] (scales with spec().width).
  virtual double gate_capacitance() const = 0;
  /// The same device under a different calibration (variability shifts
  /// delta_vth through this without knowing the concrete backend).
  virtual std::shared_ptr<const DeviceModel> with_calibration(
      const Calibration& calib) const = 0;

  // ---- derived figures (shared across backends) ---------------------

  /// Saturation threshold V_th(V_ds = V_dd) [V] (model parameter).
  double vth_sat() const { return vth(spec_.vdd); }
  /// Constant-current extracted threshold at V_ds = V_dd [V]: bisection
  /// for I_d(vgs, V_dd) = j_crit * W/L_eff (Table 2's V_th,sat column).
  double vth_sat_extracted() const;
  /// Off current I_off = I_d(0, V_dd) [A].
  double ioff() const { return drain_current(0.0, spec_.vdd); }
  /// On current I_on = I_d(V_dd, V_dd) [A].
  double ion() const { return drain_current(spec_.vdd, spec_.vdd); }
  /// On current at a reduced rail: I_d(v, v) [A] (the 250 mV points).
  double ion_at(double v) const { return drain_current(v, v); }
  /// Intrinsic delay C_g V_dd / I_on [s] (Table 2's figure of merit).
  double intrinsic_delay() const;

 protected:
  /// Validates the spec. Derived constructors compute their own cached
  /// quantities from the stored members.
  DeviceModel(DeviceSpec spec, const Calibration& calib);

  DeviceSpec spec_;
  Calibration calib_;
};

/// Construct the backend named by spec.backend. Counts one
/// cards.backend_dispatches on the process-default metrics registry.
/// Throws std::invalid_argument on a backend this build does not know.
std::shared_ptr<const DeviceModel> make_device_model(
    const DeviceSpec& spec,
    const Calibration& calib = paper_calibration());

}  // namespace subscale::compact
