#include "compact/vth_model.h"

#include <cmath>

#include "compact/ss_model.h"
#include "physics/constants.h"
#include "physics/silicon.h"

namespace subscale::compact {

namespace {

/// Long-channel threshold at channel doping `nch`.
double body_threshold(double nch, double tox, double temperature) {
  const double two_phi_b =
      physics::surface_potential_at_threshold(nch, temperature);
  const double vfb = physics::flatband_voltage_npoly_psub(nch, temperature);
  const double qdep = physics::depletion_charge(nch, temperature);
  const double cox = physics::oxide_capacitance(tox);
  return vfb + two_phi_b + qdep / cox;
}

}  // namespace

VthComponents threshold_components(const DeviceSpec& spec,
                                   const Calibration& calib, double vds) {
  spec.validate();
  const double temperature = spec.temperature;
  const double tox = spec.geometry.tox;
  const double neff = spec.effective_channel_doping(calib.k_halo);

  VthComponents c;
  c.vth_body = body_threshold(neff, tox, temperature);
  c.vth_sub = body_threshold(spec.levels.nsub, tox, temperature);
  c.dvth_halo = c.vth_body - c.vth_sub;

  const double two_phi_b =
      physics::surface_potential_at_threshold(neff, temperature);
  c.vbi = physics::builtin_potential(neff, spec.levels.nsd, temperature);

  const double wdep = depletion_width_at_threshold(neff, temperature);
  c.lt = std::sqrt(physics::kEpsSi * tox * wdep / physics::kEpsSiO2);

  const double leff = spec.geometry.leff();
  c.dvth_sce = calib.k_dibl * (2.0 * (c.vbi - two_phi_b) + vds) *
               std::exp(-leff / (2.0 * c.lt));

  c.vth = c.vth_body - c.dvth_sce + calib.delta_vth;
  return c;
}

double threshold_voltage(const DeviceSpec& spec, const Calibration& calib,
                         double vds) {
  return threshold_components(spec, calib, vds).vth;
}

double dibl_coefficient(const DeviceSpec& spec, const Calibration& calib) {
  const double vth_lin = threshold_voltage(spec, calib, 0.05);
  const double vth_sat = threshold_voltage(spec, calib, spec.vdd);
  return (vth_lin - vth_sat) / (spec.vdd - 0.05);
}

}  // namespace subscale::compact
