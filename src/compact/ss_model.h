#pragma once

/// \file ss_model.h
/// The paper's inverse-subthreshold-slope model (Eq. 2):
///
///   S_S = 2.3 vT (1 + c_dep 3 Tox/Wdep)
///              (1 + c_sce 11 Tox/Wdep exp(-pi Leff / (2 c_len (Wdep+3Tox))))
///
/// with W_dep the depletion width at threshold for the effective channel
/// doping N_eff, and c_* calibration constants (1.0 recovers the textbook
/// form from Taur & Ning, the paper's ref [19]).

#include "compact/calibration.h"

namespace subscale::compact {

/// Depletion width at threshold for doping neff [m^-3] at temperature T.
double depletion_width_at_threshold(double neff, double temperature);

/// Inverse subthreshold slope S_S [V/decade], paper Eq. 2(b).
/// \param neff effective channel doping [m^-3]
/// \param tox  oxide thickness [m]
/// \param leff effective channel length [m]
double subthreshold_swing(double neff, double tox, double leff,
                          double temperature, const Calibration& calib);

/// Long-channel limit of Eq. 2(b): drops the exponential term.
double subthreshold_swing_long(double neff, double tox, double temperature,
                               const Calibration& calib);

/// Subthreshold slope factor m = S_S / (vT ln 10) (Eq. 2a inverted).
double slope_factor_from_swing(double ss, double temperature);

}  // namespace subscale::compact
