#include "serve/dispatcher.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cache/serve_keys.h"
#include "cards/technology_card.h"
#include "obs/names.h"
#include "tcad/solver_status.h"

namespace subscale::serve {

namespace {

/// Internal: an anticipated failure already classified to a wire code.
struct QueryError {
  std::string code;
  std::string message;
  std::string detail;
};

[[noreturn]] void fail(const std::string& code, const std::string& message,
                       const std::string& detail = {}) {
  throw QueryError{code, message, detail};
}

double node_nm(const scaling::NodeInput& node) {
  // "90nm" -> 90.0; matches bench::node_nm so figures chart the same x.
  return std::atof(node.name.c_str());
}

}  // namespace

void DispatcherOptions::validate() const {
  if (default_card.empty()) {
    throw std::invalid_argument(
        "DispatcherOptions: default_card must not be empty");
  }
  run.validate();
  gummel.validate();
}

Dispatcher::Dispatcher(const DispatcherOptions& options)
    : options_(options), born_(std::chrono::steady_clock::now()) {
  options_.validate();
  if (obs::MetricsRegistry* reg = options_.run.sink(); reg != nullptr) {
    executed_ctr_ = &reg->counter(obs::names::kServeExecuted);
    coalesced_ctr_ = &reg->counter(obs::names::kServeCoalesced);
  }
}

double Dispatcher::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       born_)
      .count();
}

const core::ScalingStudy& Dispatcher::study_for(const std::string& card) {
  std::lock_guard<std::mutex> lock(studies_mu_);
  auto it = studies_.find(card);
  if (it == studies_.end()) {
    cards::TechnologyCard resolved;
    try {
      resolved = cards::resolve_card(card);
    } catch (const std::exception& e) {
      fail(codes::kBadCard, "cannot resolve card '" + card + "'", e.what());
    }
    core::StudyOptions study_options;
    study_options.card = std::move(resolved);
    study_options.run = options_.run;
    it = studies_
             .emplace(card, std::make_unique<core::ScalingStudy>(
                                compact::paper_calibration(), study_options))
             .first;
  }
  return *it->second;
}

Result Dispatcher::dispatch(const Query& query) {
  // server_info is time-varying by definition — never coalesced.
  // metrics is an observation, not work — coalescing it through the
  // in-flight table would let a follower receive a stale snapshot.
  if (query.kind == QueryKind::kServerInfo ||
      query.kind == QueryKind::kMetrics) {
    return compute(query);
  }

  const cache::HashKey key = cache::query_key(query);
  std::promise<Result> promise;
  std::shared_future<Result> fut;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      fut = it->second;
    } else {
      fut = promise.get_future().share();
      inflight_.emplace(key, fut);
      leader = true;
    }
  }
  if (!leader) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    if (coalesced_ctr_ != nullptr) coalesced_ctr_->add();
    Result r = fut.get();
    r.id = query.id;  // each follower gets its own correlation tag back
    return r;
  }
  if (options_.compute_hook) options_.compute_hook(query);
  Result r = compute(query);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(key);
  }
  promise.set_value(r);
  return r;
}

Result Dispatcher::compute(const Query& query) {
  // A metrics query observes the counters, so it must not be one:
  // bumping serve.executed here would make the export perturb itself
  // and break daemon-vs-CLI byte identity.
  if (query.kind != QueryKind::kMetrics) {
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (executed_ctr_ != nullptr) executed_ctr_->add();
  }
  try {
    query.validate();
    switch (query.kind) {
      case QueryKind::kSweep:
        return compute_sweep(query);
      case QueryKind::kDesign:
        return compute_design(query);
      case QueryKind::kFigure:
        return compute_figure(query);
      case QueryKind::kServerInfo:
        return compute_info(query);
      case QueryKind::kMetrics:
        return compute_metrics(query);
    }
    fail(codes::kBadRequest, "unknown query kind");
  } catch (const QueryError& e) {
    return error_result(query, e.code, e.message, e.detail);
  } catch (const tcad::SolverError& e) {
    return error_result(query, codes::kSolverFailure,
                        "solver failed on the requested problem", e.what());
  } catch (const std::invalid_argument& e) {
    return error_result(query, codes::kBadRequest, "invalid query",
                        e.what());
  } catch (const std::exception& e) {
    return error_result(query, codes::kInternal, "internal error", e.what());
  }
}

namespace {

/// The designed device backing (strategy, node) of a study, as the
/// common DesignedDevice view (+ the sub-V_th extras when applicable).
struct DesignView {
  const scaling::DesignedDevice* device = nullptr;
  const scaling::SubVthDevice* sub = nullptr;  ///< null for super-V_th
};

DesignView design_view(const core::ScalingStudy& study,
                       core::Strategy strategy, std::size_t node) {
  if (node >= study.node_count()) {
    fail(codes::kBadRequest,
         "node index out of range (card has " +
             std::to_string(study.node_count()) + " nodes)",
         "node " + std::to_string(node));
  }
  DesignView view;
  if (strategy == core::Strategy::kSubVth) {
    view.sub = &study.sub_devices()[node];
    view.device = &view.sub->device;
  } else {
    view.device = &study.super_devices()[node];
  }
  return view;
}

}  // namespace

Result Dispatcher::compute_sweep(const Query& query) {
  const core::ScalingStudy& study = study_for(query.card);
  const DesignView view = design_view(study, query.strategy, query.node);
  const compact::DeviceSpec& spec = view.device->spec;
  if (spec.backend != compact::BackendKind::kBulkMosfet) {
    fail(codes::kUnsupported,
         "TCAD sweeps are bulk-only (nanowire decks validate through the "
         "compact backend)",
         std::string("backend ") + compact::backend_kind_name(spec.backend));
  }
  const tcad::MeshOptions& mesh =
      query.coarse_mesh ? options_.coarse_mesh : options_.mesh;
  tcad::TcadDevice device(spec, mesh, options_.gummel, options_.run);
  const tcad::SweepResult sweep =
      device.id_vg(query.vd, query.vg_start, query.vg_stop, query.points);

  Result r;
  r.id = query.id;
  r.kind = QueryKind::kSweep;
  r.ok = true;
  r.card = query.card;
  r.strategy = core::strategy_name(query.strategy);
  r.node = query.node;
  r.sweep.node_name = view.device->node.name;
  r.sweep.lpoly_nm = spec.geometry.lpoly * 1e9;
  r.sweep.vd = query.vd;
  r.sweep.points = sweep.points;
  r.sweep.attempted = sweep.report.attempted;
  r.sweep.failed = sweep.report.failures.size();
  try {
    r.sweep.extraction = tcad::extract_from_sweep(sweep);
    r.sweep.has_extraction = true;
  } catch (const std::invalid_argument&) {
    r.sweep.has_extraction = false;  // too few points / non-positive currents
  }
  return r;
}

namespace {

DesignPayload design_payload(const DesignView& view) {
  const scaling::DesignedDevice& d = *view.device;
  DesignPayload p;
  p.node_name = d.node.name;
  p.lpoly_nm = d.spec.geometry.lpoly * 1e9;
  p.tox_nm = d.spec.geometry.tox * 1e9;
  p.vdd = d.spec.vdd;
  p.nsub_cm3 = d.nsub_cm3;
  p.nhalo_net_cm3 = d.nhalo_net_cm3;
  p.vth_sat_mv = d.vth_sat_mv;
  p.ioff_pa_um = d.ioff_pa_um;
  p.ss_mv_dec = d.ss_mv_dec;
  p.tau_ps = d.tau_ps;
  if (view.sub != nullptr) {
    p.subvth = true;
    p.lpoly_opt_nm = view.sub->lpoly_opt_nm;
    p.energy_factor = view.sub->energy_factor_raw;
    p.delay_factor = view.sub->delay_factor_raw;
  }
  return p;
}

}  // namespace

Result Dispatcher::compute_design(const Query& query) {
  const core::ScalingStudy& study = study_for(query.card);
  const DesignView view = design_view(study, query.strategy, query.node);

  Result r;
  r.id = query.id;
  r.kind = QueryKind::kDesign;
  r.ok = true;
  r.card = query.card;
  r.strategy = core::strategy_name(query.strategy);
  r.node = query.node;
  r.design = design_payload(view);
  return r;
}

Result Dispatcher::compute_figure(const Query& query) {
  const core::ScalingStudy& study = study_for(query.card);

  Result r;
  r.id = query.id;
  r.kind = QueryKind::kFigure;
  r.ok = true;
  r.card = query.card;
  r.strategy = core::strategy_name(query.strategy);
  r.node = 0;
  r.figure.figure = query.figure;
  r.figure.x_label = "node_nm";
  for (std::size_t i = 0; i < study.node_count(); ++i) {
    const DesignView view = design_view(study, query.strategy, i);
    const DesignPayload row = design_payload(view);
    r.figure.x.push_back(node_nm(view.device->node));
    double y = 0.0;
    if (query.figure == "ss") {
      y = row.ss_mv_dec;
      r.figure.y_label = "ss_mv_dec";
    } else if (query.figure == "tau") {
      y = row.tau_ps;
      r.figure.y_label = "tau_ps";
    } else if (query.figure == "ioff") {
      y = row.ioff_pa_um;
      r.figure.y_label = "ioff_pa_um";
    } else if (query.figure == "vth") {
      y = row.vth_sat_mv;
      r.figure.y_label = "vth_sat_mv";
    } else {  // "lpoly" (validate() rejected everything else)
      y = row.subvth ? row.lpoly_opt_nm : row.lpoly_nm;
      r.figure.y_label = "lpoly_nm";
    }
    r.figure.y.push_back(y);
  }
  return r;
}

Result Dispatcher::compute_info(const Query& query) {
  Result r;
  r.id = query.id;
  r.kind = QueryKind::kServerInfo;
  r.ok = true;
  r.info.proto = kProtocolVersion;
  r.info.card = options_.default_card;
  r.info.uptime_s = uptime_seconds();
  if (obs::MetricsRegistry* reg = options_.run.sink(); reg != nullptr) {
    const obs::MetricsSnapshot snap = reg->snapshot();
    for (const auto& [name, value] : snap.counters) {
      r.info.metrics.emplace_back(name, static_cast<double>(value));
    }
    for (const auto& [name, value] : snap.gauges) {
      r.info.metrics.emplace_back(name, value);
    }
    for (const obs::MetricsSnapshot::HistogramValue& h : snap.histograms) {
      r.info.metrics.emplace_back(h.name + ".count",
                                  static_cast<double>(h.count));
      r.info.metrics.emplace_back(h.name + ".sum", h.sum);
    }
    std::sort(r.info.metrics.begin(), r.info.metrics.end());
  }
  return r;
}

Result Dispatcher::compute_metrics(const Query& query) {
  Result r;
  r.id = query.id;
  r.kind = QueryKind::kMetrics;
  r.ok = true;
  MetricsPayload& p = r.metrics;
  if (obs::MetricsRegistry* reg = options_.run.sink(); reg != nullptr) {
    p.enabled = true;
    const obs::MetricsSnapshot snap = reg->snapshot();
    p.counters = snap.counters;
    p.gauges = snap.gauges;
    for (const obs::MetricsSnapshot::HistogramValue& h : snap.histograms) {
      MetricsPayload::Hist hist;
      hist.name = h.name;
      hist.count = h.count;
      hist.sum = h.sum;
      hist.buckets = h.buckets;
      hist.p50 = h.percentile(50.0);
      hist.p90 = h.percentile(90.0);
      hist.p99 = h.percentile(99.0);
      p.histograms.push_back(std::move(hist));
    }
  }
  if (options_.admission != nullptr) {
    const AdmissionController& a = *options_.admission;
    p.has_admission = true;
    p.admission.inflight = a.inflight();
    p.admission.capacity = a.options().queue_capacity;
    p.admission.effective_capacity = a.effective_capacity();
    p.admission.smoothed_latency_ms = a.smoothed_latency_ms();
    p.admission.governor = a.options().latency_target_ms > 0.0;
    p.admission.latency_target_ms = a.options().latency_target_ms;
  }
  if (obs::TraceRing* ring = options_.run.trace; ring != nullptr) {
    p.has_trace = true;
    p.trace.recorded = ring->total_recorded();
    p.trace.dropped = ring->dropped();
    p.trace.capacity = ring->capacity();
  }
  if (obs::SpanProfiler* prof = options_.run.span_sink(); prof != nullptr) {
    const obs::ProfileSnapshot snap = prof->snapshot();
    p.has_profiler = true;
    p.profiler.spans = snap.spans.size();
    p.profiler.dropped = snap.dropped;
    for (const obs::ProfileRollupRow& row : snap.rollup()) {
      MetricsPayload::ProfilerState::RollupRow rr;
      rr.label = row.label;
      rr.count = row.count;
      rr.total_ms = row.total_ms;
      rr.self_ms = row.self_ms;
      p.profiler.rollup.push_back(std::move(rr));
    }
  }
  return r;
}

}  // namespace subscale::serve
