#pragma once

/// \file dispatcher.h
/// The one dispatch path from a serve::Query to a serve::Result, used
/// identically by the socket daemon (serve/server.h) and the one-shot
/// `subscale_query` CLI — transport never touches semantics, so the two
/// can never drift.
///
/// A Dispatcher owns a registry of ScalingStudy instances (one per
/// technology card it has been asked about; built lazily, thread-safe)
/// and routes each query through the normal library stack — study
/// design loops for kDesign/kFigure, TcadDevice::id_vg for kSweep —
/// under one full exec::RunContext, so the PR-5 solve cache, metrics
/// and profiler all flow in exactly as they do for batch studies.
///
/// Error stance: dispatch() NEVER throws. Every internal exception —
/// the TCAD factory rejecting a nanowire deck, a malformed card path,
/// a node index out of range, a solver giving up in strict mode — maps
/// to a structured {code, message, detail} error Result (serve/query.h
/// codes::*). A bad query must never take the daemon down.
///
/// Coalescing: identical in-flight queries (same cache::query_key, see
/// cache/serve_keys.h) are solved exactly once. The first caller
/// computes; concurrent callers with the same key wait on the leader's
/// shared_future and receive a copy of the same Result (their own `id`
/// echoed back). Combined with the content-addressed solve cache this
/// gives three tiers: identical-and-in-flight -> one solve shared via
/// the future; identical-but-done -> bitwise replay from the cache;
/// fresh -> a real solve. `serve.coalesced` counts the followers,
/// `serve.executed` the leaders.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cache/hash.h"
#include "core/scaling_study.h"
#include "exec/run_context.h"
#include "serve/admission.h"
#include "serve/query.h"

namespace subscale::serve {

struct DispatcherOptions {
  /// The card kServerInfo reports as "active"; queries name their own.
  std::string default_card = "paper_bulk_lstp";
  /// Execution/telemetry/cache context for every solve the dispatcher
  /// runs. metrics/cache resolve through the usual sinks (explicit >
  /// process default > off).
  exec::RunContext run{};
  /// Mesh/solver options for kSweep queries; `coarse_mesh` is the
  /// interactive-latency preset a query opts into (defaults match the
  /// orchestrator's --coarse-mesh spacings).
  tcad::MeshOptions mesh{};
  tcad::MeshOptions coarse_mesh{.surface_spacing = 0.6e-9,
                                .junction_spacing = 1.5e-9};
  tcad::GummelOptions gummel{};
  /// Test hook: runs on the leader after its in-flight registration and
  /// before the actual solve — lets the coalescing tests hold the
  /// leader in place until every follower has arrived. Never set in
  /// production.
  std::function<void(const Query&)> compute_hook;
  /// The admission controller whose governor state a kMetrics query
  /// reports (the daemon wires its own in; null — the CLI's local mode
  /// — omits the admission block). Observed only, never consulted for
  /// admission decisions: the Dispatcher itself admits everything.
  const AdmissionController* admission = nullptr;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class Dispatcher {
 public:
  explicit Dispatcher(const DispatcherOptions& options = {});

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Answer one query. Never throws; failures come back as structured
  /// error Results. Safe to call from many threads concurrently.
  Result dispatch(const Query& query);

  const DispatcherOptions& options() const { return options_; }

  /// Leaders (queries actually computed) and followers (queries served
  /// from a leader's in-flight future) so far — test observability;
  /// the same numbers land in serve.executed / serve.coalesced.
  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  std::uint64_t coalesced() const {
    return coalesced_.load(std::memory_order_relaxed);
  }

  /// Seconds since construction (the daemon's uptime for server_info).
  double uptime_seconds() const;

 private:
  /// The study for a card id-or-path, built on first use. Throws
  /// std::invalid_argument on an unresolvable card.
  const core::ScalingStudy& study_for(const std::string& card);

  /// The uncoalesced compute path; classifies its own exceptions.
  Result compute(const Query& query);
  Result compute_sweep(const Query& query);
  Result compute_design(const Query& query);
  Result compute_figure(const Query& query);
  Result compute_info(const Query& query);
  /// Non-perturbing by contract: snapshots the registry/admission/trace/
  /// profiler without bumping serve.executed (or any other counter), so
  /// two back-to-back metrics queries against unchanged state render
  /// byte-identical documents.
  Result compute_metrics(const Query& query);

  DispatcherOptions options_;
  std::chrono::steady_clock::time_point born_;

  std::mutex studies_mu_;
  std::map<std::string, std::unique_ptr<core::ScalingStudy>> studies_;

  std::mutex inflight_mu_;
  std::unordered_map<cache::HashKey, std::shared_future<Result>,
                     cache::HashKeyHasher>
      inflight_;

  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> coalesced_{0};

  // Instrument pointers resolved once at construction (null = off).
  obs::Counter* executed_ctr_ = nullptr;
  obs::Counter* coalesced_ctr_ = nullptr;
};

}  // namespace subscale::serve
