#pragma once

/// \file query.h
/// The design-query wire schema, as value types: `serve::Query` (what a
/// client asks) and `serve::Result` (what comes back), plus their JSON
/// round-trip. This is the transport-agnostic core of the serving
/// layer: the long-lived daemon (serve/server.h), the one-shot
/// `subscale_query` CLI and the tests all build the SAME Query, run it
/// through the SAME Dispatcher, and render the SAME canonical JSON — so
/// the socket path and the batch path can never drift.
///
/// Wire schema (`subscale.query.v1`): one flat JSON object per request,
///   {"proto": "subscale.query.v1", "kind": "sweep", "card": "...",
///    "strategy": "supervth", "node": 0, "vd": 0.25, ...}
/// and one per response,
///   {"proto": "...", "id": "...", "ok": true, "kind": "sweep",
///    "result": {...}}
/// or, on failure,
///   {"proto": "...", "id": "...", "ok": false,
///    "error": {"code": "...", "message": "...", "detail": "..."}}.
/// Responses are canonical: io::JsonWriter, insertion-ordered keys,
/// %.17g doubles — two identical queries answered from the same cache
/// state produce byte-identical documents, which is what the serve
/// chaos smoke diffs across a daemon kill/restart and against the
/// one-shot CLI.
///
/// Versioning: `kProtocolVersion` names the schema. A request carrying
/// a different proto string is answered with a `bad_request` error (the
/// daemon never guesses at a schema it does not speak); bump the
/// version when the field set changes meaning.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/scaling_study.h"
#include "tcad/device_sim.h"
#include "tcad/extract.h"

namespace subscale::serve {

/// The wire-schema version string every request/response carries.
inline constexpr const char* kProtocolVersion = "subscale.query.v1";

/// What a query asks for.
enum class QueryKind {
  kSweep,       ///< device -> Id-Vg sweep + extracted metrics (TCAD)
  kDesign,      ///< (card, strategy, node) -> optimized design row
  kFigure,      ///< one metric across the card's nodes, as a series
  kServerInfo,  ///< protocol/uptime/metrics snapshot of the daemon
  kMetrics,     ///< full structured telemetry export (non-perturbing)
};

/// Canonical lowercase kind name ("sweep", "design", "figure",
/// "server_info", "metrics").
const char* query_kind_name(QueryKind kind);
/// Parse a kind name; false (out untouched) on an unknown one.
bool parse_query_kind(const std::string& name, QueryKind& out);

/// Structured protocol error: every failure a query can hit — a
/// malformed request, an unknown card path, the TCAD factory rejecting
/// a nanowire deck, a solver giving up — maps to one of these codes
/// instead of taking the daemon down. `message` is the stable
/// human-readable summary; `detail` carries the underlying exception
/// text when there is one.
struct Error {
  std::string code;
  std::string message;
  std::string detail;

  bool empty() const { return code.empty(); }
};

/// The closed set of error codes (wire-stable; clients switch on them).
namespace codes {
inline constexpr const char* kBadRequest = "bad_request";
inline constexpr const char* kBadCard = "bad_card";
inline constexpr const char* kUnsupported = "unsupported";
inline constexpr const char* kSolverFailure = "solver_failure";
inline constexpr const char* kThrottled = "throttled";
inline constexpr const char* kOverloaded = "overloaded";
inline constexpr const char* kInternal = "internal";
}  // namespace codes

/// The figure metrics a kFigure query can chart across a card's nodes
/// (designed-device report values; x is always the node size in nm).
const std::vector<std::string>& figure_kinds();

/// One design-space query. Every field except `id` participates in the
/// query's content hash (cache/serve_keys.h), so two requests that pose
/// the same problem coalesce onto one solve regardless of who asks.
struct Query {
  QueryKind kind = QueryKind::kServerInfo;
  std::string id;  ///< client correlation tag; echoed, never hashed
  std::string card = "paper_bulk_lstp";  ///< builtin id or card-file path
  core::Strategy strategy = core::Strategy::kSuperVth;
  std::size_t node = 0;  ///< index into the card's resolved node list
  // kSweep parameters (the TCAD gate sweep):
  double vd = 0.25;
  double vg_start = 0.0;
  double vg_stop = 0.45;
  std::size_t points = 10;
  /// Interactive-latency mesh preset (the orchestrator's --coarse-mesh
  /// spacings) instead of the full-resolution default.
  bool coarse_mesh = false;
  // kFigure parameter:
  std::string figure;  ///< one of figure_kinds()

  /// Throws std::invalid_argument naming the offending field (empty
  /// card, points < 2, vg_stop <= vg_start, unknown figure, ...).
  void validate() const;
};

/// kSweep payload: the converged curve and what extract.h read off it.
struct SweepPayload {
  std::string node_name;  ///< "90nm" ...
  double lpoly_nm = 0.0;  ///< designed gate length
  double vd = 0.0;
  std::vector<tcad::IdVgPoint> points;  ///< converged points only
  std::size_t attempted = 0;
  std::size_t failed = 0;
  bool has_extraction = false;  ///< curve was extractable
  tcad::SweepExtraction extraction;
};

/// kDesign payload: one Table-2/Table-3 style report row.
struct DesignPayload {
  std::string node_name;
  double lpoly_nm = 0.0;
  double tox_nm = 0.0;
  double vdd = 0.0;
  double nsub_cm3 = 0.0;
  double nhalo_net_cm3 = 0.0;
  double vth_sat_mv = 0.0;
  double ioff_pa_um = 0.0;
  double ss_mv_dec = 0.0;
  double tau_ps = 0.0;
  bool subvth = false;  ///< the three fields below are meaningful
  double lpoly_opt_nm = 0.0;
  double energy_factor = 0.0;
  double delay_factor = 0.0;
};

/// kFigure payload: one metric across the card's nodes.
struct FigurePayload {
  std::string figure;
  std::string x_label;  ///< always "node_nm"
  std::string y_label;
  std::vector<double> x;
  std::vector<double> y;
};

/// kServerInfo payload: daemon identity + a flat metrics snapshot
/// (cache hit/miss, queue depth, coalesce count, ... — whatever the
/// daemon's registry holds, sorted by name).
struct InfoPayload {
  std::string proto;  ///< kProtocolVersion of the answering server
  std::string card;   ///< the dispatcher's default card id
  double uptime_s = 0.0;
  std::vector<std::pair<std::string, double>> metrics;
};

/// kMetrics payload: the full structured telemetry export — every
/// counter, gauge and histogram (buckets AND interpolated percentiles)
/// of the dispatcher's live registry, plus the admission governor's
/// state, trace-ring drop accounting and the profiler span rollup when
/// those are wired. Deliberately clock-free (no uptime field) and
/// gathered without bumping any serve.* counter, so answering it does
/// not perturb what it reports — the same query against the daemon
/// socket and against a local Dispatcher sharing the registry renders
/// byte-identical documents (tests/test_serve.cpp pins this).
struct MetricsPayload {
  bool enabled = false;  ///< false: no registry wired; blocks empty
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  struct Hist {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    /// (inclusive upper bound, per-bucket tally); the overflow bucket
    /// carries an infinite bound, rendered as "+Inf" on the wire.
    std::vector<std::pair<double, std::uint64_t>> buckets;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  std::vector<Hist> histograms;
  bool has_admission = false;
  struct AdmissionState {
    std::uint64_t inflight = 0;
    std::uint64_t capacity = 0;            ///< configured queue_capacity
    std::uint64_t effective_capacity = 0;  ///< after the governor squeeze
    double smoothed_latency_ms = 0.0;
    bool governor = false;  ///< latency_target_ms > 0
    double latency_target_ms = 0.0;
  } admission;
  bool has_trace = false;
  struct TraceState {
    std::uint64_t recorded = 0;  ///< total events, incl. overwritten
    std::uint64_t dropped = 0;   ///< lost to ring overwrite
    std::uint64_t capacity = 0;
  } trace;
  bool has_profiler = false;
  struct ProfilerState {
    std::uint64_t spans = 0;
    std::uint64_t dropped = 0;
    struct RollupRow {
      std::string label;
      std::uint64_t count = 0;
      double total_ms = 0.0;
      double self_ms = 0.0;
    };
    std::vector<RollupRow> rollup;  ///< largest total first
  } profiler;
};

/// One query's outcome. Exactly one payload is meaningful, selected by
/// `kind`; `ok == false` means `error` is set instead.
struct Result {
  std::string id;  ///< echo of Query::id
  QueryKind kind = QueryKind::kServerInfo;
  bool ok = false;
  Error error;
  // Provenance echo for sweep/design/figure results:
  std::string card;
  std::string strategy;
  std::size_t node = 0;
  SweepPayload sweep;
  DesignPayload design;
  FigurePayload figure;
  InfoPayload info;
  MetricsPayload metrics;
};

/// Render a request as one canonical `subscale.query.v1` JSON document.
std::string query_to_json(const Query& query);

/// Parse a request document. Returns false and fills `error` (always
/// code `bad_request`) on malformed JSON, a proto mismatch, an unknown
/// kind/strategy/figure, or a field that fails Query::validate(). On
/// success `out` carries defaults for every absent optional field.
bool parse_query(const std::string& text, Query& out, Error& error);

/// Render a response document (canonical bytes — see the file comment).
std::string result_to_json(const Result& result);

/// Parse a response document; false + reason on malformed input.
bool parse_result(const std::string& text, Result& out,
                  std::string* error = nullptr);

/// Convenience: the error-shaped Result for `query` (echoes id/kind).
Result error_result(const Query& query, const std::string& code,
                    const std::string& message,
                    const std::string& detail = {});

/// Render a metrics payload in the Prometheus text exposition format
/// (metric dots become underscores, a `subscale_` prefix, cumulative
/// `_bucket{le="..."}` rows with a closing `+Inf`, `_sum`/`_count`).
/// Pure function of the payload: the daemon path and the one-shot CLI
/// (`subscale_query --format prometheus`) render identical text from
/// identical payloads.
std::string metrics_to_prometheus(const MetricsPayload& payload);

}  // namespace subscale::serve
