#pragma once

/// \file server.h
/// The long-lived design-query daemon: a listener thread multiplexing
/// framed-JSON connections (Unix socket or TCP loopback) over poll(),
/// a bounded admission gate (serve/admission.h), and the existing
/// exec::TaskPool doing the actual solves through one shared
/// serve::Dispatcher.
///
/// Threading model:
///   * the listener thread owns accept(), every read(), and the
///     connection table. It parses frames, runs admission, and writes
///     rejection responses inline (those are cheap);
///   * admitted requests become TaskPool tasks: dispatch -> record
///     latency -> write the response frame under the connection's
///     write mutex (workers and the listener interleave responses on
///     one socket safely; each frame is written atomically under the
///     lock);
///   * stop() wakes the listener via a self-pipe, joins it, then drains
///     the pool so every admitted request still gets its response
///     before the sockets close — a graceful stop never drops admitted
///     work.
///
/// A connection is the unit of client identity for fairness: each
/// accepted socket gets a stable "c<N>" id fed to the admission
/// controller, so one flooding connection throttles itself while
/// others keep landing in the queue.
///
/// Malformed input never kills the daemon: an unparseable frame gets a
/// structured bad_request response on the same connection; an oversize
/// length prefix (unrecoverable — the byte stream has no sync marker)
/// closes that one connection only.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/task_pool.h"
#include "serve/admission.h"
#include "serve/dispatcher.h"

namespace subscale::serve {

struct ServerOptions {
  /// Exactly one transport: a Unix socket path, or a TCP port on
  /// 127.0.0.1 (`port = 0` binds an ephemeral port, read it back with
  /// Server::port()). Setting both (or neither) fails validate().
  std::string socket_path;
  int port = -1;
  /// Worker threads solving admitted requests.
  std::size_t workers = 2;
  AdmissionOptions admission{};
  DispatcherOptions dispatcher{};

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  /// Calls stop() if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, spawn the listener thread and the worker pool.
  /// Throws std::runtime_error on socket errors (path in use, ...).
  void start();

  /// Graceful stop: close the listening socket, finish every admitted
  /// request and write its response, then tear down connections.
  /// Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound TCP port (resolved when options.port == 0); -1 for Unix.
  int port() const { return bound_port_; }
  const std::string& socket_path() const { return options_.socket_path; }

  Dispatcher& dispatcher() { return *dispatcher_; }
  AdmissionController& admission() { return *admission_; }

 private:
  struct Connection;
  struct Instruments;

  void listener_loop();
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const std::string& frame);
  void send_result(const std::shared_ptr<Connection>& conn,
                   const Result& result);

  ServerOptions options_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<exec::TaskPool> pool_;
  std::unique_ptr<Instruments> instruments_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int bound_port_ = -1;
  std::thread listener_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  // Connection table: touched only by the listener thread.
  std::vector<std::shared_ptr<Connection>> connections_;
  std::uint64_t next_client_ = 0;
};

}  // namespace subscale::serve
