#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/protocol.h"

namespace subscale::serve {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      last_response_(std::move(other.last_response_)),
      error_(std::move(other.error_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    last_response_ = std::move(other.last_response_);
    error_ = std::move(other.error_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect_unix(const std::string& socket_path) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    error_ = "socket path too long: " + socket_path;
    return false;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    error_ = "connect(" + socket_path + "): " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::connect_tcp(const std::string& host, int port) {
  close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error_ = "not an IPv4 address: " + host;
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    error_ = "connect(" + host + ":" + std::to_string(port) +
             "): " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::send_query(const Query& query) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  return write_frame(fd_, query_to_json(query), &error_);
}

bool Client::recv_result(Result& result) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  const ReadStatus status = read_frame(fd_, last_response_, &error_);
  if (status != ReadStatus::kOk) return false;
  std::string parse_error;
  if (!parse_result(last_response_, result, &parse_error)) {
    error_ = "unparseable response: " + parse_error;
    return false;
  }
  return true;
}

bool Client::roundtrip(const Query& query, Result& result) {
  return send_query(query) && recv_result(result);
}

}  // namespace subscale::serve
