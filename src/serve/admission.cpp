#include "serve/admission.h"

#include <algorithm>
#include <stdexcept>

namespace subscale::serve {

void AdmissionOptions::validate() const {
  if (queue_capacity == 0) {
    throw std::invalid_argument(
        "AdmissionOptions: queue_capacity must be >= 1");
  }
  if (per_client_inflight == 0) {
    throw std::invalid_argument(
        "AdmissionOptions: per_client_inflight must be >= 1");
  }
  if (latency_target_ms < 0.0) {
    throw std::invalid_argument(
        "AdmissionOptions: latency_target_ms must be >= 0");
  }
  if (smoothing <= 0.0 || smoothing > 1.0) {
    throw std::invalid_argument(
        "AdmissionOptions: smoothing must be in (0, 1]");
  }
}

const char* admission_name(Admission verdict) {
  switch (verdict) {
    case Admission::kAdmit:
      return "admit";
    case Admission::kThrottled:
      return "throttled";
    case Admission::kOverloaded:
      return "overloaded";
  }
  return "?";
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {
  options_.validate();
}

Admission AdmissionController::on_arrival(const std::string& client) {
  std::lock_guard<std::mutex> lock(mu_);
  // Fairness first: a client at its own cap is throttled even when the
  // daemon has headroom — that is what keeps one flooder from owning
  // the whole queue.
  const std::size_t mine = per_client_[client];
  if (mine >= options_.per_client_inflight) return Admission::kThrottled;
  std::size_t capacity = options_.queue_capacity;
  if (options_.latency_target_ms > 0.0 && ewma_seeded_ &&
      ewma_ms_ > options_.latency_target_ms) {
    const double squeezed = static_cast<double>(options_.queue_capacity) *
                            options_.latency_target_ms / ewma_ms_;
    capacity = std::max<std::size_t>(
        1, static_cast<std::size_t>(squeezed));
  }
  if (inflight_ >= capacity) {
    if (mine == 0) per_client_.erase(client);
    return Admission::kOverloaded;
  }
  ++inflight_;
  ++per_client_[client];
  return Admission::kAdmit;
}

void AdmissionController::on_complete(const std::string& client,
                                      double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ > 0) --inflight_;
  auto it = per_client_.find(client);
  if (it != per_client_.end()) {
    if (it->second > 0) --it->second;
    if (it->second == 0) per_client_.erase(it);  // bound the map by clients
  }
  if (options_.latency_target_ms > 0.0 && latency_ms >= 0.0) {
    if (!ewma_seeded_) {
      ewma_ms_ = latency_ms;
      ewma_seeded_ = true;
    } else {
      ewma_ms_ = options_.smoothing * latency_ms +
                 (1.0 - options_.smoothing) * ewma_ms_;
    }
  }
}

std::size_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

std::size_t AdmissionController::client_inflight(
    const std::string& client) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_client_.find(client);
  return it == per_client_.end() ? 0 : it->second;
}

double AdmissionController::smoothed_latency_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_seeded_ ? ewma_ms_ : 0.0;
}

std::size_t AdmissionController::effective_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.latency_target_ms <= 0.0 || !ewma_seeded_ ||
      ewma_ms_ <= options_.latency_target_ms) {
    return options_.queue_capacity;
  }
  const double squeezed = static_cast<double>(options_.queue_capacity) *
                          options_.latency_target_ms / ewma_ms_;
  return std::max<std::size_t>(1, static_cast<std::size_t>(squeezed));
}

}  // namespace subscale::serve
