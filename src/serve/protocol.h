#pragma once

/// \file protocol.h
/// Length-prefixed framing for the design-query wire: every message —
/// request or response — travels as a 4-byte big-endian payload length
/// followed by that many bytes of UTF-8 JSON. Framing is the ONLY thing
/// this layer knows; the payload schema lives in serve/query.h, so the
/// framing code is reusable byte plumbing.
///
/// The frame cap (kMaxFrameBytes) bounds what a malicious or buggy
/// client can make the daemon buffer; an oversize length prefix is a
/// protocol error that closes the connection (there is no way to
/// resynchronize a corrupt length stream).
///
/// Two consumption styles:
///   * read_frame/write_frame — blocking, whole-frame I/O on an fd
///     (the client library and the one-shot CLI);
///   * FrameDecoder — incremental: feed whatever bytes poll() produced,
///     pop complete frames (the server's per-connection read path).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace subscale::serve {

/// Upper bound on one frame's payload (a full-card figure response is
/// ~10 KB; 16 MiB leaves two orders of headroom for future payloads).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Bytes of the length prefix.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Encode `payload`'s length prefix into `header` (big-endian).
void encode_frame_header(std::uint32_t payload_size,
                         unsigned char header[kFrameHeaderBytes]);
/// Decode a length prefix.
std::uint32_t decode_frame_header(const unsigned char header[kFrameHeaderBytes]);

/// Write one complete frame (header + payload) to a blocking fd,
/// retrying short writes and EINTR. False on I/O error or an oversize
/// payload, with the reason in `error` when non-null. Writes with
/// MSG_NOSIGNAL semantics: a peer that vanished produces an error
/// return, never SIGPIPE.
bool write_frame(int fd, std::string_view payload,
                 std::string* error = nullptr);

enum class ReadStatus {
  kOk,       ///< one complete frame in `payload`
  kEof,      ///< orderly close before any byte of a new frame
  kError,    ///< I/O error or mid-frame EOF (reason in `error`)
  kOversize  ///< length prefix exceeds kMaxFrameBytes
};

/// Read one complete frame from a blocking fd.
ReadStatus read_frame(int fd, std::string& payload,
                      std::string* error = nullptr);

/// Incremental frame extraction for non-blocking reads: feed() whatever
/// arrived, then pop frames with next() until it returns false. An
/// oversize length prefix latches the decoder into an error state
/// (oversize() true, next() false forever) — the connection must be
/// dropped.
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t size);
  /// Pop the next complete frame into `frame`; false when no complete
  /// frame is buffered (or the decoder is latched on oversize).
  bool next(std::string& frame);
  bool oversize() const { return oversize_; }
  /// Bytes buffered but not yet popped (test observability).
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
  bool oversize_ = false;
};

}  // namespace subscale::serve
