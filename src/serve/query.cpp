#include "serve/query.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "io/json_parse.h"
#include "io/writer.h"

namespace subscale::serve {

const char* query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSweep:
      return "sweep";
    case QueryKind::kDesign:
      return "design";
    case QueryKind::kFigure:
      return "figure";
    case QueryKind::kServerInfo:
      return "server_info";
    case QueryKind::kMetrics:
      return "metrics";
  }
  return "server_info";
}

bool parse_query_kind(const std::string& name, QueryKind& out) {
  if (name == "sweep") {
    out = QueryKind::kSweep;
    return true;
  }
  if (name == "design") {
    out = QueryKind::kDesign;
    return true;
  }
  if (name == "figure") {
    out = QueryKind::kFigure;
    return true;
  }
  if (name == "server_info") {
    out = QueryKind::kServerInfo;
    return true;
  }
  if (name == "metrics") {
    out = QueryKind::kMetrics;
    return true;
  }
  return false;
}

const std::vector<std::string>& figure_kinds() {
  static const std::vector<std::string> kinds = {"ss", "tau", "ioff", "vth",
                                                 "lpoly"};
  return kinds;
}

void Query::validate() const {
  const auto fail = [](const std::string& msg) {
    throw std::invalid_argument("Query: " + msg);
  };
  if (card.empty()) fail("card must not be empty");
  if (kind == QueryKind::kSweep) {
    if (points < 2) fail("points must be >= 2");
    if (!(vg_stop > vg_start)) fail("vg_stop must exceed vg_start");
    if (!(vd >= 0.0)) fail("vd must be non-negative");
  }
  if (kind == QueryKind::kFigure) {
    bool known = false;
    for (const std::string& f : figure_kinds()) known = known || f == figure;
    if (!known) {
      std::string names;
      for (const std::string& f : figure_kinds()) {
        if (!names.empty()) names += ", ";
        names += f;
      }
      fail("unknown figure '" + figure + "' (known: " + names + ")");
    }
  }
}

std::string query_to_json(const Query& query) {
  io::JsonWriter w;
  w.begin_object();
  w.key("proto");
  w.value(kProtocolVersion);
  w.key("kind");
  w.value(query_kind_name(query.kind));
  if (!query.id.empty()) {
    w.key("id");
    w.value(query.id);
  }
  if (query.kind != QueryKind::kServerInfo &&
      query.kind != QueryKind::kMetrics) {
    w.key("card");
    w.value(query.card);
    w.key("strategy");
    w.value(core::strategy_name(query.strategy));
    w.key("node");
    w.value(static_cast<std::uint64_t>(query.node));
  }
  if (query.kind == QueryKind::kSweep) {
    w.key("vd");
    w.value(query.vd);
    w.key("vg_start");
    w.value(query.vg_start);
    w.key("vg_stop");
    w.value(query.vg_stop);
    w.key("points");
    w.value(static_cast<std::uint64_t>(query.points));
    w.key("coarse_mesh");
    w.value(query.coarse_mesh);
  }
  if (query.kind == QueryKind::kFigure) {
    w.key("figure");
    w.value(query.figure);
  }
  w.end_object();
  return w.str();
}

namespace {

bool fail_parse(Error& error, const std::string& message,
                const std::string& detail = {}) {
  error.code = codes::kBadRequest;
  error.message = message;
  error.detail = detail;
  return false;
}

}  // namespace

bool parse_query(const std::string& text, Query& out, Error& error) {
  std::string parse_error;
  const io::JsonPtr doc = io::json_parse(text, &parse_error);
  if (doc == nullptr) {
    return fail_parse(error, "malformed request JSON", parse_error);
  }
  if (doc->kind() != io::JsonValue::Kind::kObject) {
    return fail_parse(error, "request must be a JSON object");
  }
  const std::string proto = doc->string_at("proto");
  if (proto != kProtocolVersion) {
    return fail_parse(error,
                      std::string("unsupported protocol (expected ") +
                          kProtocolVersion + ")",
                      proto.empty() ? "missing proto field" : proto);
  }
  Query q;
  const std::string kind_name = doc->string_at("kind");
  if (!parse_query_kind(kind_name, q.kind)) {
    return fail_parse(error, "unknown query kind",
                      kind_name.empty() ? "missing kind field" : kind_name);
  }
  q.id = doc->string_at("id");
  q.card = doc->string_at("card", q.card);
  const std::string strategy = doc->string_at("strategy");
  if (!strategy.empty() && !core::parse_strategy(strategy, q.strategy)) {
    return fail_parse(error, "unknown strategy", strategy);
  }
  const double node = doc->number_at("node", 0.0);
  if (node < 0.0) return fail_parse(error, "node must be non-negative");
  q.node = static_cast<std::size_t>(node);
  q.vd = doc->number_at("vd", q.vd);
  q.vg_start = doc->number_at("vg_start", q.vg_start);
  q.vg_stop = doc->number_at("vg_stop", q.vg_stop);
  const double points =
      doc->number_at("points", static_cast<double>(q.points));
  if (points < 0.0) return fail_parse(error, "points must be non-negative");
  q.points = static_cast<std::size_t>(points);
  q.coarse_mesh = doc->bool_at("coarse_mesh", q.coarse_mesh);
  q.figure = doc->string_at("figure", q.figure);
  try {
    q.validate();
  } catch (const std::invalid_argument& e) {
    return fail_parse(error, "invalid query", e.what());
  }
  out = std::move(q);
  return true;
}

namespace {

void write_error(io::Writer& w, const Error& error) {
  w.key("error");
  w.begin_object();
  w.key("code");
  w.value(error.code);
  w.key("message");
  w.value(error.message);
  w.key("detail");
  w.value(error.detail);
  w.end_object();
}

void write_sweep(io::Writer& w, const SweepPayload& p) {
  w.key("node_name");
  w.value(p.node_name);
  w.key("lpoly_nm");
  w.value(p.lpoly_nm);
  w.key("vd");
  w.value(p.vd);
  w.key("vg");
  w.begin_array();
  for (const tcad::IdVgPoint& pt : p.points) w.value(pt.vg);
  w.end_array();
  w.key("id_a_per_m");
  w.begin_array();
  for (const tcad::IdVgPoint& pt : p.points) w.value(pt.id);
  w.end_array();
  w.key("attempted");
  w.value(static_cast<std::uint64_t>(p.attempted));
  w.key("failed");
  w.value(static_cast<std::uint64_t>(p.failed));
  if (p.has_extraction) {
    w.key("extraction");
    w.begin_object();
    w.key("ss_mv_dec");
    w.value(p.extraction.ss * 1e3);
    w.key("vth_cc_v");
    w.value(p.extraction.vth_cc);
    w.key("ioff_a_per_m");
    w.value(p.extraction.ioff);
    w.key("ion_a_per_m");
    w.value(p.extraction.ion);
    w.key("ss_r2");
    w.value(p.extraction.ss_r2);
    w.end_object();
  }
}

void write_design(io::Writer& w, const DesignPayload& p) {
  w.key("node_name");
  w.value(p.node_name);
  w.key("lpoly_nm");
  w.value(p.lpoly_nm);
  w.key("tox_nm");
  w.value(p.tox_nm);
  w.key("vdd");
  w.value(p.vdd);
  w.key("nsub_cm3");
  w.value(p.nsub_cm3);
  w.key("nhalo_net_cm3");
  w.value(p.nhalo_net_cm3);
  w.key("vth_sat_mv");
  w.value(p.vth_sat_mv);
  w.key("ioff_pa_um");
  w.value(p.ioff_pa_um);
  w.key("ss_mv_dec");
  w.value(p.ss_mv_dec);
  w.key("tau_ps");
  w.value(p.tau_ps);
  if (p.subvth) {
    w.key("lpoly_opt_nm");
    w.value(p.lpoly_opt_nm);
    w.key("energy_factor");
    w.value(p.energy_factor);
    w.key("delay_factor");
    w.value(p.delay_factor);
  }
}

void write_figure(io::Writer& w, const FigurePayload& p) {
  w.key("figure");
  w.value(p.figure);
  w.key("x_label");
  w.value(p.x_label);
  w.key("y_label");
  w.value(p.y_label);
  w.key("x");
  w.begin_array();
  for (double v : p.x) w.value(v);
  w.end_array();
  w.key("y");
  w.begin_array();
  for (double v : p.y) w.value(v);
  w.end_array();
}

void write_metrics(io::Writer& w, const MetricsPayload& p) {
  w.key("enabled");
  w.value(p.enabled);
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : p.counters) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : p.gauges) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const MetricsPayload::Hist& h : p.histograms) {
    w.key(h.name);
    w.begin_object();
    w.key("count");
    w.value(h.count);
    w.key("sum");
    w.value(h.sum);
    // Finite upper bounds only; the overflow bucket is implied, so
    // "bucket" carries one more tally than "le" has bounds.
    w.key("le");
    w.begin_array();
    for (const auto& [bound, tally] : h.buckets) {
      if (!std::isinf(bound)) w.value(bound);
    }
    w.end_array();
    w.key("bucket");
    w.begin_array();
    for (const auto& [bound, tally] : h.buckets) w.value(tally);
    w.end_array();
    w.key("p50");
    w.value(h.p50);
    w.key("p90");
    w.value(h.p90);
    w.key("p99");
    w.value(h.p99);
    w.end_object();
  }
  w.end_object();
  if (p.has_admission) {
    w.key("admission");
    w.begin_object();
    w.key("inflight");
    w.value(p.admission.inflight);
    w.key("capacity");
    w.value(p.admission.capacity);
    w.key("effective_capacity");
    w.value(p.admission.effective_capacity);
    w.key("smoothed_latency_ms");
    w.value(p.admission.smoothed_latency_ms);
    w.key("governor");
    w.value(p.admission.governor);
    w.key("latency_target_ms");
    w.value(p.admission.latency_target_ms);
    w.end_object();
  }
  if (p.has_trace) {
    w.key("trace");
    w.begin_object();
    w.key("recorded");
    w.value(p.trace.recorded);
    w.key("dropped");
    w.value(p.trace.dropped);
    w.key("capacity");
    w.value(p.trace.capacity);
    w.end_object();
  }
  if (p.has_profiler) {
    w.key("profiler");
    w.begin_object();
    w.key("spans");
    w.value(p.profiler.spans);
    w.key("dropped");
    w.value(p.profiler.dropped);
    w.key("rollup");
    w.begin_array();
    for (const auto& row : p.profiler.rollup) {
      w.begin_object();
      w.key("label");
      w.value(row.label);
      w.key("count");
      w.value(row.count);
      w.key("total_ms");
      w.value(row.total_ms);
      w.key("self_ms");
      w.value(row.self_ms);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
}

void write_info(io::Writer& w, const InfoPayload& p) {
  w.key("proto");
  w.value(p.proto);
  w.key("card");
  w.value(p.card);
  w.key("uptime_s");
  w.value(p.uptime_s);
  w.key("metrics");
  w.begin_object();
  for (const auto& [name, value] : p.metrics) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
}

}  // namespace

std::string result_to_json(const Result& result) {
  io::JsonWriter w;
  w.begin_object();
  w.key("proto");
  w.value(kProtocolVersion);
  w.key("id");
  w.value(result.id);
  w.key("ok");
  w.value(result.ok);
  if (!result.ok) {
    write_error(w, result.error);
    w.end_object();
    return w.str();
  }
  w.key("kind");
  w.value(query_kind_name(result.kind));
  if (result.kind != QueryKind::kServerInfo &&
      result.kind != QueryKind::kMetrics) {
    w.key("card");
    w.value(result.card);
    w.key("strategy");
    w.value(result.strategy);
    w.key("node");
    w.value(static_cast<std::uint64_t>(result.node));
  }
  w.key("result");
  w.begin_object();
  switch (result.kind) {
    case QueryKind::kSweep:
      write_sweep(w, result.sweep);
      break;
    case QueryKind::kDesign:
      write_design(w, result.design);
      break;
    case QueryKind::kFigure:
      write_figure(w, result.figure);
      break;
    case QueryKind::kServerInfo:
      write_info(w, result.info);
      break;
    case QueryKind::kMetrics:
      write_metrics(w, result.metrics);
      break;
  }
  w.end_object();
  w.end_object();
  return w.str();
}

namespace {

bool fail_result(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

}  // namespace

bool parse_result(const std::string& text, Result& out, std::string* error) {
  std::string parse_error;
  const io::JsonPtr doc = io::json_parse(text, &parse_error);
  if (doc == nullptr) {
    return fail_result(error, "malformed response JSON: " + parse_error);
  }
  if (doc->kind() != io::JsonValue::Kind::kObject) {
    return fail_result(error, "response must be a JSON object");
  }
  Result r;
  r.id = doc->string_at("id");
  r.ok = doc->bool_at("ok", false);
  if (!r.ok) {
    const io::JsonPtr err = doc->get("error");
    if (err == nullptr) {
      return fail_result(error, "error response without error object");
    }
    r.error.code = err->string_at("code");
    r.error.message = err->string_at("message");
    r.error.detail = err->string_at("detail");
    out = std::move(r);
    return true;
  }
  if (!parse_query_kind(doc->string_at("kind"), r.kind)) {
    return fail_result(error, "response with unknown kind");
  }
  r.card = doc->string_at("card");
  r.strategy = doc->string_at("strategy");
  r.node = static_cast<std::size_t>(doc->number_at("node", 0.0));
  const io::JsonPtr body = doc->get("result");
  if (body == nullptr) {
    return fail_result(error, "ok response without result object");
  }
  switch (r.kind) {
    case QueryKind::kSweep: {
      r.sweep.node_name = body->string_at("node_name");
      r.sweep.lpoly_nm = body->number_at("lpoly_nm", 0.0);
      r.sweep.vd = body->number_at("vd", 0.0);
      const io::JsonPtr vg = body->get("vg");
      const io::JsonPtr id = body->get("id_a_per_m");
      if (vg == nullptr || id == nullptr || vg->size() != id->size()) {
        return fail_result(error, "sweep response with mismatched arrays");
      }
      for (std::size_t i = 0; i < vg->size(); ++i) {
        r.sweep.points.push_back(
            {vg->at(i)->as_number(), id->at(i)->as_number()});
      }
      r.sweep.attempted =
          static_cast<std::size_t>(body->number_at("attempted", 0.0));
      r.sweep.failed =
          static_cast<std::size_t>(body->number_at("failed", 0.0));
      if (const io::JsonPtr ex = body->get("extraction"); ex != nullptr) {
        r.sweep.has_extraction = true;
        r.sweep.extraction.ss = ex->number_at("ss_mv_dec", 0.0) * 1e-3;
        r.sweep.extraction.vth_cc = ex->number_at("vth_cc_v", 0.0);
        r.sweep.extraction.ioff = ex->number_at("ioff_a_per_m", 0.0);
        r.sweep.extraction.ion = ex->number_at("ion_a_per_m", 0.0);
        r.sweep.extraction.ss_r2 = ex->number_at("ss_r2", 0.0);
      }
      break;
    }
    case QueryKind::kDesign: {
      DesignPayload& d = r.design;
      d.node_name = body->string_at("node_name");
      d.lpoly_nm = body->number_at("lpoly_nm", 0.0);
      d.tox_nm = body->number_at("tox_nm", 0.0);
      d.vdd = body->number_at("vdd", 0.0);
      d.nsub_cm3 = body->number_at("nsub_cm3", 0.0);
      d.nhalo_net_cm3 = body->number_at("nhalo_net_cm3", 0.0);
      d.vth_sat_mv = body->number_at("vth_sat_mv", 0.0);
      d.ioff_pa_um = body->number_at("ioff_pa_um", 0.0);
      d.ss_mv_dec = body->number_at("ss_mv_dec", 0.0);
      d.tau_ps = body->number_at("tau_ps", 0.0);
      d.subvth = body->has("lpoly_opt_nm");
      d.lpoly_opt_nm = body->number_at("lpoly_opt_nm", 0.0);
      d.energy_factor = body->number_at("energy_factor", 0.0);
      d.delay_factor = body->number_at("delay_factor", 0.0);
      break;
    }
    case QueryKind::kFigure: {
      r.figure.figure = body->string_at("figure");
      r.figure.x_label = body->string_at("x_label");
      r.figure.y_label = body->string_at("y_label");
      const io::JsonPtr x = body->get("x");
      const io::JsonPtr y = body->get("y");
      if (x == nullptr || y == nullptr || x->size() != y->size()) {
        return fail_result(error, "figure response with mismatched arrays");
      }
      for (std::size_t i = 0; i < x->size(); ++i) {
        r.figure.x.push_back(x->at(i)->as_number());
        r.figure.y.push_back(y->at(i)->as_number());
      }
      break;
    }
    case QueryKind::kServerInfo: {
      r.info.proto = body->string_at("proto");
      r.info.card = body->string_at("card");
      r.info.uptime_s = body->number_at("uptime_s", 0.0);
      if (const io::JsonPtr m = body->get("metrics"); m != nullptr) {
        for (const auto& [name, value] : m->fields()) {
          r.info.metrics.emplace_back(name, value->as_number());
        }
      }
      break;
    }
    case QueryKind::kMetrics: {
      MetricsPayload& p = r.metrics;
      p.enabled = body->bool_at("enabled", false);
      if (const io::JsonPtr c = body->get("counters"); c != nullptr) {
        for (const auto& [name, value] : c->fields()) {
          p.counters.emplace_back(
              name, static_cast<std::uint64_t>(value->as_number()));
        }
      }
      if (const io::JsonPtr g = body->get("gauges"); g != nullptr) {
        for (const auto& [name, value] : g->fields()) {
          p.gauges.emplace_back(name, value->as_number());
        }
      }
      if (const io::JsonPtr hs = body->get("histograms"); hs != nullptr) {
        for (const auto& [name, hv] : hs->fields()) {
          MetricsPayload::Hist h;
          h.name = name;
          h.count = static_cast<std::uint64_t>(hv->number_at("count", 0.0));
          h.sum = hv->number_at("sum", 0.0);
          const io::JsonPtr le = hv->get("le");
          const io::JsonPtr bucket = hv->get("bucket");
          // "bucket" has one more tally than "le" has bounds: the
          // trailing overflow bucket carries the implied +Inf bound.
          if (le == nullptr || bucket == nullptr ||
              bucket->size() != le->size() + 1) {
            return fail_result(error,
                               "metrics histogram with mismatched buckets");
          }
          for (std::size_t i = 0; i < bucket->size(); ++i) {
            const double bound =
                i < le->size() ? le->at(i)->as_number()
                               : std::numeric_limits<double>::infinity();
            h.buckets.emplace_back(
                bound,
                static_cast<std::uint64_t>(bucket->at(i)->as_number()));
          }
          h.p50 = hv->number_at("p50", 0.0);
          h.p90 = hv->number_at("p90", 0.0);
          h.p99 = hv->number_at("p99", 0.0);
          p.histograms.push_back(std::move(h));
        }
      }
      if (const io::JsonPtr a = body->get("admission"); a != nullptr) {
        p.has_admission = true;
        p.admission.inflight =
            static_cast<std::uint64_t>(a->number_at("inflight", 0.0));
        p.admission.capacity =
            static_cast<std::uint64_t>(a->number_at("capacity", 0.0));
        p.admission.effective_capacity = static_cast<std::uint64_t>(
            a->number_at("effective_capacity", 0.0));
        p.admission.smoothed_latency_ms =
            a->number_at("smoothed_latency_ms", 0.0);
        p.admission.governor = a->bool_at("governor", false);
        p.admission.latency_target_ms =
            a->number_at("latency_target_ms", 0.0);
      }
      if (const io::JsonPtr t = body->get("trace"); t != nullptr) {
        p.has_trace = true;
        p.trace.recorded =
            static_cast<std::uint64_t>(t->number_at("recorded", 0.0));
        p.trace.dropped =
            static_cast<std::uint64_t>(t->number_at("dropped", 0.0));
        p.trace.capacity =
            static_cast<std::uint64_t>(t->number_at("capacity", 0.0));
      }
      if (const io::JsonPtr pr = body->get("profiler"); pr != nullptr) {
        p.has_profiler = true;
        p.profiler.spans =
            static_cast<std::uint64_t>(pr->number_at("spans", 0.0));
        p.profiler.dropped =
            static_cast<std::uint64_t>(pr->number_at("dropped", 0.0));
        if (const io::JsonPtr rows = pr->get("rollup"); rows != nullptr) {
          for (const io::JsonPtr& row : rows->items()) {
            MetricsPayload::ProfilerState::RollupRow rr;
            rr.label = row->string_at("label");
            rr.count =
                static_cast<std::uint64_t>(row->number_at("count", 0.0));
            rr.total_ms = row->number_at("total_ms", 0.0);
            rr.self_ms = row->number_at("self_ms", 0.0);
            p.profiler.rollup.push_back(std::move(rr));
          }
        }
      }
      break;
    }
  }
  out = std::move(r);
  return true;
}

namespace {

/// Prometheus metric name: dots become underscores under a subscale_
/// prefix ("serve.request_ms" -> "subscale_serve_request_ms").
std::string prom_name(const std::string& metric) {
  std::string out = "subscale_";
  for (const char c : metric) out += c == '.' ? '_' : c;
  return out;
}

/// %.17g like io::JsonWriter, so numbers are byte-stable and round-trip.
std::string prom_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Bucket bounds are short layout constants (0.1, 25, 1000); %g keeps
/// the le labels readable.
std::string prom_bound(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

void prom_scalar(std::string& out, const std::string& name,
                 const char* type, const std::string& value) {
  out += "# TYPE " + name + " " + type + "\n";
  out += name + " " + value + "\n";
}

}  // namespace

std::string metrics_to_prometheus(const MetricsPayload& payload) {
  std::string out;
  for (const auto& [name, value] : payload.counters) {
    prom_scalar(out, prom_name(name), "counter", std::to_string(value));
  }
  for (const auto& [name, value] : payload.gauges) {
    prom_scalar(out, prom_name(name), "gauge", prom_value(value));
  }
  for (const MetricsPayload::Hist& h : payload.histograms) {
    const std::string name = prom_name(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [bound, tally] : h.buckets) {
      cumulative += tally;
      const std::string le =
          std::isinf(bound) ? std::string("+Inf") : prom_bound(bound);
      out += name + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + prom_value(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
    // Interpolated percentiles as plain gauges — non-standard next to
    // the bucket rows, but they let an operator read p99 straight off
    // the exposition without a query engine.
    prom_scalar(out, name + "_p50", "gauge", prom_value(h.p50));
    prom_scalar(out, name + "_p90", "gauge", prom_value(h.p90));
    prom_scalar(out, name + "_p99", "gauge", prom_value(h.p99));
  }
  if (payload.has_admission) {
    prom_scalar(out, "subscale_admission_inflight", "gauge",
                std::to_string(payload.admission.inflight));
    prom_scalar(out, "subscale_admission_capacity", "gauge",
                std::to_string(payload.admission.capacity));
    prom_scalar(out, "subscale_admission_effective_capacity", "gauge",
                std::to_string(payload.admission.effective_capacity));
    prom_scalar(out, "subscale_admission_smoothed_latency_ms", "gauge",
                prom_value(payload.admission.smoothed_latency_ms));
    prom_scalar(out, "subscale_admission_governor", "gauge",
                payload.admission.governor ? "1" : "0");
    prom_scalar(out, "subscale_admission_latency_target_ms", "gauge",
                prom_value(payload.admission.latency_target_ms));
  }
  if (payload.has_trace) {
    prom_scalar(out, "subscale_trace_recorded", "counter",
                std::to_string(payload.trace.recorded));
    prom_scalar(out, "subscale_trace_dropped", "counter",
                std::to_string(payload.trace.dropped));
    prom_scalar(out, "subscale_trace_capacity", "gauge",
                std::to_string(payload.trace.capacity));
  }
  if (payload.has_profiler) {
    prom_scalar(out, "subscale_profiler_spans", "counter",
                std::to_string(payload.profiler.spans));
    prom_scalar(out, "subscale_profiler_spans_dropped", "counter",
                std::to_string(payload.profiler.dropped));
  }
  return out;
}

Result error_result(const Query& query, const std::string& code,
                    const std::string& message, const std::string& detail) {
  Result r;
  r.id = query.id;
  r.kind = query.kind;
  r.ok = false;
  r.error.code = code;
  r.error.message = message;
  r.error.detail = detail;
  return r;
}

}  // namespace subscale::serve
