#pragma once

/// \file admission.h
/// Admission control for the design-query daemon: decide, per arriving
/// request, whether to run it now, bounce it back to its sender
/// (throttled — you specifically have too much in flight), or shed it
/// (overloaded — the daemon as a whole is saturated). Rejected work is
/// answered with a structured error frame, never silently dropped, so
/// clients can back off and retry.
///
/// Three independent mechanisms compose, checked in this order:
///
///   1. Per-client fairness cap — a client may have at most
///      `per_client_inflight` requests outstanding. A flooding client
///      hits its own ceiling and gets kThrottled while a second client
///      still lands in the queue untouched. (This is the primary
///      starvation defence; it needs no history or tuning.)
///
///   2. Global capacity bound — total in-flight (queued + executing)
///      may not exceed the effective capacity; beyond it requests get
///      kOverloaded. This bounds daemon memory no matter how many
///      distinct clients pile on.
///
///   3. Latency governor (Ratekeeper idiom: observe a health signal,
///      derive a throughput allowance, squeeze admission toward it) —
///      when `latency_target_ms > 0`, completed-request latencies feed
///      an EWMA, and effective capacity shrinks multiplicatively as the
///      EWMA exceeds target:
///          capacity = clamp(queue_capacity * target / ewma, 1, cap)
///      A 2× latency overshoot halves the queue; recovery is automatic
///      as the EWMA drains back under target. Gauge-driven, not
///      queue-driven: the signal is observed service health, so the
///      controller also reacts when solves get slow without the queue
///      being long yet.
///
/// The controller is a pure decision kernel — no clocks, no threads, no
/// sockets. The server feeds it arrivals/completions; tests feed it
/// synthetic sequences and assert on verdicts deterministically.

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

namespace subscale::serve {

struct AdmissionOptions {
  /// Max total in-flight requests (queued + executing) before shedding.
  std::size_t queue_capacity = 64;
  /// Max in-flight per client id before throttling that client.
  std::size_t per_client_inflight = 8;
  /// Latency the governor steers toward; 0 disables the governor.
  double latency_target_ms = 0.0;
  /// EWMA smoothing factor in (0, 1]; higher = faster reaction.
  double smoothing = 0.2;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

enum class Admission {
  kAdmit,       ///< run it
  kThrottled,   ///< this client is over its fairness cap — retry later
  kOverloaded,  ///< the daemon is saturated — retry later
};

const char* admission_name(Admission verdict);

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options = {});

  /// Verdict for one arriving request from `client`. kAdmit also books
  /// the request in-flight; the caller MUST pair it with on_complete.
  Admission on_arrival(const std::string& client);

  /// Release one in-flight slot for `client` and feed the request's
  /// service latency to the governor (ignored when the governor is
  /// off). Safe ordering: book-keeping is internal, call from any
  /// thread.
  void on_complete(const std::string& client, double latency_ms);

  std::size_t inflight() const;
  std::size_t client_inflight(const std::string& client) const;
  /// Current latency EWMA (0 until the first completion).
  double smoothed_latency_ms() const;
  /// Capacity after the governor's squeeze (== queue_capacity when the
  /// governor is off or latency is under target).
  std::size_t effective_capacity() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;

  mutable std::mutex mu_;
  std::size_t inflight_ = 0;
  std::map<std::string, std::size_t> per_client_;
  double ewma_ms_ = 0.0;
  bool ewma_seeded_ = false;
};

}  // namespace subscale::serve
