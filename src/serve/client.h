#pragma once

/// \file client.h
/// Minimal blocking client for the design-query wire: connect to a
/// daemon (Unix socket or TCP loopback), send framed queries, read
/// framed results. Used by the `subscale_query` CLI's remote mode, the
/// serve tests and the load-generator bench — production clients in
/// other languages only need the framing rules from serve/protocol.h
/// and the JSON schema from serve/query.h.

#include <string>

#include "serve/query.h"

namespace subscale::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect; false (with the reason in error()) on failure.
  bool connect_unix(const std::string& socket_path);
  bool connect_tcp(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one query frame. False on I/O failure (reason in error()).
  bool send_query(const Query& query);
  /// Block for the next result frame. False on I/O failure / close /
  /// an unparseable response (reason in error()).
  bool recv_result(Result& result);
  /// send_query + recv_result.
  bool roundtrip(const Query& query, Result& result);

  /// The raw JSON text of the last response frame (byte-exact — this is
  /// what the bitwise restart-identity checks compare).
  const std::string& last_response_text() const { return last_response_; }
  const std::string& error() const { return error_; }

 private:
  int fd_ = -1;
  std::string last_response_;
  std::string error_;
};

}  // namespace subscale::serve
