#include "serve/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "obs/names.h"
#include "serve/protocol.h"

namespace subscale::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("serve::Server: " + what + ": " +
                           std::strerror(errno));
}

void set_nonblocking_listener(int fd) {
  // Only the LISTENING socket is non-blocking (so accept() can drain
  // until EAGAIN). Connection fds stay blocking: poll() gates every
  // read, and response writes from workers must not short-write.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    sys_fail("fcntl(O_NONBLOCK)");
  }
}

}  // namespace

void ServerOptions::validate() const {
  const bool unix_transport = !socket_path.empty();
  const bool tcp_transport = port >= 0;
  if (unix_transport == tcp_transport) {
    throw std::invalid_argument(
        "ServerOptions: set exactly one of socket_path / port");
  }
  if (port > 65535) {
    throw std::invalid_argument("ServerOptions: port must be <= 65535");
  }
  if (workers == 0) {
    throw std::invalid_argument("ServerOptions: workers must be >= 1");
  }
  admission.validate();
  dispatcher.validate();
}

/// Per-connection state. Owned by shared_ptr: the listener holds one
/// reference in the connection table, every in-flight task another, so
/// the fd outlives whichever finishes last (the destructor closes it —
/// there is no fd-reuse race between a closing connection and a worker
/// still writing its response).
struct Server::Connection {
  int fd = -1;
  std::string client;  ///< stable fairness identity, "c<N>"
  bool counted = false;  ///< bumped serve.clients (first counted request)
  FrameDecoder decoder;
  std::mutex write_mu;        ///< one frame at a time on the wire
  std::atomic<bool> dead{false};  ///< read side gone; stop writing

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

/// Instrument pointers resolved once at start() (all null when the
/// dispatcher's RunContext has no metrics sink).
struct Server::Instruments {
  obs::Counter* requests = nullptr;
  obs::Counter* errors = nullptr;
  obs::Counter* throttled = nullptr;
  obs::Counter* rejected = nullptr;
  obs::Counter* clients = nullptr;
  obs::Gauge* queue_depth_max = nullptr;
  obs::Histogram* request_ms = nullptr;

  explicit Instruments(obs::MetricsRegistry* reg) {
    if (reg == nullptr) return;
    requests = &reg->counter(obs::names::kServeRequests);
    errors = &reg->counter(obs::names::kServeErrors);
    throttled = &reg->counter(obs::names::kServeThrottled);
    rejected = &reg->counter(obs::names::kServeRejected);
    clients = &reg->counter(obs::names::kServeClients);
    queue_depth_max = &reg->gauge(obs::names::kServeQueueDepthMax);
    request_ms =
        &reg->histogram(obs::names::kServeRequestMs, obs::buckets::kLatencyMs);
  }
};

Server::Server(const ServerOptions& options) : options_(options) {
  options_.validate();
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  stopping_.store(false, std::memory_order_release);

  // Admission first: the dispatcher's kMetrics export observes the
  // governor through DispatcherOptions::admission, so the controller
  // must exist before the Dispatcher copies its options.
  admission_ = std::make_unique<AdmissionController>(options_.admission);
  options_.dispatcher.admission = admission_.get();
  dispatcher_ = std::make_unique<Dispatcher>(options_.dispatcher);
  instruments_ =
      std::make_unique<Instruments>(options_.dispatcher.run.sink());
  pool_ = std::make_unique<exec::TaskPool>(options_.workers,
                                           options_.dispatcher.run.sink());

  if (!options_.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("serve::Server: socket path too long: " +
                               options_.socket_path);
    }
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) sys_fail("socket(AF_UNIX)");
    // A stale path from a killed daemon would fail bind(); removing it
    // is safe because the chaos contract says restart-in-place.
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      sys_fail("bind(" + options_.socket_path + ")");
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) sys_fail("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      sys_fail("bind(127.0.0.1:" + std::to_string(options_.port) + ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) < 0) {
      sys_fail("getsockname");
    }
    bound_port_ = ntohs(bound.sin_port);
  }

  if (::listen(listen_fd_, 64) < 0) sys_fail("listen");
  set_nonblocking_listener(listen_fd_);
  if (::pipe(wake_pipe_) < 0) sys_fail("pipe");

  running_.store(true, std::memory_order_release);
  listener_ = std::thread([this] { listener_loop(); });
}

void Server::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  const char byte = 'x';
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  listener_.join();
  // Drain admitted work so every accepted request still gets its
  // response frame before the sockets close.
  pool_->wait_idle();
  pool_.reset();
  connections_.clear();  // destructors close the fds
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
  running_.store(false, std::memory_order_release);
}

void Server::listener_loop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> fd_conns;  // parallel to fds[2..]
  char buf[64 * 1024];

  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    fd_conns.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& conn : connections_) {
      fds.push_back({conn->fd, POLLIN, 0});
      fd_conns.push_back(conn);
    }

    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/250);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // poll itself failing is unrecoverable for this loop
    }
    if (fds[0].revents != 0) break;  // self-pipe: stop() called

    if ((fds[1].revents & POLLIN) != 0) {
      while (true) {
        const int cfd = ::accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0) break;  // EAGAIN: drained
        auto conn = std::make_shared<Connection>();
        conn->fd = cfd;
        char label[32];
        std::snprintf(label, sizeof(label), "c%llu",
                      static_cast<unsigned long long>(next_client_++));
        conn->client = label;
        connections_.push_back(std::move(conn));
      }
    }

    for (std::size_t i = 0; i < fd_conns.size(); ++i) {
      const pollfd& p = fds[i + 2];
      const auto& conn = fd_conns[i];
      if (p.revents == 0) continue;
      bool drop = (p.revents & (POLLERR | POLLNVAL)) != 0;
      if (!drop && (p.revents & (POLLIN | POLLHUP)) != 0) {
        // Blocking fd, but poll() said readable: one recv won't block.
        const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n <= 0) {
          drop = true;  // orderly close or error
        } else {
          conn->decoder.feed(buf, static_cast<std::size_t>(n));
          std::string frame;
          while (conn->decoder.next(frame)) handle_frame(conn, frame);
          if (conn->decoder.oversize()) drop = true;  // unrecoverable
        }
      }
      if (drop) {
        conn->dead.store(true, std::memory_order_release);
        connections_.erase(
            std::remove(connections_.begin(), connections_.end(), conn),
            connections_.end());
      }
    }
  }
}

void Server::send_result(const std::shared_ptr<Connection>& conn,
                         const Result& result) {
  if (conn->dead.load(std::memory_order_acquire)) return;
  const std::string payload = result_to_json(result);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!write_frame(conn->fd, payload)) {
    // Peer went away between dispatch and reply; reads will notice too.
    conn->dead.store(true, std::memory_order_release);
  }
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          const std::string& frame) {
  // Peek for kMetrics before any instrumentation: a telemetry probe is
  // an observation, not work. It skips the requests counter, admission
  // and the latency histogram (so reading the metrics never perturbs
  // them), and it answers inline on the listener thread — a saturated
  // worker pool must not make the health endpoint unreachable.
  {
    Query probe;
    Error ignored;
    if (parse_query(frame, probe, ignored) &&
        probe.kind == QueryKind::kMetrics) {
      send_result(conn, dispatcher_->dispatch(probe));
      return;
    }
  }

  // serve.clients counts connections that issued at least one counted
  // request — deferred from accept so a probe-only connection (the
  // one-shot CLI asking for metrics) leaves the snapshot untouched.
  if (!conn->counted) {
    conn->counted = true;
    if (instruments_->clients != nullptr) instruments_->clients->add();
  }
  if (instruments_->requests != nullptr) instruments_->requests->add();

  Query query;
  Error parse_error;
  if (!parse_query(frame, query, parse_error)) {
    if (instruments_->errors != nullptr) instruments_->errors->add();
    send_result(conn, error_result(query, parse_error.code,
                                   parse_error.message, parse_error.detail));
    return;
  }

  const Admission verdict = admission_->on_arrival(conn->client);
  if (verdict == Admission::kThrottled) {
    if (instruments_->throttled != nullptr) instruments_->throttled->add();
    send_result(conn,
                error_result(query, codes::kThrottled,
                             "client has too many requests in flight",
                             "client " + conn->client));
    return;
  }
  if (verdict == Admission::kOverloaded) {
    if (instruments_->rejected != nullptr) instruments_->rejected->add();
    send_result(conn, error_result(query, codes::kOverloaded,
                                   "server is saturated; retry later"));
    return;
  }

  if (instruments_->queue_depth_max != nullptr) {
    instruments_->queue_depth_max->set_max(
        static_cast<double>(admission_->inflight()));
  }
  const auto admitted_at = std::chrono::steady_clock::now();
  pool_->submit([this, conn, query, admitted_at] {
    const Result result = dispatcher_->dispatch(query);
    const double latency_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - admitted_at)
            .count();
    admission_->on_complete(conn->client, latency_ms);
    if (instruments_->request_ms != nullptr) {
      instruments_->request_ms->record(latency_ms);
    }
    if (!result.ok && instruments_->errors != nullptr) {
      instruments_->errors->add();
    }
    send_result(conn, result);
  });
}

}  // namespace subscale::serve
