#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace subscale::serve {

namespace {

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

std::string errno_string(const char* op) {
  return std::string(op) + ": " + std::strerror(errno);
}

/// send() with MSG_NOSIGNAL when fd is a socket; plain write() for
/// pipes/files (the CLI's --json self-test path). ENOTSOCK picks the
/// fallback once per call — cheap relative to a frame write.
ssize_t write_some(int fd, const char* data, std::size_t size) {
  ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) n = ::write(fd, data, size);
  return n;
}

ssize_t read_some(int fd, char* data, std::size_t size) {
  ssize_t n = ::recv(fd, data, size, 0);
  if (n < 0 && errno == ENOTSOCK) n = ::read(fd, data, size);
  return n;
}

bool write_all(int fd, const char* data, std::size_t size,
               std::string* error) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = write_some(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, errno_string("write"));
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// False on error or EOF; `eof` reports which.
bool read_all(int fd, char* data, std::size_t size, bool& eof,
              std::string* error) {
  eof = false;
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = read_some(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, errno_string("read"));
      return false;
    }
    if (n == 0) {
      eof = true;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void encode_frame_header(std::uint32_t payload_size,
                         unsigned char header[kFrameHeaderBytes]) {
  header[0] = static_cast<unsigned char>(payload_size >> 24);
  header[1] = static_cast<unsigned char>(payload_size >> 16);
  header[2] = static_cast<unsigned char>(payload_size >> 8);
  header[3] = static_cast<unsigned char>(payload_size);
}

std::uint32_t decode_frame_header(
    const unsigned char header[kFrameHeaderBytes]) {
  return (static_cast<std::uint32_t>(header[0]) << 24) |
         (static_cast<std::uint32_t>(header[1]) << 16) |
         (static_cast<std::uint32_t>(header[2]) << 8) |
         static_cast<std::uint32_t>(header[3]);
}

bool write_frame(int fd, std::string_view payload, std::string* error) {
  if (payload.size() > kMaxFrameBytes) {
    set_error(error, "frame payload exceeds kMaxFrameBytes (" +
                         std::to_string(payload.size()) + " bytes)");
    return false;
  }
  unsigned char header[kFrameHeaderBytes];
  encode_frame_header(static_cast<std::uint32_t>(payload.size()), header);
  if (!write_all(fd, reinterpret_cast<const char*>(header),
                 kFrameHeaderBytes, error)) {
    return false;
  }
  return write_all(fd, payload.data(), payload.size(), error);
}

ReadStatus read_frame(int fd, std::string& payload, std::string* error) {
  unsigned char header[kFrameHeaderBytes];
  bool eof = false;
  if (!read_all(fd, reinterpret_cast<char*>(header), kFrameHeaderBytes, eof,
                error)) {
    if (eof) {
      set_error(error, "connection closed");
      return ReadStatus::kEof;
    }
    return ReadStatus::kError;
  }
  const std::uint32_t size = decode_frame_header(header);
  if (size > kMaxFrameBytes) {
    set_error(error, "peer announced a " + std::to_string(size) +
                         "-byte frame (cap " +
                         std::to_string(kMaxFrameBytes) + ")");
    return ReadStatus::kOversize;
  }
  payload.resize(size);
  if (size > 0 && !read_all(fd, payload.data(), size, eof, error)) {
    if (eof) set_error(error, "connection closed mid-frame");
    return ReadStatus::kError;  // mid-frame EOF is a protocol error
  }
  return ReadStatus::kOk;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  if (oversize_) return;  // latched; caller is about to drop the connection
  buffer_.append(data, size);
}

bool FrameDecoder::next(std::string& frame) {
  if (oversize_ || buffer_.size() < kFrameHeaderBytes) return false;
  const std::uint32_t size = decode_frame_header(
      reinterpret_cast<const unsigned char*>(buffer_.data()));
  if (size > kMaxFrameBytes) {
    oversize_ = true;
    return false;
  }
  if (buffer_.size() < kFrameHeaderBytes + size) return false;
  frame.assign(buffer_, kFrameHeaderBytes, size);
  buffer_.erase(0, kFrameHeaderBytes + size);
  return true;
}

}  // namespace subscale::serve
