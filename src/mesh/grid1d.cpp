#include "mesh/grid1d.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace subscale::mesh {

std::vector<double> graded_ticks(const GradedSegment& segment) {
  if (segment.x1 <= segment.x0) {
    throw std::invalid_argument("graded_ticks: x1 must exceed x0");
  }
  if (segment.h0 <= 0.0 || segment.ratio <= 0.0) {
    throw std::invalid_argument("graded_ticks: h0 and ratio must be positive");
  }
  const double length = segment.x1 - segment.x0;
  std::vector<double> ticks{segment.x0};
  double x = segment.x0;
  double h = segment.h0;
  while (x + h < segment.x1 - 0.25 * h) {
    x += h;
    ticks.push_back(x);
    h *= segment.ratio;
    if (ticks.size() > 100000) {
      throw std::runtime_error("graded_ticks: too many ticks");
    }
    // Guard: don't let a single cell exceed the remaining span.
    h = std::min(h, length);
  }
  ticks.push_back(segment.x1);
  return ticks;
}

std::vector<double> double_graded_ticks(double x0, double x1, double h_edge,
                                        double ratio) {
  if (x1 <= x0) {
    throw std::invalid_argument("double_graded_ticks: x1 must exceed x0");
  }
  const double mid = 0.5 * (x0 + x1);
  const std::vector<double> left =
      graded_ticks({.x0 = x0, .x1 = mid, .h0 = h_edge, .ratio = ratio});
  const std::vector<double> right =
      graded_ticks({.x0 = x0, .x1 = mid, .h0 = h_edge, .ratio = ratio});
  std::vector<double> ticks = left;
  // Mirror the right half: ticks measured from x1 downward.
  for (auto it = right.rbegin(); it != right.rend(); ++it) {
    ticks.push_back(x1 - (*it - x0));
  }
  std::sort(ticks.begin(), ticks.end());
  ticks.erase(std::unique(ticks.begin(), ticks.end()), ticks.end());
  return ticks;
}

Grid1d::Grid1d(std::vector<double> ticks, double merge_tolerance)
    : ticks_(std::move(ticks)) {
  finalize(merge_tolerance);
}

void Grid1d::add_segment(const GradedSegment& segment) {
  add_ticks(graded_ticks(segment));
}

void Grid1d::add_ticks(const std::vector<double>& ticks) {
  if (finalized_) {
    throw std::logic_error("Grid1d: cannot add ticks after finalize");
  }
  ticks_.insert(ticks_.end(), ticks.begin(), ticks.end());
}

void Grid1d::add_point(double x) {
  if (finalized_) {
    throw std::logic_error("Grid1d: cannot add ticks after finalize");
  }
  ticks_.push_back(x);
}

void Grid1d::finalize(double merge_tolerance) {
  if (ticks_.empty()) {
    throw std::logic_error("Grid1d::finalize: empty grid");
  }
  std::sort(ticks_.begin(), ticks_.end());
  std::vector<double> merged;
  merged.reserve(ticks_.size());
  merged.push_back(ticks_.front());
  for (double t : ticks_) {
    if (t - merged.back() > merge_tolerance) {
      merged.push_back(t);
    }
  }
  ticks_ = std::move(merged);
  if (ticks_.size() < 2) {
    throw std::logic_error("Grid1d::finalize: need at least 2 distinct ticks");
  }
  finalized_ = true;
}

std::size_t Grid1d::nearest_index(double x) const {
  if (!finalized_) {
    throw std::logic_error("Grid1d::nearest_index: grid not finalized");
  }
  const auto it = std::lower_bound(ticks_.begin(), ticks_.end(), x);
  if (it == ticks_.begin()) return 0;
  if (it == ticks_.end()) return ticks_.size() - 1;
  const std::size_t hi = static_cast<std::size_t>(it - ticks_.begin());
  const std::size_t lo = hi - 1;
  return (x - ticks_[lo] <= ticks_[hi] - x) ? lo : hi;
}

}  // namespace subscale::mesh
