#pragma once

/// \file mesh2d.h
/// Tensor-product rectilinear 2-D mesh with per-node material labels and
/// named contact (Dirichlet boundary) sets. Node (i, j) sits at
/// (x[i], y[j]); the linear index is j * nx + i so the x direction varies
/// fastest — this gives the TCAD system matrices a bandwidth of nx.
///
/// Convention for MOSFET cross-sections: x runs along the channel
/// (source -> drain), y runs downward into the device (y = 0 at the gate
/// oxide top, increasing into the substrate).

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "mesh/grid1d.h"

namespace subscale::mesh {

enum class Material : unsigned char {
  kSilicon,
  kOxide,
};

/// Finite-volume (box-method) tensor mesh.
class TensorMesh2d {
 public:
  TensorMesh2d(Grid1d x_grid, Grid1d y_grid);

  std::size_t nx() const { return x_.size(); }
  std::size_t ny() const { return y_.size(); }
  std::size_t node_count() const { return nx() * ny(); }

  double x(std::size_t i) const { return x_[i]; }
  double y(std::size_t j) const { return y_[j]; }
  const Grid1d& x_grid() const { return x_; }
  const Grid1d& y_grid() const { return y_; }

  std::size_t index(std::size_t i, std::size_t j) const {
    return j * nx() + i;
  }
  std::size_t i_of(std::size_t idx) const { return idx % nx(); }
  std::size_t j_of(std::size_t idx) const { return idx / nx(); }

  // ---- control volumes (box method) ---------------------------------

  /// Half-widths of the control volume around tick i of the x grid.
  double dx_minus(std::size_t i) const {
    return (i == 0) ? 0.0 : 0.5 * (x_[i] - x_[i - 1]);
  }
  double dx_plus(std::size_t i) const {
    return (i + 1 == nx()) ? 0.0 : 0.5 * (x_[i + 1] - x_[i]);
  }
  double dy_minus(std::size_t j) const {
    return (j == 0) ? 0.0 : 0.5 * (y_[j] - y_[j - 1]);
  }
  double dy_plus(std::size_t j) const {
    return (j + 1 == ny()) ? 0.0 : 0.5 * (y_[j + 1] - y_[j]);
  }
  /// Control-volume area of node (i, j) (per metre of device width).
  double box_area(std::size_t i, std::size_t j) const {
    return (dx_minus(i) + dx_plus(i)) * (dy_minus(j) + dy_plus(j));
  }

  // ---- materials ------------------------------------------------------

  /// Assign a material to all nodes inside [x0, x1] x [y0, y1] (inclusive
  /// with tolerance).
  void set_material_box(Material m, double x0, double x1, double y0, double y1);

  Material material(std::size_t i, std::size_t j) const {
    return materials_[index(i, j)];
  }
  Material material_at(std::size_t idx) const { return materials_[idx]; }

  // ---- contacts -------------------------------------------------------

  /// Tag all nodes inside the closed box as belonging to a named contact.
  /// A node may belong to at most one contact.
  void add_contact_box(const std::string& name, double x0, double x1,
                       double y0, double y1);

  /// Node indices of a contact (throws if unknown).
  const std::vector<std::size_t>& contact_nodes(const std::string& name) const;

  bool has_contact(const std::string& name) const {
    return contacts_.count(name) > 0;
  }

  /// Contact name owning node idx, or empty string.
  const std::string& contact_of(std::size_t idx) const {
    return contact_of_node_[idx];
  }

  std::vector<std::string> contact_names() const;

 private:
  Grid1d x_;
  Grid1d y_;
  std::vector<Material> materials_;
  std::map<std::string, std::vector<std::size_t>> contacts_;
  std::vector<std::string> contact_of_node_;
};

}  // namespace subscale::mesh
