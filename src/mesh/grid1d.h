#pragma once

/// \file grid1d.h
/// Nonuniform 1-D grid construction. Device meshes need fine spacing at
/// material interfaces (oxide/silicon, junctions) and coarse spacing in
/// the bulk; GradedSegment generates geometrically graded ticks and
/// Grid1d merges segments into a strictly increasing tick vector.

#include <vector>

namespace subscale::mesh {

/// A segment [x0, x1] discretized with geometric grading.
///
/// `h0` is the spacing at the x0 end; spacings grow by `ratio` toward x1
/// (ratio < 1 shrinks instead). The generator adjusts the last cell so the
/// segment end is hit exactly.
struct GradedSegment {
  double x0 = 0.0;
  double x1 = 0.0;
  double h0 = 0.0;
  double ratio = 1.0;
};

/// Generate the ticks of one graded segment, including both endpoints.
std::vector<double> graded_ticks(const GradedSegment& segment);

/// Ticks for a segment refined toward BOTH ends: fine spacing h_edge at
/// each end, growing geometrically toward the middle with `ratio` > 1.
std::vector<double> double_graded_ticks(double x0, double x1, double h_edge,
                                        double ratio);

/// Strictly increasing set of grid ticks built by merging segments.
class Grid1d {
 public:
  Grid1d() = default;

  /// Build from raw ticks (sorted + deduplicated with tolerance).
  explicit Grid1d(std::vector<double> ticks, double merge_tolerance = 0.0);

  /// Append the ticks of a segment (merged on finalize()).
  void add_segment(const GradedSegment& segment);
  void add_ticks(const std::vector<double>& ticks);

  /// Ensure a specific coordinate appears as a tick.
  void add_point(double x);

  /// Sort, deduplicate (ticks closer than `merge_tolerance` collapse) and
  /// freeze the grid.
  void finalize(double merge_tolerance);

  const std::vector<double>& ticks() const { return ticks_; }
  std::size_t size() const { return ticks_.size(); }
  double operator[](std::size_t i) const { return ticks_[i]; }

  /// Spacing between tick i and i+1.
  double spacing(std::size_t i) const { return ticks_[i + 1] - ticks_[i]; }

  /// Index of the tick nearest to x (grid must be finalized).
  std::size_t nearest_index(double x) const;

 private:
  std::vector<double> ticks_;
  bool finalized_ = false;
};

}  // namespace subscale::mesh
