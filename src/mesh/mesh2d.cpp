#include "mesh/mesh2d.h"

#include <stdexcept>

namespace subscale::mesh {

namespace {
// Geometric containment tolerance: device dimensions are nanometres, so a
// femtometre slack absorbs floating-point noise without ever grabbing a
// neighbouring tick.
constexpr double kGeomTol = 1e-15;
}  // namespace

TensorMesh2d::TensorMesh2d(Grid1d x_grid, Grid1d y_grid)
    : x_(std::move(x_grid)),
      y_(std::move(y_grid)),
      materials_(x_.size() * y_.size(), Material::kSilicon),
      contact_of_node_(x_.size() * y_.size()) {}

void TensorMesh2d::set_material_box(Material m, double x0, double x1,
                                    double y0, double y1) {
  for (std::size_t j = 0; j < ny(); ++j) {
    if (y_[j] < y0 - kGeomTol || y_[j] > y1 + kGeomTol) continue;
    for (std::size_t i = 0; i < nx(); ++i) {
      if (x_[i] < x0 - kGeomTol || x_[i] > x1 + kGeomTol) continue;
      materials_[index(i, j)] = m;
    }
  }
}

void TensorMesh2d::add_contact_box(const std::string& name, double x0,
                                   double x1, double y0, double y1) {
  auto& nodes = contacts_[name];
  for (std::size_t j = 0; j < ny(); ++j) {
    if (y_[j] < y0 - kGeomTol || y_[j] > y1 + kGeomTol) continue;
    for (std::size_t i = 0; i < nx(); ++i) {
      if (x_[i] < x0 - kGeomTol || x_[i] > x1 + kGeomTol) continue;
      const std::size_t idx = index(i, j);
      if (!contact_of_node_[idx].empty() && contact_of_node_[idx] != name) {
        throw std::logic_error("TensorMesh2d: node already owned by contact " +
                               contact_of_node_[idx]);
      }
      if (contact_of_node_[idx].empty()) {
        contact_of_node_[idx] = name;
        nodes.push_back(idx);
      }
    }
  }
  if (nodes.empty()) {
    throw std::logic_error("TensorMesh2d: contact box '" + name +
                           "' contains no mesh nodes");
  }
}

const std::vector<std::size_t>& TensorMesh2d::contact_nodes(
    const std::string& name) const {
  const auto it = contacts_.find(name);
  if (it == contacts_.end()) {
    throw std::out_of_range("TensorMesh2d: unknown contact '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> TensorMesh2d::contact_names() const {
  std::vector<std::string> names;
  names.reserve(contacts_.size());
  for (const auto& [name, nodes] : contacts_) names.push_back(name);
  return names;
}

}  // namespace subscale::mesh
