#include "opt/coordinate_descent.h"

#include <algorithm>
#include <stdexcept>

#include "opt/golden_section.h"

namespace subscale::opt {

CoordinateDescentResult coordinate_descent(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const std::vector<BoundedVariable>& bounds,
    const CoordinateDescentOptions& options) {
  if (x0.size() != bounds.size() || x0.empty()) {
    throw std::invalid_argument("coordinate_descent: size mismatch");
  }
  for (std::size_t i = 0; i < x0.size(); ++i) {
    if (bounds[i].hi <= bounds[i].lo) {
      throw std::invalid_argument("coordinate_descent: empty box");
    }
    x0[i] = std::clamp(x0[i], bounds[i].lo, bounds[i].hi);
  }

  CoordinateDescentResult result;
  result.x = std::move(x0);
  result.value = f(result.x);
  result.evaluations = 1;

  for (std::size_t sweep = 0; sweep < options.sweeps; ++sweep) {
    for (std::size_t i = 0; i < result.x.size(); ++i) {
      const double width = bounds[i].hi - bounds[i].lo;
      auto line = [&](double xi) {
        std::vector<double> trial = result.x;
        trial[i] = xi;
        return f(trial);
      };
      const ScalarMinimum m = golden_section_minimize(
          line, bounds[i].lo, bounds[i].hi,
          options.x_tolerance_fraction * width);
      result.evaluations += m.evaluations;
      if (m.value < result.value) {
        result.x[i] = m.x;
        result.value = m.value;
      }
    }
  }
  return result;
}

}  // namespace subscale::opt
