#pragma once

/// \file golden_section.h
/// Derivative-free 1-D minimization on an interval. Used for the energy-
/// optimal L_poly search (paper Sec. 3.1), V_min extraction (Sec. 2.3.4)
/// and the calibration fits.

#include <functional>
#include <vector>

namespace subscale::opt {

struct ScalarMinimum {
  double x = 0.0;
  double value = 0.0;
  std::size_t evaluations = 0;
};

/// Golden-section search for the minimum of f on [lo, hi].
/// Requires f unimodal on the interval for a guaranteed answer; on
/// multimodal inputs it converges to *a* local minimum.
/// \param x_tolerance  terminate when the bracket is narrower than this.
ScalarMinimum golden_section_minimize(const std::function<double(double)>& f,
                                      double lo, double hi,
                                      double x_tolerance,
                                      std::size_t max_evaluations = 200);

/// Robust variant for possibly multimodal f: coarse scan with
/// `scan_points` samples picks the best bracket, then golden-section
/// refines inside it.
ScalarMinimum scan_then_golden(const std::function<double(double)>& f,
                               double lo, double hi, std::size_t scan_points,
                               double x_tolerance);

/// Evaluates a whole candidate grid in one call, returning f(x) for
/// every x in order. The scan candidates are independent, so a caller
/// can fan them out (see exec::parallel_map); the numerics are
/// identical to the scalar scan for any evaluation order.
using BatchObjective =
    std::function<std::vector<double>(const std::vector<double>&)>;

/// scan_then_golden with the scan stage routed through `batch` (the
/// sequential golden refinement still uses the scalar `f`).
ScalarMinimum scan_then_golden(const BatchObjective& batch,
                               const std::function<double(double)>& f,
                               double lo, double hi, std::size_t scan_points,
                               double x_tolerance);

}  // namespace subscale::opt
