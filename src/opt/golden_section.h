#pragma once

/// \file golden_section.h
/// Derivative-free 1-D minimization on an interval. Used for the energy-
/// optimal L_poly search (paper Sec. 3.1), V_min extraction (Sec. 2.3.4)
/// and the calibration fits.

#include <functional>

namespace subscale::opt {

struct ScalarMinimum {
  double x = 0.0;
  double value = 0.0;
  std::size_t evaluations = 0;
};

/// Golden-section search for the minimum of f on [lo, hi].
/// Requires f unimodal on the interval for a guaranteed answer; on
/// multimodal inputs it converges to *a* local minimum.
/// \param x_tolerance  terminate when the bracket is narrower than this.
ScalarMinimum golden_section_minimize(const std::function<double(double)>& f,
                                      double lo, double hi,
                                      double x_tolerance,
                                      std::size_t max_evaluations = 200);

/// Robust variant for possibly multimodal f: coarse scan with
/// `scan_points` samples picks the best bracket, then golden-section
/// refines inside it.
ScalarMinimum scan_then_golden(const std::function<double(double)>& f,
                               double lo, double hi, std::size_t scan_points,
                               double x_tolerance);

}  // namespace subscale::opt
