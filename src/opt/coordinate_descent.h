#pragma once

/// \file coordinate_descent.h
/// Bounded cyclic coordinate descent for small smooth problems (the S_S
/// calibration fit and the halo/substrate doping co-optimization).

#include <functional>
#include <vector>

namespace subscale::opt {

struct BoundedVariable {
  double lo = 0.0;
  double hi = 1.0;
};

struct CoordinateDescentOptions {
  std::size_t sweeps = 10;            ///< full passes over all variables
  double x_tolerance_fraction = 1e-5; ///< golden tolerance per variable,
                                      ///< as a fraction of the box width
};

struct CoordinateDescentResult {
  std::vector<double> x;
  double value = 0.0;
  std::size_t evaluations = 0;
};

/// Minimize f over the box given by `bounds`, starting from `x0` (clamped
/// into the box). Each sweep does a golden-section line search per
/// coordinate.
CoordinateDescentResult coordinate_descent(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const std::vector<BoundedVariable>& bounds,
    const CoordinateDescentOptions& options = {});

}  // namespace subscale::opt
