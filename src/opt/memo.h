#pragma once

/// \file memo.h
/// Persistent memoization of scalar objective evaluations against the
/// solve cache (PayloadKind::kScalar). An EvalMemo binds a cache to a
/// DOMAIN key — a content hash of everything the objective closes over
/// (device, node, calibration, options) — so f(x) can be stored under
/// hash(domain, x) and replayed bitwise on later runs. The wrapped
/// objective is numerically identical to the bare one: a miss computes
/// f(x) exactly as before and a hit returns the very bits a previous
/// run computed.
///
/// The caller is responsible for the domain key covering every input
/// that influences f; deriving them from the cache/*_keys.h helpers
/// (which version their schemas) keeps that contract auditable.

#include <functional>

#include "cache/hash.h"
#include "opt/golden_section.h"

namespace subscale::cache {
class SolveCache;
}  // namespace subscale::cache

namespace subscale::opt {

class EvalMemo {
 public:
  /// Inert memo: wrap() returns the function unchanged.
  EvalMemo() = default;
  /// `cache` may be null (inert). The memo stores the pointer only; the
  /// cache must outlive every wrapped function.
  EvalMemo(cache::SolveCache* cache, const cache::HashKey& domain)
      : cache_(cache), domain_(domain) {}

  bool active() const { return cache_ != nullptr; }

  /// One memoized evaluation.
  double eval(const std::function<double(double)>& f, double x) const;

  /// Memoizing wrappers (per-x lookup; a batch only computes its
  /// misses, in the original order, through the original batch).
  std::function<double(double)> wrap(std::function<double(double)> f) const;
  BatchObjective wrap_batch(BatchObjective batch) const;

 private:
  cache::HashKey key_for(double x) const;

  cache::SolveCache* cache_ = nullptr;
  cache::HashKey domain_{};
};

/// scan_then_golden with every objective evaluation (scan stage and
/// golden refinement) routed through the memo.
ScalarMinimum scan_then_golden(const BatchObjective& batch,
                               const std::function<double(double)>& f,
                               double lo, double hi, std::size_t scan_points,
                               double x_tolerance, const EvalMemo& memo);

}  // namespace subscale::opt
