#pragma once

/// \file bisection.h
/// Root bracketing and bisection for monotone constraint equations
/// (leakage targets, V_th targets, V_min brackets).

#include <functional>

namespace subscale::opt {

struct RootResult {
  double x = 0.0;
  double f_at_x = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Find x in [lo, hi] with f(x) = 0 by bisection. Requires sign change
/// f(lo)*f(hi) <= 0 (throws std::invalid_argument otherwise).
RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  double x_tolerance, std::size_t max_iterations = 200);

/// Solve f(x) = target for monotonically increasing or decreasing f on a
/// log-spaced positive domain (useful for doping searches spanning
/// decades). Brackets by geometric expansion from `seed` then bisects in
/// log space.
RootResult solve_monotone_log(const std::function<double(double)>& f,
                              double target, double seed, double lo_limit,
                              double hi_limit, double rel_tolerance = 1e-10,
                              std::size_t max_iterations = 400);

}  // namespace subscale::opt
