#include "opt/memo.h"

#include <utility>

#include "cache/bytes.h"
#include "cache/solve_cache.h"

namespace subscale::opt {

namespace {

bool decode_scalar(const std::vector<std::uint8_t>& bytes, double& out) {
  cache::ByteReader r(bytes);
  return r.f64(out) && r.exhausted();
}

std::vector<std::uint8_t> encode_scalar(double v) {
  cache::ByteWriter w;
  w.f64(v);
  return w.take();
}

}  // namespace

cache::HashKey EvalMemo::key_for(double x) const {
  cache::KeyHasher h(domain_);
  h.tag("opt.eval.x");
  h.f64(x);
  return h.key();
}

double EvalMemo::eval(const std::function<double(double)>& f,
                      double x) const {
  if (cache_ == nullptr) return f(x);
  const cache::HashKey key = key_for(x);
  if (const auto payload = cache_->lookup(key, cache::PayloadKind::kScalar);
      payload != nullptr) {
    double v = 0.0;
    if (decode_scalar(payload->bytes, v)) return v;
  }
  const double v = f(x);
  cache_->store(key, cache::PayloadKind::kScalar, encode_scalar(v));
  return v;
}

std::function<double(double)> EvalMemo::wrap(
    std::function<double(double)> f) const {
  if (cache_ == nullptr) return f;
  return [memo = *this, f = std::move(f)](double x) {
    return memo.eval(f, x);
  };
}

BatchObjective EvalMemo::wrap_batch(BatchObjective batch) const {
  if (cache_ == nullptr) return batch;
  return [memo = *this,
          batch = std::move(batch)](const std::vector<double>& xs) {
    std::vector<double> values(xs.size(), 0.0);
    std::vector<double> miss_xs;
    std::vector<std::size_t> miss_at;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const cache::HashKey key = memo.key_for(xs[i]);
      if (const auto payload =
              memo.cache_->lookup(key, cache::PayloadKind::kScalar);
          payload != nullptr) {
        if (decode_scalar(payload->bytes, values[i])) continue;
      }
      miss_xs.push_back(xs[i]);
      miss_at.push_back(i);
    }
    if (!miss_xs.empty()) {
      // Each batch element is computed independently of its peers (see
      // golden_section.h), so batching only the misses reproduces the
      // uncached values exactly.
      const std::vector<double> computed = batch(miss_xs);
      for (std::size_t j = 0; j < miss_at.size() && j < computed.size();
           ++j) {
        values[miss_at[j]] = computed[j];
        memo.cache_->store(memo.key_for(miss_xs[j]),
                           cache::PayloadKind::kScalar,
                           encode_scalar(computed[j]));
      }
    }
    return values;
  };
}

ScalarMinimum scan_then_golden(const BatchObjective& batch,
                               const std::function<double(double)>& f,
                               double lo, double hi, std::size_t scan_points,
                               double x_tolerance, const EvalMemo& memo) {
  if (!memo.active()) {
    return scan_then_golden(batch, f, lo, hi, scan_points, x_tolerance);
  }
  return scan_then_golden(memo.wrap_batch(batch), memo.wrap(f), lo, hi,
                          scan_points, x_tolerance);
}

}  // namespace subscale::opt
