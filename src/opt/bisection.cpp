#include "opt/bisection.h"

#include <cmath>
#include <stdexcept>

namespace subscale::opt {

RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  double x_tolerance, std::size_t max_iterations) {
  if (hi <= lo) throw std::invalid_argument("bisect: hi <= lo");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return {.x = lo, .f_at_x = 0.0, .converged = true};
  if (fhi == 0.0) return {.x = hi, .f_at_x = 0.0, .converged = true};
  if (flo * fhi > 0.0) {
    throw std::invalid_argument("bisect: no sign change on [lo, hi]");
  }
  RootResult result;
  for (std::size_t it = 0; it < max_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    result.iterations = it + 1;
    if (fmid == 0.0 || hi - lo < x_tolerance) {
      result.x = mid;
      result.f_at_x = fmid;
      result.converged = true;
      return result;
    }
    if (flo * fmid < 0.0) {
      hi = mid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  result.x = 0.5 * (lo + hi);
  result.f_at_x = f(result.x);
  result.converged = hi - lo < x_tolerance;
  return result;
}

RootResult solve_monotone_log(const std::function<double(double)>& f,
                              double target, double seed, double lo_limit,
                              double hi_limit, double rel_tolerance,
                              std::size_t max_iterations) {
  if (seed <= 0.0 || lo_limit <= 0.0 || hi_limit <= lo_limit) {
    throw std::invalid_argument("solve_monotone_log: bad domain");
  }
  const auto g = [&](double log_x) { return f(std::exp(log_x)) - target; };

  // Establish direction from two probes.
  double x0 = std::clamp(seed, lo_limit, hi_limit);
  double lx = std::log(x0);
  const double l_lo = std::log(lo_limit);
  const double l_hi = std::log(hi_limit);

  // Expand a bracket geometrically around the seed.
  double a = lx;
  double b = lx;
  double ga = g(a);
  double gb = ga;
  double step = 0.3;  // ~35 % per expansion
  std::size_t guard = 0;
  while (ga * gb > 0.0 && guard++ < 100) {
    a = std::max(l_lo, a - step);
    b = std::min(l_hi, b + step);
    ga = g(a);
    gb = g(b);
    step *= 1.6;
    if (a == l_lo && b == l_hi && ga * gb > 0.0) {
      // Target unreachable: return the closer endpoint, not converged.
      RootResult r;
      r.x = std::abs(ga) < std::abs(gb) ? std::exp(a) : std::exp(b);
      r.f_at_x = f(r.x) - target;
      r.converged = false;
      return r;
    }
  }
  RootResult inner =
      bisect(g, a, b, rel_tolerance, max_iterations);
  inner.x = std::exp(inner.x);
  inner.f_at_x = f(inner.x) - target;
  return inner;
}

}  // namespace subscale::opt
