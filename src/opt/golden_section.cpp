#include "opt/golden_section.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace subscale::opt {

ScalarMinimum golden_section_minimize(const std::function<double(double)>& f,
                                      double lo, double hi,
                                      double x_tolerance,
                                      std::size_t max_evaluations) {
  if (hi <= lo) {
    throw std::invalid_argument("golden_section_minimize: hi <= lo");
  }
  if (x_tolerance <= 0.0) {
    throw std::invalid_argument("golden_section_minimize: tolerance <= 0");
  }
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi

  ScalarMinimum result;
  double a = lo;
  double b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c);
  double fd = f(d);
  result.evaluations = 2;

  while (b - a > x_tolerance && result.evaluations < max_evaluations) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
    ++result.evaluations;
  }
  if (fc < fd) {
    result.x = c;
    result.value = fc;
  } else {
    result.x = d;
    result.value = fd;
  }
  return result;
}

ScalarMinimum scan_then_golden(const std::function<double(double)>& f,
                               double lo, double hi, std::size_t scan_points,
                               double x_tolerance) {
  const BatchObjective serial_batch = [&](const std::vector<double>& xs) {
    std::vector<double> values;
    values.reserve(xs.size());
    for (const double x : xs) values.push_back(f(x));
    return values;
  };
  return scan_then_golden(serial_batch, f, lo, hi, scan_points, x_tolerance);
}

ScalarMinimum scan_then_golden(const BatchObjective& batch,
                               const std::function<double(double)>& f,
                               double lo, double hi, std::size_t scan_points,
                               double x_tolerance) {
  if (scan_points < 3) {
    throw std::invalid_argument("scan_then_golden: need >= 3 scan points");
  }
  std::vector<double> xs(scan_points);
  for (std::size_t i = 0; i < scan_points; ++i) {
    xs[i] = lo + (hi - lo) * static_cast<double>(i) /
                     static_cast<double>(scan_points - 1);
  }
  const std::vector<double> values = batch(xs);
  if (values.size() != scan_points) {
    throw std::invalid_argument(
        "scan_then_golden: batch objective returned wrong count");
  }
  std::size_t best = 0;
  double best_val = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < scan_points; ++i) {
    if (values[i] < best_val) {
      best_val = values[i];
      best = i;
    }
  }
  const double a = xs[best == 0 ? 0 : best - 1];
  const double b = xs[best + 1 >= scan_points ? scan_points - 1 : best + 1];
  if (b <= a) {
    return {.x = xs[best], .value = best_val, .evaluations = scan_points};
  }
  ScalarMinimum refined = golden_section_minimize(f, a, b, x_tolerance);
  refined.evaluations += scan_points;
  if (best_val < refined.value) {
    refined.x = xs[best];
    refined.value = best_val;
  }
  return refined;
}

}  // namespace subscale::opt
