#pragma once

/// \file scaling_study.h
/// The top-level facade of the library: runs both of the paper's scaling
/// strategies across the 90/65/45/32nm nodes once, caches the designed
/// devices, and hands out circuit-level views (inverters) for the
/// figure-reproduction experiments. Every bench builds on this class.

#include <vector>

#include "circuits/inverter.h"
#include "compact/calibration.h"
#include "scaling/subvth_strategy.h"
#include "scaling/supervth_strategy.h"

namespace subscale::core {

struct StudyOptions {
  scaling::SuperVthOptions super;
  scaling::SubVthOptions sub;
  double vdd_subthreshold = 0.25;  ///< the paper's sub-V_th test supply [V]
};

class ScalingStudy {
 public:
  explicit ScalingStudy(
      const compact::Calibration& calib = compact::paper_calibration(),
      const StudyOptions& options = {});

  const compact::Calibration& calibration() const { return calib_; }
  const StudyOptions& options() const { return options_; }

  std::size_t node_count() const { return scaling::paper_nodes().size(); }
  const scaling::NodeInput& node(std::size_t i) const {
    return scaling::paper_nodes()[i];
  }

  /// Designed devices (lazily computed once).
  const std::vector<scaling::DesignedDevice>& super_devices() const;
  const std::vector<scaling::SubVthDevice>& sub_devices() const;

  /// Balanced inverters on the designed devices. `vdd` overrides the
  /// operating rail (pass node(i).vdd for nominal, or
  /// options().vdd_subthreshold for the paper's 250 mV points).
  circuits::InverterDevices super_inverter(std::size_t i, double vdd) const;
  circuits::InverterDevices sub_inverter(std::size_t i, double vdd) const;

 private:
  compact::Calibration calib_;
  StudyOptions options_;
  mutable std::vector<scaling::DesignedDevice> super_;
  mutable std::vector<scaling::SubVthDevice> sub_;
};

}  // namespace subscale::core
