#pragma once

/// \file scaling_study.h
/// The top-level facade of the library: runs both of the paper's scaling
/// strategies across the 90/65/45/32nm nodes once, caches the designed
/// devices, and hands out circuit-level views (inverters) for the
/// figure-reproduction experiments. Every bench builds on this class.

#include <mutex>
#include <string>
#include <vector>

#include "cards/technology_card.h"
#include "circuits/inverter.h"
#include "compact/calibration.h"
#include "exec/run_context.h"
#include "scaling/subvth_strategy.h"
#include "scaling/supervth_strategy.h"
#include "tcad/device_sim.h"

namespace subscale::core {

struct StudyOptions {
  /// The technology deck: node list, device backend, temperature, and
  /// the sub-V_th leakage anchor. The default reproduces the paper's
  /// deck bitwise (it IS scaling::paper_nodes()). The card's env and
  /// leakage anchor are folded into super/sub at construction unless
  /// the caller already overrode those fields explicitly.
  cards::TechnologyCard card = cards::paper_bulk_lstp();
  scaling::SuperVthOptions super;
  scaling::SubVthOptions sub;
  double vdd_subthreshold = 0.25;  ///< the paper's sub-V_th test supply [V]
  /// Study-wide execution/telemetry context. An explicit thread count
  /// here is folded into super.exec / sub.exec at construction when
  /// those are still auto; a per-strategy explicit count always wins.
  /// Full precedence: explicit per-layer > RunContext > SUBSCALE_THREADS
  /// > hardware auto-detect (the env/auto steps live in
  /// ExecPolicy::resolved_threads()).
  exec::RunContext run{};
};

/// Which of the paper's two scaling strategies to pull devices from.
enum class Strategy { kSuperVth, kSubVth };

/// Canonical lowercase strategy names ("supervth"/"subvth") — the one
/// spelling shared by the orch manifest JSON and the serve wire schema.
const char* strategy_name(Strategy strategy);
/// Parse a strategy name; false (out untouched) on an unknown one.
bool parse_strategy(const std::string& name, Strategy& out);

struct TcadValidationOptions {
  Strategy strategy = Strategy::kSuperVth;
  std::vector<std::size_t> nodes;  ///< node indices to run (empty = all)
  double vd = 0.25;                ///< drain bias of the gate sweep [V]
  double vg_start = 0.0;
  double vg_stop = 0.45;
  std::size_t points = 10;
  tcad::MeshOptions mesh;
  tcad::GummelOptions gummel;
  /// Execution + strictness + telemetry for the node fan-out (replaces
  /// the old separate `strict`/`exec` knobs). run.exec drives the
  /// per-node task fan-out; run.strict rethrows the first solver
  /// failure (in node order) instead of recording and continuing;
  /// run.metrics/run.trace flow into every device and sweep. Results
  /// are bitwise-identical at every thread count; {threads = 1} is the
  /// exact serial path.
  exec::RunContext run{};
};

/// Outcome of validating one designed node against the TCAD backend.
/// `error` is non-empty when the device could not even reach a solved
/// equilibrium (the whole node is then skipped, not the study).
struct TcadNodeValidation {
  std::size_t node = 0;     ///< index into the card's node list
  double lpoly_nm = 0.0;    ///< the designed gate length
  std::string error;        ///< construction/equilibrium failure, if any
  std::vector<tcad::IdVgPoint> sweep;
  tcad::SweepReport report;  ///< per-point failures within the sweep
  /// Per-point effort/wall-time records (diagnostic; see SweepResult).
  std::vector<tcad::SweepPointRecord> timings;
  bool usable() const { return error.empty() && sweep.size() >= 2; }
};

class ScalingStudy {
 public:
  explicit ScalingStudy(
      const compact::Calibration& calib = compact::paper_calibration(),
      const StudyOptions& options = {});

  const compact::Calibration& calibration() const { return calib_; }
  const StudyOptions& options() const { return options_; }

  std::size_t node_count() const { return nodes_.size(); }
  const scaling::NodeInput& node(std::size_t i) const { return nodes_.at(i); }
  const std::vector<scaling::NodeInput>& nodes() const { return nodes_; }

  /// Designed devices (lazily computed once; safe to call from many
  /// threads — initialization is guarded by std::call_once).
  const std::vector<scaling::DesignedDevice>& super_devices() const;
  const std::vector<scaling::SubVthDevice>& sub_devices() const;

  /// Balanced inverters on the designed devices. `vdd` overrides the
  /// operating rail (pass node(i).vdd for nominal, or
  /// options().vdd_subthreshold for the paper's 250 mV points).
  circuits::InverterDevices super_inverter(std::size_t i, double vdd) const;
  circuits::InverterDevices sub_inverter(std::size_t i, double vdd) const;

  /// Cross-validate designed devices against the 2-D TCAD backend with
  /// graceful degradation: a node whose device fails to build or whose
  /// sweep loses points is reported (with structured diagnostics) and
  /// the remaining nodes still run. In strict mode the first solver
  /// failure propagates as tcad::SolverError.
  std::vector<TcadNodeValidation> tcad_validation(
      const TcadValidationOptions& options = {}) const;

 private:
  compact::Calibration calib_;
  StudyOptions options_;
  std::vector<scaling::NodeInput> nodes_;  ///< card's resolved node list
  mutable std::once_flag super_once_;
  mutable std::once_flag sub_once_;
  mutable std::vector<scaling::DesignedDevice> super_;
  mutable std::vector<scaling::SubVthDevice> sub_;
};

}  // namespace subscale::core
