#include "core/scaling_study.h"

#include <stdexcept>

namespace subscale::core {

ScalingStudy::ScalingStudy(const compact::Calibration& calib,
                           const StudyOptions& options)
    : calib_(calib), options_(options) {}

const std::vector<scaling::DesignedDevice>& ScalingStudy::super_devices()
    const {
  if (super_.empty()) {
    super_ = scaling::supervth_roadmap(calib_, options_.super);
  }
  return super_;
}

const std::vector<scaling::SubVthDevice>& ScalingStudy::sub_devices() const {
  if (sub_.empty()) {
    sub_ = scaling::subvth_roadmap(options_.sub, calib_);
  }
  return sub_;
}

circuits::InverterDevices ScalingStudy::super_inverter(std::size_t i,
                                                       double vdd) const {
  if (i >= super_devices().size()) {
    throw std::out_of_range("ScalingStudy::super_inverter: bad node index");
  }
  return circuits::make_inverter(super_devices()[i].spec, calib_).at_vdd(vdd);
}

circuits::InverterDevices ScalingStudy::sub_inverter(std::size_t i,
                                                     double vdd) const {
  if (i >= sub_devices().size()) {
    throw std::out_of_range("ScalingStudy::sub_inverter: bad node index");
  }
  return circuits::make_inverter(sub_devices()[i].device.spec, calib_)
      .at_vdd(vdd);
}

}  // namespace subscale::core
