#include "core/scaling_study.h"

#include <stdexcept>

#include "exec/parallel.h"
#include "obs/names.h"
#include "obs/timer.h"

namespace subscale::core {

const char* strategy_name(Strategy strategy) {
  return strategy == Strategy::kSubVth ? "subvth" : "supervth";
}

bool parse_strategy(const std::string& name, Strategy& out) {
  if (name == "supervth") {
    out = Strategy::kSuperVth;
    return true;
  }
  if (name == "subvth") {
    out = Strategy::kSubVth;
    return true;
  }
  return false;
}

ScalingStudy::ScalingStudy(const compact::Calibration& calib,
                           const StudyOptions& options)
    : calib_(calib), options_(options) {
  options_.run.validate();
  options_.card.validate();
  nodes_ = options_.card.resolved_nodes();
  // Fold the card's device environment and leakage anchor into the
  // strategy layers still at their defaults (an explicit per-strategy
  // value keeps priority, mirroring the exec folding below). Note a
  // caller explicitly re-stating a default value is indistinguishable
  // from "unset" — defaults are the fold trigger by design.
  const auto is_default_env = [](const compact::DeviceEnv& e) {
    const compact::DeviceEnv d{};
    return e.backend == d.backend && e.temperature == d.temperature &&
           e.nw_radius_nm == d.nw_radius_nm;
  };
  if (is_default_env(options_.super.env)) {
    options_.super.env = options_.card.env;
  }
  if (is_default_env(options_.sub.env)) {
    options_.sub.env = options_.card.env;
  }
  if (options_.sub.ioff_pa_um == scaling::SubVthOptions{}.ioff_pa_um) {
    options_.sub.ioff_pa_um = options_.card.subvth_ioff_pa_um;
  }
  // Fold the study-wide thread count into the strategy layers that are
  // still on auto; an explicit per-strategy count keeps priority.
  if (options_.run.exec.threads != 0) {
    if (options_.super.exec.threads == 0) {
      options_.super.exec = options_.run.exec;
    }
    if (options_.sub.exec.threads == 0) {
      options_.sub.exec = options_.run.exec;
    }
  }
  // Same folding for the solve cache: a study-wide cache reaches the
  // design layer unless the caller already set one there. (TCAD
  // validation picks it up separately through TcadDevice's RunContext.)
  if (options_.run.cache != nullptr && options_.sub.cache == nullptr) {
    options_.sub.cache = options_.run.cache;
  }
}

const std::vector<scaling::DesignedDevice>& ScalingStudy::super_devices()
    const {
  std::call_once(super_once_, [this] {
    super_ = scaling::supervth_roadmap(nodes_, calib_, options_.super);
  });
  return super_;
}

const std::vector<scaling::SubVthDevice>& ScalingStudy::sub_devices() const {
  std::call_once(sub_once_, [this] {
    sub_ = scaling::subvth_roadmap(nodes_, options_.sub, calib_);
  });
  return sub_;
}

circuits::InverterDevices ScalingStudy::super_inverter(std::size_t i,
                                                       double vdd) const {
  if (i >= super_devices().size()) {
    throw std::out_of_range("ScalingStudy::super_inverter: bad node index");
  }
  return circuits::make_inverter(super_devices()[i].spec, calib_).at_vdd(vdd);
}

circuits::InverterDevices ScalingStudy::sub_inverter(std::size_t i,
                                                     double vdd) const {
  if (i >= sub_devices().size()) {
    throw std::out_of_range("ScalingStudy::sub_inverter: bad node index");
  }
  return circuits::make_inverter(sub_devices()[i].device.spec, calib_)
      .at_vdd(vdd);
}

std::vector<TcadNodeValidation> ScalingStudy::tcad_validation(
    const TcadValidationOptions& options) const {
  options.run.validate();
  const bool sub = options.strategy == Strategy::kSubVth;
  // Force the lazy roadmap before the fan-out so every task reads an
  // immutable cache (call_once makes even a racing first touch safe).
  const std::size_t n_nodes =
      sub ? sub_devices().size() : super_devices().size();

  std::vector<std::size_t> nodes = options.nodes;
  if (nodes.empty()) {
    for (std::size_t i = 0; i < n_nodes; ++i) nodes.push_back(i);
  }
  for (const std::size_t i : nodes) {
    if (i >= n_nodes) {
      throw std::out_of_range("ScalingStudy::tcad_validation: bad node index");
    }
  }

  // One task per node, each with its own TcadDevice (mesh + solver
  // state are per-task, nothing is shared across tasks). In strict
  // mode the solver exception escapes the task, is captured by the
  // runtime, and the lowest-index failure is rethrown below — the same
  // failure a serial strict run surfaces first.
  obs::MetricsRegistry* sink = options.run.sink();
  obs::SpanProfiler* prof = options.run.span_sink();
  const auto run_node = [&](std::size_t k) {
    const std::size_t i = nodes[k];
    const compact::DeviceSpec& spec =
        sub ? sub_devices()[i].device.spec : super_devices()[i].spec;
    TcadNodeValidation result;
    result.node = i;
    result.lpoly_nm = spec.geometry.lpoly * 1e9;
    const obs::ScopedSpan node_span(prof, obs::names::spans::kStudyNode);
    obs::ScopedTimer timer(sink, obs::names::kStudyNodeMs);
    try {
      tcad::TcadDevice device(spec, options.mesh, options.gummel,
                              options.run);
      tcad::SweepResult swept = device.id_vg(options.vd, options.vg_start,
                                             options.vg_stop, options.points);
      result.sweep = std::move(swept.points);
      result.report = std::move(swept.report);
      result.timings = std::move(swept.timings);
      if (sink != nullptr) {
        sink->counter(obs::names::kStudyNodesValidated).add(1);
        if (!result.report.failures.empty()) {
          sink->counter(obs::names::kStudySweepPointFailures)
              .add(result.report.failures.size());
        }
      }
    } catch (const std::exception& e) {
      if (options.run.strict) throw;
      // Aggressive nodes (32nm-class literal structures) can fail to
      // mesh or to reach equilibrium at all; record and move on.
      result.error = e.what();
      if (sink != nullptr) {
        sink->counter(obs::names::kStudyNodeErrors).add(1);
      }
    }
    return result;
  };

  return exec::values_or_throw(exec::parallel_map<TcadNodeValidation>(
      nodes.size(), run_node, options.run.exec,
      exec::TaskObs{prof, options.run.trace}));
}

}  // namespace subscale::core
