#include "core/scaling_study.h"

#include <stdexcept>

#include "exec/parallel.h"

namespace subscale::core {

ScalingStudy::ScalingStudy(const compact::Calibration& calib,
                           const StudyOptions& options)
    : calib_(calib), options_(options) {}

const std::vector<scaling::DesignedDevice>& ScalingStudy::super_devices()
    const {
  std::call_once(super_once_, [this] {
    super_ = scaling::supervth_roadmap(calib_, options_.super);
  });
  return super_;
}

const std::vector<scaling::SubVthDevice>& ScalingStudy::sub_devices() const {
  std::call_once(sub_once_, [this] {
    sub_ = scaling::subvth_roadmap(options_.sub, calib_);
  });
  return sub_;
}

circuits::InverterDevices ScalingStudy::super_inverter(std::size_t i,
                                                       double vdd) const {
  if (i >= super_devices().size()) {
    throw std::out_of_range("ScalingStudy::super_inverter: bad node index");
  }
  return circuits::make_inverter(super_devices()[i].spec, calib_).at_vdd(vdd);
}

circuits::InverterDevices ScalingStudy::sub_inverter(std::size_t i,
                                                     double vdd) const {
  if (i >= sub_devices().size()) {
    throw std::out_of_range("ScalingStudy::sub_inverter: bad node index");
  }
  return circuits::make_inverter(sub_devices()[i].device.spec, calib_)
      .at_vdd(vdd);
}

std::vector<TcadNodeValidation> ScalingStudy::tcad_validation(
    const TcadValidationOptions& options) const {
  const bool sub = options.strategy == Strategy::kSubVth;
  // Force the lazy roadmap before the fan-out so every task reads an
  // immutable cache (call_once makes even a racing first touch safe).
  const std::size_t n_nodes =
      sub ? sub_devices().size() : super_devices().size();

  std::vector<std::size_t> nodes = options.nodes;
  if (nodes.empty()) {
    for (std::size_t i = 0; i < n_nodes; ++i) nodes.push_back(i);
  }
  for (const std::size_t i : nodes) {
    if (i >= n_nodes) {
      throw std::out_of_range("ScalingStudy::tcad_validation: bad node index");
    }
  }

  // One task per node, each with its own TcadDevice (mesh + solver
  // state are per-task, nothing is shared across tasks). In strict
  // mode the solver exception escapes the task, is captured by the
  // runtime, and the lowest-index failure is rethrown below — the same
  // failure a serial strict run surfaces first.
  const auto run_node = [&](std::size_t k) {
    const std::size_t i = nodes[k];
    const compact::DeviceSpec& spec =
        sub ? sub_devices()[i].device.spec : super_devices()[i].spec;
    TcadNodeValidation result;
    result.node = i;
    result.lpoly_nm = spec.geometry.lpoly * 1e9;
    try {
      tcad::TcadDevice device(spec, options.mesh, options.gummel);
      tcad::SweepOptions sweep_options;
      sweep_options.strict = options.strict;
      result.sweep = device.id_vg(options.vd, options.vg_start,
                                  options.vg_stop, options.points,
                                  sweep_options);
      result.report = device.last_sweep_report();
    } catch (const std::exception& e) {
      if (options.strict) throw;
      // Aggressive nodes (32nm-class literal structures) can fail to
      // mesh or to reach equilibrium at all; record and move on.
      result.error = e.what();
    }
    return result;
  };

  return exec::values_or_throw(exec::parallel_map<TcadNodeValidation>(
      nodes.size(), run_node, options.exec));
}

}  // namespace subscale::core
