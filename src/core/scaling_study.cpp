#include "core/scaling_study.h"

#include <stdexcept>

namespace subscale::core {

ScalingStudy::ScalingStudy(const compact::Calibration& calib,
                           const StudyOptions& options)
    : calib_(calib), options_(options) {}

const std::vector<scaling::DesignedDevice>& ScalingStudy::super_devices()
    const {
  if (super_.empty()) {
    super_ = scaling::supervth_roadmap(calib_, options_.super);
  }
  return super_;
}

const std::vector<scaling::SubVthDevice>& ScalingStudy::sub_devices() const {
  if (sub_.empty()) {
    sub_ = scaling::subvth_roadmap(options_.sub, calib_);
  }
  return sub_;
}

circuits::InverterDevices ScalingStudy::super_inverter(std::size_t i,
                                                       double vdd) const {
  if (i >= super_devices().size()) {
    throw std::out_of_range("ScalingStudy::super_inverter: bad node index");
  }
  return circuits::make_inverter(super_devices()[i].spec, calib_).at_vdd(vdd);
}

circuits::InverterDevices ScalingStudy::sub_inverter(std::size_t i,
                                                     double vdd) const {
  if (i >= sub_devices().size()) {
    throw std::out_of_range("ScalingStudy::sub_inverter: bad node index");
  }
  return circuits::make_inverter(sub_devices()[i].device.spec, calib_)
      .at_vdd(vdd);
}

std::vector<TcadNodeValidation> ScalingStudy::tcad_validation(
    const TcadValidationOptions& options) const {
  const bool sub = options.strategy == Strategy::kSubVth;
  const std::size_t n_nodes =
      sub ? sub_devices().size() : super_devices().size();

  std::vector<std::size_t> nodes = options.nodes;
  if (nodes.empty()) {
    for (std::size_t i = 0; i < n_nodes; ++i) nodes.push_back(i);
  }

  std::vector<TcadNodeValidation> results;
  results.reserve(nodes.size());
  for (const std::size_t i : nodes) {
    if (i >= n_nodes) {
      throw std::out_of_range("ScalingStudy::tcad_validation: bad node index");
    }
    const compact::DeviceSpec& spec =
        sub ? sub_devices()[i].device.spec : super_devices()[i].spec;
    TcadNodeValidation result;
    result.node = i;
    result.lpoly_nm = spec.geometry.lpoly * 1e9;
    try {
      tcad::TcadDevice device(spec, options.mesh, options.gummel);
      tcad::SweepOptions sweep_options;
      sweep_options.strict = options.strict;
      result.sweep = device.id_vg(options.vd, options.vg_start,
                                  options.vg_stop, options.points,
                                  sweep_options);
      result.report = device.last_sweep_report();
    } catch (const std::exception& e) {
      if (options.strict) throw;
      // Aggressive nodes (32nm-class literal structures) can fail to
      // mesh or to reach equilibrium at all; record and move on.
      result.error = e.what();
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace subscale::core
