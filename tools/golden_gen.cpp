/// golden_gen: (re)generate the golden regression fixtures under
/// tests/golden/. Each fixture pins the headline values of one paper
/// table/figure as computed by the CURRENT code: Table 2 (super-V_th
/// roadmap), Table 3 (sub-V_th roadmap), Fig. 2 (S_S and Ion/Ioff
/// across nodes), Fig. 9 (energy-optimal L_poly and S_S across nodes).
/// tests/test_golden.cpp recomputes the same quantities and compares
/// against the fixtures with a tight relative tolerance — so any PR
/// that shifts the physics must regenerate the fixtures DELIBERATELY
/// and show the diff in review.
///
///   ./golden_gen [output_dir]     # default: tests/golden
///
/// Values are written with %.17g (io::JsonWriter), so fixtures
/// round-trip doubles bit-exactly and the tolerance only absorbs
/// genuine numeric drift, not serialization.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "cards/technology_card.h"
#include "compact/device_model.h"
#include "compact/mosfet.h"
#include "core/scaling_study.h"
#include "io/writer.h"
#include "physics/units.h"

namespace {

using subscale::core::ScalingStudy;

void write_fixture(
    const std::string& dir, const std::string& name,
    const std::vector<std::pair<std::string, double>>& values) {
  subscale::io::JsonWriter w;
  w.begin_object();
  w.key("fixture");
  w.value(name);
  w.key("values");
  w.begin_object();
  for (const auto& [key, value] : values) {
    w.key(key);
    w.value(value);
  }
  w.end_object();
  w.end_object();

  const std::string path = dir + "/" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "golden_gen: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  const std::string text = w.str();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("golden_gen: wrote %s (%zu values)\n", path.c_str(),
              values.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "tests/golden";
  std::filesystem::create_directories(dir);

  const ScalingStudy study;  // default options — what test_golden uses
  const auto& calib = study.calibration();

  std::vector<std::pair<std::string, double>> table2;
  std::vector<std::pair<std::string, double>> fig02;
  for (std::size_t i = 0; i < study.node_count(); ++i) {
    const auto& d = study.super_devices()[i];
    const std::string n = d.node.name + ".";
    table2.emplace_back(n + "lpoly_nm", d.node.lpoly_nm);
    table2.emplace_back(n + "nsub_cm3", d.nsub_cm3);
    table2.emplace_back(n + "nhalo_net_cm3", d.nhalo_net_cm3);
    table2.emplace_back(n + "vth_sat_mv", d.vth_sat_mv);
    table2.emplace_back(n + "ioff_pa_um", d.ioff_pa_um);
    table2.emplace_back(n + "ss_mv_dec", d.ss_mv_dec);
    table2.emplace_back(n + "tau_ps", d.tau_ps);

    const subscale::compact::CompactMosfet fet(d.spec, calib);
    const double ion = fet.drain_current(d.node.vdd, d.node.vdd);
    fig02.emplace_back(n + "ss_mv_dec", d.ss_mv_dec);
    fig02.emplace_back(n + "log10_ion_ioff",
                       std::log10(ion / fet.ioff()));
  }

  std::vector<std::pair<std::string, double>> table3;
  std::vector<std::pair<std::string, double>> fig09;
  for (std::size_t i = 0; i < study.node_count(); ++i) {
    const auto& d = study.sub_devices()[i];
    const std::string n = d.device.node.name + ".";
    table3.emplace_back(n + "lpoly_opt_nm", d.lpoly_opt_nm);
    table3.emplace_back(n + "nsub_cm3", d.device.nsub_cm3);
    table3.emplace_back(n + "nhalo_net_cm3", d.device.nhalo_net_cm3);
    table3.emplace_back(n + "vth_sat_mv", d.device.vth_sat_mv);
    table3.emplace_back(n + "ioff_pa_um", d.device.ioff_pa_um);
    table3.emplace_back(n + "ss_mv_dec", d.device.ss_mv_dec);
    table3.emplace_back(n + "tau_ps", d.device.tau_ps);
    table3.emplace_back(n + "energy_factor_raw", d.energy_factor_raw);
    table3.emplace_back(n + "delay_factor_raw", d.delay_factor_raw);

    fig09.emplace_back(n + "lpoly_opt_nm", d.lpoly_opt_nm);
    fig09.emplace_back(n + "ss_mv_dec", d.device.ss_mv_dec);
  }

  // Nanowire backend fixture: Id–Vg + swing of one directly-constructed
  // GAA device (fixed node geometry and doping — no design loop in the
  // way), pinning compact backend #2 the same way table2 pins #1.
  std::vector<std::pair<std::string, double>> nanowire;
  {
    namespace u = subscale::units;
    const auto& card = subscale::cards::nanowire_gaa();
    const auto& node = subscale::scaling::paper_nodes()[0];
    subscale::doping::MosfetDopingLevels levels;
    levels.nsub = u::per_cm3(1e18);
    levels.np_halo = 0.0;
    const auto spec = subscale::scaling::make_node_spec(
        node, node.lpoly_nm, levels, node.vdd, card.env);
    const auto fet = subscale::compact::make_device_model(spec, calib);
    nanowire.emplace_back("ss_mv_dec", fet->subthreshold_swing() * 1e3);
    nanowire.emplace_back("vth_sat_mv", fet->vth_sat_extracted() * 1e3);
    nanowire.emplace_back("ioff_pa_um",
                          u::to_pA_per_um(fet->ioff() / spec.width));
    for (int i = 0; i < 10; ++i) {
      const double vg = 0.05 * i;  // 0 .. 0.45 V
      nanowire.emplace_back("log10_id." + std::to_string(i),
                            std::log10(fet->drain_current(vg, 0.25)));
    }
  }

  write_fixture(dir, "table2_supervth", table2);
  write_fixture(dir, "table3_subvth", table3);
  write_fixture(dir, "fig02_ss_ionioff", fig02);
  write_fixture(dir, "fig09_lpoly_ss", fig09);
  write_fixture(dir, "nanowire_idvg", nanowire);
  return 0;
}
