// CLI wrapper over orch::worker_main: claim units from a study manifest,
// solve them, publish into the shared cache. Spawned by subscale_orch
// (or by hand, for debugging a single worker against a study dir).
//
//   subscale_worker --manifest M.json --study-dir DIR --cache-dir DIR
//                   [--worker-id ID] [--heartbeat SECONDS]
//                   [--chaos-kill-after N] [--chaos-seed S]
//                   [--chaos-sigterm]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "orch/worker.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --manifest M.json --study-dir DIR --cache-dir DIR\n"
               "          [--worker-id ID] [--heartbeat SECONDS]\n"
               "          [--chaos-kill-after N] [--chaos-seed S]"
               " [--chaos-sigterm]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  subscale::orch::WorkerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--manifest" && (v = next())) {
      options.manifest_path = v;
    } else if (arg == "--study-dir" && (v = next())) {
      options.study_dir = v;
    } else if (arg == "--cache-dir" && (v = next())) {
      options.cache_dir = v;
    } else if (arg == "--worker-id" && (v = next())) {
      options.worker_id = v;
    } else if (arg == "--heartbeat" && (v = next())) {
      options.heartbeat_seconds = std::atof(v);
    } else if (arg == "--chaos-kill-after" && (v = next())) {
      options.chaos.kill_after_units =
          static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--chaos-seed" && (v = next())) {
      options.chaos.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--chaos-sigterm") {
      options.chaos.sigkill = false;
    } else {
      return usage(argv[0]);
    }
  }
  if (options.manifest_path.empty() || options.study_dir.empty() ||
      options.cache_dir.empty()) {
    return usage(argv[0]);
  }
  return subscale::orch::worker_main(options);
}
