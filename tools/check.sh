#!/usr/bin/env bash
# Tier-1 verify in one command: configure, build, ctest.
#
#   ./tools/check.sh                          # plain RelWithDebInfo
#   SUBSCALE_SANITIZE=address ./tools/check.sh
#   SUBSCALE_SANITIZE=undefined ./tools/check.sh
#   SUBSCALE_SANITIZE=address,undefined ./tools/check.sh
#   SUBSCALE_SANITIZE=thread ./tools/check.sh   # TSAN + concurrency tests
#
# Sanitized runs use their own build tree (build-asan, ...) so the plain
# ./build tree stays warm. The thread mode builds with -fsanitize=thread
# and runs only the exec-layer / determinism suites (Exec*, TaskPool,
# Parallel*) — TSAN slows the numeric suites ~10x for no extra coverage,
# since everything else is single-threaded unless it goes through exec.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitize="${SUBSCALE_SANITIZE:-}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

build_dir="$repo_root/build"
cmake_args=()
# The tier-1 label is the seed gate: every suite carries it (see
# tests/CMakeLists.txt), so this is "plain ctest" parity by construction
# and stays honest if a future suite opts out of the tier.
ctest_args=("-L" "tier1")
if [[ -n "$sanitize" ]]; then
  case "$sanitize" in
    address) build_dir="$repo_root/build-asan" ;;
    undefined) build_dir="$repo_root/build-ubsan" ;;
    thread)
      build_dir="$repo_root/build-tsan"
      # Only the suites that actually spin up threads.
      ctest_args+=("-R" "^(Exec|TaskPool|Parallel)")
      export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
      ;;
    *) build_dir="$repo_root/build-san" ;;
  esac
  cmake_args+=("-DSUBSCALE_SANITIZE=$sanitize")
  # Abort on the first UBSan report instead of printing and continuing.
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
fi

cmake -B "$build_dir" -S "$repo_root" "${cmake_args[@]}"
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" "${ctest_args[@]}"

# Plain builds also validate the bench telemetry schema: run one fast
# bench to produce a fresh record and check it against the whitelist
# (sanitized trees skip this — bench wall times are meaningless there).
# The same record then exercises the obs_diff regression gate both
# ways: a record diffed against itself must pass, and a synthetically
# inflated effort counter must fail.
if [[ -z "$sanitize" ]]; then
  bench_tmp="$(mktemp -d)"
  # SUBSCALE_CACHE_DIR exercises the env-installed solve cache along the
  # way: a cold run must publish records (cache.store > 0 in the bench
  # telemetry proves the wiring, not just that the env var was read).
  # SUBSCALE_PERFDB_DIR exercises the bench-side perf-history wiring:
  # the run must land in the store as an obs_trend-visible record.
  (cd "$bench_tmp" && SUBSCALE_PROFILE=1 \
      SUBSCALE_CACHE_DIR="$bench_tmp/cache" \
      SUBSCALE_PERFDB_DIR="$bench_tmp/perfdb" \
      "$build_dir/bench/bench_tcad_validation" > /dev/null)
  "$repo_root/tools/bench_schema.sh" "$bench_tmp"/BENCH_*.json
  if ! grep -Eq '"cache\.store": [1-9]' "$bench_tmp"/BENCH_*.json; then
    echo "check.sh: env-installed cache published no records" >&2
    exit 1
  fi

  record="$(ls "$bench_tmp"/BENCH_*.json | head -n 1)"
  "$build_dir/tools/obs_diff" "$record" "$record"
  # Inflate one deterministic effort counter ~1.5x; the gate must trip.
  awk '{
    if ($0 ~ /"tcad.gummel.outer_iterations":/) {
      match($0, /[0-9]+/)
      v = substr($0, RSTART, RLENGTH)
      sub(/[0-9]+/, int(v * 3 / 2) + 1)
    }
    print
  }' "$record" > "$bench_tmp/perturbed.json"
  if "$build_dir/tools/obs_diff" "$record" "$bench_tmp/perturbed.json"; then
    echo "check.sh: obs_diff failed to flag a 50% counter regression" >&2
    exit 1
  fi
  echo "obs_diff: regression gate trips on perturbed record (expected)"

  # Perf-history round-trip smoke (src/perfdb + tools/obs_trend). First:
  # the bench run above, with SUBSCALE_PERFDB_DIR set, must already have
  # appended itself to the store.
  if ! "$build_dir/tools/obs_trend" list --db "$bench_tmp/perfdb" \
      | grep -q "tcad_validation"; then
    echo "check.sh: bench run did not land in the perf-history store" >&2
    exit 1
  fi
  # Then the trend gate both ways on a synthetic history: three appends
  # of the same record form a flat baseline the gate must pass, and the
  # perturbed record (same +50% effort counter as the obs_diff check)
  # appended as the newest run must trip it.
  trend_db="$bench_tmp/trend-db"
  for i in 1 2 3; do
    "$build_dir/tools/obs_trend" append --db "$trend_db" \
        --ts "$((1000 + i))" --rev "self$i" "$record" > /dev/null
  done
  "$build_dir/tools/obs_trend" gate --db "$trend_db" \
      --bench tcad_validation
  "$build_dir/tools/obs_trend" append --db "$trend_db" --ts 2000 \
      --rev drift "$bench_tmp/perturbed.json" > /dev/null
  if "$build_dir/tools/obs_trend" gate --db "$trend_db" \
      --bench tcad_validation; then
    echo "check.sh: obs_trend failed to flag a 50% drift vs baseline" >&2
    exit 1
  fi
  echo "obs_trend: trend gate trips on drifted history (expected)"
  # Rollup query sanity: show must summarize the gated counter's series.
  if ! "$build_dir/tools/obs_trend" show --db "$trend_db" \
      --bench tcad_validation --metric tcad.gummel.outer_iterations \
      | grep -q "median="; then
    echo "check.sh: obs_trend show produced no rollup stats" >&2
    exit 1
  fi

  # Cold-solve acceleration budget. The bench already self-gates the
  # >=3x speedup inside its shape verdict; this enforces the same floor
  # a second time at the perf-history level (obs_trend --metric-min on
  # the recorded headline number) plus a generous absolute wall ceiling
  # on the accelerated cold solve, so a pathological slowdown fails
  # even on a run where the ratio happens to hold. Then the gate is
  # proven live by demanding an impossible floor trips it.
  "$build_dir/tools/obs_trend" gate --db "$bench_tmp/perfdb" \
      --bench tcad_validation --metric-min cold_speedup=3.0 \
      --metric-max cold_solve_ms_accel=30000
  if "$build_dir/tools/obs_trend" gate --db "$bench_tmp/perfdb" \
      --bench tcad_validation --metric-min cold_speedup=1000000 \
      > /dev/null; then
    echo "check.sh: obs_trend budget gate failed to trip" >&2
    exit 1
  fi
  if ! "$build_dir/tools/obs_trend" show --db "$bench_tmp/perfdb" \
      --bench tcad_validation --metric cold_solve_ms_accel \
      | grep -q "median="; then
    echo "check.sh: cold-solve series missing from perf history" >&2
    exit 1
  fi
  echo "obs_trend: cold-solve budget gate enforced"
  rm -rf "$bench_tmp"

  # Cache round-trip smoke: bench_ext_cache gates itself (warm replay
  # >= 5x over cold, cache hits observed, warm results bitwise-identical
  # to the uncached run) and exits non-zero on any violation. Its record
  # must also satisfy the telemetry schema.
  cache_tmp="$(mktemp -d)"
  (cd "$cache_tmp" && "$build_dir/bench/bench_ext_cache" > /dev/null)
  "$repo_root/tools/bench_schema.sh" "$cache_tmp"/BENCH_*.json
  echo "bench_ext_cache: cache round-trip smoke passed"
  rm -rf "$cache_tmp"

  # Card round-trip smoke: bench_ext_cards gates itself (one-node card
  # save -> load -> re-serialize byte-identical, and the reloaded card's
  # 1-node design study bitwise-equal to the builtin's) and exits
  # non-zero on any violation. Its record must also carry the card id
  # and satisfy the telemetry schema.
  cards_tmp="$(mktemp -d)"
  (cd "$cards_tmp" && "$build_dir/bench/bench_ext_cards" > /dev/null)
  "$repo_root/tools/bench_schema.sh" "$cards_tmp"/BENCH_*.json
  if ! grep -q '"card": "' "$cards_tmp"/BENCH_*.json; then
    echo "check.sh: bench record does not name its technology card" >&2
    exit 1
  fi
  echo "bench_ext_cards: card round-trip smoke passed"
  rm -rf "$cards_tmp"

  # Orchestrator resume smoke: a forked-worker study, then a rerun
  # against the same dirs. The rerun must be a pure resume (claimed=0 —
  # every unit found in the content-addressed store, nothing re-solved)
  # and merge to byte-identical output. The full chaos tier (seeded
  # worker SIGKILLs, mid-flight orchestrator kill) lives in
  # tools/chaos_study.sh; this keeps the fast path honest.
  orch_tmp="$(mktemp -d)"
  orch_args=(--nodes 0,1 --points 3 --coarse-mesh --workers 2
             --study-dir "$orch_tmp/study" --cache-dir "$orch_tmp/cache")
  "$build_dir/tools/subscale_orch" "${orch_args[@]}" \
      --out "$orch_tmp/run1.json" > /dev/null
  resume_summary="$("$build_dir/tools/subscale_orch" "${orch_args[@]}" \
      --out "$orch_tmp/run2.json")"
  if [[ "$resume_summary" != *"claimed=0"* ]]; then
    echo "check.sh: orchestrator resume re-solved units: $resume_summary" >&2
    exit 1
  fi
  cmp "$orch_tmp/run1.json" "$orch_tmp/run2.json" || {
    echo "check.sh: orchestrator resume output differs from first run" >&2
    exit 1
  }
  echo "subscale_orch: resume smoke passed ($resume_summary)"
  rm -rf "$orch_tmp"

  # Serve chaos smoke: bring up the design-query daemon on a warm-able
  # cache dir, answer one query, SIGKILL the daemon (no graceful
  # shutdown), restart it in place, and demand (a) the repeated query is
  # answered from the persistent cache and (b) the daemon's response
  # bytes match the one-shot subscale_query CLI exactly — transport adds
  # nothing, a crash loses nothing.
  serve_tmp="$(mktemp -d)"
  serve_query=(--kind sweep --node 0 --points 3 --coarse-mesh)
  # serve_roundtrip VAR: query the daemon, retrying while it comes up
  # (a SIGKILLed daemon leaves a stale socket file behind, so waiting on
  # the path alone is not enough — wait for an actual answer).
  serve_roundtrip() {
    local -n out=$1
    for _ in $(seq 100); do
      if out="$("$build_dir/tools/subscale_query" "${serve_query[@]}" \
          --socket "$serve_tmp/sock" 2>/dev/null)"; then
        return 0
      fi
      sleep 0.1
    done
    echo "check.sh: serve daemon never answered" >&2
    return 1
  }
  "$build_dir/tools/subscale_serve" --socket "$serve_tmp/sock" \
      --cache-dir "$serve_tmp/cache" > "$serve_tmp/daemon1.log" &
  serve_pid=$!
  serve_roundtrip first
  kill -KILL "$serve_pid"
  wait "$serve_pid" 2>/dev/null || true
  "$build_dir/tools/subscale_serve" --socket "$serve_tmp/sock" \
      --cache-dir "$serve_tmp/cache" > "$serve_tmp/daemon2.log" &
  serve_pid=$!
  serve_roundtrip second
  info="$("$build_dir/tools/subscale_query" --kind server_info \
      --socket "$serve_tmp/sock")"
  # Live telemetry export: the metrics query must answer from the daemon
  # in both wire formats, and the Prometheus rendering must carry the
  # serve-layer instruments.
  metrics_prom="$("$build_dir/tools/subscale_query" --kind metrics \
      --format prometheus --socket "$serve_tmp/sock")"
  if ! grep -q "subscale_serve_requests" <<< "$metrics_prom"; then
    echo "check.sh: daemon metrics export lacks serve instruments" >&2
    exit 1
  fi
  kill -TERM "$serve_pid"
  wait "$serve_pid" 2>/dev/null || true
  if [[ "$first" != "$second" ]]; then
    echo "check.sh: serve restart answer differs from pre-kill answer" >&2
    exit 1
  fi
  if ! grep -Eq '"cache.hit": [1-9]' <<< "$info"; then
    echo "check.sh: restarted daemon did not answer from the cache" >&2
    exit 1
  fi
  # The daemon's bytes must equal the transport-free CLI dispatch on the
  # same warm cache (command substitution strips the trailing newline on
  # both sides, so this is a byte comparison of the JSON documents).
  oneshot="$("$build_dir/tools/subscale_query" "${serve_query[@]}" \
      --cache-dir "$serve_tmp/cache")"
  if [[ "$second" != "$oneshot" ]]; then
    echo "check.sh: daemon response differs from one-shot CLI dispatch" >&2
    exit 1
  fi
  echo "subscale_serve: kill/restart chaos smoke passed (warm, bitwise)"
  rm -rf "$serve_tmp"
fi
