// One-shot design-query CLI: build a subscale.query.v1 request from
// flags (or read one as JSON), answer it, print the canonical response
// document. Two modes, same Dispatcher semantics:
//
//   * local (default): dispatch in-process — no daemon needed. With
//     --cache-dir the solve goes through the persistent cache, so a
//     later daemon answering the same query replays the identical
//     bytes (the serve smoke diffs exactly this).
//   * remote (--socket PATH or --host H --port N): frame the query to a
//     running subscale_serve daemon and print the response frame
//     byte-for-byte.
//
//   subscale_query [--kind design|sweep|figure|server_info|metrics]
//                  [--card ID_OR_FILE] [--strategy supervth|subvth]
//                  [--node N] [--vd V] [--vg-start V] [--vg-stop V]
//                  [--points N] [--coarse-mesh] [--figure ss|tau|...]
//                  [--id TAG] [--json FILE|-] [--format json|prometheus]
//                  [--cache-dir DIR]                 (local mode)
//                  [--socket PATH | --host H --port N]  (remote mode)
//
// --format prometheus renders an ok `metrics` response in the
// Prometheus text exposition format instead of JSON (same payload, same
// bytes whether the query went to a daemon or dispatched locally —
// metrics_to_prometheus is a pure function of the payload).
//
// Exit status: 0 = ok response, 1 = error response or I/O failure,
// 2 = usage. The response document goes to stdout either way.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "cache/solve_cache.h"
#include "obs/names.h"
#include "serve/client.h"
#include "serve/dispatcher.h"

using namespace subscale;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--kind design|sweep|figure|server_info|metrics]\n"
      "          [--card ID_OR_FILE] [--strategy supervth|subvth]\n"
      "          [--node N] [--vd V] [--vg-start V] [--vg-stop V]\n"
      "          [--points N] [--coarse-mesh] [--figure ss|tau|ioff|vth|"
      "lpoly]\n"
      "          [--id TAG] [--json FILE|-] [--format json|prometheus]\n"
      "          [--cache-dir DIR]\n"
      "          [--socket PATH | --host H --port N]\n",
      argv0);
  return 2;
}

bool read_json_source(const std::string& source, std::string& text) {
  if (source == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
    return true;
  }
  std::ifstream in(source, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  text = buf.str();
  return true;
}

/// Print the response document plus a trailing newline (command
/// substitution strips it, so `$(subscale_query ...)` is byte-exact).
int finish(const std::string& response_text, bool ok) {
  std::fwrite(response_text.data(), 1, response_text.size(), stdout);
  std::fputc('\n', stdout);
  return ok ? 0 : 1;
}

/// Format-aware finish: an ok metrics response under --format
/// prometheus prints the text exposition (already newline-terminated);
/// everything else prints the JSON document.
int finish_result(const serve::Result& result,
                  const std::string& response_text,
                  const std::string& format) {
  if (format == "prometheus" && result.ok &&
      result.kind == serve::QueryKind::kMetrics) {
    const std::string text = serve::metrics_to_prometheus(result.metrics);
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }
  return finish(response_text, result.ok);
}

}  // namespace

int main(int argc, char** argv) {
  serve::Query query;
  query.kind = serve::QueryKind::kDesign;
  std::string json_source;
  std::string format = "json";
  std::string cache_dir;
  std::string socket_path;
  std::string host = "127.0.0.1";
  int port = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--kind" && (v = next())) {
      if (!serve::parse_query_kind(v, query.kind)) return usage(argv[0]);
    } else if (arg == "--card" && (v = next())) {
      query.card = v;
    } else if (arg == "--strategy" && (v = next())) {
      if (!core::parse_strategy(v, query.strategy)) return usage(argv[0]);
    } else if (arg == "--node" && (v = next())) {
      query.node = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--vd" && (v = next())) {
      query.vd = std::atof(v);
    } else if (arg == "--vg-start" && (v = next())) {
      query.vg_start = std::atof(v);
    } else if (arg == "--vg-stop" && (v = next())) {
      query.vg_stop = std::atof(v);
    } else if (arg == "--points" && (v = next())) {
      query.points = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--coarse-mesh") {
      query.coarse_mesh = true;
    } else if (arg == "--figure" && (v = next())) {
      query.figure = v;
    } else if (arg == "--id" && (v = next())) {
      query.id = v;
    } else if (arg == "--json" && (v = next())) {
      json_source = v;
    } else if (arg == "--format" && (v = next())) {
      format = v;
      if (format != "json" && format != "prometheus") return usage(argv[0]);
    } else if (arg == "--cache-dir" && (v = next())) {
      cache_dir = v;
    } else if (arg == "--socket" && (v = next())) {
      socket_path = v;
    } else if (arg == "--host" && (v = next())) {
      host = v;
    } else if (arg == "--port" && (v = next())) {
      port = std::atoi(v);
    } else {
      return usage(argv[0]);
    }
  }

  if (!json_source.empty()) {
    std::string text;
    if (!read_json_source(json_source, text)) {
      std::fprintf(stderr, "subscale_query: cannot read %s\n",
                   json_source.c_str());
      return 1;
    }
    serve::Error parse_error;
    if (!serve::parse_query(text, query, parse_error)) {
      // Bad input still produces a well-formed error document, exactly
      // as the daemon would answer it.
      return finish(serve::result_to_json(serve::error_result(
                        query, parse_error.code, parse_error.message,
                        parse_error.detail)),
                    false);
    }
  }

  const bool remote = !socket_path.empty() || port >= 0;
  if (remote) {
    serve::Client client;
    const bool connected = !socket_path.empty()
                               ? client.connect_unix(socket_path)
                               : client.connect_tcp(host, port);
    if (!connected) {
      std::fprintf(stderr, "subscale_query: %s\n", client.error().c_str());
      return 1;
    }
    serve::Result result;
    if (!client.roundtrip(query, result)) {
      std::fprintf(stderr, "subscale_query: %s\n", client.error().c_str());
      return 1;
    }
    return finish_result(result, client.last_response_text(), format);
  }

  obs::MetricsRegistry registry;
  obs::names::preregister_standard(registry);
  serve::DispatcherOptions options;
  options.run.metrics = &registry;
  std::unique_ptr<cache::SolveCache> cache;
  if (!cache_dir.empty()) {
    cache::CacheOptions cache_options;
    cache_options.dir = cache_dir;
    cache_options.metrics = &registry;
    cache = std::make_unique<cache::SolveCache>(cache_options);
    options.run.cache = cache.get();
  }
  try {
    serve::Dispatcher dispatcher(options);
    const serve::Result result = dispatcher.dispatch(query);
    return finish_result(result, serve::result_to_json(result), format);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "subscale_query: %s\n", e.what());
    return 1;
  }
}
