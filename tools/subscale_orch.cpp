// Study orchestrator CLI: shard a study into a manifest, run it across
// N worker processes (or serially with --workers 0), merge the
// published results into one canonical JSON artifact. Rerunning the
// same command against the same --cache-dir resumes: already-published
// units are counted as completed and only the remainder is solved.
//
//   subscale_orch --study-dir DIR --cache-dir DIR [--workers N]
//                 [--out result.json] [--card ID_OR_FILE]
//                 [--nodes 0,1,2,3] [--vd 0.25]
//                 [--points N] [--strategies supervth,subvth]
//                 [--coarse-mesh] [--retry-budget N]
//                 [--lease-timeout S] [--deadline S]
//                 [--chaos-kill-after N] [--chaos-seed S]
//                 [--chaos-sigterm] [--rearm-chaos]
//
// Workers are spawned from the sibling subscale_worker binary when one
// exists next to this executable; otherwise the orchestrator forks
// itself and runs the worker loop in-process.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "cache/solve_cache.h"
#include "obs/metrics.h"
#include "orch/orchestrator.h"

namespace fs = std::filesystem;
using namespace subscale;

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// The subscale_worker binary installed next to this executable, if any.
std::string sibling_worker(const char* argv0) {
  std::error_code ec;
  fs::path self = fs::path(argv0);
  const fs::path proc = fs::read_symlink("/proc/self/exe", ec);
  if (!ec && !proc.empty()) self = proc;
  const fs::path candidate = self.parent_path() / "subscale_worker";
  return fs::exists(candidate, ec) && !ec ? candidate.string()
                                          : std::string();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --study-dir DIR --cache-dir DIR [--workers N]\n"
               "          [--out FILE] [--card ID_OR_FILE]"
               " [--nodes i,j,...] [--vd V]\n"
               "          [--points N]\n"
               "          [--strategies supervth,subvth] [--coarse-mesh]\n"
               "          [--retry-budget N] [--lease-timeout S]"
               " [--deadline S]\n"
               "          [--chaos-kill-after N] [--chaos-seed S]"
               " [--chaos-sigterm]\n"
               "          [--rearm-chaos]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  orch::StudySpec spec;
  orch::OrchOptions options;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--study-dir" && (v = next())) {
      options.study_dir = v;
    } else if (arg == "--cache-dir" && (v = next())) {
      options.cache_dir = v;
    } else if (arg == "--workers" && (v = next())) {
      options.workers = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--out" && (v = next())) {
      out_path = v;
    } else if (arg == "--card" && (v = next())) {
      spec.card = v;
    } else if (arg == "--nodes" && (v = next())) {
      for (const std::string& tok : split_commas(v)) {
        spec.nodes.push_back(static_cast<std::size_t>(std::atol(tok.c_str())));
      }
    } else if (arg == "--vd" && (v = next())) {
      spec.vds = {std::atof(v)};
    } else if (arg == "--points" && (v = next())) {
      spec.points = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--strategies" && (v = next())) {
      spec.strategies.clear();
      for (const std::string& tok : split_commas(v)) {
        core::Strategy s;
        if (!orch::parse_strategy(tok, s)) return usage(argv[0]);
        spec.strategies.push_back(s);
      }
    } else if (arg == "--coarse-mesh") {
      spec.mesh.surface_spacing = 0.6e-9;
      spec.mesh.junction_spacing = 1.5e-9;
    } else if (arg == "--retry-budget" && (v = next())) {
      options.retry_budget = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--lease-timeout" && (v = next())) {
      options.lease_timeout_seconds = std::atof(v);
    } else if (arg == "--deadline" && (v = next())) {
      options.deadline_seconds = std::atof(v);
    } else if (arg == "--chaos-kill-after" && (v = next())) {
      options.chaos.kill_after_units =
          static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--chaos-seed" && (v = next())) {
      options.chaos.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--chaos-sigterm") {
      options.chaos.sigkill = false;
    } else if (arg == "--rearm-chaos") {
      options.rearm_chaos = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (options.study_dir.empty() || options.cache_dir.empty()) {
    return usage(argv[0]);
  }
  options.worker_exe = sibling_worker(argv[0]);

  obs::MetricsRegistry registry;
  options.run.metrics = &registry;

  try {
    const orch::Manifest manifest = orch::build_manifest(spec);
    const orch::StudyResult result = orch::run_study(manifest, options);
    if (!out_path.empty() && !orch::write_study_result(out_path, result)) {
      std::fprintf(stderr, "subscale_orch: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
    std::printf(
        "study: units=%zu completed=%zu resumed=%zu claimed=%zu "
        "reassigned=%zu poisoned=%zu restarts=%zu%s\n",
        result.report.units_total, result.report.completed,
        result.report.resumed, result.report.claimed,
        result.report.reassigned, result.report.poisoned,
        result.report.worker_restarts,
        result.report.deadline_hit ? " DEADLINE" : "");
    return result.complete() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "subscale_orch: %s\n", e.what());
    return 1;
  }
}
