// Two-stage calibration refinement tool.
//
// Stage 1 (inner): fit (c_dep, k_halo) to the paper's published S_S
// anchors (Tables 2/3 devices with the Fig. 2 / Sec. 3.3 slope values).
// Stage 2 (outer): choose (c_sce, c_len, c_fringe) so that, in addition
// to the anchors, the paper's *optimizer outcome* is reproduced: the
// energy-optimal L_poly of the sub-V_th strategy must land near Table 3's
// 95/75/60/45 nm column.
//
// The winning constants are frozen into compact::paper_calibration();
// re-run this tool (target: refine_calibration) after any change to the
// device geometry rules or the S_S model and paste the new values.

#include <cmath>
#include <cstdio>
#include <vector>

#include "compact/calibration.h"
#include "compact/ss_model.h"
#include "opt/coordinate_descent.h"
#include "scaling/subvth_strategy.h"
#include "scaling/technology.h"

using namespace subscale;
using namespace subscale::compact;

namespace {

double anchor_objective(const Calibration& c, const SsAnchor* anchors,
                        int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double neff = anchors[i].nsub + c.k_halo * anchors[i].halo_add;
    const double ss =
        subthreshold_swing(neff, anchors[i].tox, anchors[i].leff, 300.0, c);
    const double rel = (ss - anchors[i].ss_target) / anchors[i].ss_target;
    sum += anchors[i].weight * rel * rel;
  }
  return sum;
}

/// Inner fit of (c_dep, k_halo) for given outer parameters.
Calibration inner_fit(Calibration trial, const SsAnchor* anchors, int n) {
  const auto obj = [&](const std::vector<double>& x) {
    Calibration t = trial;
    t.c_dep = x[0];
    t.k_halo = x[1];
    return anchor_objective(t, anchors, n);
  };
  const auto fit = opt::coordinate_descent(
      obj, {trial.c_dep, trial.k_halo},
      {{.lo = 0.3, .hi = 3.0}, {.lo = 0.2, .hi = 2.5}}, {.sweeps = 10});
  trial.c_dep = fit.x[0];
  trial.k_halo = fit.x[1];
  return trial;
}

}  // namespace

int main() {
  SsAnchor anchors[8];
  const int n = paper_ss_anchors(anchors);
  const double paper_lpoly[] = {95.0, 75.0, 60.0, 45.0};

  // Light-weight design options for the outcome evaluation.
  scaling::SubVthOptions design_opts;
  design_opts.lpoly_scan_points = 11;
  design_opts.split_iterations = 3;

  const double w_outcome = 2.5;
  const double w_claim = 6.0;  // the Fig. 2 "+11 % S_S" headline ratio

  const auto anchor_ss = [&](const Calibration& c, int i) {
    const double neff = anchors[i].nsub + c.k_halo * anchors[i].halo_add;
    return subthreshold_swing(neff, anchors[i].tox, anchors[i].leff, 300.0,
                              c);
  };

  const auto outer_obj = [&](const std::vector<double>& x) {
    Calibration trial;
    trial.c_sce = x[0];
    trial.c_len = x[1];
    trial.c_wire = x[2];
    trial = inner_fit(trial, anchors, n);
    double j = anchor_objective(trial, anchors, n);
    // Headline claims: super-V_th S_S degrades 11 % from 90nm to 32nm;
    // sub-V_th S_S drifts by only ~1.2 mV/dec.
    const double r_super = anchor_ss(trial, 3) / anchor_ss(trial, 0);
    j += w_claim * (r_super / 1.11 - 1.0) * (r_super / 1.11 - 1.0);
    const double sub_drift_mv =
        (anchor_ss(trial, 7) - anchor_ss(trial, 4)) * 1e3;
    const double drift_err = (sub_drift_mv - 1.2) / 10.0;  // 10 mV scale
    j += w_claim * drift_err * drift_err;
    for (int g = 0; g < 4; ++g) {
      try {
        const auto dev = scaling::design_subvth_device(
            scaling::paper_nodes()[static_cast<std::size_t>(g)], design_opts,
            trial);
        const double rel =
            (dev.lpoly_opt_nm - paper_lpoly[g]) / paper_lpoly[g];
        j += w_outcome * rel * rel;
      } catch (const std::exception&) {
        j += 10.0;  // infeasible corner
      }
    }
    return j;
  };

  const auto outer_fit = opt::coordinate_descent(
      outer_obj, {1.5, 1.0, 1.5e-9},
      {{.lo = 0.3, .hi = 3.5},
       {.lo = 0.5, .hi = 1.6},
       {.lo = 2.0e-10, .hi = 6.0e-9}},
      {.sweeps = 5, .x_tolerance_fraction = 1e-3});

  Calibration best;
  best.c_sce = outer_fit.x[0];
  best.c_len = outer_fit.x[1];
  best.c_wire = outer_fit.x[2];
  best = inner_fit(best, anchors, n);

  std::printf("// Refined calibration (paste into paper_calibration()):\n");
  std::printf("c.c_dep    = %.6f;\n", best.c_dep);
  std::printf("c.c_sce    = %.6f;\n", best.c_sce);
  std::printf("c.c_len    = %.6f;\n", best.c_len);
  std::printf("c.k_halo   = %.6f;\n", best.k_halo);
  std::printf("c.c_wire   = %.6e;\n", best.c_wire);
  std::printf("// objective = %.5f\n\n", outer_fit.value);

  // Report the achieved anchors and outcomes.
  for (int i = 0; i < n; ++i) {
    const double neff = anchors[i].nsub + best.k_halo * anchors[i].halo_add;
    const double ss =
        subthreshold_swing(neff, anchors[i].tox, anchors[i].leff, 300.0, best);
    std::printf("anchor %d: ss=%.2f target=%.2f err=%+.2f%%\n", i, ss * 1e3,
                anchors[i].ss_target * 1e3,
                100.0 * (ss / anchors[i].ss_target - 1.0));
  }
  for (int g = 0; g < 4; ++g) {
    const auto dev = scaling::design_subvth_device(
        scaling::paper_nodes()[static_cast<std::size_t>(g)], {}, best);
    std::printf("node %d: lpoly_opt=%.1f (paper %.0f)  ss=%.2f\n", g,
                dev.lpoly_opt_nm, paper_lpoly[g], dev.device.ss_mv_dec);
  }
  return 0;
}
