/// obs_diff: compare the "obs" telemetry blocks of two BENCH_<name>.json
/// records and fail on effort regressions.
///
///   obs_diff [--tolerance F] [--include-timing] OLD.json NEW.json
///
/// A key regresses when its NEW value exceeds OLD by more than the
/// relative tolerance (default 0.10), or appears from zero. Solver
/// effort counters (gummel iterations, retries, linear solves, ...) are
/// deterministic at any thread count, so a genuine increase means the
/// change made the solver work harder — the gate catches that without
/// timing noise. Which keys participate is decided by the one shared
/// schema table (src/obs/names.h, `obs::names::regression_gated`):
/// environment-dependent families (exec.pool.*, cache.*, orch.*,
/// serve.*), wall-clock sums (opt back in: --include-timing) and final
/// residual gauges are exempt. A key present in OLD but missing in NEW
/// also fails (schema drift).
///
/// This is the explicit PAIRWISE gate (two records, no history). For
/// trend-aware gating against a rolling baseline, see tools/obs_trend.
///
/// Exit codes: 0 = no regression, 1 = regression, 2 = usage/parse error.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/names.h"

namespace {

/// Extract the flat key -> number map of the record's "obs" block.
/// The block is pretty-printed one "key": value pair per line (see
/// io::JsonWriter), so a line scanner is enough — no JSON library.
bool parse_obs_block(const std::string& path,
                     std::map<std::string, double>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "obs_diff: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  bool in_obs = false;
  while (std::getline(in, line)) {
    if (!in_obs) {
      if (line.find("\"obs\": {") != std::string::npos) in_obs = true;
      continue;
    }
    if (line.find('}') != std::string::npos) {
      return true;  // end of the flat block
    }
    const std::size_t k0 = line.find('"');
    if (k0 == std::string::npos) continue;
    const std::size_t k1 = line.find('"', k0 + 1);
    if (k1 == std::string::npos) continue;
    const std::size_t colon = line.find(':', k1);
    if (colon == std::string::npos) continue;
    const std::string key = line.substr(k0 + 1, k1 - k0 - 1);
    const std::string value_text = line.substr(colon + 1);
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str()) continue;  // null or malformed: skip
    out[key] = value;
  }
  std::fprintf(stderr, "obs_diff: %s: no \"obs\" block found\n",
               path.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.10;
  bool include_timing = false;
  std::string old_path;
  std::string new_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "obs_diff: --tolerance needs a value\n");
        return 2;
      }
      char* end = nullptr;
      tolerance = std::strtod(argv[++i], &end);
      if (end == argv[i] || !(tolerance >= 0.0)) {
        std::fprintf(stderr, "obs_diff: bad tolerance %s\n", argv[i]);
        return 2;
      }
    } else if (arg == "--include-timing") {
      include_timing = true;
    } else if (old_path.empty()) {
      old_path = arg;
    } else if (new_path.empty()) {
      new_path = arg;
    } else {
      std::fprintf(stderr, "obs_diff: unexpected argument %s\n",
                   arg.c_str());
      return 2;
    }
  }
  if (old_path.empty() || new_path.empty()) {
    std::fprintf(stderr,
                 "usage: obs_diff [--tolerance F] [--include-timing] "
                 "OLD.json NEW.json\n");
    return 2;
  }

  std::map<std::string, double> old_obs;
  std::map<std::string, double> new_obs;
  if (!parse_obs_block(old_path, old_obs) ||
      !parse_obs_block(new_path, new_obs)) {
    return 2;
  }

  int regressions = 0;
  std::size_t compared = 0;
  for (const auto& [key, old_value] : old_obs) {
    if (!subscale::obs::names::regression_gated(key, include_timing)) {
      continue;
    }

    const auto it = new_obs.find(key);
    if (it == new_obs.end()) {
      std::printf("MISSING  %-44s old=%g (key absent in new record)\n",
                  key.c_str(), old_value);
      ++regressions;
      continue;
    }
    ++compared;
    const double new_value = it->second;
    bool regressed = false;
    if (old_value == 0.0) {
      regressed = new_value > 0.0;
    } else {
      regressed = (new_value - old_value) / std::abs(old_value) > tolerance;
    }
    if (regressed) {
      const double pct = old_value == 0.0
                             ? 100.0
                             : 100.0 * (new_value - old_value) /
                                   std::abs(old_value);
      std::printf("REGRESS  %-44s old=%g new=%g (%+.1f%%)\n", key.c_str(),
                  old_value, new_value, pct);
      ++regressions;
    }
  }

  if (regressions > 0) {
    std::printf("obs_diff: %d regression(s) over tolerance %.0f%% (%zu "
                "keys compared)\n",
                regressions, 100.0 * tolerance, compared);
    return 1;
  }
  std::printf("obs_diff: OK (%zu keys compared, tolerance %.0f%%)\n",
              compared, 100.0 * tolerance);
  return 0;
}
