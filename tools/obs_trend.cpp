/// obs_trend: the trend-aware regression gate over a perf-history store
/// (src/perfdb), superseding pairwise obs_diff semantics for CI. Where
/// obs_diff compares exactly two BENCH records, obs_trend gates the
/// NEWEST run of a bench against the rolling baseline — the median of
/// the last N prior runs — so slow multi-PR drift (3% per PR, never
/// tripping a 10% pairwise diff) still fires once it accumulates.
///
///   obs_trend append --db DIR [--ts SECONDS] [--rev REV] BENCH.json...
///   obs_trend gate   --db DIR --bench NAME [--window N] [--tolerance F]
///                    [--metric-tolerance KEY=F]... [--include-timing]
///                    [--wall] [--slope F]
///   obs_trend show   --db DIR --bench NAME [--metric KEY]
///   obs_trend list   --db DIR
///
/// `append` ingests BENCH_<name>.json documents (bench/common.h output)
/// into the store, stamping timestamp and revision; the bench driver
/// appends directly when SUBSCALE_PERFDB_DIR is set, so `append` mostly
/// serves check.sh smokes and manual backfills. `gate` is the CI entry
/// point; `show` prints per-metric rollup stats and the Theil–Sen trend;
/// `list` names the benches with history.
///
/// Which keys gate comes from the one schema table in src/obs/names.h
/// (obs::names::regression_gated) — the same policy obs_diff applies
/// pairwise. Interrupted (signal-flushed) records never enter baselines.
///
/// Exit codes: 0 = pass, 1 = regression, 2 = usage/load error.

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "perfdb/record.h"
#include "perfdb/rollup.h"
#include "perfdb/store.h"

namespace {

using subscale::perfdb::MetricTrend;
using subscale::perfdb::PerfDb;
using subscale::perfdb::PerfRecord;
using subscale::perfdb::TrendGateOptions;
using subscale::perfdb::TrendReport;
using subscale::perfdb::WindowStats;

int usage() {
  std::fprintf(
      stderr,
      "usage: obs_trend append --db DIR [--ts SECONDS] [--rev REV] "
      "BENCH.json...\n"
      "       obs_trend gate   --db DIR --bench NAME [--window N]\n"
      "                        [--tolerance F] [--metric-tolerance KEY=F]...\n"
      "                        [--include-timing] [--wall] [--slope F]\n"
      "                        [--metric-min KEY=F]... [--metric-max KEY=F]...\n"
      "       obs_trend show   --db DIR --bench NAME [--metric KEY]\n"
      "       obs_trend list   --db DIR\n");
  return 2;
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

int cmd_append(const std::string& db_dir, std::uint64_t ts,
               const std::string& rev,
               const std::vector<std::string>& paths) {
  PerfDb db(db_dir);
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "obs_trend: cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    PerfRecord record;
    std::string error;
    if (!subscale::perfdb::record_from_bench_json(text.str(), record,
                                                  &error)) {
      std::fprintf(stderr, "obs_trend: %s: %s\n", path.c_str(),
                   error.c_str());
      return 2;
    }
    record.ts = ts;
    record.rev = rev;
    if (!db.append(record)) {
      std::fprintf(stderr, "obs_trend: append to %s failed\n",
                   db.path_for(record.bench).c_str());
      return 2;
    }
    std::printf("appended %s -> %s\n", record.bench.c_str(),
                db.path_for(record.bench).c_str());
  }
  return 0;
}

/// Absolute budgets on the newest record (headline metrics included —
/// the trend gate deliberately skips those, but a bench-chosen number
/// like cold_solve_ms_accel or cold_speedup can still carry a hard
/// floor/ceiling the CI run must honor). A budgeted key missing from
/// the newest record fails, same stance as the trend gate's MISSING.
int check_budgets(
    const PerfRecord& newest,
    const std::vector<std::pair<std::string, double>>& metric_mins,
    const std::vector<std::pair<std::string, double>>& metric_maxs) {
  int violations = 0;
  const auto value_of = [&newest](const std::string& key, double& out) {
    return newest.find(key, out);
  };
  for (const auto& [key, floor] : metric_mins) {
    double v = 0.0;
    if (!value_of(key, v)) {
      std::printf("BUDGET   %-44s MISSING (wanted >= %g)\n", key.c_str(),
                  floor);
      ++violations;
    } else if (v < floor) {
      std::printf("BUDGET   %-44s newest=%g below floor %g\n", key.c_str(),
                  v, floor);
      ++violations;
    }
  }
  for (const auto& [key, cap] : metric_maxs) {
    double v = 0.0;
    if (!value_of(key, v)) {
      std::printf("BUDGET   %-44s MISSING (wanted <= %g)\n", key.c_str(),
                  cap);
      ++violations;
    } else if (v > cap) {
      std::printf("BUDGET   %-44s newest=%g over budget %g\n", key.c_str(),
                  v, cap);
      ++violations;
    }
  }
  return violations;
}

int cmd_gate(const std::string& db_dir, const std::string& bench,
             const TrendGateOptions& options,
             const std::vector<std::pair<std::string, double>>& metric_mins,
             const std::vector<std::pair<std::string, double>>& metric_maxs) {
  PerfDb db(db_dir);
  PerfDb::LoadStats stats;
  const std::vector<PerfRecord> history = db.load(bench, &stats);
  if (stats.corrupt > 0) {
    std::fprintf(stderr, "obs_trend: %zu corrupt line(s) skipped in %s\n",
                 stats.corrupt, db.path_for(bench).c_str());
  }
  const bool budgeted = !metric_mins.empty() || !metric_maxs.empty();
  if (budgeted && history.empty()) {
    std::fprintf(stderr,
                 "obs_trend: %s: no usable records to budget-check\n",
                 bench.c_str());
    return 1;
  }
  if (history.size() < 2) {
    // Budgets are absolute — one record is enough to check them; only
    // the relative trend gate needs history.
    if (budgeted) {
      const int violations =
          check_budgets(history.back(), metric_mins, metric_maxs);
      if (violations > 0) {
        std::printf("obs_trend: %d budget violation(s)\n", violations);
        return 1;
      }
    }
    std::printf(
        "obs_trend: %s: %zu usable record(s) — nothing to gate yet "
        "(trivial pass%s)\n",
        bench.c_str(), history.size(), budgeted ? ", budgets OK" : "");
    return 0;
  }
  const TrendReport report = subscale::perfdb::trend_gate(history, options);
  for (const MetricTrend& m : report.metrics) {
    if (m.missing) {
      std::printf("MISSING  %-44s baseline=%g (key absent in newest)\n",
                  m.key.c_str(), m.baseline);
    } else if (m.regressed) {
      std::printf("REGRESS  %-44s baseline=%g newest=%g (%+.1f%%, "
                  "window=%zu, slope=%g/run)\n",
                  m.key.c_str(), m.baseline, m.newest, 100.0 * m.change,
                  m.window_n, m.trend.slope);
    }
  }
  const int budget_violations =
      check_budgets(history.back(), metric_mins, metric_maxs);
  if (!report.ok() || budget_violations > 0) {
    std::printf(
        "obs_trend: %zu regression(s), %d budget violation(s) vs rolling "
        "baseline (%zu metrics gated over %zu records, tolerance %.0f%%)\n",
        report.regressions, budget_violations, report.compared,
        report.records, 100.0 * options.tolerance);
    return 1;
  }
  std::printf(
      "obs_trend: OK (%zu metrics gated over %zu records, tolerance "
      "%.0f%%%s)\n",
      report.compared, report.records, 100.0 * options.tolerance,
      budgeted ? ", budgets OK" : "");
  return 0;
}

int cmd_show(const std::string& db_dir, const std::string& bench,
             const std::string& only_metric) {
  PerfDb db(db_dir);
  PerfDb::LoadStats stats;
  const std::vector<PerfRecord> history = db.load(bench, &stats);
  std::printf("%s: %zu record(s) (%zu corrupt, %zu interrupted skipped)\n",
              bench.c_str(), history.size(), stats.corrupt,
              stats.interrupted);
  if (history.empty()) return 0;

  // Every series-able key across the history: wall_ms + union of obs.
  std::vector<std::string> keys;
  keys.push_back("wall_ms");
  const auto add_key = [&keys](const std::string& key) {
    for (const std::string& k : keys) {
      if (k == key) return;
    }
    keys.push_back(key);
  };
  for (const PerfRecord& r : history) {
    for (const auto& [key, value] : r.obs) {
      (void)value;
      add_key(key);
    }
    // Headline metrics chart too (obs wins on collision, same order
    // PerfRecord::find resolves them).
    for (const auto& [key, value] : r.metrics) {
      (void)value;
      add_key(key);
    }
  }

  for (const std::string& key : keys) {
    if (!only_metric.empty() && key != only_metric) continue;
    const std::vector<double> series =
        subscale::perfdb::metric_series(history, key);
    if (series.empty()) continue;
    const WindowStats stats_all = subscale::perfdb::window_stats(series);
    const subscale::perfdb::TrendFit fit =
        subscale::perfdb::robust_trend(series);
    std::printf("%-46s n=%-3zu mean=%-12g median=%-12g min=%-12g max=%-12g "
                "slope=%g/run\n",
                key.c_str(), stats_all.n, stats_all.mean, stats_all.median,
                stats_all.min, stats_all.max, fit.ok ? fit.slope : 0.0);
  }
  return 0;
}

int cmd_list(const std::string& db_dir) {
  PerfDb db(db_dir);
  for (const std::string& bench : db.benches()) {
    PerfDb::LoadStats stats;
    const std::vector<PerfRecord> history = db.load(bench, &stats);
    std::printf("%-32s %zu record(s)\n", bench.c_str(), history.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  std::string db_dir;
  std::string bench;
  std::string only_metric;
  std::string rev;
  std::uint64_t ts = static_cast<std::uint64_t>(std::time(nullptr));
  TrendGateOptions options;
  std::vector<std::pair<std::string, double>> metric_mins;
  std::vector<std::pair<std::string, double>> metric_maxs;
  std::vector<std::string> paths;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "obs_trend: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--db") {
      const char* v = need_value("--db");
      if (v == nullptr) return 2;
      db_dir = v;
    } else if (arg == "--bench") {
      const char* v = need_value("--bench");
      if (v == nullptr) return 2;
      bench = v;
    } else if (arg == "--metric") {
      const char* v = need_value("--metric");
      if (v == nullptr) return 2;
      only_metric = v;
    } else if (arg == "--ts") {
      const char* v = need_value("--ts");
      if (v == nullptr) return 2;
      char* end = nullptr;
      ts = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "obs_trend: bad --ts %s\n", v);
        return 2;
      }
    } else if (arg == "--rev") {
      const char* v = need_value("--rev");
      if (v == nullptr) return 2;
      rev = v;
    } else if (arg == "--window") {
      const char* v = need_value("--window");
      if (v == nullptr) return 2;
      char* end = nullptr;
      const unsigned long long n = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || n == 0) {
        std::fprintf(stderr, "obs_trend: bad --window %s\n", v);
        return 2;
      }
      options.window = static_cast<std::size_t>(n);
    } else if (arg == "--tolerance") {
      const char* v = need_value("--tolerance");
      if (v == nullptr) return 2;
      if (!parse_double(v, options.tolerance) ||
          !(options.tolerance >= 0.0)) {
        std::fprintf(stderr, "obs_trend: bad --tolerance %s\n", v);
        return 2;
      }
    } else if (arg == "--metric-tolerance") {
      const char* v = need_value("--metric-tolerance");
      if (v == nullptr) return 2;
      const std::string spec = v;
      const std::size_t eq = spec.find('=');
      double tol = 0.0;
      if (eq == std::string::npos || eq == 0 ||
          !parse_double(spec.c_str() + eq + 1, tol) || !(tol >= 0.0)) {
        std::fprintf(stderr,
                     "obs_trend: --metric-tolerance wants KEY=F, got %s\n",
                     v);
        return 2;
      }
      options.tolerance_overrides.emplace_back(spec.substr(0, eq), tol);
    } else if (arg == "--metric-min" || arg == "--metric-max") {
      const char* v = need_value(arg.c_str());
      if (v == nullptr) return 2;
      const std::string spec = v;
      const std::size_t eq = spec.find('=');
      double bound = 0.0;
      if (eq == std::string::npos || eq == 0 ||
          !parse_double(spec.c_str() + eq + 1, bound)) {
        std::fprintf(stderr, "obs_trend: %s wants KEY=F, got %s\n",
                     arg.c_str(), v);
        return 2;
      }
      (arg == "--metric-min" ? metric_mins : metric_maxs)
          .emplace_back(spec.substr(0, eq), bound);
    } else if (arg == "--include-timing") {
      options.include_timing = true;
    } else if (arg == "--wall") {
      options.gate_wall_ms = true;
    } else if (arg == "--slope") {
      const char* v = need_value("--slope");
      if (v == nullptr) return 2;
      if (!parse_double(v, options.slope_tolerance) ||
          !(options.slope_tolerance >= 0.0)) {
        std::fprintf(stderr, "obs_trend: bad --slope %s\n", v);
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "obs_trend: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (db_dir.empty()) {
    std::fprintf(stderr, "obs_trend: --db is required\n");
    return usage();
  }

  if (cmd == "append") {
    if (paths.empty()) {
      std::fprintf(stderr, "obs_trend: append wants BENCH.json paths\n");
      return usage();
    }
    return cmd_append(db_dir, ts, rev, paths);
  }
  if (cmd == "gate") {
    if (bench.empty()) {
      std::fprintf(stderr, "obs_trend: gate wants --bench\n");
      return usage();
    }
    return cmd_gate(db_dir, bench, options, metric_mins, metric_maxs);
  }
  if (cmd == "show") {
    if (bench.empty()) {
      std::fprintf(stderr, "obs_trend: show wants --bench\n");
      return usage();
    }
    return cmd_show(db_dir, bench, only_metric);
  }
  if (cmd == "list") {
    return cmd_list(db_dir);
  }
  std::fprintf(stderr, "obs_trend: unknown command %s\n", cmd.c_str());
  return usage();
}
