#!/usr/bin/env bash
# Deterministic chaos + resume harness for the multi-process study
# orchestrator (src/orch). Proves the crash-tolerance contract end to
# end, from the CLI, with real forked workers:
#
#   1. Golden: a serial in-process run (workers=0) of a small coarse-mesh
#      study produces the reference merged JSON.
#   2. Chaos: the same study runs with forked workers under a seeded
#      ChaosPolicy — every initial worker SIGKILLs itself mid-unit (the
#      kill site is derived from the seed: after claiming the lease,
#      after the equilibrium solve, or after solving but before
#      publishing). The orchestrator must detect the stale leases,
#      reassign, respawn, and finish with nothing poisoned — and the
#      merged output must be byte-for-byte the golden file.
#   3. Mid-flight kill + resume: a fresh multi-worker run is SIGKILLed
#      from the outside (orchestrator and workers), then rerun against
#      the same study/cache dirs. The rerun must report claimed=0 only
#      if the first run finished; either way it completes, solves only
#      the missing units, and matches the golden bytes.
#
#   ./tools/chaos_study.sh [build_dir]     # default ./build
#
# Fixed seeds make every kill site reproducible run-to-run; there is no
# wall-clock randomness anywhere in the harness.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
orch="$build_dir/tools/subscale_orch"
[[ -x "$orch" ]] || { echo "chaos_study: $orch not built" >&2; exit 1; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Small but real: 2 nodes x 3-point sweeps on the coarse mesh keeps the
# whole harness in seconds while still forking real TCAD workers.
study_args=(--nodes 0,1 --points 3 --coarse-mesh --lease-timeout 1.0)

echo "== golden: serial reference run =="
"$orch" "${study_args[@]}" --workers 0 \
    --study-dir "$tmp/golden/study" --cache-dir "$tmp/golden/cache" \
    --out "$tmp/golden.json"

echo "== chaos: every worker SIGKILLed mid-unit (seeds 0 1 2) =="
for seed in 0 1 2; do
  summary="$("$orch" "${study_args[@]}" --workers 2 \
      --chaos-kill-after 1 --chaos-seed "$seed" \
      --study-dir "$tmp/chaos$seed/study" --cache-dir "$tmp/chaos$seed/cache" \
      --out "$tmp/chaos$seed.json")"
  echo "seed $seed: $summary"
  [[ "$summary" != *"poisoned=0"* ]] && {
    echo "chaos_study: seed $seed poisoned a unit" >&2; exit 1; }
  [[ "$summary" == *"reassigned=0"* ]] && {
    echo "chaos_study: seed $seed saw no reassignment (chaos not armed?)" >&2
    exit 1; }
  cmp "$tmp/golden.json" "$tmp/chaos$seed.json" || {
    echo "chaos_study: seed $seed merge differs from golden" >&2; exit 1; }
done

echo "== mid-flight SIGKILL of the orchestrator, then resume =="
"$orch" "${study_args[@]}" --workers 2 \
    --study-dir "$tmp/resume/study" --cache-dir "$tmp/resume/cache" \
    --out "$tmp/resume.json" &
orch_pid=$!
sleep 0.5   # enough for workers to start; whether a unit published yet
            # is box-dependent, and the invariants hold either way
# Kill the whole process group stand-ins: orchestrator first, then any
# workers it left behind (their parent died, so find them by exe name).
kill -KILL "$orch_pid" 2>/dev/null || true
wait "$orch_pid" 2>/dev/null || true
pkill -KILL -f "subscale_worker.*$tmp/resume" 2>/dev/null || true

summary="$("$orch" "${study_args[@]}" --workers 2 \
    --study-dir "$tmp/resume/study" --cache-dir "$tmp/resume/cache" \
    --out "$tmp/resume.json")"
echo "resume: $summary"
cmp "$tmp/golden.json" "$tmp/resume.json" || {
  echo "chaos_study: resumed merge differs from golden" >&2; exit 1; }

echo "== pure resume: rerun must claim nothing =="
summary="$("$orch" "${study_args[@]}" --workers 2 \
    --study-dir "$tmp/resume/study" --cache-dir "$tmp/resume/cache" \
    --out "$tmp/resume2.json")"
echo "rerun:  $summary"
[[ "$summary" == *"claimed=0"* ]] || {
  echo "chaos_study: pure resume still claimed units" >&2; exit 1; }
cmp "$tmp/resume.json" "$tmp/resume2.json"

echo "chaos_study: all recovery invariants held"
