// Design-query daemon: serve the subscale.query.v1 wire protocol on a
// Unix socket or TCP loopback port until SIGINT/SIGTERM.
//
//   subscale_serve (--socket PATH | --port N) [--card ID_OR_FILE]
//                  [--cache-dir DIR] [--workers N]
//                  [--queue-cap N] [--per-client N]
//                  [--latency-target-ms X]
//
// --port 0 binds an ephemeral port; the resolved endpoint is printed as
// the one "listening on ..." line once the server is up (scripts block
// on that line, then connect). --cache-dir points at a persistent solve
// cache: a daemon restarted onto a warm cache replays earlier answers
// bitwise (the kill/restart smoke in tools/check.sh relies on this).

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "cache/solve_cache.h"
#include "obs/names.h"
#include "serve/server.h"

using namespace subscale;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket PATH | --port N) [--card ID_OR_FILE]\n"
               "          [--cache-dir DIR] [--workers N]\n"
               "          [--queue-cap N] [--per-client N]\n"
               "          [--latency-target-ms X]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  std::string cache_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--socket" && (v = next())) {
      options.socket_path = v;
    } else if (arg == "--port" && (v = next())) {
      options.port = std::atoi(v);
    } else if (arg == "--card" && (v = next())) {
      options.dispatcher.default_card = v;
    } else if (arg == "--cache-dir" && (v = next())) {
      cache_dir = v;
    } else if (arg == "--workers" && (v = next())) {
      options.workers = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--queue-cap" && (v = next())) {
      options.admission.queue_capacity =
          static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--per-client" && (v = next())) {
      options.admission.per_client_inflight =
          static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--latency-target-ms" && (v = next())) {
      options.admission.latency_target_ms = std::atof(v);
    } else {
      return usage(argv[0]);
    }
  }
  if (options.socket_path.empty() && options.port < 0) {
    return usage(argv[0]);
  }

  obs::MetricsRegistry registry;
  obs::names::preregister_standard(registry);
  options.dispatcher.run.metrics = &registry;

  std::unique_ptr<cache::SolveCache> cache;
  if (!cache_dir.empty()) {
    cache::CacheOptions cache_options;
    cache_options.dir = cache_dir;
    cache_options.metrics = &registry;
    cache = std::make_unique<cache::SolveCache>(cache_options);
    options.dispatcher.run.cache = cache.get();
  }

  try {
    serve::Server server(options);
    server.start();
    if (!options.socket_path.empty()) {
      std::printf("subscale_serve: listening on unix:%s proto=%s\n",
                  options.socket_path.c_str(), serve::kProtocolVersion);
    } else {
      std::printf("subscale_serve: listening on tcp:127.0.0.1:%d proto=%s\n",
                  server.port(), serve::kProtocolVersion);
    }
    std::fflush(stdout);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.stop();
    std::printf("subscale_serve: stopped (executed=%llu coalesced=%llu)\n",
                static_cast<unsigned long long>(server.dispatcher().executed()),
                static_cast<unsigned long long>(
                    server.dispatcher().coalesced()));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "subscale_serve: %s\n", e.what());
    return 1;
  }
}
