#!/usr/bin/env bash
# Validate the telemetry block of BENCH_<name>.json records against the
# canonical metric schema (src/obs/names.h). Fails when:
#   * a record has no "obs" block at all (telemetry was not wired in),
#   * a required headline metric key is missing, or
#   * the block contains a key outside the whitelist — renaming or adding
#     a metric must touch BOTH src/obs/names.h and this list, on purpose.
#
#   ./tools/bench_schema.sh BENCH_tcad_validation.json [more.json ...]
#   ./tools/bench_schema.sh            # validates ./BENCH_*.json
set -euo pipefail

# Whitelist: keep in sync with src/obs/names.h (kebab of the constants)
# plus the ".count"/".sum" flattening write_metrics_snapshot() applies
# to histograms.
allowed_keys="
exec.pool.pools
exec.pool.tasks_run
exec.pool.queue_depth_max
exec.pool.utilization_pct
linalg.bicgstab.solves
linalg.bicgstab.iterations
linalg.bicgstab.breakdowns
linalg.bicgstab.failures
tcad.gummel.solves
tcad.gummel.outer_iterations
tcad.gummel.continuation_steps
tcad.gummel.retries
tcad.gummel.step_halvings
tcad.gummel.damping_tightenings
tcad.gummel.rollbacks
tcad.gummel.faults_injected
tcad.gummel.failed_solves
tcad.gummel.last_residual
tcad.gummel.iterations_per_solve.count
tcad.gummel.iterations_per_solve.sum
tcad.poisson.newton_iterations
tcad.continuity.solves
tcad.sweep.points_attempted
tcad.sweep.points_converged
tcad.sweep.points_failed
tcad.sweep.point_ms.count
tcad.sweep.point_ms.sum
core.study.nodes_validated
core.study.node_errors
core.study.sweep_point_failures
core.study.node_ms.count
core.study.node_ms.sum
cards.loads
cards.backend_dispatches
cache.hit
cache.miss
cache.store
cache.evict
cache.warmstart
cache.corrupt
orch.units_total
orch.claimed
orch.completed
orch.reassigned
orch.poisoned
orch.worker_restarts
serve.requests
serve.executed
serve.coalesced
serve.errors
serve.throttled
serve.rejected
serve.clients
serve.queue_depth_max
serve.request_ms.count
serve.request_ms.sum
obs.profiler.spans
obs.profiler.spans_dropped
"

# Every bench must carry at least these (the cross-PR trajectory keys).
required_keys="
tcad.gummel.outer_iterations
tcad.gummel.retries
linalg.bicgstab.iterations
exec.pool.utilization_pct
"

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
  shopt -s nullglob
  files=(BENCH_*.json)
  shopt -u nullglob
  if [[ ${#files[@]} -eq 0 ]]; then
    echo "bench_schema: no BENCH_*.json files found" >&2
    exit 1
  fi
fi

status=0
for f in "${files[@]}"; do
  if [[ ! -f "$f" ]]; then
    echo "bench_schema: $f: no such file" >&2
    status=1
    continue
  fi
  if ! grep -q '"obs"' "$f"; then
    echo "bench_schema: $f: missing \"obs\" metrics block" >&2
    status=1
    continue
  fi
  # The obs block is flat: extract its keys (everything between the
  # "obs" opener and the next closing brace).
  keys="$(awk '
    /"obs": \{/ { in_obs = 1; next }
    in_obs && /\}/ { in_obs = 0 }
    in_obs {
      if (match($0, /"[^"]+"/)) {
        print substr($0, RSTART + 1, RLENGTH - 2)
      }
    }' "$f")"
  if [[ -z "$keys" ]]; then
    echo "bench_schema: $f: empty \"obs\" block" >&2
    status=1
    continue
  fi
  while IFS= read -r key; do
    if ! grep -qxF "$key" <<< "$allowed_keys"; then
      echo "bench_schema: $f: unknown metric key \"$key\" (update" \
           "src/obs/names.h AND tools/bench_schema.sh together)" >&2
      status=1
    fi
  done <<< "$keys"
  while IFS= read -r key; do
    [[ -z "$key" ]] && continue
    if ! grep -qxF "$key" <<< "$keys"; then
      echo "bench_schema: $f: required metric key \"$key\" missing" >&2
      status=1
    fi
  done <<< "$required_keys"
done

if [[ $status -eq 0 ]]; then
  echo "bench_schema: ${#files[@]} record(s) OK"
fi
exit $status
