#!/usr/bin/env bash
# Validate the telemetry block of BENCH_<name>.json records against the
# canonical metric schema (src/obs/names.h). Fails when:
#   * a record has no "obs" block at all (telemetry was not wired in),
#   * a required headline metric key is missing, or
#   * the block contains a key outside the schema — a metric is declared
#     ONCE, as an X(...) row in src/obs/names.h; this script derives its
#     whitelist from that table, so adding a metric never touches it.
#
#   ./tools/bench_schema.sh BENCH_tcad_validation.json [more.json ...]
#   ./tools/bench_schema.sh            # validates ./BENCH_*.json
set -euo pipefail

# The whitelist, derived from the SUBSCALE_OBS_SCHEMA X-macro rows
# (one per line by contract — see the names.h file comment). Histogram
# rows expand to the ".count"/".sum" pair write_metrics_snapshot()
# flattens them into.
names_h="$(dirname "$0")/../src/obs/names.h"
if [[ ! -f "$names_h" ]]; then
  echo "bench_schema: schema table not found: $names_h" >&2
  exit 1
fi
allowed_keys="$(awk '
  /^ *X\(k/ {
    if (match($0, /"[^"]+"/)) {
      name = substr($0, RSTART + 1, RLENGTH - 2)
      if ($0 ~ /kLatencyHistogram|kIterationHistogram/) {
        print name ".count"
        print name ".sum"
      } else {
        print name
      }
    }
  }' "$names_h")"
if [[ -z "$allowed_keys" ]]; then
  echo "bench_schema: no X(...) schema rows parsed from $names_h" >&2
  exit 1
fi

# Every bench must carry at least these (the cross-PR trajectory keys).
required_keys="
tcad.gummel.outer_iterations
tcad.gummel.retries
linalg.bicgstab.iterations
exec.pool.utilization_pct
"

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
  shopt -s nullglob
  files=(BENCH_*.json)
  shopt -u nullglob
  if [[ ${#files[@]} -eq 0 ]]; then
    echo "bench_schema: no BENCH_*.json files found" >&2
    exit 1
  fi
fi

status=0
for f in "${files[@]}"; do
  if [[ ! -f "$f" ]]; then
    echo "bench_schema: $f: no such file" >&2
    status=1
    continue
  fi
  if ! grep -q '"obs"' "$f"; then
    echo "bench_schema: $f: missing \"obs\" metrics block" >&2
    status=1
    continue
  fi
  # The obs block is flat: extract its keys (everything between the
  # "obs" opener and the next closing brace).
  keys="$(awk '
    /"obs": \{/ { in_obs = 1; next }
    in_obs && /\}/ { in_obs = 0 }
    in_obs {
      if (match($0, /"[^"]+"/)) {
        print substr($0, RSTART + 1, RLENGTH - 2)
      }
    }' "$f")"
  if [[ -z "$keys" ]]; then
    echo "bench_schema: $f: empty \"obs\" block" >&2
    status=1
    continue
  fi
  while IFS= read -r key; do
    if ! grep -qxF "$key" <<< "$allowed_keys"; then
      echo "bench_schema: $f: unknown metric key \"$key\" (declare it" \
           "as an X(...) row in src/obs/names.h)" >&2
      status=1
    fi
  done <<< "$keys"
  while IFS= read -r key; do
    [[ -z "$key" ]] && continue
    if ! grep -qxF "$key" <<< "$keys"; then
      echo "bench_schema: $f: required metric key \"$key\" missing" >&2
      status=1
    fi
  done <<< "$required_keys"
done

if [[ $status -eq 0 ]]; then
  echo "bench_schema: ${#files[@]} record(s) OK"
fi
exit $status
