# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_physics[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_doping[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_compact[1]_include.cmake")
include("/root/repo/build/tests/test_circuits[1]_include.cmake")
include("/root/repo/build/tests/test_scaling[1]_include.cmake")
include("/root/repo/build/tests/test_tcad[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_variability[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
