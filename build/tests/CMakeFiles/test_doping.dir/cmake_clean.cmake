file(REMOVE_RECURSE
  "CMakeFiles/test_doping.dir/test_doping.cpp.o"
  "CMakeFiles/test_doping.dir/test_doping.cpp.o.d"
  "test_doping"
  "test_doping.pdb"
  "test_doping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_doping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
