# Empty compiler generated dependencies file for test_doping.
# This may be replaced when dependencies are built.
