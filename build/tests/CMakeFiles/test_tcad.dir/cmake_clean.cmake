file(REMOVE_RECURSE
  "CMakeFiles/test_tcad.dir/test_tcad.cpp.o"
  "CMakeFiles/test_tcad.dir/test_tcad.cpp.o.d"
  "test_tcad"
  "test_tcad.pdb"
  "test_tcad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
