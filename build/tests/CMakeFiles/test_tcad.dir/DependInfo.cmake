
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tcad.cpp" "tests/CMakeFiles/test_tcad.dir/test_tcad.cpp.o" "gcc" "tests/CMakeFiles/test_tcad.dir/test_tcad.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/subscale_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scaling/CMakeFiles/subscale_scaling.dir/DependInfo.cmake"
  "/root/repo/build/src/tcad/CMakeFiles/subscale_tcad.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/subscale_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/compact/CMakeFiles/subscale_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/doping/CMakeFiles/subscale_doping.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/subscale_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/subscale_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/subscale_io.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/subscale_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/subscale_physics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
