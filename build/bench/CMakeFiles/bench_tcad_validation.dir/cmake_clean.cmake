file(REMOVE_RECURSE
  "CMakeFiles/bench_tcad_validation.dir/bench_tcad_validation.cpp.o"
  "CMakeFiles/bench_tcad_validation.dir/bench_tcad_validation.cpp.o.d"
  "bench_tcad_validation"
  "bench_tcad_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcad_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
