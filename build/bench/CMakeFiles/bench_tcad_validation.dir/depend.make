# Empty dependencies file for bench_tcad_validation.
# This may be replaced when dependencies are built.
