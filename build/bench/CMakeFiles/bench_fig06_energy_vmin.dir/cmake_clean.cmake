file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_energy_vmin.dir/bench_fig06_energy_vmin.cpp.o"
  "CMakeFiles/bench_fig06_energy_vmin.dir/bench_fig06_energy_vmin.cpp.o.d"
  "bench_fig06_energy_vmin"
  "bench_fig06_energy_vmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_energy_vmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
