# Empty dependencies file for bench_fig06_energy_vmin.
# This may be replaced when dependencies are built.
