# Empty dependencies file for bench_table3_subvth.
# This may be replaced when dependencies are built.
