file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_subvth.dir/bench_table3_subvth.cpp.o"
  "CMakeFiles/bench_table3_subvth.dir/bench_table3_subvth.cpp.o.d"
  "bench_table3_subvth"
  "bench_table3_subvth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_subvth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
