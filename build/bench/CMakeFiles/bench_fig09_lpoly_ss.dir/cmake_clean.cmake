file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_lpoly_ss.dir/bench_fig09_lpoly_ss.cpp.o"
  "CMakeFiles/bench_fig09_lpoly_ss.dir/bench_fig09_lpoly_ss.cpp.o.d"
  "bench_fig09_lpoly_ss"
  "bench_fig09_lpoly_ss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_lpoly_ss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
