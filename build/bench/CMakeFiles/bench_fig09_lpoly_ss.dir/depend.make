# Empty dependencies file for bench_fig09_lpoly_ss.
# This may be replaced when dependencies are built.
