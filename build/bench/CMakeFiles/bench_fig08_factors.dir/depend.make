# Empty dependencies file for bench_fig08_factors.
# This may be replaced when dependencies are built.
