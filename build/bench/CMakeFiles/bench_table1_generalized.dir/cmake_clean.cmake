file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_generalized.dir/bench_table1_generalized.cpp.o"
  "CMakeFiles/bench_table1_generalized.dir/bench_table1_generalized.cpp.o.d"
  "bench_table1_generalized"
  "bench_table1_generalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_generalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
