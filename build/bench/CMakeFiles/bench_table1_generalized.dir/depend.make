# Empty dependencies file for bench_table1_generalized.
# This may be replaced when dependencies are built.
