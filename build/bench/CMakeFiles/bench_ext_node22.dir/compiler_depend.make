# Empty compiler generated dependencies file for bench_ext_node22.
# This may be replaced when dependencies are built.
