file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_node22.dir/bench_ext_node22.cpp.o"
  "CMakeFiles/bench_ext_node22.dir/bench_ext_node22.cpp.o.d"
  "bench_ext_node22"
  "bench_ext_node22.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_node22.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
