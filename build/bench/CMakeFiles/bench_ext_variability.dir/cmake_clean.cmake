file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_variability.dir/bench_ext_variability.cpp.o"
  "CMakeFiles/bench_ext_variability.dir/bench_ext_variability.cpp.o.d"
  "bench_ext_variability"
  "bench_ext_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
