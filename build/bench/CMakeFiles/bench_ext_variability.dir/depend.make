# Empty dependencies file for bench_ext_variability.
# This may be replaced when dependencies are built.
