# Empty dependencies file for bench_table2_supervth.
# This may be replaced when dependencies are built.
