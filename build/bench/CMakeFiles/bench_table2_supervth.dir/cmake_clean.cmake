file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_supervth.dir/bench_table2_supervth.cpp.o"
  "CMakeFiles/bench_table2_supervth.dir/bench_table2_supervth.cpp.o.d"
  "bench_table2_supervth"
  "bench_table2_supervth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_supervth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
