# Empty dependencies file for bench_fig10_snm_compare.
# This may be replaced when dependencies are built.
