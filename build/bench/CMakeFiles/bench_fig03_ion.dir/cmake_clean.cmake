file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_ion.dir/bench_fig03_ion.cpp.o"
  "CMakeFiles/bench_fig03_ion.dir/bench_fig03_ion.cpp.o.d"
  "bench_fig03_ion"
  "bench_fig03_ion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_ion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
