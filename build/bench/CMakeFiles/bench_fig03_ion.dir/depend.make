# Empty dependencies file for bench_fig03_ion.
# This may be replaced when dependencies are built.
