file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_snm.dir/bench_fig04_snm.cpp.o"
  "CMakeFiles/bench_fig04_snm.dir/bench_fig04_snm.cpp.o.d"
  "bench_fig04_snm"
  "bench_fig04_snm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_snm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
