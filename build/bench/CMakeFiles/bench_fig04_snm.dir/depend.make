# Empty dependencies file for bench_fig04_snm.
# This may be replaced when dependencies are built.
