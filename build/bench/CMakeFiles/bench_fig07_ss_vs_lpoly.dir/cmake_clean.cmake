file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_ss_vs_lpoly.dir/bench_fig07_ss_vs_lpoly.cpp.o"
  "CMakeFiles/bench_fig07_ss_vs_lpoly.dir/bench_fig07_ss_vs_lpoly.cpp.o.d"
  "bench_fig07_ss_vs_lpoly"
  "bench_fig07_ss_vs_lpoly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_ss_vs_lpoly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
