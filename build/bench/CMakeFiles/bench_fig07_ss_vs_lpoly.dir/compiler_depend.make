# Empty compiler generated dependencies file for bench_fig07_ss_vs_lpoly.
# This may be replaced when dependencies are built.
