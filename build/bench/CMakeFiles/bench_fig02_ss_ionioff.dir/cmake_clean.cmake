file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_ss_ionioff.dir/bench_fig02_ss_ionioff.cpp.o"
  "CMakeFiles/bench_fig02_ss_ionioff.dir/bench_fig02_ss_ionioff.cpp.o.d"
  "bench_fig02_ss_ionioff"
  "bench_fig02_ss_ionioff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_ss_ionioff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
