# Empty dependencies file for bench_fig02_ss_ionioff.
# This may be replaced when dependencies are built.
