file(REMOVE_RECURSE
  "CMakeFiles/refine_calibration.dir/refine_calibration.cpp.o"
  "CMakeFiles/refine_calibration.dir/refine_calibration.cpp.o.d"
  "refine_calibration"
  "refine_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refine_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
