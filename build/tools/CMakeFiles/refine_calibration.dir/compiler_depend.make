# Empty compiler generated dependencies file for refine_calibration.
# This may be replaced when dependencies are built.
