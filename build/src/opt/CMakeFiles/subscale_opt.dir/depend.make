# Empty dependencies file for subscale_opt.
# This may be replaced when dependencies are built.
