
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/bisection.cpp" "src/opt/CMakeFiles/subscale_opt.dir/bisection.cpp.o" "gcc" "src/opt/CMakeFiles/subscale_opt.dir/bisection.cpp.o.d"
  "/root/repo/src/opt/coordinate_descent.cpp" "src/opt/CMakeFiles/subscale_opt.dir/coordinate_descent.cpp.o" "gcc" "src/opt/CMakeFiles/subscale_opt.dir/coordinate_descent.cpp.o.d"
  "/root/repo/src/opt/golden_section.cpp" "src/opt/CMakeFiles/subscale_opt.dir/golden_section.cpp.o" "gcc" "src/opt/CMakeFiles/subscale_opt.dir/golden_section.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
