file(REMOVE_RECURSE
  "CMakeFiles/subscale_opt.dir/bisection.cpp.o"
  "CMakeFiles/subscale_opt.dir/bisection.cpp.o.d"
  "CMakeFiles/subscale_opt.dir/coordinate_descent.cpp.o"
  "CMakeFiles/subscale_opt.dir/coordinate_descent.cpp.o.d"
  "CMakeFiles/subscale_opt.dir/golden_section.cpp.o"
  "CMakeFiles/subscale_opt.dir/golden_section.cpp.o.d"
  "libsubscale_opt.a"
  "libsubscale_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscale_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
