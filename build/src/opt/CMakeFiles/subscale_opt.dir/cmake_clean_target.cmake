file(REMOVE_RECURSE
  "libsubscale_opt.a"
)
