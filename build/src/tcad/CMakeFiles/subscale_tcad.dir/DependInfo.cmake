
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcad/continuity.cpp" "src/tcad/CMakeFiles/subscale_tcad.dir/continuity.cpp.o" "gcc" "src/tcad/CMakeFiles/subscale_tcad.dir/continuity.cpp.o.d"
  "/root/repo/src/tcad/device_sim.cpp" "src/tcad/CMakeFiles/subscale_tcad.dir/device_sim.cpp.o" "gcc" "src/tcad/CMakeFiles/subscale_tcad.dir/device_sim.cpp.o.d"
  "/root/repo/src/tcad/device_structure.cpp" "src/tcad/CMakeFiles/subscale_tcad.dir/device_structure.cpp.o" "gcc" "src/tcad/CMakeFiles/subscale_tcad.dir/device_structure.cpp.o.d"
  "/root/repo/src/tcad/extract.cpp" "src/tcad/CMakeFiles/subscale_tcad.dir/extract.cpp.o" "gcc" "src/tcad/CMakeFiles/subscale_tcad.dir/extract.cpp.o.d"
  "/root/repo/src/tcad/gummel.cpp" "src/tcad/CMakeFiles/subscale_tcad.dir/gummel.cpp.o" "gcc" "src/tcad/CMakeFiles/subscale_tcad.dir/gummel.cpp.o.d"
  "/root/repo/src/tcad/poisson.cpp" "src/tcad/CMakeFiles/subscale_tcad.dir/poisson.cpp.o" "gcc" "src/tcad/CMakeFiles/subscale_tcad.dir/poisson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compact/CMakeFiles/subscale_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/subscale_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/doping/CMakeFiles/subscale_doping.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/subscale_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/subscale_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/subscale_opt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
