file(REMOVE_RECURSE
  "libsubscale_tcad.a"
)
