file(REMOVE_RECURSE
  "CMakeFiles/subscale_tcad.dir/continuity.cpp.o"
  "CMakeFiles/subscale_tcad.dir/continuity.cpp.o.d"
  "CMakeFiles/subscale_tcad.dir/device_sim.cpp.o"
  "CMakeFiles/subscale_tcad.dir/device_sim.cpp.o.d"
  "CMakeFiles/subscale_tcad.dir/device_structure.cpp.o"
  "CMakeFiles/subscale_tcad.dir/device_structure.cpp.o.d"
  "CMakeFiles/subscale_tcad.dir/extract.cpp.o"
  "CMakeFiles/subscale_tcad.dir/extract.cpp.o.d"
  "CMakeFiles/subscale_tcad.dir/gummel.cpp.o"
  "CMakeFiles/subscale_tcad.dir/gummel.cpp.o.d"
  "CMakeFiles/subscale_tcad.dir/poisson.cpp.o"
  "CMakeFiles/subscale_tcad.dir/poisson.cpp.o.d"
  "libsubscale_tcad.a"
  "libsubscale_tcad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscale_tcad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
