# Empty dependencies file for subscale_tcad.
# This may be replaced when dependencies are built.
