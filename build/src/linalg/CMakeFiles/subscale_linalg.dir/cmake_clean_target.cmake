file(REMOVE_RECURSE
  "libsubscale_linalg.a"
)
