file(REMOVE_RECURSE
  "CMakeFiles/subscale_linalg.dir/banded.cpp.o"
  "CMakeFiles/subscale_linalg.dir/banded.cpp.o.d"
  "CMakeFiles/subscale_linalg.dir/bicgstab.cpp.o"
  "CMakeFiles/subscale_linalg.dir/bicgstab.cpp.o.d"
  "CMakeFiles/subscale_linalg.dir/csr_matrix.cpp.o"
  "CMakeFiles/subscale_linalg.dir/csr_matrix.cpp.o.d"
  "CMakeFiles/subscale_linalg.dir/dense.cpp.o"
  "CMakeFiles/subscale_linalg.dir/dense.cpp.o.d"
  "CMakeFiles/subscale_linalg.dir/ilu0.cpp.o"
  "CMakeFiles/subscale_linalg.dir/ilu0.cpp.o.d"
  "CMakeFiles/subscale_linalg.dir/newton.cpp.o"
  "CMakeFiles/subscale_linalg.dir/newton.cpp.o.d"
  "CMakeFiles/subscale_linalg.dir/tridiag.cpp.o"
  "CMakeFiles/subscale_linalg.dir/tridiag.cpp.o.d"
  "libsubscale_linalg.a"
  "libsubscale_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscale_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
