
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/banded.cpp" "src/linalg/CMakeFiles/subscale_linalg.dir/banded.cpp.o" "gcc" "src/linalg/CMakeFiles/subscale_linalg.dir/banded.cpp.o.d"
  "/root/repo/src/linalg/bicgstab.cpp" "src/linalg/CMakeFiles/subscale_linalg.dir/bicgstab.cpp.o" "gcc" "src/linalg/CMakeFiles/subscale_linalg.dir/bicgstab.cpp.o.d"
  "/root/repo/src/linalg/csr_matrix.cpp" "src/linalg/CMakeFiles/subscale_linalg.dir/csr_matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/subscale_linalg.dir/csr_matrix.cpp.o.d"
  "/root/repo/src/linalg/dense.cpp" "src/linalg/CMakeFiles/subscale_linalg.dir/dense.cpp.o" "gcc" "src/linalg/CMakeFiles/subscale_linalg.dir/dense.cpp.o.d"
  "/root/repo/src/linalg/ilu0.cpp" "src/linalg/CMakeFiles/subscale_linalg.dir/ilu0.cpp.o" "gcc" "src/linalg/CMakeFiles/subscale_linalg.dir/ilu0.cpp.o.d"
  "/root/repo/src/linalg/newton.cpp" "src/linalg/CMakeFiles/subscale_linalg.dir/newton.cpp.o" "gcc" "src/linalg/CMakeFiles/subscale_linalg.dir/newton.cpp.o.d"
  "/root/repo/src/linalg/tridiag.cpp" "src/linalg/CMakeFiles/subscale_linalg.dir/tridiag.cpp.o" "gcc" "src/linalg/CMakeFiles/subscale_linalg.dir/tridiag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
