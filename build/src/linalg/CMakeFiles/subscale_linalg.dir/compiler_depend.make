# Empty compiler generated dependencies file for subscale_linalg.
# This may be replaced when dependencies are built.
