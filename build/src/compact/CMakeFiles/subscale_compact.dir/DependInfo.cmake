
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compact/calibration.cpp" "src/compact/CMakeFiles/subscale_compact.dir/calibration.cpp.o" "gcc" "src/compact/CMakeFiles/subscale_compact.dir/calibration.cpp.o.d"
  "/root/repo/src/compact/device_spec.cpp" "src/compact/CMakeFiles/subscale_compact.dir/device_spec.cpp.o" "gcc" "src/compact/CMakeFiles/subscale_compact.dir/device_spec.cpp.o.d"
  "/root/repo/src/compact/mosfet.cpp" "src/compact/CMakeFiles/subscale_compact.dir/mosfet.cpp.o" "gcc" "src/compact/CMakeFiles/subscale_compact.dir/mosfet.cpp.o.d"
  "/root/repo/src/compact/ss_model.cpp" "src/compact/CMakeFiles/subscale_compact.dir/ss_model.cpp.o" "gcc" "src/compact/CMakeFiles/subscale_compact.dir/ss_model.cpp.o.d"
  "/root/repo/src/compact/vth_model.cpp" "src/compact/CMakeFiles/subscale_compact.dir/vth_model.cpp.o" "gcc" "src/compact/CMakeFiles/subscale_compact.dir/vth_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/physics/CMakeFiles/subscale_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/doping/CMakeFiles/subscale_doping.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/subscale_opt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
