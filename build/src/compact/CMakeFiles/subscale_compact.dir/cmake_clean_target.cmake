file(REMOVE_RECURSE
  "libsubscale_compact.a"
)
