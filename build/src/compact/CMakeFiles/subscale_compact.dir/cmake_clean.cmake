file(REMOVE_RECURSE
  "CMakeFiles/subscale_compact.dir/calibration.cpp.o"
  "CMakeFiles/subscale_compact.dir/calibration.cpp.o.d"
  "CMakeFiles/subscale_compact.dir/device_spec.cpp.o"
  "CMakeFiles/subscale_compact.dir/device_spec.cpp.o.d"
  "CMakeFiles/subscale_compact.dir/mosfet.cpp.o"
  "CMakeFiles/subscale_compact.dir/mosfet.cpp.o.d"
  "CMakeFiles/subscale_compact.dir/ss_model.cpp.o"
  "CMakeFiles/subscale_compact.dir/ss_model.cpp.o.d"
  "CMakeFiles/subscale_compact.dir/vth_model.cpp.o"
  "CMakeFiles/subscale_compact.dir/vth_model.cpp.o.d"
  "libsubscale_compact.a"
  "libsubscale_compact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscale_compact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
