# Empty compiler generated dependencies file for subscale_compact.
# This may be replaced when dependencies are built.
