file(REMOVE_RECURSE
  "CMakeFiles/subscale_mesh.dir/grid1d.cpp.o"
  "CMakeFiles/subscale_mesh.dir/grid1d.cpp.o.d"
  "CMakeFiles/subscale_mesh.dir/mesh2d.cpp.o"
  "CMakeFiles/subscale_mesh.dir/mesh2d.cpp.o.d"
  "libsubscale_mesh.a"
  "libsubscale_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscale_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
