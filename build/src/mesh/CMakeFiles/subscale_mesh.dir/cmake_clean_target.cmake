file(REMOVE_RECURSE
  "libsubscale_mesh.a"
)
