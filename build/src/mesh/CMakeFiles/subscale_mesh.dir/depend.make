# Empty dependencies file for subscale_mesh.
# This may be replaced when dependencies are built.
