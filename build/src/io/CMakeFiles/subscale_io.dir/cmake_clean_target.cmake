file(REMOVE_RECURSE
  "libsubscale_io.a"
)
