# Empty compiler generated dependencies file for subscale_io.
# This may be replaced when dependencies are built.
