file(REMOVE_RECURSE
  "CMakeFiles/subscale_io.dir/csv.cpp.o"
  "CMakeFiles/subscale_io.dir/csv.cpp.o.d"
  "CMakeFiles/subscale_io.dir/series.cpp.o"
  "CMakeFiles/subscale_io.dir/series.cpp.o.d"
  "CMakeFiles/subscale_io.dir/table.cpp.o"
  "CMakeFiles/subscale_io.dir/table.cpp.o.d"
  "libsubscale_io.a"
  "libsubscale_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscale_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
