
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/physics/fermi.cpp" "src/physics/CMakeFiles/subscale_physics.dir/fermi.cpp.o" "gcc" "src/physics/CMakeFiles/subscale_physics.dir/fermi.cpp.o.d"
  "/root/repo/src/physics/mobility.cpp" "src/physics/CMakeFiles/subscale_physics.dir/mobility.cpp.o" "gcc" "src/physics/CMakeFiles/subscale_physics.dir/mobility.cpp.o.d"
  "/root/repo/src/physics/silicon.cpp" "src/physics/CMakeFiles/subscale_physics.dir/silicon.cpp.o" "gcc" "src/physics/CMakeFiles/subscale_physics.dir/silicon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
