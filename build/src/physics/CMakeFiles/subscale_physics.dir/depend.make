# Empty dependencies file for subscale_physics.
# This may be replaced when dependencies are built.
