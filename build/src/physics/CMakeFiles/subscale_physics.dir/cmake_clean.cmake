file(REMOVE_RECURSE
  "CMakeFiles/subscale_physics.dir/fermi.cpp.o"
  "CMakeFiles/subscale_physics.dir/fermi.cpp.o.d"
  "CMakeFiles/subscale_physics.dir/mobility.cpp.o"
  "CMakeFiles/subscale_physics.dir/mobility.cpp.o.d"
  "CMakeFiles/subscale_physics.dir/silicon.cpp.o"
  "CMakeFiles/subscale_physics.dir/silicon.cpp.o.d"
  "libsubscale_physics.a"
  "libsubscale_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscale_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
