file(REMOVE_RECURSE
  "libsubscale_physics.a"
)
