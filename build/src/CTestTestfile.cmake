# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("physics")
subdirs("linalg")
subdirs("mesh")
subdirs("doping")
subdirs("opt")
subdirs("io")
subdirs("compact")
subdirs("circuits")
subdirs("tcad")
subdirs("scaling")
subdirs("core")
