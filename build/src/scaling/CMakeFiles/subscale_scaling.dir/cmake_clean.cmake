file(REMOVE_RECURSE
  "CMakeFiles/subscale_scaling.dir/generalized_scaling.cpp.o"
  "CMakeFiles/subscale_scaling.dir/generalized_scaling.cpp.o.d"
  "CMakeFiles/subscale_scaling.dir/subvth_strategy.cpp.o"
  "CMakeFiles/subscale_scaling.dir/subvth_strategy.cpp.o.d"
  "CMakeFiles/subscale_scaling.dir/supervth_strategy.cpp.o"
  "CMakeFiles/subscale_scaling.dir/supervth_strategy.cpp.o.d"
  "CMakeFiles/subscale_scaling.dir/technology.cpp.o"
  "CMakeFiles/subscale_scaling.dir/technology.cpp.o.d"
  "libsubscale_scaling.a"
  "libsubscale_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscale_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
