file(REMOVE_RECURSE
  "libsubscale_scaling.a"
)
