
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scaling/generalized_scaling.cpp" "src/scaling/CMakeFiles/subscale_scaling.dir/generalized_scaling.cpp.o" "gcc" "src/scaling/CMakeFiles/subscale_scaling.dir/generalized_scaling.cpp.o.d"
  "/root/repo/src/scaling/subvth_strategy.cpp" "src/scaling/CMakeFiles/subscale_scaling.dir/subvth_strategy.cpp.o" "gcc" "src/scaling/CMakeFiles/subscale_scaling.dir/subvth_strategy.cpp.o.d"
  "/root/repo/src/scaling/supervth_strategy.cpp" "src/scaling/CMakeFiles/subscale_scaling.dir/supervth_strategy.cpp.o" "gcc" "src/scaling/CMakeFiles/subscale_scaling.dir/supervth_strategy.cpp.o.d"
  "/root/repo/src/scaling/technology.cpp" "src/scaling/CMakeFiles/subscale_scaling.dir/technology.cpp.o" "gcc" "src/scaling/CMakeFiles/subscale_scaling.dir/technology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compact/CMakeFiles/subscale_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/subscale_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/subscale_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/doping/CMakeFiles/subscale_doping.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/subscale_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/subscale_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
