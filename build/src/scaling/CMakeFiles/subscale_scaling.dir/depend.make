# Empty dependencies file for subscale_scaling.
# This may be replaced when dependencies are built.
