
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/chain.cpp" "src/circuits/CMakeFiles/subscale_circuits.dir/chain.cpp.o" "gcc" "src/circuits/CMakeFiles/subscale_circuits.dir/chain.cpp.o.d"
  "/root/repo/src/circuits/dc_solver.cpp" "src/circuits/CMakeFiles/subscale_circuits.dir/dc_solver.cpp.o" "gcc" "src/circuits/CMakeFiles/subscale_circuits.dir/dc_solver.cpp.o.d"
  "/root/repo/src/circuits/delay.cpp" "src/circuits/CMakeFiles/subscale_circuits.dir/delay.cpp.o" "gcc" "src/circuits/CMakeFiles/subscale_circuits.dir/delay.cpp.o.d"
  "/root/repo/src/circuits/inverter.cpp" "src/circuits/CMakeFiles/subscale_circuits.dir/inverter.cpp.o" "gcc" "src/circuits/CMakeFiles/subscale_circuits.dir/inverter.cpp.o.d"
  "/root/repo/src/circuits/netlist.cpp" "src/circuits/CMakeFiles/subscale_circuits.dir/netlist.cpp.o" "gcc" "src/circuits/CMakeFiles/subscale_circuits.dir/netlist.cpp.o.d"
  "/root/repo/src/circuits/ring_oscillator.cpp" "src/circuits/CMakeFiles/subscale_circuits.dir/ring_oscillator.cpp.o" "gcc" "src/circuits/CMakeFiles/subscale_circuits.dir/ring_oscillator.cpp.o.d"
  "/root/repo/src/circuits/sram6t.cpp" "src/circuits/CMakeFiles/subscale_circuits.dir/sram6t.cpp.o" "gcc" "src/circuits/CMakeFiles/subscale_circuits.dir/sram6t.cpp.o.d"
  "/root/repo/src/circuits/transient.cpp" "src/circuits/CMakeFiles/subscale_circuits.dir/transient.cpp.o" "gcc" "src/circuits/CMakeFiles/subscale_circuits.dir/transient.cpp.o.d"
  "/root/repo/src/circuits/variability.cpp" "src/circuits/CMakeFiles/subscale_circuits.dir/variability.cpp.o" "gcc" "src/circuits/CMakeFiles/subscale_circuits.dir/variability.cpp.o.d"
  "/root/repo/src/circuits/vmin.cpp" "src/circuits/CMakeFiles/subscale_circuits.dir/vmin.cpp.o" "gcc" "src/circuits/CMakeFiles/subscale_circuits.dir/vmin.cpp.o.d"
  "/root/repo/src/circuits/vtc.cpp" "src/circuits/CMakeFiles/subscale_circuits.dir/vtc.cpp.o" "gcc" "src/circuits/CMakeFiles/subscale_circuits.dir/vtc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compact/CMakeFiles/subscale_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/subscale_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/subscale_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/subscale_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/doping/CMakeFiles/subscale_doping.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
