# Empty compiler generated dependencies file for subscale_circuits.
# This may be replaced when dependencies are built.
