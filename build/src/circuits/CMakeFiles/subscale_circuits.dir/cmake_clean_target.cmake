file(REMOVE_RECURSE
  "libsubscale_circuits.a"
)
