file(REMOVE_RECURSE
  "CMakeFiles/subscale_circuits.dir/chain.cpp.o"
  "CMakeFiles/subscale_circuits.dir/chain.cpp.o.d"
  "CMakeFiles/subscale_circuits.dir/dc_solver.cpp.o"
  "CMakeFiles/subscale_circuits.dir/dc_solver.cpp.o.d"
  "CMakeFiles/subscale_circuits.dir/delay.cpp.o"
  "CMakeFiles/subscale_circuits.dir/delay.cpp.o.d"
  "CMakeFiles/subscale_circuits.dir/inverter.cpp.o"
  "CMakeFiles/subscale_circuits.dir/inverter.cpp.o.d"
  "CMakeFiles/subscale_circuits.dir/netlist.cpp.o"
  "CMakeFiles/subscale_circuits.dir/netlist.cpp.o.d"
  "CMakeFiles/subscale_circuits.dir/ring_oscillator.cpp.o"
  "CMakeFiles/subscale_circuits.dir/ring_oscillator.cpp.o.d"
  "CMakeFiles/subscale_circuits.dir/sram6t.cpp.o"
  "CMakeFiles/subscale_circuits.dir/sram6t.cpp.o.d"
  "CMakeFiles/subscale_circuits.dir/transient.cpp.o"
  "CMakeFiles/subscale_circuits.dir/transient.cpp.o.d"
  "CMakeFiles/subscale_circuits.dir/variability.cpp.o"
  "CMakeFiles/subscale_circuits.dir/variability.cpp.o.d"
  "CMakeFiles/subscale_circuits.dir/vmin.cpp.o"
  "CMakeFiles/subscale_circuits.dir/vmin.cpp.o.d"
  "CMakeFiles/subscale_circuits.dir/vtc.cpp.o"
  "CMakeFiles/subscale_circuits.dir/vtc.cpp.o.d"
  "libsubscale_circuits.a"
  "libsubscale_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscale_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
