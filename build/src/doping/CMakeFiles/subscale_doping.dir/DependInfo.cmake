
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doping/mosfet_doping.cpp" "src/doping/CMakeFiles/subscale_doping.dir/mosfet_doping.cpp.o" "gcc" "src/doping/CMakeFiles/subscale_doping.dir/mosfet_doping.cpp.o.d"
  "/root/repo/src/doping/profile.cpp" "src/doping/CMakeFiles/subscale_doping.dir/profile.cpp.o" "gcc" "src/doping/CMakeFiles/subscale_doping.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/physics/CMakeFiles/subscale_physics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
