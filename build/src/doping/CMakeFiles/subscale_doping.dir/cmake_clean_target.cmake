file(REMOVE_RECURSE
  "libsubscale_doping.a"
)
