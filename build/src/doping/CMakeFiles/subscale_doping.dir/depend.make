# Empty dependencies file for subscale_doping.
# This may be replaced when dependencies are built.
