file(REMOVE_RECURSE
  "CMakeFiles/subscale_doping.dir/mosfet_doping.cpp.o"
  "CMakeFiles/subscale_doping.dir/mosfet_doping.cpp.o.d"
  "CMakeFiles/subscale_doping.dir/profile.cpp.o"
  "CMakeFiles/subscale_doping.dir/profile.cpp.o.d"
  "libsubscale_doping.a"
  "libsubscale_doping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscale_doping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
