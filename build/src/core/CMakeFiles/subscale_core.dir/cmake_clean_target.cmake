file(REMOVE_RECURSE
  "libsubscale_core.a"
)
