file(REMOVE_RECURSE
  "CMakeFiles/subscale_core.dir/scaling_study.cpp.o"
  "CMakeFiles/subscale_core.dir/scaling_study.cpp.o.d"
  "libsubscale_core.a"
  "libsubscale_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscale_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
