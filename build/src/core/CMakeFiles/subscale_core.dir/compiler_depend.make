# Empty compiler generated dependencies file for subscale_core.
# This may be replaced when dependencies are built.
