# Empty compiler generated dependencies file for tcad_idvg.
# This may be replaced when dependencies are built.
