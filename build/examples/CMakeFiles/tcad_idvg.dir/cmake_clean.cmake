file(REMOVE_RECURSE
  "CMakeFiles/tcad_idvg.dir/tcad_idvg.cpp.o"
  "CMakeFiles/tcad_idvg.dir/tcad_idvg.cpp.o.d"
  "tcad_idvg"
  "tcad_idvg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcad_idvg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
