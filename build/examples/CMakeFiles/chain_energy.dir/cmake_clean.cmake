file(REMOVE_RECURSE
  "CMakeFiles/chain_energy.dir/chain_energy.cpp.o"
  "CMakeFiles/chain_energy.dir/chain_energy.cpp.o.d"
  "chain_energy"
  "chain_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
