# Empty dependencies file for chain_energy.
# This may be replaced when dependencies are built.
