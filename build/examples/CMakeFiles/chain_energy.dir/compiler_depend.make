# Empty compiler generated dependencies file for chain_energy.
# This may be replaced when dependencies are built.
