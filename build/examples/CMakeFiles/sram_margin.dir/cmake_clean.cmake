file(REMOVE_RECURSE
  "CMakeFiles/sram_margin.dir/sram_margin.cpp.o"
  "CMakeFiles/sram_margin.dir/sram_margin.cpp.o.d"
  "sram_margin"
  "sram_margin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sram_margin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
