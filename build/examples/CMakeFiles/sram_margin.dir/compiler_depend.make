# Empty compiler generated dependencies file for sram_margin.
# This may be replaced when dependencies are built.
