#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/banded.h"
#include "linalg/bicgstab.h"
#include "linalg/csr_matrix.h"
#include "linalg/dense.h"
#include "linalg/newton.h"
#include "linalg/tridiag.h"

namespace sl = subscale::linalg;

namespace {

std::mt19937 rng(20070604);  // DAC 2007 seed for deterministic tests

sl::DenseMatrix random_diag_dominant(std::size_t n) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  sl::DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      a(i, j) = dist(rng);
      row_sum += std::abs(a(i, j));
    }
    a(i, i) = row_sum + 1.0 + std::abs(dist(rng));
  }
  return a;
}

}  // namespace

// ---- dense ------------------------------------------------------------------

TEST(Dense, LuSolvesKnownSystem) {
  sl::DenseMatrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  const sl::LuFactorization lu(a);
  const auto x = lu.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Dense, LuResidualSmallOnRandomSystems) {
  for (std::size_t n : {3u, 7u, 20u, 50u}) {
    const sl::DenseMatrix a = random_diag_dominant(n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = std::sin(double(i) + 1.0);
    const auto b = a.multiply(x_true);
    const sl::LuFactorization lu(a);
    const auto x = lu.solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-9) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Dense, LuRequiresPivoting) {
  // Zero on the initial diagonal but nonsingular overall.
  sl::DenseMatrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  const sl::LuFactorization lu(a);
  const auto x = lu.solve({2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Dense, SingularThrows) {
  sl::DenseMatrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_THROW(sl::LuFactorization{a}, std::runtime_error);
}

TEST(Dense, VectorHelpers) {
  const std::vector<double> v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(sl::norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(sl::norm_inf(v), 4.0);
  EXPECT_DOUBLE_EQ(sl::dot(v, v), 25.0);
  std::vector<double> y{1.0, 1.0};
  sl::axpy(2.0, v, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], -7.0);
}

// ---- tridiagonal ---------------------------------------------------------------

TEST(Tridiag, MatchesDenseSolve) {
  const std::size_t n = 40;
  std::vector<double> lower(n, -1.0), diag(n, 2.5), upper(n, -1.0), rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = std::cos(double(i));
  const auto x = sl::solve_tridiagonal(lower, diag, upper, rhs);

  sl::DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = diag[i];
    if (i > 0) a(i, i - 1) = lower[i];
    if (i + 1 < n) a(i, i + 1) = upper[i];
  }
  const auto x_ref = sl::LuFactorization(a).solve(rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-10);
}

// ---- banded ---------------------------------------------------------------------

TEST(Banded, InBandQueries) {
  sl::BandedMatrix a(5, 1, 2);
  EXPECT_TRUE(a.in_band(2, 2));
  EXPECT_TRUE(a.in_band(2, 4));   // +2 super
  EXPECT_TRUE(a.in_band(2, 1));   // -1 sub
  EXPECT_FALSE(a.in_band(2, 0));  // -2 sub: outside
  EXPECT_FALSE(a.in_band(0, 3));  // +3 super: outside
  EXPECT_THROW(a.at(2, 0), std::out_of_range);
}

TEST(Banded, MatchesDenseOnRandomBandSystems) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (std::size_t trial = 0; trial < 5; ++trial) {
    const std::size_t n = 30;
    const std::size_t kl = 3, ku = 2;
    sl::BandedMatrix ab(n, kl, ku);
    sl::DenseMatrix ad(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (!ab.in_band(i, j)) continue;
        const double v = (i == j) ? 8.0 + dist(rng) : dist(rng);
        ab.at(i, j) = v;
        ad(i, j) = v;
      }
    }
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = dist(rng);
    const auto b = ad.multiply(x_true);
    EXPECT_EQ(ab.multiply(x_true).size(), b.size());
    const auto x = sl::BandedLu(ab).solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-9) << "trial " << trial;
    }
  }
}

TEST(Banded, PivotingHandlesZeroDiagonal) {
  // [[0 1][1 0]] as a banded matrix with kl=ku=1.
  sl::BandedMatrix a(2, 1, 1);
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  const auto x = sl::BandedLu(a).solve({2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Banded, LaplacianSolve) {
  // 1-D Poisson with unit RHS: solution is the discrete parabola.
  const std::size_t n = 100;
  sl::BandedMatrix a(n, 1, 1);
  for (std::size_t i = 0; i < n; ++i) {
    a.at(i, i) = 2.0;
    if (i > 0) a.at(i, i - 1) = -1.0;
    if (i + 1 < n) a.at(i, i + 1) = -1.0;
  }
  const std::vector<double> b(n, 1.0);
  const auto x = sl::BandedLu(a).solve(b);
  // Residual check.
  const auto ax = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-9);
  // Symmetry of the solution.
  for (std::size_t i = 0; i < n / 2; ++i) {
    EXPECT_NEAR(x[i], x[n - 1 - i], 1e-9);
  }
}

// ---- CSR / ILU0 / BiCGSTAB ------------------------------------------------------

TEST(Csr, DuplicatesAccumulate) {
  sl::SparseBuilder builder(3);
  builder.add(0, 0, 1.0);
  builder.add(0, 0, 2.0);
  builder.add(1, 2, 5.0);
  builder.add(2, 2, 1.0);
  builder.add(1, 1, 1.0);
  builder.add(0, 1, 0.5);
  const sl::CsrMatrix a(builder);
  EXPECT_EQ(a.nonzeros(), 5u);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 0.0);
}

TEST(Csr, MultiplyMatchesDense) {
  sl::SparseBuilder builder(4);
  sl::DenseMatrix d(4, 4);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if ((i + j) % 2 == 0) {
        const double v = dist(rng);
        builder.add(i, j, v);
        d(i, j) = v;
      }
    }
  }
  const sl::CsrMatrix a(builder);
  const std::vector<double> x{1.0, -2.0, 0.5, 3.0};
  const auto y1 = a.multiply(x);
  const auto y2 = d.multiply(x);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-14);
}

TEST(Bicgstab, SolvesPoisson2d) {
  // 5-point Laplacian on a 20x20 grid.
  const std::size_t nx = 20, ny = 20, n = nx * ny;
  sl::SparseBuilder builder(n);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t k = j * nx + i;
      builder.add(k, k, 4.0);
      if (i > 0) builder.add(k, k - 1, -1.0);
      if (i + 1 < nx) builder.add(k, k + 1, -1.0);
      if (j > 0) builder.add(k, k - nx, -1.0);
      if (j + 1 < ny) builder.add(k, k + nx, -1.0);
    }
  }
  const sl::CsrMatrix a(builder);
  std::vector<double> x_true(n);
  for (std::size_t k = 0; k < n; ++k) x_true[k] = std::sin(0.1 * double(k));
  const auto b = a.multiply(x_true);
  const auto result = sl::bicgstab(a, b, {.relative_tolerance = 1e-12});
  ASSERT_TRUE(result.converged);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(result.x[k], x_true[k], 1e-7);
  }
}

TEST(Bicgstab, NonsymmetricConvectionDiffusion) {
  // Upwind convection-diffusion: strongly nonsymmetric.
  const std::size_t n = 200;
  sl::SparseBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 3.0);
    if (i > 0) builder.add(i, i - 1, -2.5);
    if (i + 1 < n) builder.add(i, i + 1, -0.4);
  }
  const sl::CsrMatrix a(builder);
  std::vector<double> b(n, 1.0);
  const auto result = sl::bicgstab(a, b, {.relative_tolerance = 1e-12});
  ASSERT_TRUE(result.converged);
  const auto r = a.multiply(result.x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r[i], 1.0, 1e-6);
}

TEST(Bicgstab, NonFiniteRhsReportsBreakdown) {
  // A NaN anywhere in the right-hand side must be detected up front and
  // reported as a breakdown — not iterated on (the Krylov recurrences
  // would silently fill x with NaN) and not mistaken for convergence.
  const std::size_t n = 8;
  sl::SparseBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) builder.add(i, i, 2.0);
  const sl::CsrMatrix a(builder);
  std::vector<double> b(n, 1.0);
  b[3] = std::nan("");
  const auto result = sl::bicgstab(a, b);
  EXPECT_FALSE(result.converged);
  EXPECT_TRUE(result.breakdown);
  EXPECT_EQ(result.iterations, 0u);
}

// ---- Newton -------------------------------------------------------------------

TEST(Newton, SolvesCircleLineIntersection) {
  // x^2 + y^2 = 2, x - y = 0 -> (1, 1) from a nearby start.
  const auto residual = [](const std::vector<double>& v) {
    return std::vector<double>{v[0] * v[0] + v[1] * v[1] - 2.0, v[0] - v[1]};
  };
  const auto jacobian = [](const std::vector<double>& v) {
    sl::DenseMatrix j(2, 2);
    j(0, 0) = 2.0 * v[0];
    j(0, 1) = 2.0 * v[1];
    j(1, 0) = 1.0;
    j(1, 1) = -1.0;
    return j;
  };
  const auto result = sl::newton_solve(residual, jacobian, {2.0, 0.5});
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-9);
  EXPECT_NEAR(result.x[1], 1.0, 1e-9);
}

TEST(Newton, ExponentialResidualNeedsDamping) {
  // f(x) = e^x - 1e6: full Newton from x=0 overshoots wildly without
  // damping; the line search must still land at x = ln(1e6).
  const auto residual = [](const std::vector<double>& v) {
    return std::vector<double>{std::exp(v[0]) - 1e6};
  };
  const auto jacobian = [](const std::vector<double>& v) {
    sl::DenseMatrix j(1, 1);
    j(0, 0) = std::exp(v[0]);
    return j;
  };
  const auto result = sl::newton_solve(residual, jacobian, {0.0},
                                       {.max_iterations = 500,
                                        .residual_tolerance = 1e-6});
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], std::log(1e6), 1e-6);
}

TEST(Newton, FiniteDifferenceJacobianMatchesAnalytic) {
  const auto residual = [](const std::vector<double>& v) {
    return std::vector<double>{v[0] * v[0] * v[1], std::sin(v[0]) + v[1]};
  };
  const std::vector<double> x{0.7, -0.3};
  const auto j = sl::finite_difference_jacobian(residual, x);
  EXPECT_NEAR(j(0, 0), 2.0 * x[0] * x[1], 1e-5);
  EXPECT_NEAR(j(0, 1), x[0] * x[0], 1e-5);
  EXPECT_NEAR(j(1, 0), std::cos(x[0]), 1e-5);
  EXPECT_NEAR(j(1, 1), 1.0, 1e-5);
}

// ---- parameterized: banded solver across bandwidths ------------------------------

class BandedWidths : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BandedWidths, RoundTrip) {
  const auto [kl, ku] = GetParam();
  const std::size_t n = 40;
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  sl::BandedMatrix a(n, std::size_t(kl), std::size_t(ku));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (!a.in_band(i, j)) continue;
      a.at(i, j) = (i == j) ? 10.0 + dist(rng) : dist(rng);
    }
  }
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = dist(rng);
  const auto x = sl::BandedLu(a).solve(a.multiply(x_true));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, BandedWidths,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 5},
                                           std::pair{5, 2}, std::pair{7, 7},
                                           std::pair{1, 10}));

// ---- blocked banded LU vs straight-line reference ----------------------------

#include "linalg/banded_reference.h"
#include "linalg/block_banded.h"

namespace {

/// Random banded system with wildly mixed row scales, the regime the
/// drift–diffusion Jacobians live in (row equilibration must handle it).
sl::BandedMatrix random_banded(std::size_t n, std::size_t kl, std::size_t ku,
                               bool mixed_scales) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::uniform_int_distribution<int> decade(-12, 12);
  sl::BandedMatrix a(n, kl, ku);
  for (std::size_t i = 0; i < n; ++i) {
    const double row_scale =
        mixed_scales ? std::pow(10.0, decade(rng)) : 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!a.in_band(i, j)) continue;
      const double v = (i == j) ? 6.0 + dist(rng) : dist(rng);
      a.at(i, j) = row_scale * v;
    }
  }
  return a;
}

}  // namespace

TEST(BandedReference, BlockedEliminationMatchesReferenceBitwise) {
  // The production BandedLu restructures the elimination into
  // column-outer unit-stride axpy loops; the reference keeps textbook
  // row-outer order. Same element-wise operations, same operands ->
  // the SOLUTIONS must agree bitwise, not merely to rounding. Covers
  // square and skew bands, with and without 24-decade row-scale mixes.
  const std::pair<std::size_t, std::size_t> bands[] = {
      {1, 1}, {5, 5}, {3, 9}, {9, 3}, {13, 13}};
  for (const auto& [kl, ku] : bands) {
    for (const bool mixed : {false, true}) {
      const std::size_t n = 60;
      const sl::BandedMatrix a = random_banded(n, kl, ku, mixed);
      std::vector<double> b(n);
      std::uniform_real_distribution<double> dist(-1.0, 1.0);
      for (auto& v : b) v = dist(rng);
      const auto x_fast = sl::BandedLu(a).solve(b);
      const auto x_ref = sl::ReferenceBandedLu(a).solve(b);
      ASSERT_EQ(x_fast.size(), x_ref.size());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(x_fast[i], x_ref[i])
            << "kl=" << kl << " ku=" << ku << " mixed=" << mixed
            << " i=" << i;
      }
    }
  }
}

// ---- block-banded matrix (coupled Newton Jacobian storage) -------------------

TEST(BlockBanded, ScalarMappingPlacesBlockEntries) {
  // Block (bi, bj) local (r, c) must land at scalar
  // (bi*B + r, bj*B + c), with the scalar band wide enough for every
  // in-band block's farthest corner.
  sl::BlockBandedMatrix a(4, 3, 1);
  EXPECT_EQ(a.size(), 12u);
  EXPECT_GE(a.scalar().lower_bandwidth(), 3u * 1u + 3u - 1u);
  a.add(1, 2, 0, 2, 7.5);
  a.add(2, 1, 2, 0, -2.5);
  EXPECT_DOUBLE_EQ(a.scalar().at(3, 8), 7.5);
  EXPECT_DOUBLE_EQ(a.scalar().at(8, 3), -2.5);
}

TEST(BlockBanded, SolveMatchesScalarBandedSolve) {
  // A block-assembled system and the same system assembled directly
  // into scalar band storage must factor and solve identically —
  // BlockBandedLu is a view/packing layer, not different arithmetic.
  const std::size_t nb = 6, bs = 3, bw = 2;
  sl::BlockBandedMatrix blocked(nb, bs, bw);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    for (std::size_t bj = 0; bj < nb; ++bj) {
      if (bi > bj + bw || bj > bi + bw) continue;
      for (std::size_t r = 0; r < bs; ++r) {
        for (std::size_t c = 0; c < bs; ++c) {
          const bool diag = bi == bj && r == c;
          blocked.add(bi, bj, r, c, diag ? 20.0 + dist(rng) : dist(rng));
        }
      }
    }
  }
  std::vector<double> b(blocked.size());
  for (auto& v : b) v = dist(rng);
  const auto x_block = sl::BlockBandedLu(blocked).solve(b);
  const auto x_scalar = sl::BandedLu(blocked.scalar()).solve(b);
  ASSERT_EQ(x_block.size(), x_scalar.size());
  for (std::size_t i = 0; i < x_block.size(); ++i) {
    EXPECT_EQ(x_block[i], x_scalar[i]) << i;
  }
  // And the solution actually solves the system.
  const auto ax = blocked.scalar().multiply(x_block);
  for (std::size_t i = 0; i < ax.size(); ++i) {
    EXPECT_NEAR(ax[i], b[i], 1e-9 * (1.0 + std::abs(b[i])));
  }
}

TEST(BlockBanded, RejectsOutOfBandBlocks) {
  sl::BlockBandedMatrix a(4, 2, 1);
  EXPECT_FALSE(a.scalar().in_band(0, 2 * 2 + 1));  // block (0,2) corner
}
