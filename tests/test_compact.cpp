#include <gtest/gtest.h>

#include <cmath>

#include "compact/calibration.h"
#include "compact/device_model.h"
#include "compact/device_spec.h"
#include "compact/mosfet.h"
#include "compact/ss_model.h"
#include "compact/vth_model.h"
#include "physics/constants.h"
#include "physics/units.h"

namespace sc = subscale::compact;
namespace sd = subscale::doping;
namespace su = subscale::units;

namespace {

/// The paper's Table 2 devices (super-V_th strategy).
sc::DeviceSpec super_vth_device(int node_index) {
  struct Row {
    double lpoly, tox, nsub, nhalo, vdd, shrink;
  };
  static constexpr Row kRows[] = {
      {65, 2.10, 1.52e18, 3.63e18, 1.2, 1.000},
      {46, 1.89, 1.97e18, 5.17e18, 1.1, 0.700},
      {32, 1.70, 2.52e18, 7.83e18, 1.0, 0.490},
      {22, 1.53, 3.31e18, 12.0e18, 0.9, 0.343},
  };
  const Row& r = kRows[node_index];
  return sc::make_spec_from_table(sd::Polarity::kNfet, r.lpoly, r.tox, r.nsub,
                                  r.nhalo, r.vdd, r.shrink);
}

/// The paper's Table 3 devices (sub-V_th strategy).
sc::DeviceSpec sub_vth_device(int node_index) {
  struct Row {
    double lpoly, tox, nsub, nhalo, shrink;
  };
  static constexpr Row kRows[] = {
      {95, 2.10, 1.61e18, 2.02e18, 1.000},
      {75, 1.89, 1.99e18, 2.73e18, 0.700},
      {60, 1.70, 2.53e18, 2.93e18, 0.490},
      {45, 1.53, 3.19e18, 4.89e18, 0.343},
  };
  const Row& r = kRows[node_index];
  return sc::make_spec_from_table(sd::Polarity::kNfet, r.lpoly, r.tox, r.nsub,
                                  r.nhalo, 1.0, r.shrink);
}

}  // namespace

// ---- DeviceSpec -----------------------------------------------------------------

TEST(DeviceSpec, ValidationCatchesNonsense) {
  sc::DeviceSpec spec = super_vth_device(0);
  EXPECT_NO_THROW(spec.validate());
  spec.levels.nsub = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = super_vth_device(0);
  spec.vdd = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(DeviceSpec, TableFactoryConvertsUnits) {
  const sc::DeviceSpec spec = super_vth_device(0);
  EXPECT_NEAR(su::to_nm(spec.geometry.lpoly), 65.0, 1e-9);
  EXPECT_NEAR(su::to_per_cm3(spec.levels.nsub), 1.52e18, 1e12);
  // N_halo net 3.63e18 = nsub + np_halo.
  EXPECT_NEAR(su::to_per_cm3(spec.levels.nsub + spec.levels.np_halo), 3.63e18,
              1e12);
}

TEST(DeviceSpec, NetHaloBelowSubstrateRejected) {
  EXPECT_THROW(sc::make_spec_from_table(sd::Polarity::kNfet, 65, 2.1, 2e18,
                                        1e18, 1.2, 1.0),
               std::invalid_argument);
}

// ---- S_S model ----------------------------------------------------------------------

TEST(SsModel, LongChannelLimitIsLowerBound) {
  const sc::Calibration& c = sc::paper_calibration();
  const double neff = su::per_cm3(2.4e18);
  const double tox = su::nm(2.1);
  const double ss_long = sc::subthreshold_swing_long(neff, tox, 300.0, c);
  const double ss_short =
      sc::subthreshold_swing(neff, tox, su::nm(20), 300.0, c);
  const double ss_very_long =
      sc::subthreshold_swing(neff, tox, su::nm(1000), 300.0, c);
  EXPECT_GT(ss_short, ss_long);
  EXPECT_NEAR(ss_very_long, ss_long, 1e-6);
}

TEST(SsModel, AboveThermodynamicLimit) {
  const sc::Calibration& c = sc::paper_calibration();
  // 60 mV/dec at 300 K is the hard floor.
  const double ss = sc::subthreshold_swing(su::per_cm3(1e17), su::nm(1.0),
                                           su::nm(1000), 300.0, c);
  EXPECT_GT(ss, 0.0596);
}

TEST(SsModel, DegradesWhenChannelShortens) {
  const sc::Calibration& c = sc::paper_calibration();
  const double neff = su::per_cm3(2.4e18);
  double prev = 0.0;
  for (double leff_nm : {100.0, 60.0, 40.0, 25.0, 15.0}) {
    const double ss =
        sc::subthreshold_swing(neff, su::nm(2.1), su::nm(leff_nm), 300.0, c);
    EXPECT_GT(ss, prev) << "leff " << leff_nm;
    prev = ss;
  }
}

TEST(SsModel, ImprovesWithThinnerOxide) {
  const sc::Calibration& c = sc::paper_calibration();
  const double neff = su::per_cm3(2.4e18);
  const double ss_thin =
      sc::subthreshold_swing(neff, su::nm(1.2), su::nm(45), 300.0, c);
  const double ss_thick =
      sc::subthreshold_swing(neff, su::nm(2.4), su::nm(45), 300.0, c);
  EXPECT_LT(ss_thin, ss_thick);
}

TEST(SsModel, ScalesWithTemperature) {
  const sc::Calibration& c = sc::paper_calibration();
  const double neff = su::per_cm3(2.4e18);
  const double ss300 =
      sc::subthreshold_swing(neff, su::nm(2.1), su::nm(49), 300.0, c);
  const double ss400 =
      sc::subthreshold_swing(neff, su::nm(2.1), su::nm(49), 400.0, c);
  // Dominated by the 2.3 vT prefactor (W_dep also shifts slightly).
  EXPECT_NEAR(ss400 / ss300, 400.0 / 300.0, 0.06);
}

TEST(SsModel, SlopeFactorInversion) {
  const double ss = 0.088;
  const double m = sc::slope_factor_from_swing(ss, 300.0);
  EXPECT_NEAR(m * std::log(10.0) * subscale::physics::kVt300, ss, 1e-12);
}

// ---- calibration -------------------------------------------------------------------

TEST(Calibration, ReproducesPaperSsAnchors) {
  const sc::Calibration& c = sc::paper_calibration();
  sc::SsAnchor anchors[8];
  const int n = sc::paper_ss_anchors(anchors);
  ASSERT_EQ(n, 8);
  for (int i = 0; i < n; ++i) {
    const double neff = anchors[i].nsub + c.k_halo * anchors[i].halo_add;
    const double ss = sc::subthreshold_swing(neff, anchors[i].tox,
                                             anchors[i].leff, 300.0, c);
    EXPECT_NEAR(ss / anchors[i].ss_target, 1.0, 0.05)
        << "anchor " << i << ": " << ss * 1e3 << " vs "
        << anchors[i].ss_target * 1e3 << " mV/dec";
  }
}

TEST(Calibration, FitIsDeterministic) {
  const sc::Calibration& a = sc::paper_calibration();
  const sc::Calibration& b = sc::paper_calibration();
  EXPECT_DOUBLE_EQ(a.c_dep, b.c_dep);
  EXPECT_DOUBLE_EQ(a.c_sce, b.c_sce);
  EXPECT_DOUBLE_EQ(a.c_len, b.c_len);
}

TEST(Calibration, AnchorOnlyRefitAchievesTightRms) {
  // The pure anchor fit (no optimizer-outcome terms) must reach < 3 %
  // RMS — this validates the S_S functional form independently of the
  // frozen two-stage default.
  sc::SsAnchor anchors[8];
  const int n = sc::paper_ss_anchors(anchors);
  double rms = 1.0;
  sc::fit_ss_calibration(sc::Calibration{}, anchors, n, &rms);
  EXPECT_LT(rms, 0.03);
}

TEST(Calibration, DefaultSatisfiesHeadlineClaims) {
  // The frozen default trades a little anchor accuracy for reproducing
  // the paper's optimizer outcome; the headline S_S claims must hold.
  const sc::Calibration& c = sc::paper_calibration();
  sc::SsAnchor a[8];
  sc::paper_ss_anchors(a);
  const auto ss_of = [&](const sc::SsAnchor& an) {
    return sc::subthreshold_swing(an.nsub + c.k_halo * an.halo_add, an.tox,
                                  an.leff, 300.0, c);
  };
  // Super-V_th S_S degrades substantially 90nm -> 32nm (paper: +11 %).
  const double r_super = ss_of(a[3]) / ss_of(a[0]);
  EXPECT_GT(r_super, 1.08);
  EXPECT_LT(r_super, 1.28);
  // Sub-V_th plateau: ~80 mV/dec with small drift (paper: 1.2 mV/dec).
  for (int i = 4; i < 8; ++i) {
    EXPECT_NEAR(ss_of(a[i]) * 1e3, 80.0, 3.0) << "anchor " << i;
  }
  EXPECT_LT(std::abs(ss_of(a[7]) - ss_of(a[4])) * 1e3, 4.0);
}

TEST(Calibration, NinetyNmIoffAnchoredTo100pA) {
  const sc::CompactMosfet fet(super_vth_device(0));
  EXPECT_NEAR(su::to_pA_per_um(fet.ioff() / fet.spec().width), 100.0, 1.0);
}

TEST(Calibration, NinetyNmVthSatExtractsTo403mV) {
  const sc::CompactMosfet fet(super_vth_device(0));
  EXPECT_NEAR(su::to_mV(fet.vth_sat_extracted()), 403.0, 2.0);
}

// ---- V_th model ------------------------------------------------------------------------

TEST(VthModel, HaloRollUpPositive) {
  const sc::DeviceSpec spec = super_vth_device(0);
  const auto c =
      sc::threshold_components(spec, sc::paper_calibration(), spec.vdd);
  EXPECT_GT(c.dvth_halo, 0.0);
  EXPECT_GT(c.dvth_sce, 0.0);
  EXPECT_GT(c.vth, 0.2);
  EXPECT_LT(c.vth, 0.7);
}

TEST(VthModel, DiblReducesVthWithDrainBias) {
  const sc::DeviceSpec spec = super_vth_device(3);  // 32nm: strong SCE
  const sc::Calibration& cal = sc::paper_calibration();
  EXPECT_GT(sc::threshold_voltage(spec, cal, 0.0),
            sc::threshold_voltage(spec, cal, spec.vdd));
  EXPECT_GT(sc::dibl_coefficient(spec, cal), 0.0);
}

TEST(VthModel, DiblGrowsAsChannelShrinks) {
  const sc::Calibration& cal = sc::paper_calibration();
  // Same doping/oxide, shrinking gate.
  double prev = 0.0;
  for (double lpoly : {120.0, 80.0, 50.0, 35.0}) {
    sc::DeviceSpec spec = sc::make_spec_from_table(
        sd::Polarity::kNfet, lpoly, 2.1, 2.0e18, 4.0e18, 1.2, 1.0);
    const double dibl = sc::dibl_coefficient(spec, cal);
    EXPECT_GT(dibl, prev) << "lpoly " << lpoly;
    prev = dibl;
  }
}

// ---- CompactMosfet --------------------------------------------------------------------

TEST(CompactMosfet, SoftplusBehaviour) {
  EXPECT_NEAR(sc::softplus(0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(sc::softplus(50.0), 50.0, 1e-9);
  EXPECT_NEAR(sc::softplus(-50.0), std::exp(-50.0), 1e-30);
}

TEST(CompactMosfet, CurrentIncreasesWithGateBias) {
  const sc::CompactMosfet fet(super_vth_device(0));
  double prev = 0.0;
  for (double vgs = 0.0; vgs <= 1.2; vgs += 0.1) {
    const double id = fet.drain_current(vgs, 1.2);
    EXPECT_GT(id, prev) << "vgs " << vgs;
    prev = id;
  }
}

TEST(CompactMosfet, SubthresholdSlopeOfActualCurrent) {
  // The measured log-slope of I_d(V_gs) in deep subthreshold must equal
  // the analytical S_S — a consistency check between Eqs. 1 and 2.
  const sc::CompactMosfet fet(super_vth_device(0));
  const double v1 = 0.05, v2 = 0.15;
  const double i1 = fet.drain_current(v1, fet.spec().vdd);
  const double i2 = fet.drain_current(v2, fet.spec().vdd);
  const double measured_ss = (v2 - v1) / std::log10(i2 / i1);
  EXPECT_NEAR(measured_ss / fet.subthreshold_swing(), 1.0, 0.03);
}

TEST(CompactMosfet, OnOffOrderingAndMagnitudes) {
  for (int i = 0; i < 4; ++i) {
    const sc::CompactMosfet fet(super_vth_device(i));
    EXPECT_GT(fet.ion(), 1e3 * fet.ioff()) << "node " << i;
    // I_on at 250 mV sits between off and full on.
    const double i250 = fet.ion_at(0.25);
    EXPECT_GT(i250, fet.ioff());
    EXPECT_LT(i250, fet.ion());
  }
}

TEST(CompactMosfet, DrainCurrentSaturates) {
  const sc::CompactMosfet fet(super_vth_device(0));
  const double id_sat = fet.drain_current(1.2, 1.2);
  const double id_lin = fet.drain_current(1.2, 0.05);
  EXPECT_GT(id_sat, 5.0 * id_lin);
  // Past saturation the current only grows via DIBL (slowly).
  const double id_over = fet.drain_current(1.2, 1.6);
  EXPECT_LT(id_over / id_sat, 1.3);
}

TEST(CompactMosfet, ReverseModeAntisymmetric) {
  const sc::CompactMosfet fet(super_vth_device(0));
  const double fwd = fet.drain_current(0.5, 0.1);
  const double rev = fet.drain_current(0.5, -0.1);
  EXPECT_LT(rev, 0.0);
  EXPECT_NEAR(-rev / fwd, 1.0, 1e-9);
}

TEST(CompactMosfet, PfetUsesHoleMobility) {
  sc::DeviceSpec nspec = super_vth_device(0);
  sc::DeviceSpec pspec = nspec;
  pspec.polarity = sd::Polarity::kPfet;
  const sc::CompactMosfet nfet(nspec);
  const sc::CompactMosfet pfet(pspec);
  // Same geometry/doping: the PFET is slower by the mobility ratio.
  EXPECT_LT(pfet.ion(), nfet.ion());
  EXPECT_GT(pfet.ion(), 0.1 * nfet.ion());
}

TEST(CompactMosfet, GateCapacitancePlausible) {
  const sc::CompactMosfet fet(super_vth_device(0));
  const double cg_ff_um = su::to_fF_per_um(fet.gate_capacitance() /
                                           fet.spec().width * 1e-6 * 1e6);
  // ~1-2 fF/um at the 90nm node (gate + overlap + fringe only; the
  // fixed wire load lives in the circuit layer).
  EXPECT_GT(su::to_fF(fet.gate_capacitance()), 0.8);
  EXPECT_LT(su::to_fF(fet.gate_capacitance()), 3.0);
  (void)cg_ff_um;
}

TEST(CompactMosfet, IntrinsicDelayPositiveAndPicoseconds) {
  const sc::CompactMosfet fet(super_vth_device(0));
  const double tau_ps = su::to_ps(fet.intrinsic_delay());
  EXPECT_GT(tau_ps, 0.1);
  EXPECT_LT(tau_ps, 100.0);
}

// ---- DeviceModel factory & nanowire backend -----------------------------------

namespace {

/// A paper node reinterpreted by the GAA backend (what nanowire_gaa
/// cards instantiate): same L_poly/T_ox/V_dd, cylindrical physics.
sc::DeviceSpec nanowire_device(int node_index) {
  sc::DeviceSpec spec = sub_vth_device(node_index);
  sc::DeviceEnv env;
  env.backend = sc::BackendKind::kNanowireGaa;
  spec.apply_env(env);
  return spec;
}

}  // namespace

TEST(DeviceModel, FactoryDispatchesOnBackendKind) {
  const auto bulk = sc::make_device_model(super_vth_device(0));
  EXPECT_EQ(bulk->backend(), sc::BackendKind::kBulkMosfet);
  EXPECT_STREQ(bulk->backend_name(), "bulk_mosfet");
  const auto nw = sc::make_device_model(nanowire_device(0));
  EXPECT_EQ(nw->backend(), sc::BackendKind::kNanowireGaa);
  EXPECT_STREQ(nw->backend_name(), "nanowire_gaa");
}

TEST(DeviceModel, FactoryMatchesConcreteMosfetBitwise) {
  // Backend #1 through the factory IS the old CompactMosfet: the
  // refactor may not move a single bit of the paper's device.
  const sc::DeviceSpec spec = super_vth_device(0);
  const sc::CompactMosfet direct(spec);
  const auto via = sc::make_device_model(spec);
  EXPECT_EQ(direct.subthreshold_swing(), via->subthreshold_swing());
  EXPECT_EQ(direct.slope_factor(), via->slope_factor());
  EXPECT_EQ(direct.ioff(), via->ioff());
  EXPECT_EQ(direct.gate_capacitance(), via->gate_capacitance());
  EXPECT_EQ(direct.drain_current(0.3, 0.25), via->drain_current(0.3, 0.25));
}

TEST(NanowireFet, NearIdealSwingAtRoomTemperature) {
  for (int i = 0; i < 4; ++i) {
    const auto fet = sc::make_device_model(nanowire_device(i));
    const double ss = fet->subthreshold_swing() * 1e3;
    // Gate-all-around electrostatics: a few % above the 59.6 mV/dec
    // thermodynamic floor, well below any bulk device.
    EXPECT_GT(ss, 59.5) << "node " << i;
    EXPECT_LT(ss, 65.0) << "node " << i;
  }
}

TEST(NanowireFet, CurrentIncreasesWithGateBias) {
  const auto fet = sc::make_device_model(nanowire_device(0));
  double prev = 0.0;
  for (double vgs = 0.0; vgs <= 1.0; vgs += 0.1) {
    const double id = fet->drain_current(vgs, 0.25);
    EXPECT_GT(id, prev) << "vgs " << vgs;
    prev = id;
  }
}

TEST(NanowireFet, MeasuredSlopeMatchesAnalyticalSwing) {
  const auto fet = sc::make_device_model(nanowire_device(0));
  const double v1 = 0.02, v2 = 0.10;
  const double i1 = fet->drain_current(v1, 0.25);
  const double i2 = fet->drain_current(v2, 0.25);
  const double measured_ss = (v2 - v1) / std::log10(i2 / i1);
  EXPECT_NEAR(measured_ss / fet->subthreshold_swing(), 1.0, 0.03);
}

TEST(NanowireFet, WithCalibrationPreservesBackend) {
  const auto fet = sc::make_device_model(nanowire_device(0));
  sc::Calibration shifted = fet->calibration();
  shifted.delta_vth += 0.05;
  const auto moved = fet->with_calibration(shifted);
  EXPECT_EQ(moved->backend(), sc::BackendKind::kNanowireGaa);
  // A higher threshold strictly cuts the subthreshold current.
  EXPECT_LT(moved->drain_current(0.1, 0.25), fet->drain_current(0.1, 0.25));
}

// ---- temperature as a first-class axis -------------------------------------------

TEST(DeviceEnvTemperature, SwingTracksLatticeTemperatureBothBackends) {
  // Satellite check: S_S = n * (kT/q) ln 10, so cooling to 250 K and
  // heating to 350 K must scale the swing by ~T/300 on BOTH backends
  // (n drifts slightly with T for bulk via the depletion term).
  for (const sc::BackendKind backend :
       {sc::BackendKind::kBulkMosfet, sc::BackendKind::kNanowireGaa}) {
    const auto at = [&](double t_kelvin) {
      sc::DeviceSpec spec = super_vth_device(0);
      sc::DeviceEnv env;
      env.backend = backend;
      env.temperature = t_kelvin;
      spec.apply_env(env);
      return sc::make_device_model(spec);
    };
    const auto cold = at(250.0);
    const auto room = at(300.0);
    const auto hot = at(350.0);
    EXPECT_LT(cold->subthreshold_swing(), room->subthreshold_swing());
    EXPECT_GT(hot->subthreshold_swing(), room->subthreshold_swing());
    EXPECT_NEAR(cold->subthreshold_swing() / room->subthreshold_swing(),
                250.0 / 300.0, 0.05)
        << sc::backend_kind_name(backend);
    EXPECT_NEAR(hot->subthreshold_swing() / room->subthreshold_swing(),
                350.0 / 300.0, 0.05)
        << sc::backend_kind_name(backend);
    // The n·kT/q·ln10 identity itself, at the off-nominal temperatures.
    for (const auto* fet : {&cold, &hot}) {
      const double vt = subscale::physics::thermal_voltage(
          (*fet)->spec().temperature);
      EXPECT_NEAR((*fet)->slope_factor() * vt * std::log(10.0),
                  (*fet)->subthreshold_swing(), 1e-12);
    }
  }
}

TEST(DeviceEnvTemperature, ApplyEnvCopiesEveryKnob) {
  sc::DeviceSpec spec = super_vth_device(0);
  sc::DeviceEnv env;
  env.backend = sc::BackendKind::kNanowireGaa;
  env.temperature = 250.0;
  env.nw_radius_nm = 6.0;
  spec.apply_env(env);
  EXPECT_EQ(spec.backend, sc::BackendKind::kNanowireGaa);
  EXPECT_EQ(spec.temperature, 250.0);
  EXPECT_NEAR(su::to_nm(spec.nw_radius), 6.0, 1e-12);
}

// ---- paper-level property: S_S trends across strategies --------------------------

TEST(PaperTrends, SuperVthSwingDegradesTowardThirtyTwoNm) {
  // Paper: S_S degrades 11 % from 90nm to 32nm under super-V_th scaling.
  // Our calibrated model reproduces the direction and rough magnitude
  // (the model's structural ceiling leaves it at ~15-18 %; see
  // EXPERIMENTS.md).
  const sc::CompactMosfet fet90(super_vth_device(0));
  const sc::CompactMosfet fet32(super_vth_device(3));
  const double degradation =
      fet32.subthreshold_swing() / fet90.subthreshold_swing() - 1.0;
  EXPECT_GT(degradation, 0.08);
  EXPECT_LT(degradation, 0.22);
}

TEST(PaperTrends, SubVthSwingStaysNearEightyMv) {
  for (int i = 0; i < 4; ++i) {
    const sc::CompactMosfet fet(sub_vth_device(i));
    EXPECT_NEAR(fet.subthreshold_swing() * 1e3, 80.0, 3.0) << "node " << i;
  }
}

TEST(PaperTrends, IonIoffRatioDropsSixtyPercentAt250mV) {
  const sc::CompactMosfet fet90(super_vth_device(0));
  const sc::CompactMosfet fet32(super_vth_device(3));
  const double r90 = fet90.ion_at(0.25) / fet90.drain_current(0.0, 0.25);
  const double r32 = fet32.ion_at(0.25) / fet32.drain_current(0.0, 0.25);
  const double reduction = 1.0 - r32 / r90;
  EXPECT_NEAR(reduction, 0.60, 0.12);
}

// ---- parameterized: every published device is well-formed --------------------------

class AllPaperDevices : public ::testing::TestWithParam<int> {};

TEST_P(AllPaperDevices, SuperVthDeviceBuildsAndBehaves) {
  const sc::CompactMosfet fet(super_vth_device(GetParam()));
  EXPECT_GT(fet.subthreshold_swing(), 0.06);
  EXPECT_LT(fet.subthreshold_swing(), 0.12);
  EXPECT_GT(fet.vth_sat(), 0.2);
  EXPECT_GT(fet.ion(), fet.ioff());
}

TEST_P(AllPaperDevices, SubVthDeviceBuildsAndBehaves) {
  const sc::CompactMosfet fet(sub_vth_device(GetParam()));
  EXPECT_GT(fet.subthreshold_swing(), 0.06);
  EXPECT_LT(fet.subthreshold_swing(), 0.10);
}

INSTANTIATE_TEST_SUITE_P(Nodes, AllPaperDevices, ::testing::Values(0, 1, 2, 3));
