#include <gtest/gtest.h>

#include <cmath>

#include "circuits/chain.h"
#include "circuits/dc_solver.h"
#include "circuits/delay.h"
#include "circuits/inverter.h"
#include "circuits/netlist.h"
#include "circuits/ring_oscillator.h"
#include "circuits/sram6t.h"
#include "circuits/transient.h"
#include "circuits/vmin.h"
#include "circuits/vtc.h"
#include "physics/units.h"

namespace cc = subscale::circuits;
namespace sc = subscale::compact;
namespace sd = subscale::doping;
namespace su = subscale::units;

namespace {

/// The paper's 90nm super-V_th NFET (Table 2, first column).
sc::DeviceSpec nfet_90() {
  return sc::make_spec_from_table(sd::Polarity::kNfet, 65, 2.10, 1.52e18,
                                  3.63e18, 1.2, 1.0);
}

/// 32nm super-V_th NFET (Table 2, last column).
sc::DeviceSpec nfet_32() {
  return sc::make_spec_from_table(sd::Polarity::kNfet, 22, 1.53, 3.31e18,
                                  12.0e18, 0.9, 0.343);
}

cc::InverterDevices inverter_90() { return cc::make_inverter(nfet_90()); }

}  // namespace

// ---- netlist ---------------------------------------------------------------------

TEST(Netlist, GroundAndNodes) {
  cc::Circuit c;
  EXPECT_EQ(c.ground(), 0u);
  EXPECT_TRUE(c.is_fixed(c.ground()));
  EXPECT_DOUBLE_EQ(c.fixed_voltage(c.ground()), 0.0);
  const auto n1 = c.add_node("a");
  const auto n2 = c.add_fixed_node("vdd", 1.2);
  EXPECT_FALSE(c.is_fixed(n1));
  EXPECT_TRUE(c.is_fixed(n2));
  EXPECT_DOUBLE_EQ(c.fixed_voltage(n2), 1.2);
  EXPECT_THROW(c.fixed_voltage(n1), std::invalid_argument);
  EXPECT_THROW(c.set_fixed_voltage(n1, 1.0), std::invalid_argument);
  c.set_fixed_voltage(n2, 1.0);
  EXPECT_DOUBLE_EQ(c.fixed_voltage(n2), 1.0);
  EXPECT_EQ(c.free_nodes().size(), 1u);
}

TEST(Netlist, ElementValidation) {
  cc::Circuit c;
  const auto out = c.add_node("out");
  EXPECT_THROW(c.add_mosfet(nullptr, out, out, out), std::invalid_argument);
  EXPECT_THROW(c.add_capacitor(out, 99, 1e-15), std::out_of_range);
  EXPECT_THROW(c.add_capacitor(out, c.ground(), -1e-15),
               std::invalid_argument);
  c.add_capacitor(out, c.ground(), 2e-15);
  EXPECT_DOUBLE_EQ(c.node_total_capacitance(out), 2e-15);
}

// ---- DC solver --------------------------------------------------------------------

TEST(DcSolver, InverterLogicLevels) {
  const auto inv = inverter_90();
  cc::Circuit c;
  const auto vdd = c.add_fixed_node("vdd", inv.vdd);
  const auto in = c.add_fixed_node("in", 0.0);
  const auto out = c.add_node("out");
  c.add_mosfet(inv.nfet, out, in, c.ground());
  c.add_mosfet(inv.pfet, out, in, vdd);

  auto result = cc::solve_dc(c);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.voltages[out], inv.vdd, 0.01);  // input low -> out high

  c.set_fixed_voltage(in, inv.vdd);
  result = cc::solve_dc(c, result.voltages);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.voltages[out], 0.0, 0.01);
}

TEST(DcSolver, RailCurrentEqualsLeakage) {
  const auto inv = inverter_90();
  cc::Circuit c;
  const auto vdd = c.add_fixed_node("vdd", inv.vdd);
  const auto in = c.add_fixed_node("in", 0.0);
  const auto out = c.add_node("out");
  c.add_mosfet(inv.nfet, out, in, c.ground());
  c.add_mosfet(inv.pfet, out, in, vdd);
  const auto result = cc::solve_dc(c);
  ASSERT_TRUE(result.converged);
  // Input low: rail current equals the NFET off-state leakage.
  const double i_rail = cc::rail_current(c, vdd, result.voltages);
  EXPECT_NEAR(i_rail / cc::inverter_leakage(inv, false), 1.0, 0.05);
}

TEST(DcSolver, NoFreeNodesTrivial) {
  cc::Circuit c;
  const auto result = cc::solve_dc(c);
  EXPECT_TRUE(result.converged);
}

// ---- inverter construction -----------------------------------------------------------

TEST(Inverter, BalancedSubthresholdCurrents) {
  const auto inv = inverter_90();
  const double i_n = inv.nfet->drain_current(0.15, 0.15);
  const double i_p = inv.pfet->drain_current(0.15, 0.15);
  EXPECT_NEAR(i_n / i_p, 1.0, 1e-6);
  EXPECT_GT(inv.pfet->spec().width, inv.nfet->spec().width);
}

TEST(Inverter, CapacitanceAccounting) {
  const auto inv = inverter_90();
  EXPECT_GT(inv.fanout_capacitance(), 0.0);
  EXPECT_GT(inv.wire_capacitance(), 0.0);
  EXPECT_DOUBLE_EQ(
      inv.stage_capacitance(0.5),
      1.5 * (inv.fanout_capacitance() + inv.wire_capacitance()));
  EXPECT_THROW(inv.at_vdd(0.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(inv.at_vdd(0.25).vdd, 0.25);
}

// ---- VTC / SNM ------------------------------------------------------------------------

TEST(Vtc, MonotoneAndRailToRail) {
  const auto inv = inverter_90().at_vdd(0.25);
  const auto curve = cc::compute_vtc(inv, 101);
  EXPECT_NEAR(curve.vout.front(), 0.25, 0.01);
  EXPECT_NEAR(curve.vout.back(), 0.0, 0.01);
  for (std::size_t i = 0; i + 1 < curve.vout.size(); ++i) {
    EXPECT_GE(curve.vout[i], curve.vout[i + 1] - 1e-12) << "i=" << i;
  }
}

TEST(Vtc, BalancedInverterSwitchesNearMidRail) {
  const auto inv = inverter_90().at_vdd(0.25);
  const double v_mid = cc::vtc_output(inv, 0.125);
  EXPECT_NEAR(v_mid, 0.125, 0.025);
}

TEST(Vtc, GainExceedsUnityInTransition) {
  const auto inv = inverter_90().at_vdd(0.25);
  const auto nm = cc::noise_margins(inv);
  EXPECT_LT(nm.peak_gain, -1.5);
  EXPECT_LT(nm.vil, nm.vih);
  EXPECT_GT(nm.snm, 0.0);
  EXPECT_LT(nm.snm, 0.125);
  EXPECT_GT(nm.voh, nm.vol);
}

TEST(Vtc, SnmGrowsWithSupply) {
  const auto inv = inverter_90();
  const double snm_250 = cc::noise_margins(inv.at_vdd(0.25)).snm;
  const double snm_400 = cc::noise_margins(inv.at_vdd(0.40)).snm;
  EXPECT_GT(snm_400, snm_250);
}

TEST(Vtc, PaperTrendSnmDegradesWithScalingAt250mV) {
  // Fig. 4: more than 10 % SNM degradation from 90nm to 32nm at 250 mV.
  const auto inv90 = inverter_90().at_vdd(0.25);
  const auto inv32 = cc::make_inverter(nfet_32()).at_vdd(0.25);
  const double snm90 = cc::noise_margins(inv90).snm;
  const double snm32 = cc::noise_margins(inv32).snm;
  EXPECT_LT(snm32, snm90);
  EXPECT_GT((snm90 - snm32) / snm90, 0.05);
}

TEST(Vtc, ButterflySnmOfSymmetricLatch) {
  const auto inv = inverter_90().at_vdd(0.3);
  const auto curve = cc::compute_vtc(inv, 301);
  const double snm = cc::butterfly_snm(curve, curve);
  EXPECT_GT(snm, 0.02);
  EXPECT_LT(snm, 0.15);
}

// ---- transient & delay ----------------------------------------------------------------

TEST(Transient, InverterOutputSwitchesRailToRail) {
  const auto inv = inverter_90();
  cc::Circuit c;
  const auto vdd = c.add_fixed_node("vdd", inv.vdd);
  const auto in = c.add_fixed_node("in", 0.0);
  const auto out = c.add_node("out");
  c.add_mosfet(inv.nfet, out, in, c.ground());
  c.add_mosfet(inv.pfet, out, in, vdd);
  c.add_capacitor(out, c.ground(), inv.fanout_capacitance());
  auto dc = cc::solve_dc(c);
  ASSERT_TRUE(dc.converged);

  c.set_fixed_voltage(in, inv.vdd);
  cc::TransientSim sim(c, dc.voltages);
  const double tau = inv.fanout_capacitance() * inv.vdd /
                     inv.nfet->drain_current(inv.vdd, inv.vdd);
  for (int i = 0; i < 2000; ++i) sim.step(tau / 20.0);
  EXPECT_NEAR(sim.voltage(out), 0.0, 0.01);
  EXPECT_GT(sim.time(), 0.0);
}

TEST(Transient, RejectsBadSteps) {
  const auto inv = inverter_90();
  cc::Circuit c;
  c.add_fixed_node("vdd", inv.vdd);
  cc::TransientSim sim(c, std::vector<double>(c.node_count(), 0.0));
  EXPECT_THROW(sim.step(0.0), std::invalid_argument);
  EXPECT_THROW(cc::TransientSim(c, std::vector<double>(99, 0.0)),
               std::invalid_argument);
}

TEST(Delay, NominalInPicoseconds) {
  const auto r = cc::fo1_delay(inverter_90());
  EXPECT_GT(su::to_ps(r.tp), 0.5);
  EXPECT_LT(su::to_ps(r.tp), 500.0);
  EXPECT_GT(r.tphl, 0.0);
  EXPECT_GT(r.tplh, 0.0);
}

TEST(Delay, SubthresholdExponentiallySlower) {
  const auto inv = inverter_90();
  const double tp_nom = cc::fo1_delay(inv).tp;
  const double tp_sub = cc::fo1_delay(inv.at_vdd(0.25)).tp;
  EXPECT_GT(tp_sub, 100.0 * tp_nom);  // kHz-MHz vs GHz class
}

TEST(Delay, AnalyticalTracksSimulated) {
  const auto inv = inverter_90();
  const double kd = cc::fit_kd(inv);
  EXPECT_GT(kd, 0.2);
  EXPECT_LT(kd, 3.0);
  // With the fitted kd the two must agree by construction.
  EXPECT_NEAR(cc::analytical_delay(inv, kd) / cc::fo1_delay(inv).tp, 1.0,
              1e-9);
}

// ---- chain energy & Vmin -----------------------------------------------------------------

TEST(Chain, EnergyComponentsAddUp) {
  const auto inv = inverter_90();
  const auto r = cc::chain_energy(inv, 0.3);
  EXPECT_DOUBLE_EQ(r.e_total, r.e_dynamic + r.e_leakage);
  EXPECT_GT(r.e_dynamic, 0.0);
  EXPECT_GT(r.e_leakage, 0.0);
  EXPECT_DOUBLE_EQ(r.cycle_time, 30.0 * r.stage_delay);
}

TEST(Chain, LeakageDominatesAtVeryLowVdd) {
  const auto inv = inverter_90();
  const auto low = cc::chain_energy(inv, 0.12);
  const auto high = cc::chain_energy(inv, 0.6);
  EXPECT_GT(low.e_leakage / low.e_dynamic, 1.0);
  EXPECT_LT(high.e_leakage / high.e_dynamic, 0.5);
}

TEST(Chain, SimulatedChainDelayMatchesPerStage) {
  // Full-circuit chain delay vs 8x the step-input FO1 delay. Real stages
  // see sloped inputs, so the per-stage delay runs ~1.3-1.8x the
  // step-input figure — the ratio just has to be stable and O(1).
  const auto inv = inverter_90();
  const double chain = cc::simulate_chain_delay(inv, inv.vdd, 8);
  const double stage = cc::fo1_delay(inv).tp;
  const double ratio = chain / (8.0 * stage);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 2.5);
}

TEST(Vmin, ExistsInsideBracket) {
  const auto inv = inverter_90();
  const auto r = cc::find_vmin(inv);
  EXPECT_GT(r.vmin, 0.12);
  EXPECT_LT(r.vmin, 0.55);
  // It is a minimum: nearby points cost more energy.
  const double e_lo = cc::chain_energy(inv, r.vmin - 0.05).e_total;
  const double e_hi = cc::chain_energy(inv, r.vmin + 0.05).e_total;
  EXPECT_GT(e_lo, r.at_vmin.e_total);
  EXPECT_GT(e_hi, r.at_vmin.e_total);
}

// ---- ring oscillator -------------------------------------------------------------------

TEST(Ring, OscillatesAndMatchesDelay) {
  const auto inv = inverter_90();
  const auto ring = cc::simulate_ring(inv, {.stages = 5});
  EXPECT_GT(ring.frequency, 0.0);
  // Ring stages see sloped inputs, so per-stage delay exceeds the
  // step-input FO1 figure by a stable O(1) factor.
  const double tp = cc::fo1_delay(inv).tp;
  const double ratio = ring.stage_delay / tp;
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 2.5);
  EXPECT_THROW(cc::simulate_ring(inv, {.stages = 4}), std::invalid_argument);
}

// ---- SRAM -------------------------------------------------------------------------------

TEST(Sram, HoldSnmPositiveInSubthreshold) {
  const auto cell = cc::make_sram_cell(nfet_90());
  auto sub_cell = cell;
  sub_cell.vdd = 0.3;
  EXPECT_GT(cc::sram_hold_snm(sub_cell), 0.02);
}

TEST(Sram, ReadSnmSmallerThanHold) {
  auto cell = cc::make_sram_cell(nfet_90());
  cell.vdd = 0.3;
  const double hold = cc::sram_hold_snm(cell);
  const double read = cc::sram_read_snm(cell);
  EXPECT_GT(read, 0.0);
  EXPECT_LT(read, hold);
}

TEST(Sram, CellRatioImprovesReadSnm) {
  auto weak = cc::make_sram_cell(nfet_90(), /*cell_ratio=*/1.0);
  auto strong = cc::make_sram_cell(nfet_90(), /*cell_ratio=*/3.0);
  weak.vdd = strong.vdd = 0.3;
  EXPECT_GT(cc::sram_read_snm(strong), cc::sram_read_snm(weak));
}

// ---- parameterized sweep: SNM across supplies ----------------------------------------------

class SnmSupplySweep : public ::testing::TestWithParam<double> {};

TEST_P(SnmSupplySweep, SnmScalesWithVddButSublinearly) {
  const double vdd = GetParam();
  const auto inv = inverter_90().at_vdd(vdd);
  const auto nm = cc::noise_margins(inv);
  EXPECT_GT(nm.snm, 0.0);
  EXPECT_LT(nm.snm, 0.5 * vdd);
  EXPECT_GT(nm.snm, 0.15 * vdd);
}

INSTANTIATE_TEST_SUITE_P(Supplies, SnmSupplySweep,
                         ::testing::Values(0.2, 0.25, 0.3, 0.4));
